//! Integration tests for the pass-pipeline flow layer, exercised through
//! the public `multiclock` facade: parallel evaluation is bit-identical
//! to sequential, cache hits return the same artifacts as cold runs,
//! per-pass timings are populated, and pass diagnostics propagate to the
//! caller.

use std::sync::Arc;

use multiclock::dfg::benchmarks;
use multiclock::experiment::{self, paper_table, paper_table_parallel};
use multiclock::{DesignStyle, Flow, Severity, Synthesizer};

/// Every paper table, generated in parallel, matches the sequential
/// generation bit for bit — power, area and resource counts are `==`,
/// not approximately equal.
#[test]
fn parallel_tables_are_bit_identical_for_all_benchmarks() {
    for bm in [
        benchmarks::facet(),
        benchmarks::hal(),
        benchmarks::biquad(),
        benchmarks::bandpass(),
    ] {
        let seq = paper_table(&bm, 50, 42).expect("sequential table");
        let par = paper_table_parallel(&bm, 50, 42).expect("parallel table");
        assert_eq!(seq.rows.len(), par.rows.len());
        for (s, p) in seq.rows.iter().zip(&par.rows) {
            assert_eq!(s.style, p.style, "{}", bm.name());
            assert_eq!(s.report.power.total_mw, p.report.power.total_mw);
            assert_eq!(s.report.power.clock_mw, p.report.power.clock_mw);
            assert_eq!(s.report.power.storage_mw, p.report.power.storage_mw);
            assert_eq!(s.report.area.total_lambda2, p.report.area.total_lambda2);
            assert_eq!(s.report.stats.mem_cells, p.report.stats.mem_cells);
            assert_eq!(s.report.stats.mux_inputs, p.report.stats.mux_inputs);
        }
    }
}

/// Per-pass wall-clock timings are recorded for every row of a paper
/// table, covering the whole pipeline.
#[test]
fn per_pass_timings_are_populated() {
    let t = paper_table(&benchmarks::hal(), 40, 42).expect("table");
    for row in &t.rows {
        assert!(!row.metrics.is_empty(), "{}: no metrics", row.label);
        let passes: Vec<&str> = row.metrics.iter().map(|m| m.pass).collect();
        assert!(passes.contains(&"simulate"), "{}: {passes:?}", row.label);
        assert!(passes.contains(&"power"), "{}: {passes:?}", row.label);
        for m in &row.metrics {
            assert!(!m.artifact.is_empty(), "{}: unlabeled artifact", m.pass);
        }
    }
    let rendered = t.render_timings();
    assert!(rendered.contains("simulate"));
    assert!(rendered.contains("power"));
}

/// A warm evaluation returns the *same* cached artifact (same `Arc`), not
/// a recomputation, and the flow's cache counters see the hit.
#[test]
fn cache_hits_return_identical_artifacts() {
    let flow = Flow::for_benchmark(&benchmarks::facet()).with_computations(40);
    let cold = flow
        .evaluate_instrumented(DesignStyle::MultiClock(3))
        .expect("cold run");
    assert!(cold.metrics.iter().all(|m| !m.cache_hit));
    let warm = flow
        .evaluate_instrumented(DesignStyle::MultiClock(3))
        .expect("warm run");
    assert!(Arc::ptr_eq(&cold.report, &warm.report));
    assert_eq!(warm.metrics.len(), 1);
    assert!(warm.metrics[0].cache_hit);
    let stats = flow.cache_stats();
    assert!(stats.hits >= 1, "{stats}");
    assert!(stats.reports >= 1, "{stats}");
}

/// The datapath cache is shared *across* styles that imply the same
/// allocation: the gated and non-gated conventional rows differ only in
/// power mode, so the second one allocates from cache.
#[test]
fn allocation_is_shared_across_power_modes() {
    let flow = Flow::for_benchmark(&benchmarks::biquad()).with_computations(40);
    let ng = flow
        .evaluate_instrumented(DesignStyle::ConventionalNonGated)
        .expect("non-gated");
    let g = flow
        .evaluate_instrumented(DesignStyle::ConventionalGated)
        .expect("gated");
    assert!(!ng.metrics.iter().any(|m| m.cache_hit));
    assert!(
        g.metrics
            .iter()
            .any(|m| m.pass == "allocate" && m.cache_hit),
        "gated row should reuse the conventional allocation: {:?}",
        g.metrics
    );
    // Different modes still price differently.
    assert!(g.report.power.total_mw < ng.report.power.total_mw);
}

/// Diagnostics reported inside passes reach the caller, and partition
/// warnings fire when a phase clock gates nothing.
#[test]
fn diagnostics_propagate_to_the_caller() {
    let flow = Flow::for_benchmark(&benchmarks::hal()).with_computations(20);
    let e = flow
        .evaluate_instrumented(DesignStyle::MultiClock(2))
        .expect("evaluates");
    assert!(
        e.diagnostics
            .iter()
            .any(|d| d.pass == "partition" && d.severity == Severity::Info),
        "expected partition narration, got {:?}",
        e.diagnostics
    );
    // A two-step behaviour under three clocks leaves the third partition
    // with nothing to do — the partition pass must warn.
    use multiclock::dfg::{scheduler, DfgBuilder, Op};
    let mut b = DfgBuilder::new("two_step", 4);
    let a = b.input("a");
    let c = b.input("c");
    let d = b.input("d");
    let t1 = b.op_named("t1", Op::Add, a, c);
    let t2 = b.op_named("t2", Op::Sub, t1, d);
    b.mark_output(t2);
    let dfg = b.finish().expect("valid dfg");
    let schedule = scheduler::asap(&dfg);
    assert_eq!(schedule.length(), 2);
    let tiny = Flow::new(dfg, schedule).with_computations(10);
    let e = tiny
        .evaluate_instrumented(DesignStyle::MultiClock(3))
        .expect("evaluates");
    assert!(
        e.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Warning),
        "expected an idle-partition warning, got {:?}",
        e.diagnostics
    );
}

/// The facade (`Synthesizer`) and the flow produce the same numbers — the
/// wrapper really is a wrapper.
#[test]
fn synthesizer_facade_matches_flow() {
    let bm = benchmarks::facet();
    let synth = Synthesizer::for_benchmark(&bm).with_computations(60);
    let flow = Flow::for_benchmark(&bm).with_computations(60);
    for style in DesignStyle::paper_rows() {
        let a = synth.evaluate(style).expect("facade evaluates");
        let b = flow.evaluate(style).expect("flow evaluates");
        assert_eq!(a.power.total_mw, b.power.total_mw, "{style}");
        assert_eq!(a.area.total_lambda2, b.area.total_lambda2, "{style}");
    }
}

/// Sweeps agree between sequential and parallel execution.
#[test]
fn parallel_sweep_matches_sequential() {
    let bm = benchmarks::facet();
    let seq = experiment::clock_sweep(&bm, 4, 40, 7).expect("sequential");
    let par = experiment::clock_sweep_parallel(&bm, 4, 40, 7).expect("parallel");
    assert_eq!(seq.len(), par.len());
    for ((an, a), (bn, b)) in seq.iter().zip(&par) {
        assert_eq!(an, bn);
        assert_eq!(a.power.total_mw, b.power.total_mw);
        assert_eq!(a.area.total_lambda2, b.area.total_lambda2);
    }
}
