//! End-to-end tests of `mcpm serve`: spawn the real binary on an
//! ephemeral port and talk to it over raw TCP, asserting that served
//! responses are byte-identical to one-shot CLI `--json` output, that
//! the on-disk cache survives a restart, and that errors surface as
//! proper HTTP statuses and non-zero exits.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use multiclock::serve::http::http_request;

fn mcpm(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcpm"))
        .args(args)
        .output()
        .expect("mcpm runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A live `mcpm serve` child on an ephemeral port; killed on drop.
struct ServerHandle {
    child: Child,
    addr: String,
    cache_dir: PathBuf,
    // Keep the stdout pipe open for the child's lifetime so its farewell
    // line has somewhere to go.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl ServerHandle {
    fn start(test: &str) -> ServerHandle {
        let cache_dir =
            std::env::temp_dir().join(format!("mcpm-serve-test-{}-{test}", std::process::id()));
        ServerHandle::start_with_cache(cache_dir)
    }

    fn start_with_cache(cache_dir: PathBuf) -> ServerHandle {
        let mut child = Command::new(env!("CARGO_BIN_EXE_mcpm"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "4",
                "--cache-dir",
            ])
            .arg(&cache_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("mcpm serve spawns");
        // The binary flushes the banner before blocking in accept, so a
        // single line read gives us the ephemeral port.
        let mut line = String::new();
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        stdout.read_line(&mut line).expect("banner line");
        let addr = line
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in banner {line:?}"))
            .to_owned();
        ServerHandle {
            child,
            addr,
            cache_dir,
            _stdout: stdout,
        }
    }

    fn post(&self, path: &str, body: &str) -> (u16, String) {
        http_request(&self.addr, "POST", path, body).expect("request succeeds")
    }

    fn get(&self, path: &str) -> (u16, String) {
        http_request(&self.addr, "GET", path, "").expect("request succeeds")
    }

    fn stat(&self, field: &str) -> u64 {
        let (status, body) = self.get("/stats");
        assert_eq!(status, 200, "{body}");
        let needle = format!("\"{field}\":");
        let rest = body
            .split(&needle)
            .nth(1)
            .unwrap_or_else(|| panic!("no {field} in {body}"));
        rest.chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("stat is a number")
    }

    /// Graceful drain via `POST /shutdown`, then reap the child. Leaves
    /// the cache directory on disk (the restart test reuses it).
    fn drain(mut self) -> PathBuf {
        let (status, _) = self.post("/shutdown", "");
        assert_eq!(status, 200);
        let exit = self.child.wait().expect("server exits");
        assert!(exit.success(), "server exit status {exit:?}");
        // Dropping after wait(): kill() on a reaped pid is a no-op error
        // we ignore in Drop.
        self.cache_dir.clone()
    }

    /// [`drain`](Self::drain) plus cache-directory cleanup.
    fn shutdown(self) {
        let dir = self.drain();
        let _ = std::fs::remove_dir_all(dir);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        // The cache dir is deliberately left alone here: the restart test
        // hands the same directory to a second server. Tests clean up via
        // `shutdown()`, which removes it after the child is reaped.
    }
}

#[test]
fn served_responses_are_byte_identical_to_cli_json() {
    let server = ServerHandle::start("byte-identity");
    let cases: [(&[&str], &str, &str); 4] = [
        (
            &[
                "eval",
                "--benchmark",
                "facet",
                "--computations",
                "40",
                "--json",
            ],
            "/eval",
            r#"{"benchmark":"facet","computations":40}"#,
        ),
        (
            &[
                "sweep",
                "--benchmark",
                "facet",
                "--max-clocks",
                "3",
                "--computations",
                "30",
                "--json",
            ],
            "/sweep",
            r#"{"benchmark":"facet","max_clocks":3,"computations":30}"#,
        ),
        (
            &[
                "explore",
                "--benchmark",
                "facet",
                "--max-clocks",
                "2",
                "--budget",
                "6",
                "--computations",
                "30",
                "--json",
            ],
            "/explore",
            r#"{"benchmark":"facet","max_clocks":2,"budget":6,"computations":30}"#,
        ),
        (
            &[
                "retrofit",
                "--benchmark",
                "facet",
                "--clocks",
                "2",
                "--seeds",
                "2",
                "--computations",
                "40",
                "--json",
            ],
            "/retrofit",
            r#"{"benchmark":"facet","clocks":2,"seeds":2,"computations":40}"#,
        ),
    ];
    for (cli_args, path, body) in cases {
        let (ok, stdout, stderr) = mcpm(cli_args);
        assert!(ok, "CLI {cli_args:?} failed: {stderr}");
        let (status, served) = server.post(path, body);
        assert_eq!(status, 200, "{served}");
        assert_eq!(served, stdout, "served {path} differs from CLI output");
    }
    server.shutdown();
}

#[test]
fn cache_survives_a_server_restart() {
    let cache_dir =
        std::env::temp_dir().join(format!("mcpm-serve-test-{}-restart", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let body = r#"{"benchmark":"hal","computations":30,"seed":7}"#;

    let first = ServerHandle::start_with_cache(cache_dir.clone());
    let (status, cold) = first.post("/eval", body);
    assert_eq!(status, 200, "{cold}");
    assert_eq!(first.stat("flow_runs"), 1);
    assert_eq!(first.stat("cache_misses"), 1);
    first.drain();

    // A brand-new process over the same cache directory answers from
    // disk: same bytes, a cache hit, and zero pipeline runs.
    let second = ServerHandle::start_with_cache(cache_dir);
    let (status, warm) = second.post("/eval", body);
    assert_eq!(status, 200, "{warm}");
    assert_eq!(warm, cold, "restarted server must replay identical bytes");
    assert_eq!(second.stat("cache_hits"), 1);
    assert_eq!(
        second.stat("flow_runs"),
        0,
        "warm answer must not recompute"
    );
    second.shutdown();
}

#[test]
fn identical_concurrent_requests_run_the_flow_once() {
    let server = ServerHandle::start("coalesce");
    let body = r#"{"benchmark":"biquad","max_clocks":3,"computations":30}"#;
    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    let (status, body) = server.post("/sweep", body);
                    assert_eq!(status, 200, "{body}");
                    body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for other in &responses[1..] {
        assert_eq!(*other, responses[0]);
    }
    // Whether a request coalesced onto the leader or arrived late enough
    // to hit the fresh cache entry, the expensive part ran exactly once.
    assert_eq!(server.stat("flow_runs"), 1);
    assert!(server.stat("requests") >= 5); // 4 sweeps + the stats call
    server.shutdown();
}

#[test]
fn bad_requests_get_proper_statuses() {
    let server = ServerHandle::start("errors");
    let (status, body) = server.post("/eval", r#"{"benchmark":"nope"}"#);
    assert_eq!(status, 400);
    assert!(body.contains("unknown benchmark"), "{body}");

    let (status, body) = server.post("/eval", r#"{"benchmark":"facet","bogus":1}"#);
    assert_eq!(status, 400);
    assert!(body.contains("unknown field \\\"bogus\\\""), "{body}");

    let (status, _) = server.get("/eval");
    assert_eq!(status, 405);
    let (status, _) = server.post("/no-such-endpoint", "{}");
    assert_eq!(status, 404);
    assert_eq!(server.stat("flow_runs"), 0, "errors must not start a run");
    server.shutdown();
}

#[test]
fn request_subcommand_round_trips_and_reports_errors() {
    let server = ServerHandle::start("request-cmd");
    let (ok, stdout, _) = mcpm(&[
        "request",
        "--addr",
        &server.addr,
        "--get",
        "--path",
        "/healthz",
    ]);
    assert!(ok);
    assert_eq!(stdout, "{\"status\":\"ok\"}\n");

    let out = std::env::temp_dir().join(format!("mcpm-req-{}.json", std::process::id()));
    let out_str = out.to_str().unwrap();
    let (ok, _, _) = mcpm(&[
        "request",
        "--addr",
        &server.addr,
        "--get",
        "--path",
        "/healthz",
        "--out",
        out_str,
    ]);
    assert!(ok);
    assert_eq!(
        std::fs::read_to_string(&out).unwrap(),
        "{\"status\":\"ok\"}\n"
    );
    let _ = std::fs::remove_file(&out);

    let (ok, _, stderr) = mcpm(&["request", "--addr", &server.addr, "--path", "/missing"]);
    assert!(!ok, "HTTP 404 must exit non-zero");
    assert!(stderr.contains("404"), "{stderr}");

    let (ok, _, stderr) = mcpm(&[
        "request",
        "--addr",
        "127.0.0.1:1",
        "--get",
        "--path",
        "/healthz",
    ]);
    assert!(!ok, "connection refusal must exit non-zero");
    assert!(stderr.contains("failed"), "{stderr}");
    server.shutdown();
}

#[test]
fn binding_an_occupied_port_exits_nonzero_with_a_clear_message() {
    let server = ServerHandle::start("bind-conflict");
    let dir = std::env::temp_dir().join(format!(
        "mcpm-serve-test-{}-bind-conflict-2",
        std::process::id()
    ));
    let (ok, _, stderr) = mcpm(&[
        "serve",
        "--addr",
        &server.addr,
        "--cache-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(!ok, "second bind on {} must fail", server.addr);
    assert!(stderr.contains(&server.addr), "{stderr}");
    assert!(stderr.contains("already running"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
    server.shutdown();
}
