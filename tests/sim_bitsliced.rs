//! Differential tests for the bit-sliced (bit-plane) kernel: every seed
//! of a bit-sliced population must be bit-identical to a scalar compiled
//! run with the same seed — activity counters, per-step profiles and
//! outputs — across every built-in benchmark, power mode, clock count
//! and allocation strategy, including partial populations handled by the
//! tail mask and populations spanning several 64-seed sweeps.
//!
//! This is the determinism contract that lets the Monte-Carlo estimator,
//! the explorer and the retrofit verifier switch backends freely: the
//! backend changes throughput, never a single bit of any result.

use mc_alloc::{allocate, AllocOptions, Strategy};
use mc_clocks::ClockScheme;
use mc_dfg::benchmarks;
use mc_power::analysis::monte_carlo_stats;
use mc_power::{derive_seeds, estimate_power};
use mc_rtl::{Netlist, PowerMode};
use mc_sim::{
    simulate, BatchBackend, BatchedProgram, BitslicedProgram, SeedKernel, SimBackend, SimConfig,
    SimResult,
};
use mc_tech::TechLibrary;

/// The allocation strategies that apply to `n` clocks.
fn strategies(n: u32) -> &'static [Strategy] {
    if n == 1 {
        &[Strategy::Conventional]
    } else {
        &[Strategy::Split, Strategy::Integrated]
    }
}

fn modes() -> [PowerMode; 3] {
    [
        PowerMode::non_gated(),
        PowerMode::gated(),
        PowerMode::multiclock(),
    ]
}

/// Scalar compiled reference run with profiling, the baseline every seed
/// is held to.
fn scalar_reference(
    netlist: &Netlist,
    mode: PowerMode,
    computations: usize,
    seed: u64,
) -> SimResult {
    let cfg = SimConfig::new(mode, computations, seed)
        .with_profile()
        .with_backend(SimBackend::Compiled);
    simulate(netlist, &cfg)
}

/// Asserts a bit-sliced run over `seeds` reproduces the scalar references
/// seed by seed (activity incl. per-step profile, outputs) and that the
/// activity-only path agrees with the full path.
fn assert_seeds_match(
    netlist: &Netlist,
    mode: PowerMode,
    computations: usize,
    seeds: &[u64],
    scalars: &[SimResult],
) {
    let program = BitslicedProgram::compile(netlist, mode);
    let sliced = program.run_seeds(computations, seeds, true);
    let activities = program.run_seeds_activity(computations, seeds, true);
    assert_eq!(sliced.len(), seeds.len());
    assert_eq!(activities.len(), seeds.len());
    for (k, (seed, scalar)) in seeds.iter().zip(scalars).enumerate() {
        let ctx = format!(
            "netlist `{}` mode [{mode}] computations {computations} seed {seed} \
             population {}",
            netlist.name(),
            seeds.len()
        );
        assert_eq!(
            sliced[k].activity, scalar.activity,
            "seed activity diverged: {ctx}"
        );
        assert_eq!(
            sliced[k].outputs, scalar.outputs,
            "seed outputs diverged: {ctx}"
        );
        assert_eq!(
            activities[k], scalar.activity,
            "activity-only path diverged: {ctx}"
        );
    }
}

#[test]
fn bitsliced_seeds_match_scalar_on_all_benchmarks_modes_clocks() {
    let seeds = [3u64, 17, 2026];
    for bm in benchmarks::all_benchmarks() {
        for n in 1u32..=4 {
            for &strategy in strategies(n) {
                let opts = AllocOptions::new(strategy, ClockScheme::new(n).unwrap());
                let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap_or_else(|e| {
                    panic!("{} {strategy} n={n}: allocation failed: {e}", bm.name())
                });
                for mode in modes() {
                    let scalars: Vec<SimResult> = seeds
                        .iter()
                        .map(|&s| scalar_reference(&dp.netlist, mode, 4, s))
                        .collect();
                    assert_seeds_match(&dp.netlist, mode, 4, &seeds, &scalars);
                }
            }
        }
    }
}

/// Population sizes around the 64-seed sweep width: a single seed (63
/// dead lanes under the tail mask), one short of a full sweep, exactly
/// one sweep, one seed into a second sweep, and two full sweeps. The 128
/// scalar references are computed once and every smaller population is a
/// prefix of the same schedule.
#[test]
fn partial_and_multi_sweep_populations_match_scalar() {
    let bm = benchmarks::hal();
    let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(3).unwrap());
    let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap();
    let mode = PowerMode::multiclock();
    let seeds = derive_seeds(99, 128);
    let scalars: Vec<SimResult> = seeds
        .iter()
        .map(|&s| scalar_reference(&dp.netlist, mode, 4, s))
        .collect();
    for population in [1usize, 63, 64, 65, 128] {
        assert_seeds_match(
            &dp.netlist,
            mode,
            4,
            &seeds[..population],
            &scalars[..population],
        );
    }
}

#[test]
fn zero_and_single_computation_populations_match_scalar() {
    let bm = benchmarks::hal();
    let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(2).unwrap());
    let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap();
    let mode = PowerMode::gated();
    let seeds = [5u64, 6, 7];
    for computations in [0usize, 1] {
        let scalars: Vec<SimResult> = seeds
            .iter()
            .map(|&s| scalar_reference(&dp.netlist, mode, computations, s))
            .collect();
        assert_seeds_match(&dp.netlist, mode, computations, &seeds, &scalars);
    }
}

/// The wide-datapath fallback path (Mul/Div through transpose-execute-
/// transpose, ripple carries over 32 planes) is held to the same
/// bit-identity bar as the 4-bit paper benchmarks.
#[test]
fn wide_datapath_population_matches_scalar() {
    let bm = benchmarks::hal_w(32);
    let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(2).unwrap());
    let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap();
    let mode = PowerMode::multiclock();
    let seeds = derive_seeds(7, 9);
    let scalars: Vec<SimResult> = seeds
        .iter()
        .map(|&s| scalar_reference(&dp.netlist, mode, 6, s))
        .collect();
    assert_seeds_match(&dp.netlist, mode, 6, &seeds, &scalars);
}

/// Monte-Carlo property: the three backends — scalar compiled, batched
/// lane-major, and bit-sliced — agree on the per-seed power totals and
/// therefore on the Monte-Carlo mean/std/CI *to the bit*, for every
/// paper benchmark.
#[test]
fn three_backends_agree_on_monte_carlo_statistics_to_the_bit() {
    let lib = TechLibrary::vsc450();
    let mode = PowerMode::multiclock();
    let seeds = derive_seeds(42, 24);
    for bm in benchmarks::paper_benchmarks() {
        let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(2).unwrap());
        let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap();
        let totals = |activities: Vec<mc_sim::Activity>| -> Vec<f64> {
            activities
                .iter()
                .map(|a| estimate_power(&dp.netlist, a, &lib).total_mw)
                .collect()
        };
        let scalar: Vec<f64> = seeds
            .iter()
            .map(|&s| {
                let cfg = SimConfig::new(mode, 16, s).with_backend(SimBackend::Compiled);
                estimate_power(&dp.netlist, &simulate(&dp.netlist, &cfg).activity, &lib).total_mw
            })
            .collect();
        let batched = totals(
            BatchedProgram::compile(&dp.netlist, mode, 16).run_seeds_activity(16, &seeds, false),
        );
        let sliced = totals(
            BitslicedProgram::compile(&dp.netlist, mode).run_seeds_activity(16, &seeds, false),
        );
        let s0 = monte_carlo_stats(&scalar);
        let s1 = monte_carlo_stats(&batched);
        let s2 = monte_carlo_stats(&sliced);
        for (name, s) in [("batched", &s1), ("bitsliced", &s2)] {
            assert_eq!(
                s.mean.to_bits(),
                s0.mean.to_bits(),
                "{}: {name} mean diverged from scalar",
                bm.name()
            );
            assert_eq!(
                s.std_dev.to_bits(),
                s0.std_dev.to_bits(),
                "{}: {name} std diverged from scalar",
                bm.name()
            );
            assert_eq!(
                s.ci95_half_width.to_bits(),
                s0.ci95_half_width.to_bits(),
                "{}: {name} CI diverged from scalar",
                bm.name()
            );
        }
    }
}

/// The [`SeedKernel`] dispatcher is exactly its two backends: both
/// variants run the same seeds to the same bits, and report their
/// configured backend and sweep width.
#[test]
fn seed_kernel_dispatch_matches_direct_backend_calls() {
    let bm = benchmarks::facet();
    let opts = AllocOptions::new(Strategy::Split, ClockScheme::new(2).unwrap());
    let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap();
    let mode = PowerMode::multiclock();
    let seeds = derive_seeds(5, 6);
    let batched = SeedKernel::compile(&dp.netlist, mode, BatchBackend::Batched, 8);
    let sliced = SeedKernel::compile(&dp.netlist, mode, BatchBackend::Bitsliced, 8);
    assert_eq!(batched.backend(), BatchBackend::Batched);
    assert_eq!(sliced.backend(), BatchBackend::Bitsliced);
    assert_eq!(batched.lanes(), 8);
    assert_eq!(sliced.lanes(), mc_sim::BITSLICE_LANES);
    let a = batched.run_seeds(10, &seeds, false);
    let b = sliced.run_seeds(10, &seeds, false);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.activity, y.activity);
        assert_eq!(x.outputs, y.outputs);
    }
    assert_eq!(
        batched.run_seeds_activity(10, &seeds, true),
        sliced.run_seeds_activity(10, &seeds, true)
    );
}
