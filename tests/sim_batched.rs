//! Differential tests for the batched multi-lane kernel: every lane of a
//! batched run must be bit-identical to a scalar compiled run with the
//! same seed — activity counters, per-step profiles and outputs — across
//! every built-in benchmark, power mode, clock count and lane width,
//! including partial final batches and the activity-only fast path.
//!
//! This is the lane determinism contract that lets Monte-Carlo power
//! estimation sweep seeds through the batched kernel while single-seed
//! consumers keep their exact pre-existing numbers.

use mc_alloc::{allocate, AllocOptions, Strategy};
use mc_clocks::ClockScheme;
use mc_dfg::benchmarks;
use mc_power::analysis::monte_carlo_stats;
use mc_power::{derive_seeds, estimate_power};
use mc_prng::Xoshiro256;
use mc_rtl::{Netlist, PowerMode};
use mc_sim::{simulate, BatchedProgram, SimBackend, SimConfig, SimResult};
use mc_tech::TechLibrary;

/// The allocation strategies that apply to `n` clocks.
fn strategies(n: u32) -> &'static [Strategy] {
    if n == 1 {
        &[Strategy::Conventional]
    } else {
        &[Strategy::Split, Strategy::Integrated]
    }
}

fn modes() -> [PowerMode; 3] {
    [
        PowerMode::non_gated(),
        PowerMode::gated(),
        PowerMode::multiclock(),
    ]
}

/// Scalar compiled reference run with profiling, the baseline every lane
/// is held to.
fn scalar_reference(
    netlist: &Netlist,
    mode: PowerMode,
    computations: usize,
    seed: u64,
) -> SimResult {
    let cfg = SimConfig::new(mode, computations, seed)
        .with_profile()
        .with_backend(SimBackend::Compiled);
    simulate(netlist, &cfg)
}

/// Asserts a batched run over `seeds` at `lanes` lanes reproduces the
/// scalar references lane by lane (activity incl. per-step profile,
/// outputs) and that the activity-only path agrees with the full path.
fn assert_lanes_match(
    netlist: &Netlist,
    mode: PowerMode,
    computations: usize,
    seeds: &[u64],
    lanes: usize,
    scalars: &[SimResult],
) {
    let program = BatchedProgram::compile(netlist, mode, lanes);
    let batched = program.run_seeds(computations, seeds, true);
    let activities = program.run_seeds_activity(computations, seeds, true);
    assert_eq!(batched.len(), seeds.len());
    assert_eq!(activities.len(), seeds.len());
    for (k, (seed, scalar)) in seeds.iter().zip(scalars).enumerate() {
        let ctx = format!(
            "netlist `{}` mode [{mode}] computations {computations} seed {seed} lanes {lanes}",
            netlist.name()
        );
        assert_eq!(
            batched[k].activity, scalar.activity,
            "lane activity diverged: {ctx}"
        );
        assert_eq!(
            batched[k].outputs, scalar.outputs,
            "lane outputs diverged: {ctx}"
        );
        assert_eq!(
            activities[k], scalar.activity,
            "activity-only path diverged: {ctx}"
        );
    }
}

#[test]
fn batched_lanes_match_scalar_on_all_benchmarks_modes_clocks_widths() {
    let seeds = [3u64, 17, 2026];
    for bm in benchmarks::all_benchmarks() {
        for n in 1u32..=4 {
            for &strategy in strategies(n) {
                let opts = AllocOptions::new(strategy, ClockScheme::new(n).unwrap());
                let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap_or_else(|e| {
                    panic!("{} {strategy} n={n}: allocation failed: {e}", bm.name())
                });
                for mode in modes() {
                    let scalars: Vec<SimResult> = seeds
                        .iter()
                        .map(|&s| scalar_reference(&dp.netlist, mode, 4, s))
                        .collect();
                    for lanes in [1usize, 8, 16, 32] {
                        assert_lanes_match(&dp.netlist, mode, 4, &seeds, lanes, &scalars);
                    }
                }
            }
        }
    }
}

#[test]
fn partial_final_batch_matches_scalar() {
    let bm = benchmarks::hal();
    let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(3).unwrap());
    let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap();
    let mode = PowerMode::multiclock();
    // 7 seeds at 16 lanes: one partial batch, padded internally to the
    // next power of two and truncated back.
    let seeds = derive_seeds(99, 7);
    let scalars: Vec<SimResult> = seeds
        .iter()
        .map(|&s| scalar_reference(&dp.netlist, mode, 8, s))
        .collect();
    assert_lanes_match(&dp.netlist, mode, 8, &seeds, 16, &scalars);
    // 7 seeds at 4 lanes: one full batch plus a partial 3-seed batch.
    assert_lanes_match(&dp.netlist, mode, 8, &seeds, 4, &scalars);
}

#[test]
fn zero_and_single_computation_batches_match_scalar() {
    let bm = benchmarks::hal();
    let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(2).unwrap());
    let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap();
    let mode = PowerMode::gated();
    let seeds = [5u64, 6, 7];
    for computations in [0usize, 1] {
        let scalars: Vec<SimResult> = seeds
            .iter()
            .map(|&s| scalar_reference(&dp.netlist, mode, computations, s))
            .collect();
        assert_lanes_match(&dp.netlist, mode, computations, &seeds, 8, &scalars);
    }
}

/// Monte-Carlo property: the 95 % confidence interval of the per-seed
/// power totals shrinks roughly like `1/√N`. Quadrupling the seed count
/// should about halve the half-width; the assertion leaves generous
/// slack because the sample standard deviation itself fluctuates.
#[test]
fn confidence_interval_shrinks_with_seed_count() {
    let bm = benchmarks::hal();
    let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(3).unwrap());
    let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap();
    let mode = PowerMode::multiclock();
    let lib = TechLibrary::vsc450();
    let program = BatchedProgram::compile(&dp.netlist, mode, 16);

    // A couple of independent base seeds drawn from the repo PRNG, so
    // the property is not an artifact of one lucky seed schedule.
    let mut rng = Xoshiro256::seed_from_u64(2026);
    for _ in 0..2 {
        let base = rng.next_u64();
        let seeds = derive_seeds(base, 64);
        let totals: Vec<f64> = program
            .run_seeds_activity(24, &seeds, false)
            .iter()
            .map(|a| estimate_power(&dp.netlist, a, &lib).total_mw)
            .collect();
        let small = monte_carlo_stats(&totals[..16]);
        let large = monte_carlo_stats(&totals);
        assert!(small.ci95_half_width > 0.0, "base {base}: degenerate CI");
        let ratio = large.ci95_half_width / small.ci95_half_width;
        // Exact 1/√4 = 0.5; allow wide slack for variance noise.
        assert!(
            (0.2..0.9).contains(&ratio),
            "base {base}: CI half-width ratio {ratio:.3} not ~0.5 \
             (16 seeds: {:.4}, 64 seeds: {:.4})",
            small.ci95_half_width,
            large.ci95_half_width
        );
        // And the two estimates agree within their joint uncertainty.
        assert!(
            (small.mean - large.mean).abs() <= small.ci95_half_width + large.ci95_half_width,
            "base {base}: means diverged: {} vs {}",
            small.mean,
            large.mean
        );
    }
}
