//! Property-style tests over the full pipeline, driven by the in-tree
//! deterministic PRNG (the workspace builds without network access, so
//! `proptest` is not available): random behaviours are scheduled,
//! allocated under every strategy, and the synthesised netlist is checked
//! for functional equivalence; core data-structure invariants (left-edge
//! packing, partition math, schedule legality) are exercised on random
//! inputs. Every case is deterministic per seed, so failures reproduce
//! exactly.

use multiclock::alloc::leftedge::{left_edge, max_overlap, Interval};
use multiclock::alloc::{allocate, AllocOptions, Strategy};
use multiclock::clocks::ClockScheme;
use multiclock::dfg::random::{random_scheduled_dfg, RandomDfgConfig};
use multiclock::dfg::{scheduler, Op};
use multiclock::prng::Xoshiro256;
use multiclock::rtl::PowerMode;
use multiclock::sim::verify_equivalence;
use multiclock::tech::MemKind;

/// Cases per property — the same order of magnitude proptest ran with.
const CASES: u64 = 24;

/// Any random behaviour, integrated-allocated under 1–3 clocks, computes
/// exactly what the behaviour computes.
#[test]
fn random_dfg_integrated_allocation_is_equivalent() {
    let mut rng = Xoshiro256::seed_from_u64(0xA110C);
    for _ in 0..CASES {
        let seed = rng.below(500);
        let nodes = rng.range_inclusive(4, 17) as usize;
        let n = rng.range_inclusive(1, 3) as u32;
        let cfg = RandomDfgConfig::new(nodes).with_seed(seed).with_inputs(3);
        let (dfg, schedule) = random_scheduled_dfg(&cfg);
        let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(n).expect("valid"));
        let dp = allocate(&dfg, &schedule, &opts).expect("allocates");
        verify_equivalence(&dfg, &dp.netlist, PowerMode::multiclock(), 6, seed ^ 0xABCD)
            .unwrap_or_else(|e| panic!("seed {seed} nodes {nodes} n {n}: {e}"));
    }
}

/// The split allocator is equally correct.
#[test]
fn random_dfg_split_allocation_is_equivalent() {
    let mut rng = Xoshiro256::seed_from_u64(0x5917);
    for _ in 0..CASES {
        let seed = rng.below(500);
        let nodes = rng.range_inclusive(4, 13) as usize;
        let cfg = RandomDfgConfig::new(nodes).with_seed(seed).with_inputs(2);
        let (dfg, schedule) = random_scheduled_dfg(&cfg);
        let opts = AllocOptions::new(Strategy::Split, ClockScheme::new(2).expect("valid"));
        let dp = allocate(&dfg, &schedule, &opts).expect("allocates");
        verify_equivalence(&dfg, &dp.netlist, PowerMode::multiclock(), 6, seed ^ 0x1234)
            .unwrap_or_else(|e| panic!("seed {seed} nodes {nodes}: {e}"));
    }
}

/// The conventional allocator with DFFs under gated clocks is correct.
#[test]
fn random_dfg_conventional_allocation_is_equivalent() {
    let mut rng = Xoshiro256::seed_from_u64(0xC0F4);
    for _ in 0..CASES {
        let seed = rng.below(500);
        let nodes = rng.range_inclusive(4, 15) as usize;
        let cfg = RandomDfgConfig::new(nodes).with_seed(seed);
        let (dfg, schedule) = random_scheduled_dfg(&cfg);
        let opts = AllocOptions::new(Strategy::Conventional, ClockScheme::single());
        let dp = allocate(&dfg, &schedule, &opts).expect("allocates");
        verify_equivalence(&dfg, &dp.netlist, PowerMode::gated(), 6, seed ^ 0x77)
            .unwrap_or_else(|e| panic!("seed {seed} nodes {nodes}: {e}"));
    }
}

/// Left-edge packing: covers every interval exactly once, never packs
/// conflicting intervals together, and is optimal (equals the max
/// overlap) for edge-triggered registers.
#[test]
fn left_edge_invariants() {
    let mut rng = Xoshiro256::seed_from_u64(0x1EF7);
    for case in 0..CASES {
        let count = rng.range_inclusive(1, 23) as usize;
        let intervals: Vec<Interval> = (0..count)
            .map(|id| {
                let w = rng.below(20) as u32;
                let span = rng.below(8) as u32;
                Interval {
                    id,
                    write_step: w,
                    death: w + span,
                }
            })
            .collect();
        for kind in [MemKind::Latch, MemKind::Dff] {
            let groups = left_edge(&intervals, kind);
            let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(
                seen,
                (0..intervals.len()).collect::<Vec<_>>(),
                "case {case}"
            );
            for g in &groups {
                for (i, &x) in g.iter().enumerate() {
                    for &y in &g[i + 1..] {
                        assert!(
                            intervals[x].compatible(&intervals[y], kind),
                            "case {case}: {x} vs {y} under {kind:?}"
                        );
                    }
                }
            }
        }
        // Optimality for DFFs: left-edge colours the interval graph with
        // exactly its clique number (`max_overlap` pads zero-length
        // intervals so overlaps coincide with DFF conflicts).
        let groups = left_edge(&intervals, MemKind::Dff);
        assert_eq!(groups.len(), max_overlap(&intervals).max(1), "case {case}");
    }
}

/// Printing any random behaviour as DSL text and reparsing it yields an
/// evaluation-equivalent behaviour.
#[test]
fn dsl_round_trip_preserves_semantics() {
    use multiclock::dfg::parse::{parse_dfg, to_dsl};
    let mut rng = Xoshiro256::seed_from_u64(0xD51);
    for _ in 0..CASES {
        let seed = rng.below(400);
        let nodes = rng.range_inclusive(2, 19) as usize;
        let cfg = RandomDfgConfig::new(nodes).with_seed(seed).with_inputs(3);
        let dfg = multiclock::dfg::random::random_dfg(&cfg);
        let text = to_dsl(&dfg);
        let reparsed =
            parse_dfg(dfg.name(), &text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        let mut inputs = std::collections::BTreeMap::new();
        for (i, v) in dfg.inputs().enumerate() {
            inputs.insert(dfg.var(v).name(), (seed.wrapping_mul(7) + i as u64) & 0xF);
        }
        let a = dfg.evaluate_named(&inputs).expect("evaluates");
        let b = reparsed.evaluate_named(&inputs).expect("evaluates");
        for v in dfg.outputs() {
            let name = dfg.var(v).name();
            assert_eq!(a[name], b[name], "seed {seed}: output {name}");
        }
    }
}

/// §4.2's latch-merging rule, stated directly on lifetimes: left-edge
/// packing for latches never co-locates two variables whose READ/WRITE
/// lifetimes overlap *or even touch* — a latch is transparent while its
/// clock is high, so a value written in the step its co-resident dies
/// would race through. (DFFs only need edge-disjointness; touching is
/// legal there, which `left_edge_invariants` covers via `compatible`.)
#[test]
fn latch_merging_never_overlaps_lifetimes() {
    let mut rng = Xoshiro256::seed_from_u64(0x1A7C4);
    for case in 0..CASES {
        let count = rng.range_inclusive(2, 31) as usize;
        let intervals: Vec<Interval> = (0..count)
            .map(|id| {
                let w = rng.below(24) as u32;
                let span = rng.below(9) as u32;
                Interval {
                    id,
                    write_step: w,
                    death: w + span,
                }
            })
            .collect();
        for group in left_edge(&intervals, MemKind::Latch) {
            for (i, &x) in group.iter().enumerate() {
                for &y in &group[i + 1..] {
                    let (a, b) = (&intervals[x], &intervals[y]);
                    let (first, second) = if a.write_step <= b.write_step {
                        (a, b)
                    } else {
                        (b, a)
                    };
                    assert!(
                        first.death < second.write_step,
                        "case {case}: latch shares [{}, {}] with [{}, {}]",
                        first.write_step,
                        first.death,
                        second.write_step,
                        second.death
                    );
                }
            }
        }
    }
}

/// The same rule end-to-end: every latch-based integrated allocation of a
/// random behaviour passes the netlist-level latch-discipline audit (no
/// memory captures while a co-resident value is still being read).
#[test]
fn random_integrated_latch_allocations_keep_latch_discipline() {
    use multiclock::rtl::discipline::check_latch_discipline;
    let mut rng = Xoshiro256::seed_from_u64(0xD15C);
    for _ in 0..CASES {
        let seed = rng.below(500);
        let nodes = rng.range_inclusive(4, 17) as usize;
        let n = rng.range_inclusive(1, 3) as u32;
        let cfg = RandomDfgConfig::new(nodes).with_seed(seed).with_inputs(3);
        let (dfg, schedule) = random_scheduled_dfg(&cfg);
        let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(n).expect("valid"));
        let dp = allocate(&dfg, &schedule, &opts).expect("allocates");
        let hazards = check_latch_discipline(&dp.netlist, false);
        assert!(
            hazards.is_empty(),
            "seed {seed} nodes {nodes} n {n}: {hazards:?}"
        );
    }
}

/// The explorer's frontier accounting, restated as a property. A
/// randomized objective stream is built the way the lattice produces one:
/// fresh points on a coarse grid (so exact ties occur), structural-dedup
/// twins (bit-identical objective vectors served from an earlier point's
/// record), and rewritten-variant points (the same configuration under a
/// different rewrite — one objective nudged a quantum down, up, or not at
/// all). Streaming that through a `StreamingFrontier` must keep exactly
/// the batch `pareto_mask` survivors with an honest dominated count, and
/// cutting the stream at a random resume boundary — rebuilding the
/// frontier from its surviving entries plus `add_dominated`, as
/// `Explorer::run` does from a checkpoint — must change nothing, entry
/// order included.
#[test]
fn streaming_frontier_with_dedup_matches_batch_pareto_across_resume() {
    use multiclock::explore::{pareto_mask, Objectives, StreamingFrontier};

    let mut rng = Xoshiro256::seed_from_u64(0x00F2_071E);
    for case in 0..CASES {
        let count = rng.range_inclusive(20, 60) as usize;
        let mut objs: Vec<Objectives> = Vec::new();
        for _ in 0..count {
            let roll = rng.below(100);
            if roll < 25 && !objs.is_empty() {
                // Structural-dedup twin: the frontier sees the earlier
                // point's record verbatim (ties must all be kept).
                let j = rng.below(objs.len() as u64) as usize;
                objs.push(objs[j]);
            } else if roll < 50 && !objs.is_empty() {
                // Rewritten variant: same configuration, one objective
                // moved a quantum (down = dominates its baseline twin,
                // up = dominated by it, unchanged = tie).
                let j = rng.below(objs.len() as u64) as usize;
                let mut o = objs[j];
                let delta = f64::from(rng.range_inclusive(0, 2) as u32) - 1.0;
                match rng.below(3) {
                    0 => o.power_mw = (o.power_mw + delta).max(0.0),
                    1 => o.area_lambda2 = (o.area_lambda2 + delta).max(0.0),
                    _ => o.latency_ns = (o.latency_ns + delta).max(0.0),
                }
                objs.push(o);
            } else {
                objs.push(Objectives {
                    power_mw: f64::from(rng.below(8) as u32),
                    area_lambda2: f64::from(rng.below(8) as u32),
                    latency_ns: f64::from(rng.below(8) as u32),
                });
            }
        }

        let mask = pareto_mask(&objs);
        let expected: Vec<usize> = (0..count).filter(|&i| mask[i]).collect();

        // Straight-through stream.
        let mut straight = StreamingFrontier::new();
        for (i, &o) in objs.iter().enumerate() {
            let _ = straight.offer(o, i);
        }

        // Resumed stream: stop at a random boundary, rebuild from the
        // surviving entries exactly as the checkpoint path does.
        let cut = rng.below(count as u64 + 1) as usize;
        let mut before = StreamingFrontier::new();
        for (i, &o) in objs[..cut].iter().enumerate() {
            let _ = before.offer(o, i);
        }
        let mut resumed = StreamingFrontier::new();
        for &(o, i) in before.iter() {
            let evicted = resumed.offer(o, i);
            assert!(
                evicted.is_empty(),
                "case {case}: checkpoint not nondominated"
            );
        }
        resumed.add_dominated(cut as u64 - resumed.len() as u64);
        for (i, &o) in objs.iter().enumerate().skip(cut) {
            let _ = resumed.offer(o, i);
        }

        assert_eq!(
            straight.dominated(),
            (count - expected.len()) as u64,
            "case {case}: dominated count"
        );
        assert_eq!(resumed.dominated(), straight.dominated(), "case {case}");
        let straight = straight.into_entries();
        let mut survivors: Vec<usize> = straight.iter().map(|&(_, i)| i).collect();
        survivors.sort_unstable();
        assert_eq!(survivors, expected, "case {case}: stream vs batch");
        assert_eq!(
            resumed.into_entries(),
            straight,
            "case {case}: resume must preserve entries and order"
        );
    }
}

/// The partition/local-step maps are a bijection for every scheme.
#[test]
fn clock_scheme_bijection() {
    let mut rng = Xoshiro256::seed_from_u64(0xB17);
    for _ in 0..10 * CASES {
        let n = rng.range_inclusive(1, 16) as u32;
        let t = rng.range_inclusive(1, 999) as u32;
        let scheme = ClockScheme::new(n).expect("valid");
        let k = scheme.phase_of_step(t).expect("t >= 1");
        let l = scheme.local_step(t).expect("t >= 1");
        assert_eq!(scheme.global_step(l, k), t, "n {n} t {t}");
        assert!(k.get() >= 1 && k.get() <= n);
    }
}

/// ASAP schedules are valid and no longer than list schedules, which are
/// valid under their resource limits.
#[test]
fn scheduler_relationships() {
    let mut rng = Xoshiro256::seed_from_u64(0x5C4ED);
    for _ in 0..CASES {
        let seed = rng.below(300);
        let nodes = rng.range_inclusive(3, 19) as usize;
        let cfg = RandomDfgConfig::new(nodes).with_seed(seed);
        let dfg = multiclock::dfg::random::random_dfg(&cfg);
        let asap = scheduler::asap(&dfg);
        let rc = multiclock::dfg::ResourceConstraints::new()
            .with_limit(Op::Mul, 1)
            .with_limit(Op::Div, 1);
        let listed = scheduler::list_schedule(&dfg, &rc).expect("schedules");
        assert!(listed.length() >= asap.length(), "seed {seed}");
        // Resource limits hold at every step.
        for t in 1..=listed.length() {
            let muls = listed
                .nodes_at_step(t)
                .into_iter()
                .filter(|&nd| dfg.node(nd).op() == Op::Mul)
                .count();
            assert!(muls <= 1, "seed {seed} step {t}: {muls} muls");
        }
    }
}

/// Force-directed schedules at any feasible latency are valid, and the
/// expensive-op concurrency stays within one unit of ASAP's (FDS is a
/// balancing heuristic, not an optimum: cascaded frame restrictions can
/// occasionally co-locate two expensive operations that ASAP spreads).
#[test]
fn force_directed_validity() {
    let mut rng = Xoshiro256::seed_from_u64(0xF0DC);
    for _ in 0..CASES {
        let seed = rng.below(200);
        let nodes = rng.range_inclusive(3, 13) as usize;
        let slack = rng.below(4) as u32;
        let cfg = RandomDfgConfig::new(nodes).with_seed(seed);
        let dfg = multiclock::dfg::random::random_dfg(&cfg);
        let cp = scheduler::critical_path(&dfg);
        let sched = scheduler::force_directed(&dfg, cp + slack).expect("schedules");
        assert_eq!(sched.length(), cp + slack, "seed {seed}");
        let asap = scheduler::asap(&dfg);
        let max_exp = |s: &multiclock::dfg::Schedule| {
            (1..=s.length())
                .map(|t| {
                    s.nodes_at_step(t)
                        .into_iter()
                        .filter(|&nd| dfg.node(nd).op().is_expensive())
                        .count()
                })
                .max()
                .unwrap_or(0)
        };
        assert!(
            max_exp(&sched) <= max_exp(&asap) + 1,
            "seed {seed} slack {slack}"
        );
    }
}
