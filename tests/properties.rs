//! Property-based tests over the full pipeline: random behaviours are
//! scheduled, allocated under every strategy, and the synthesised netlist
//! is checked for functional equivalence; core data-structure invariants
//! (left-edge packing, partition math, schedule legality) are exercised
//! on random inputs.

use proptest::prelude::*;

use multiclock::alloc::leftedge::{left_edge, max_overlap, Interval};
use multiclock::alloc::{allocate, AllocOptions, Strategy};
use multiclock::clocks::ClockScheme;
use multiclock::dfg::random::{random_scheduled_dfg, RandomDfgConfig};
use multiclock::dfg::{scheduler, Op};
use multiclock::rtl::PowerMode;
use multiclock::sim::verify_equivalence;
use multiclock::tech::MemKind;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random behaviour, integrated-allocated under 1–3 clocks,
    /// computes exactly what the behaviour computes.
    #[test]
    fn random_dfg_integrated_allocation_is_equivalent(
        seed in 0u64..500,
        nodes in 4usize..18,
        n in 1u32..=3,
    ) {
        let cfg = RandomDfgConfig::new(nodes).with_seed(seed).with_inputs(3);
        let (dfg, schedule) = random_scheduled_dfg(&cfg);
        let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(n).expect("valid"));
        let dp = allocate(&dfg, &schedule, &opts).expect("allocates");
        verify_equivalence(&dfg, &dp.netlist, PowerMode::multiclock(), 6, seed ^ 0xABCD)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    /// The split allocator is equally correct.
    #[test]
    fn random_dfg_split_allocation_is_equivalent(
        seed in 0u64..500,
        nodes in 4usize..14,
    ) {
        let cfg = RandomDfgConfig::new(nodes).with_seed(seed).with_inputs(2);
        let (dfg, schedule) = random_scheduled_dfg(&cfg);
        let opts = AllocOptions::new(Strategy::Split, ClockScheme::new(2).expect("valid"));
        let dp = allocate(&dfg, &schedule, &opts).expect("allocates");
        verify_equivalence(&dfg, &dp.netlist, PowerMode::multiclock(), 6, seed ^ 0x1234)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    /// The conventional allocator with DFFs under gated clocks is correct.
    #[test]
    fn random_dfg_conventional_allocation_is_equivalent(
        seed in 0u64..500,
        nodes in 4usize..16,
    ) {
        let cfg = RandomDfgConfig::new(nodes).with_seed(seed);
        let (dfg, schedule) = random_scheduled_dfg(&cfg);
        let opts = AllocOptions::new(Strategy::Conventional, ClockScheme::single());
        let dp = allocate(&dfg, &schedule, &opts).expect("allocates");
        verify_equivalence(&dfg, &dp.netlist, PowerMode::gated(), 6, seed ^ 0x77)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    /// Left-edge packing: covers every interval exactly once, never packs
    /// conflicting intervals together, and is optimal (equals the max
    /// overlap) for edge-triggered registers.
    #[test]
    fn left_edge_invariants(raw in prop::collection::vec((0u32..20, 0u32..8), 1..24)) {
        let intervals: Vec<Interval> = raw
            .iter()
            .enumerate()
            .map(|(id, &(w, span))| Interval { id, write_step: w, death: w + span })
            .collect();
        for kind in [MemKind::Latch, MemKind::Dff] {
            let groups = left_edge(&intervals, kind);
            let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..intervals.len()).collect::<Vec<_>>());
            for g in &groups {
                for (i, &x) in g.iter().enumerate() {
                    for &y in &g[i + 1..] {
                        prop_assert!(intervals[x].compatible(&intervals[y], kind));
                    }
                }
            }
        }
        // Optimality for DFFs: left-edge colours the interval graph with
        // exactly its clique number (`max_overlap` pads zero-length
        // intervals so overlaps coincide with DFF conflicts).
        let groups = left_edge(&intervals, MemKind::Dff);
        prop_assert_eq!(groups.len(), max_overlap(&intervals).max(1));
    }

    /// Printing any random behaviour as DSL text and reparsing it yields
    /// an evaluation-equivalent behaviour.
    #[test]
    fn dsl_round_trip_preserves_semantics(seed in 0u64..400, nodes in 2usize..20) {
        use multiclock::dfg::parse::{parse_dfg, to_dsl};
        let cfg = RandomDfgConfig::new(nodes).with_seed(seed).with_inputs(3);
        let dfg = multiclock::dfg::random::random_dfg(&cfg);
        let text = to_dsl(&dfg);
        let reparsed = parse_dfg(dfg.name(), &text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        let mut inputs = std::collections::BTreeMap::new();
        for (i, v) in dfg.inputs().enumerate() {
            inputs.insert(dfg.var(v).name(), (seed.wrapping_mul(7) + i as u64) & 0xF);
        }
        let a = dfg.evaluate_named(&inputs).expect("evaluates");
        let b = reparsed.evaluate_named(&inputs).expect("evaluates");
        for v in dfg.outputs() {
            let name = dfg.var(v).name();
            prop_assert_eq!(a[name], b[name], "output {}", name);
        }
    }

    /// The partition/local-step maps are a bijection for every scheme.
    #[test]
    fn clock_scheme_bijection(n in 1u32..=16, t in 1u32..1000) {
        let scheme = ClockScheme::new(n).expect("valid");
        let k = scheme.phase_of_step(t);
        let l = scheme.local_step(t);
        prop_assert_eq!(scheme.global_step(l, k), t);
        prop_assert!(k.get() >= 1 && k.get() <= n);
    }

    /// ASAP schedules are valid and no longer than list schedules, which
    /// are valid under their resource limits.
    #[test]
    fn scheduler_relationships(seed in 0u64..300, nodes in 3usize..20) {
        let cfg = RandomDfgConfig::new(nodes).with_seed(seed);
        let dfg = multiclock::dfg::random::random_dfg(&cfg);
        let asap = scheduler::asap(&dfg);
        let rc = multiclock::dfg::ResourceConstraints::new()
            .with_limit(Op::Mul, 1)
            .with_limit(Op::Div, 1);
        let listed = scheduler::list_schedule(&dfg, &rc).expect("schedules");
        prop_assert!(listed.length() >= asap.length());
        // Resource limits hold at every step.
        for t in 1..=listed.length() {
            let muls = listed
                .nodes_at_step(t)
                .into_iter()
                .filter(|&nd| dfg.node(nd).op() == Op::Mul)
                .count();
            prop_assert!(muls <= 1);
        }
    }

    /// Force-directed schedules at any feasible latency are valid, and the
    /// expensive-op concurrency stays within one unit of ASAP's (FDS is a
    /// balancing heuristic, not an optimum: cascaded frame restrictions can
    /// occasionally co-locate two expensive operations that ASAP spreads).
    #[test]
    fn force_directed_validity(seed in 0u64..200, nodes in 3usize..14, slack in 0u32..4) {
        let cfg = RandomDfgConfig::new(nodes).with_seed(seed);
        let dfg = multiclock::dfg::random::random_dfg(&cfg);
        let cp = scheduler::critical_path(&dfg);
        let sched = scheduler::force_directed(&dfg, cp + slack).expect("schedules");
        prop_assert_eq!(sched.length(), cp + slack);
        let asap = scheduler::asap(&dfg);
        let max_exp = |s: &multiclock::dfg::Schedule| {
            (1..=s.length())
                .map(|t| {
                    s.nodes_at_step(t)
                        .into_iter()
                        .filter(|&nd| dfg.node(nd).op().is_expensive())
                        .count()
                })
                .max()
                .unwrap_or(0)
        };
        prop_assert!(max_exp(&sched) <= max_exp(&asap) + 1);
    }
}
