//! End-to-end functional equivalence: every bundled benchmark, synthesised
//! in every design style, must compute exactly what its behaviour
//! computes, verified by simulating the synthesised netlist against
//! direct DFG evaluation over random vectors.

use multiclock::dfg::benchmarks;
use multiclock::{DesignStyle, Synthesizer};

#[test]
fn all_benchmarks_all_paper_styles_are_equivalent() {
    for bm in benchmarks::all_benchmarks() {
        let synth = Synthesizer::for_benchmark(&bm)
            .with_computations(25)
            .with_seed(3);
        for style in DesignStyle::paper_rows() {
            synth
                .synthesize_verified(style)
                .unwrap_or_else(|e| panic!("{} under {style}: {e}", bm.name()));
        }
    }
}

#[test]
fn wide_datapaths_are_equivalent() {
    for width in [8u8, 16, 32] {
        let bm = benchmarks::hal_w(width);
        let synth = Synthesizer::for_benchmark(&bm)
            .with_computations(20)
            .with_seed(9);
        for style in [DesignStyle::MultiClock(2), DesignStyle::ConventionalGated] {
            synth
                .synthesize_verified(style)
                .unwrap_or_else(|e| panic!("width {width} under {style}: {e}"));
        }
    }
}

#[test]
fn higher_clock_counts_stay_equivalent() {
    let bm = benchmarks::bandpass();
    let synth = Synthesizer::for_benchmark(&bm)
        .with_computations(15)
        .with_seed(5);
    for n in 4..=6u32 {
        synth
            .synthesize_verified(DesignStyle::MultiClock(n))
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
}

#[test]
fn split_strategy_is_equivalent_across_benchmarks() {
    use multiclock::alloc::Strategy;
    use multiclock::rtl::PowerMode;
    use multiclock::tech::MemKind;
    for bm in benchmarks::paper_benchmarks() {
        let synth = Synthesizer::for_benchmark(&bm)
            .with_computations(20)
            .with_seed(7);
        for clocks in [2u32, 3] {
            let style = DesignStyle::Custom {
                strategy: Strategy::Split,
                clocks,
                mem_kind: MemKind::Latch,
                transfers: false,
                mode: PowerMode::multiclock(),
            };
            synth
                .synthesize_verified(style)
                .unwrap_or_else(|e| panic!("{} split n={clocks}: {e}", bm.name()));
        }
    }
}

#[test]
fn power_modes_do_not_change_function() {
    use multiclock::rtl::{ControlPolicy, PowerMode};
    use multiclock::sim::verify_equivalence;
    let bm = benchmarks::facet();
    let synth = Synthesizer::for_benchmark(&bm);
    let design = synth
        .synthesize(DesignStyle::MultiClock(2))
        .expect("synthesises");
    // Even "wrong" mode combinations (gating a multiclock design,
    // unlatched controls) must not alter results — power modes are
    // observability knobs, never functional ones.
    for gated in [false, true] {
        for iso in [false, true] {
            for policy in [ControlPolicy::Hold, ControlPolicy::Zero] {
                let mode = PowerMode {
                    gated_mem_clocks: gated,
                    operand_isolation: iso,
                    control_policy: policy,
                };
                verify_equivalence(&bm.dfg, &design.datapath.netlist, mode, 15, 11)
                    .unwrap_or_else(|e| panic!("{mode}: {e}"));
            }
        }
    }
}
