//! Multi-cycle functional units end to end: schedules with a two-cycle
//! divider (and slower profiles) must allocate, verify and evaluate
//! exactly like unit-latency ones — the simulator's equivalence oracle is
//! the arbiter.

use multiclock::alloc::{allocate, AllocOptions, Strategy};
use multiclock::clocks::ClockScheme;
use multiclock::dfg::{benchmarks, scheduler, DfgBuilder, LatencyModel, Op};
use multiclock::rtl::PowerMode;
use multiclock::sim::verify_equivalence;
use multiclock::{DesignStyle, Synthesizer};

/// FACET (which contains a divider) under a 2-cycle divider model.
fn facet_multicycle() -> (multiclock::dfg::Dfg, multiclock::dfg::Schedule) {
    let bm = benchmarks::facet();
    let schedule = scheduler::asap_with_latencies(&bm.dfg, &LatencyModel::slow_divider());
    (bm.dfg, schedule)
}

#[test]
fn slow_divider_schedule_is_longer_but_valid() {
    let bm = benchmarks::facet();
    let unit = scheduler::asap_with_latencies(&bm.dfg, &LatencyModel::unit());
    let slow = scheduler::asap_with_latencies(&bm.dfg, &LatencyModel::slow_divider());
    assert!(slow.has_multicycle_ops());
    assert!(!unit.has_multicycle_ops());
    assert!(
        slow.length() > unit.length(),
        "{} vs {}",
        slow.length(),
        unit.length()
    );
    // The divider node completes one step after it starts.
    let div = bm
        .dfg
        .node_ids()
        .find(|&n| bm.dfg.node(n).op() == Op::Div)
        .expect("FACET has a divider");
    assert_eq!(slow.completion_of(div), slow.step_of(div) + 1);
}

#[test]
fn multicycle_designs_are_functionally_correct() {
    let (dfg, schedule) = facet_multicycle();
    let conv = allocate(
        &dfg,
        &schedule,
        &AllocOptions::new(Strategy::Conventional, ClockScheme::single()),
    )
    .expect("allocates");
    verify_equivalence(&dfg, &conv.netlist, PowerMode::gated(), 40, 3)
        .unwrap_or_else(|e| panic!("conventional: {e}"));
    for n in [1u32, 2, 3] {
        for strategy in [Strategy::Split, Strategy::Integrated] {
            let dp = allocate(
                &dfg,
                &schedule,
                &AllocOptions::new(strategy, ClockScheme::new(n).expect("valid")),
            )
            .expect("allocates");
            verify_equivalence(&dfg, &dp.netlist, PowerMode::multiclock(), 40, 3)
                .unwrap_or_else(|e| panic!("{strategy} n={n}: {e}"));
        }
    }
}

#[test]
fn multicycle_ops_never_share_an_alu_with_overlapping_windows() {
    let (dfg, schedule) = facet_multicycle();
    let dp = allocate(
        &dfg,
        &schedule,
        &AllocOptions::new(Strategy::Integrated, ClockScheme::new(2).expect("valid")),
    )
    .expect("allocates");
    for g in &dp.alus {
        let mut windows: Vec<(u32, u32)> = g
            .ops
            .iter()
            .map(|&o| (dp.problem.ops[o].step, dp.problem.ops[o].completion()))
            .collect();
        windows.sort_unstable();
        for pair in windows.windows(2) {
            assert!(pair[0].1 < pair[1].0, "overlapping windows {pair:?}");
        }
    }
}

#[test]
fn very_slow_units_still_verify() {
    // An aggressive profile: 3-cycle divider, 2-cycle multiplier.
    let model = LatencyModel::unit()
        .with_latency(Op::Div, 3)
        .with_latency(Op::Mul, 2);
    for bm in [benchmarks::facet(), benchmarks::hal(), benchmarks::biquad()] {
        let schedule = scheduler::asap_with_latencies(&bm.dfg, &model);
        let synth = Synthesizer::new(bm.dfg.clone(), schedule).with_computations(25);
        for style in [DesignStyle::ConventionalGated, DesignStyle::MultiClock(2)] {
            synth
                .synthesize_verified(style)
                .unwrap_or_else(|e| panic!("{} under {style}: {e}", bm.name()));
        }
    }
}

#[test]
fn multicycle_chain_computes_through_partitions() {
    // A hand-built chain where a 2-cycle divide feeds a multiply across
    // partitions.
    let mut b = DfgBuilder::new("mc_chain", 8);
    let a = b.input("a");
    let d = b.input("d");
    let q = b.op_named("q", Op::Div, a, d);
    let m = b.op_named("m", Op::Mul, q, a);
    let y = b.op_named("y", Op::Add, m, 1u64);
    b.mark_output(y);
    let dfg = b.finish().expect("well-formed");
    let schedule = scheduler::asap_with_latencies(&dfg, &LatencyModel::slow_divider());
    assert_eq!(schedule.length(), 4);
    let synth = Synthesizer::new(dfg, schedule).with_computations(60);
    for n in [2u32, 3] {
        synth
            .synthesize_verified(DesignStyle::MultiClock(n))
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
}

#[test]
fn multicycle_power_evaluation_runs() {
    let (dfg, schedule) = facet_multicycle();
    let synth = Synthesizer::new(dfg, schedule).with_computations(120);
    let gated = synth
        .evaluate(DesignStyle::ConventionalGated)
        .expect("evaluates");
    let multi = synth
        .evaluate(DesignStyle::MultiClock(2))
        .expect("evaluates");
    assert!(gated.power.total_mw > 0.0 && multi.power.total_mw > 0.0);
    assert!(multi.power.total_mw < gated.power.total_mw);
}
