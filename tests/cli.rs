//! End-to-end tests of the `mcpm` command-line tool, driving the real
//! binary the way a user would.

use std::process::Command;

fn mcpm(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcpm"))
        .args(args)
        .output()
        .expect("mcpm runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn no_arguments_prints_usage() {
    let (ok, stdout, _) = mcpm(&[]);
    assert!(ok);
    assert!(stdout.contains("commands:"));
}

#[test]
fn list_names_all_benchmarks() {
    let (ok, stdout, _) = mcpm(&["list"]);
    assert!(ok);
    for name in ["facet", "hal", "biquad", "bandpass", "ewf"] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn eval_renders_the_five_styles() {
    let (ok, stdout, _) = mcpm(&["eval", "--benchmark", "facet", "--computations", "40"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Non-Gated Clock"));
    assert!(stdout.contains("3 Clocks"));
    assert!(stdout.contains("reduction"));
}

#[test]
fn synth_verifies_and_prints_netlist() {
    let (ok, stdout, stderr) = mcpm(&[
        "synth",
        "--benchmark",
        "motivating",
        "--clocks",
        "2",
        "--computations",
        "30",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("netlist `motivating_integrated_2clk`"));
    assert!(stderr.contains("verified OK"));
}

#[test]
fn synth_exports_vhdl() {
    let (ok, stdout, _) = mcpm(&[
        "synth",
        "--benchmark",
        "hal",
        "--clocks",
        "3",
        "--export",
        "vhdl",
        "--computations",
        "20",
    ]);
    assert!(ok);
    assert!(stdout.contains("entity hal_integrated_3clk is"));
    assert!(stdout.contains("CLK3 : in bit;"));
}

#[test]
fn synth_from_dsl_file_works() {
    let (ok, stdout, stderr) = mcpm(&[
        "synth",
        "--file",
        "examples/data/mac4.dfg",
        "--clocks",
        "2",
        "--computations",
        "30",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("netlist `mac4_integrated_2clk`"));
}

#[test]
fn unknown_benchmark_fails_with_candidates() {
    let (ok, _, stderr) = mcpm(&["eval", "--benchmark", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown benchmark"));
    assert!(stderr.contains("facet"));
}

#[test]
fn degenerate_random_benchmark_specs_are_rejected_with_the_reason() {
    // Zero and oversized node counts are out of range, not unknown names.
    let (ok, _, stderr) = mcpm(&["eval", "--benchmark", "random:0:1"]);
    assert!(!ok);
    assert!(stderr.contains("node count 0 is out of range"), "{stderr}");
    let (ok, _, stderr) = mcpm(&["eval", "--benchmark", "random:100000:1"]);
    assert!(!ok);
    assert!(stderr.contains("out of range"), "{stderr}");
    // Trailing fields and non-numeric fields name the malformed spec.
    let (ok, _, stderr) = mcpm(&["eval", "--benchmark", "random:8:1:9"]);
    assert!(!ok);
    assert!(stderr.contains("bad random benchmark spec"), "{stderr}");
    assert!(stderr.contains("expected 2"), "{stderr}");
    let (ok, _, stderr) = mcpm(&["eval", "--benchmark", "random:8:banana"]);
    assert!(!ok);
    assert!(stderr.contains("not a 64-bit integer"), "{stderr}");
    // A well-formed spec still evaluates.
    let (ok, stdout, stderr) = mcpm(&["eval", "--benchmark", "random:6:1", "--computations", "8"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("mW"), "{stdout}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = mcpm(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("commands:"));
}

#[test]
fn sweep_outputs_one_row_per_clock_count() {
    let (ok, stdout, _) = mcpm(&[
        "sweep",
        "--benchmark",
        "ar_lattice",
        "--max-clocks",
        "3",
        "--computations",
        "30",
    ]);
    assert!(ok);
    let rows = stdout
        .lines()
        .filter(|l| l.trim_start().starts_with(['1', '2', '3']))
        .count();
    assert_eq!(rows, 3, "{stdout}");
}

#[test]
fn eval_json_is_machine_readable() {
    let (ok, stdout, _) = mcpm(&[
        "eval",
        "--benchmark",
        "facet",
        "--computations",
        "40",
        "--json",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"benchmark\":\"facet\""));
    assert!(stdout.contains("\"style\":\"3 Clocks\""));
    assert!(stdout.contains("\"gated_to_best_multiclock_reduction\":"));
}

#[test]
fn sweep_json_has_one_row_per_clock_count() {
    let (ok, stdout, _) = mcpm(&[
        "sweep",
        "--benchmark",
        "hal",
        "--max-clocks",
        "3",
        "--computations",
        "30",
        "--json",
    ]);
    assert!(ok, "{stdout}");
    assert_eq!(stdout.matches("\"clocks\":").count(), 3, "{stdout}");
    assert!(stdout.contains("\"power_mw\":"));
}

#[test]
fn explore_renders_a_frontier_table() {
    let (ok, stdout, stderr) = mcpm(&[
        "explore",
        "--benchmark",
        "hal",
        "--computations",
        "30",
        "--budget",
        "6",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Design-space exploration: hal"));
    assert!(stdout.contains("Pareto-optimal"));
    assert!(stdout.contains("3 Clocks"));
}

#[test]
fn explore_json_is_deterministic_across_runs_and_thread_counts() {
    let args = [
        "explore",
        "--benchmark",
        "facet",
        "--computations",
        "30",
        "--budget",
        "8",
        "--json",
    ];
    let (ok1, run1, _) = mcpm(&args);
    let (ok2, run2, _) = mcpm(&args);
    let mut sequential = args.to_vec();
    sequential.extend(["--parallel", "false"]);
    let (ok3, run3, _) = mcpm(&sequential);
    assert!(ok1 && ok2 && ok3);
    assert_eq!(run1, run2, "same-seed reruns must emit identical JSON");
    assert_eq!(
        run1, run3,
        "parallel and sequential must emit identical JSON"
    );
    assert!(run1.contains("\"on_frontier\":true"));
}

#[test]
fn explore_rewrites_flag_is_bounded_and_reaches_the_frontier() {
    let (ok, _, stderr) = mcpm(&["explore", "--benchmark", "hal", "--rewrites", "9"]);
    assert!(!ok);
    assert!(
        stderr.contains("--rewrites out of range (1..=4)"),
        "{stderr}"
    );
    // The full rewrite axis on hal puts an equivalence-checked commute
    // variant on the frontier alongside the baseline paper rows.
    let (ok, stdout, stderr) = mcpm(&[
        "explore",
        "--benchmark",
        "hal",
        "--computations",
        "60",
        "--rewrites",
        "4",
        "--json",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("\"rewrite\":\"baseline\""), "{stdout}");
    assert!(stdout.contains("\"rewrite\":\"commute\""), "{stdout}");
}

#[test]
fn explore_with_seeds_reports_confidence_bounds() {
    let args = [
        "explore",
        "--benchmark",
        "hal",
        "--computations",
        "24",
        "--budget",
        "5",
        "--seeds",
        "3",
        "--json",
    ];
    let (ok1, run1, stderr) = mcpm(&args);
    assert!(ok1, "{stderr}");
    assert!(run1.contains("\"power_ci95_mw\":"));
    assert!(run1.contains("\"power_seeds\":3"));
    // A different lane width changes throughput, never the JSON.
    let mut narrow = args.to_vec();
    narrow.extend(["--batch", "4"]);
    let (ok2, run2, _) = mcpm(&narrow);
    assert!(ok2);
    assert_eq!(run1, run2, "--batch must not affect results");
    // So does the bit-sliced kernel: a different backend, the same bits.
    let mut sliced = args.to_vec();
    sliced.extend(["--backend", "bitsliced"]);
    let (ok3, run3, _) = mcpm(&sliced);
    assert!(ok3);
    assert_eq!(run1, run3, "--backend must not affect results");
}

#[test]
fn retrofit_json_is_identical_across_backends() {
    let args = [
        "retrofit",
        "--benchmark",
        "biquad",
        "--computations",
        "30",
        "--seeds",
        "2",
        "--json",
    ];
    let (ok1, batched, stderr) = mcpm(&args);
    assert!(ok1, "{stderr}");
    assert!(batched.contains("\"power_reduction_pct\":"), "{batched}");
    let mut with_backend = args.to_vec();
    with_backend.extend(["--backend", "bitsliced"]);
    let (ok2, sliced, stderr) = mcpm(&with_backend);
    assert!(ok2, "{stderr}");
    assert_eq!(
        batched, sliced,
        "the retrofit report must not encode the verification backend"
    );
    assert!(!sliced.contains("backend"), "{sliced}");
}

#[test]
fn unknown_backend_name_is_rejected() {
    let (ok, _, stderr) = mcpm(&["explore", "--benchmark", "hal", "--backend", "vectorised"]);
    assert!(!ok, "unknown backend names must not fall back to a default");
    assert!(
        stderr.contains("invalid value `vectorised` for --backend"),
        "{stderr}"
    );
    assert!(stderr.contains("batched"), "{stderr}");
    assert!(stderr.contains("bitsliced"), "{stderr}");
}

#[test]
fn signoff_is_clean_for_multiclock_designs() {
    let (ok, stdout, _) = mcpm(&[
        "signoff",
        "--benchmark",
        "biquad",
        "--clocks",
        "2",
        "--computations",
        "40",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("functional equivalence: PASS"));
    assert!(stdout.contains("latch discipline"));
    assert!(stdout.contains("signoff CLEAN"));
    assert!(stdout.contains("DPM(CLK1)"));
}

#[test]
fn stats_report_spread() {
    let (ok, stdout, _) = mcpm(&[
        "stats",
        "--benchmark",
        "facet",
        "--clocks",
        "2",
        "--computations",
        "50",
        "--seeds",
        "3",
    ]);
    assert!(ok);
    assert!(stdout.contains("3 seeds"));
    assert!(stdout.contains("±"));
}

#[test]
fn misspelled_flag_is_rejected_with_a_suggestion() {
    let (ok, _, stderr) = mcpm(&["synth", "--benchmark", "hal", "--clcoks", "3"]);
    assert!(!ok, "typos must not be silently ignored");
    assert!(stderr.contains("unknown flag `--clcoks`"), "{stderr}");
    assert!(stderr.contains("did you mean `--clocks`?"), "{stderr}");
    assert!(stderr.contains("valid flags:"), "{stderr}");
}

#[test]
fn unknown_flag_without_a_near_miss_lists_valid_flags() {
    let (ok, _, stderr) = mcpm(&["eval", "--benchmark", "facet", "--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag `--frobnicate`"), "{stderr}");
    assert!(!stderr.contains("did you mean"), "{stderr}");
    assert!(stderr.contains("--benchmark"), "{stderr}");
}

#[test]
fn degenerate_numeric_flags_are_rejected_at_parse_time() {
    for (args, flag) in [
        (
            vec!["eval", "--benchmark", "facet", "--computations", "0"],
            "computations",
        ),
        (
            vec![
                "stats",
                "--benchmark",
                "facet",
                "--clocks",
                "2",
                "--seeds",
                "0",
            ],
            "seeds",
        ),
        (
            vec!["explore", "--benchmark", "hal", "--batch", "0"],
            "batch",
        ),
    ] {
        let (ok, _, stderr) = mcpm(&args);
        assert!(!ok, "{args:?} must fail");
        assert!(
            stderr.contains(&format!("invalid value `0` for --{flag}")),
            "{args:?} → {stderr}"
        );
        assert!(stderr.contains("must be at least 1"), "{stderr}");
    }
}

#[test]
fn stray_positional_arguments_are_rejected() {
    let (ok, _, stderr) = mcpm(&["eval", "facet"]);
    assert!(!ok);
    assert!(stderr.contains("unexpected argument `facet`"), "{stderr}");
}

#[test]
fn trace_flag_writes_a_loadable_chrome_trace() {
    let dir = std::env::temp_dir().join("mcpm-cli-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("eval.json");
    let path_str = path.to_str().unwrap();
    let (ok, _, stderr) = mcpm(&[
        "eval",
        "--benchmark",
        "facet",
        "--computations",
        "30",
        "--trace",
        path_str,
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("trace written"), "{stderr}");

    // The file must validate and summarize through the CLI itself.
    let (ok, stdout, stderr) = mcpm(&["trace-summary", path_str]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("span coverage"), "{stdout}");
    assert!(stdout.contains("mcpm.eval"), "{stdout}");
    assert!(stdout.contains("sim.instructions"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_counters_are_identical_across_runs() {
    let dir = std::env::temp_dir().join("mcpm-cli-trace-determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let mut counters = Vec::new();
    for name in ["a.json", "b.json"] {
        let path = dir.join(name);
        let path_str = path.to_str().unwrap().to_owned();
        let (ok, _, stderr) = mcpm(&[
            "explore",
            "--benchmark",
            "facet",
            "--computations",
            "24",
            "--budget",
            "6",
            "--trace",
            &path_str,
        ]);
        assert!(ok, "{stderr}");
        let (ok, stdout, stderr) = mcpm(&["trace-summary", &path_str, "--counters"]);
        assert!(ok, "{stderr}");
        counters.push(stdout);
    }
    assert_eq!(
        counters[0], counters[1],
        "deterministic counters must be bit-identical across runs"
    );
    assert!(counters[0].contains("\"pool.tasks\":"), "{}", counters[0]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bitsliced_trace_counters_are_identical_across_runs_and_thread_counts() {
    let dir = std::env::temp_dir().join("mcpm-cli-bitslice-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let mut counters = Vec::new();
    for (name, threads) in [("a.json", None), ("b.json", None), ("seq.json", Some("1"))] {
        let path = dir.join(name);
        let path_str = path.to_str().unwrap().to_owned();
        let mut args = vec![
            "explore",
            "--benchmark",
            "hal",
            "--computations",
            "24",
            "--budget",
            "5",
            "--seeds",
            "4",
            "--backend",
            "bitsliced",
            "--trace",
            &path_str,
        ];
        if let Some(t) = threads {
            args.extend(["--threads", t]);
        }
        let (ok, _, stderr) = mcpm(&args);
        assert!(ok, "{stderr}");
        let (ok, stdout, stderr) = mcpm(&["trace-summary", &path_str, "--counters"]);
        assert!(ok, "{stderr}");
        counters.push(stdout);
    }
    assert_eq!(
        counters[0], counters[1],
        "bit-sliced counters must be bit-identical across runs"
    );
    assert_eq!(
        counters[0], counters[2],
        "bit-sliced counters must be bit-identical across thread counts"
    );
    for key in [
        "\"sim.bitslice.planes\":",
        "\"sim.bitslice.plane_ops\":",
        "\"sim.bitslice.popcounts\":",
        "\"sim.bitslice.fallback_transposes\":",
    ] {
        assert!(counters[0].contains(key), "missing {key}: {}", counters[0]);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_renders_bars() {
    let (ok, stdout, _) = mcpm(&[
        "profile",
        "--benchmark",
        "hal",
        "--clocks",
        "2",
        "--computations",
        "40",
    ]);
    assert!(ok);
    assert!(stdout.contains("power profile"));
    assert!(stdout.contains('#'));
}
