//! End-to-end tests of the `mcpm` command-line tool, driving the real
//! binary the way a user would.

use std::process::Command;

fn mcpm(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mcpm"))
        .args(args)
        .output()
        .expect("mcpm runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn no_arguments_prints_usage() {
    let (ok, stdout, _) = mcpm(&[]);
    assert!(ok);
    assert!(stdout.contains("commands:"));
}

#[test]
fn list_names_all_benchmarks() {
    let (ok, stdout, _) = mcpm(&["list"]);
    assert!(ok);
    for name in ["facet", "hal", "biquad", "bandpass", "ewf"] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn eval_renders_the_five_styles() {
    let (ok, stdout, _) = mcpm(&["eval", "--benchmark", "facet", "--computations", "40"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Non-Gated Clock"));
    assert!(stdout.contains("3 Clocks"));
    assert!(stdout.contains("reduction"));
}

#[test]
fn synth_verifies_and_prints_netlist() {
    let (ok, stdout, stderr) = mcpm(&[
        "synth",
        "--benchmark",
        "motivating",
        "--clocks",
        "2",
        "--computations",
        "30",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("netlist `motivating_integrated_2clk`"));
    assert!(stderr.contains("verified OK"));
}

#[test]
fn synth_exports_vhdl() {
    let (ok, stdout, _) = mcpm(&[
        "synth",
        "--benchmark",
        "hal",
        "--clocks",
        "3",
        "--export",
        "vhdl",
        "--computations",
        "20",
    ]);
    assert!(ok);
    assert!(stdout.contains("entity hal_integrated_3clk is"));
    assert!(stdout.contains("CLK3 : in bit;"));
}

#[test]
fn synth_from_dsl_file_works() {
    let (ok, stdout, stderr) = mcpm(&[
        "synth",
        "--file",
        "examples/data/mac4.dfg",
        "--clocks",
        "2",
        "--computations",
        "30",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("netlist `mac4_integrated_2clk`"));
}

#[test]
fn unknown_benchmark_fails_with_candidates() {
    let (ok, _, stderr) = mcpm(&["eval", "--benchmark", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown benchmark"));
    assert!(stderr.contains("facet"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = mcpm(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("commands:"));
}

#[test]
fn sweep_outputs_one_row_per_clock_count() {
    let (ok, stdout, _) = mcpm(&[
        "sweep",
        "--benchmark",
        "ar_lattice",
        "--max-clocks",
        "3",
        "--computations",
        "30",
    ]);
    assert!(ok);
    let rows = stdout
        .lines()
        .filter(|l| l.trim_start().starts_with(['1', '2', '3']))
        .count();
    assert_eq!(rows, 3, "{stdout}");
}

#[test]
fn eval_json_is_machine_readable() {
    let (ok, stdout, _) = mcpm(&[
        "eval",
        "--benchmark",
        "facet",
        "--computations",
        "40",
        "--json",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"benchmark\":\"facet\""));
    assert!(stdout.contains("\"style\":\"3 Clocks\""));
    assert!(stdout.contains("\"gated_to_best_multiclock_reduction\":"));
}

#[test]
fn sweep_json_has_one_row_per_clock_count() {
    let (ok, stdout, _) = mcpm(&[
        "sweep",
        "--benchmark",
        "hal",
        "--max-clocks",
        "3",
        "--computations",
        "30",
        "--json",
    ]);
    assert!(ok, "{stdout}");
    assert_eq!(stdout.matches("\"clocks\":").count(), 3, "{stdout}");
    assert!(stdout.contains("\"power_mw\":"));
}

#[test]
fn explore_renders_a_frontier_table() {
    let (ok, stdout, stderr) = mcpm(&[
        "explore",
        "--benchmark",
        "hal",
        "--computations",
        "30",
        "--budget",
        "6",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Design-space exploration: hal"));
    assert!(stdout.contains("Pareto-optimal"));
    assert!(stdout.contains("3 Clocks"));
}

#[test]
fn explore_json_is_deterministic_across_runs_and_thread_counts() {
    let args = [
        "explore",
        "--benchmark",
        "facet",
        "--computations",
        "30",
        "--budget",
        "8",
        "--json",
    ];
    let (ok1, run1, _) = mcpm(&args);
    let (ok2, run2, _) = mcpm(&args);
    let mut sequential = args.to_vec();
    sequential.extend(["--parallel", "false"]);
    let (ok3, run3, _) = mcpm(&sequential);
    assert!(ok1 && ok2 && ok3);
    assert_eq!(run1, run2, "same-seed reruns must emit identical JSON");
    assert_eq!(
        run1, run3,
        "parallel and sequential must emit identical JSON"
    );
    assert!(run1.contains("\"on_frontier\":true"));
}

#[test]
fn explore_with_seeds_reports_confidence_bounds() {
    let args = [
        "explore",
        "--benchmark",
        "hal",
        "--computations",
        "24",
        "--budget",
        "5",
        "--seeds",
        "3",
        "--json",
    ];
    let (ok1, run1, stderr) = mcpm(&args);
    assert!(ok1, "{stderr}");
    assert!(run1.contains("\"power_ci95_mw\":"));
    assert!(run1.contains("\"power_seeds\":3"));
    // A different lane width changes throughput, never the JSON.
    let mut narrow = args.to_vec();
    narrow.extend(["--batch", "4"]);
    let (ok2, run2, _) = mcpm(&narrow);
    assert!(ok2);
    assert_eq!(run1, run2, "--batch must not affect results");
}

#[test]
fn signoff_is_clean_for_multiclock_designs() {
    let (ok, stdout, _) = mcpm(&[
        "signoff",
        "--benchmark",
        "biquad",
        "--clocks",
        "2",
        "--computations",
        "40",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("functional equivalence: PASS"));
    assert!(stdout.contains("latch discipline"));
    assert!(stdout.contains("signoff CLEAN"));
    assert!(stdout.contains("DPM(CLK1)"));
}

#[test]
fn stats_report_spread() {
    let (ok, stdout, _) = mcpm(&[
        "stats",
        "--benchmark",
        "facet",
        "--clocks",
        "2",
        "--computations",
        "50",
        "--seeds",
        "3",
    ]);
    assert!(ok);
    assert!(stdout.contains("3 seeds"));
    assert!(stdout.contains("±"));
}

#[test]
fn profile_renders_bars() {
    let (ok, stdout, _) = mcpm(&[
        "profile",
        "--benchmark",
        "hal",
        "--clocks",
        "2",
        "--computations",
        "40",
    ]);
    assert!(ok);
    assert!(stdout.contains("power profile"));
    assert!(stdout.contains('#'));
}
