//! Golden-file tests for the VHDL exporter over the paper benchmarks.
//!
//! Each bundled paper benchmark is synthesised in the paper's best style
//! (`MultiClock(3)`) and exported; the emitted VHDL must match the
//! checked-in golden file byte for byte. The exporter is deterministic,
//! so any diff is a real output change — inspect it, and if intentional,
//! regenerate with:
//!
//! ```text
//! MC_UPDATE_GOLDEN=1 cargo test --test golden_vhdl
//! ```

use std::path::PathBuf;

use multiclock::dfg::benchmarks;
use multiclock::rtl::export::to_vhdl;
use multiclock::{DesignStyle, Synthesizer};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}_3clk.vhdl"))
}

fn exported_vhdl(bm: &benchmarks::Benchmark) -> String {
    let design = Synthesizer::for_benchmark(bm)
        .synthesize(DesignStyle::MultiClock(3))
        .expect("paper benchmarks synthesise under 3 clocks");
    to_vhdl(&design.datapath.netlist)
}

#[test]
fn vhdl_export_matches_golden_files() {
    let update = std::env::var_os("MC_UPDATE_GOLDEN").is_some();
    let mut mismatches = Vec::new();
    for bm in benchmarks::paper_benchmarks() {
        let vhdl = exported_vhdl(&bm);
        let path = golden_path(bm.name());
        if update {
            std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
            std::fs::write(&path, &vhdl).expect("write golden");
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
        if vhdl != golden {
            // Report the first diverging line, not a thousand-line dump.
            let line = vhdl
                .lines()
                .zip(golden.lines())
                .position(|(a, b)| a != b)
                .map_or_else(
                    || vhdl.lines().count().min(golden.lines().count()),
                    |l| l + 1,
                );
            mismatches.push(format!("{}: first diff at line {line}", bm.name()));
        }
    }
    assert!(
        mismatches.is_empty(),
        "VHDL output drifted from goldens (regenerate with MC_UPDATE_GOLDEN=1 \
         if intentional):\n{}",
        mismatches.join("\n")
    );
}

/// The exporter/importer pair is lossless: export → import → re-export
/// reproduces the text byte for byte for every paper benchmark, so the
/// golden files double as importer fixtures.
#[test]
fn vhdl_round_trip_is_byte_identical_for_all_benchmarks() {
    use multiclock::rtl::import::from_vhdl;
    for bm in benchmarks::paper_benchmarks() {
        let vhdl = exported_vhdl(&bm);
        let back = from_vhdl(&vhdl).unwrap_or_else(|e| panic!("{}: import failed: {e}", bm.name()));
        let again = to_vhdl(&back);
        assert_eq!(
            again,
            vhdl,
            "{}: re-export after import drifted (first diff at line {})",
            bm.name(),
            again
                .lines()
                .zip(vhdl.lines())
                .position(|(a, b)| a != b)
                .map_or(0, |l| l + 1)
        );
        assert_eq!(back.stats(), {
            let design = Synthesizer::for_benchmark(&bm)
                .synthesize(DesignStyle::MultiClock(3))
                .expect("synthesis");
            design.datapath.netlist.stats()
        });
    }
}

/// The flat `.mcnl` format round-trips too: one import normalises the
/// names, after which export ∘ import is a fixpoint.
#[test]
fn mcnl_round_trip_reaches_a_fixpoint_for_all_benchmarks() {
    use multiclock::rtl::export::to_mcnl;
    use multiclock::rtl::import::from_mcnl;
    for bm in benchmarks::paper_benchmarks() {
        let design = Synthesizer::for_benchmark(&bm)
            .synthesize(DesignStyle::MultiClock(3))
            .expect("synthesis");
        let nl = &design.datapath.netlist;
        let e1 = to_mcnl(nl);
        let back = from_mcnl(&e1).unwrap_or_else(|e| panic!("{}: mcnl import: {e}", bm.name()));
        assert_eq!(back.stats(), nl.stats(), "{}", bm.name());
        assert_eq!(back.controller(), nl.controller(), "{}", bm.name());
        let e2 = to_mcnl(&back);
        let e3 = to_mcnl(&from_mcnl(&e2).unwrap());
        assert_eq!(e2, e3, "{}: mcnl export did not stabilise", bm.name());
    }
}

#[test]
fn golden_files_carry_the_multiclock_interface() {
    if std::env::var_os("MC_UPDATE_GOLDEN").is_some() {
        // Regeneration mode: the sibling test may still be writing.
        return;
    }
    for bm in benchmarks::paper_benchmarks() {
        let golden = std::fs::read_to_string(golden_path(bm.name()))
            .unwrap_or_else(|e| panic!("missing golden for {}: {e}", bm.name()));
        assert!(
            golden.contains(&format!("entity {}_integrated_3clk is", bm.name())),
            "{}: entity name",
            bm.name()
        );
        for clk in ["CLK1", "CLK2", "CLK3"] {
            assert!(golden.contains(clk), "{}: missing {clk} port", bm.name());
        }
    }
}
