//! Acceptance tests for the design-space explorer (`mc-explore`): the
//! frontier recovers the paper's best multi-clock configuration on every
//! paper benchmark, and the whole run — numbers, frontier, JSON — is
//! bit-identical across repeats and between sequential and parallel
//! evaluation.

use multiclock::dfg::benchmarks;
use multiclock::explore::{ExploreSpace, Explorer, SchedulerChoice};
use multiclock::{DesignStyle, RewriteChoice};

/// Enough vectors for stable numbers, small enough for CI.
const COMPUTATIONS: usize = 60;

fn explorer() -> Explorer {
    Explorer::new().with_computations(COMPUTATIONS)
}

/// The paper-table best multi-clock style for `bm`: the lowest-power row
/// among `MultiClock(n ≥ 2)` of the five-row paper table.
fn paper_best_style(bm: &benchmarks::Benchmark) -> DesignStyle {
    let table = multiclock::experiment::paper_table(bm, COMPUTATIONS, 42).expect("paper table");
    table
        .rows
        .iter()
        .filter(|r| matches!(r.style, DesignStyle::MultiClock(n) if n >= 2))
        .min_by(|a, b| a.report.power.total_mw.total_cmp(&b.report.power.total_mw))
        .expect("paper table has multi-clock rows")
        .style
}

/// Acceptance (a): on every paper benchmark, the frontier of the full
/// default lattice contains the paper's best multi-clock configuration
/// (reference schedule; any supply voltage — undervolting the same
/// configuration is a legitimate refinement, not a contradiction).
#[test]
fn frontier_contains_the_paper_best_multiclock_configuration() {
    for bm in benchmarks::paper_benchmarks() {
        let best = paper_best_style(&bm);
        let report = explorer().run(&bm).expect("exploration succeeds");
        let found = report
            .frontier()
            .into_iter()
            .any(|r| r.point.style == best && r.point.scheduler == SchedulerChoice::Reference);
        assert!(
            found,
            "{}: paper-best {} not on the frontier:\n{}",
            bm.name(),
            best.label(),
            report.render_ranked()
        );
    }
}

/// Acceptance (rewrite axis): with every equivalence-checked rewrite
/// enabled, the hal frontier (1) still contains the paper's best
/// multi-clock configuration under the baseline rewrite, and (2)
/// contains a rewritten variant that Pareto-dominates the
/// same-configuration baseline point of the rewrite-free run — the
/// rewrite axis reaches structurally better datapaths without losing
/// the paper's result.
#[test]
fn rewritten_variants_dominate_baseline_twins_and_keep_the_paper_row() {
    let bm = benchmarks::hal();
    let space = ExploreSpace {
        rewrites: RewriteChoice::ALL.to_vec(),
        ..ExploreSpace::default()
    };
    let with_rw = explorer().with_space(space).run(&bm).expect("rewrite run");
    let baseline = explorer().run(&bm).expect("baseline run");

    let best = paper_best_style(&bm);
    assert!(
        with_rw.frontier().into_iter().any(|r| r.point.style == best
            && r.point.scheduler == SchedulerChoice::Reference
            && r.point.rewrite == RewriteChoice::Baseline),
        "paper-best {} lost from the rewrite frontier:\n{}",
        best.label(),
        with_rw.render_ranked()
    );

    let dominating_variant = with_rw.frontier().into_iter().any(|r| {
        r.point.rewrite != RewriteChoice::Baseline
            && baseline.frontier().into_iter().any(|b| {
                b.point.style == r.point.style
                    && b.point.scheduler == r.point.scheduler
                    && b.point.volts == r.point.volts
                    && b.point.scenario == r.point.scenario
                    && r.objectives.dominates(&b.objectives)
            })
    });
    assert!(
        dominating_variant,
        "no rewritten variant dominates its baseline twin:\n{}",
        with_rw.render_ranked()
    );
}

/// Inert rewrites fold onto their baseline twins: a rewrite that leaves
/// the behaviour unchanged (strength reduction never fires on the
/// bundled benchmarks — their only constants are not powers of two) is
/// served by structural dedup, not re-evaluated, and the run stays
/// bit-identical across repeats and thread counts.
#[test]
fn inert_rewrites_are_served_by_dedup_and_stay_deterministic() {
    let bm = benchmarks::facet();
    let space = || ExploreSpace {
        rewrites: RewriteChoice::ALL.to_vec(),
        ..ExploreSpace::default()
    };
    let a = explorer().with_space(space()).run(&bm).expect("first run");
    assert!(a.dedup_served > 0, "inert rewrites must fold to twins");
    assert_eq!(a.flow_evals + a.dedup_served as usize, a.evaluated);
    // Every frontier point still carries a verified-or-baseline rewrite.
    let b = explorer().with_space(space()).run(&bm).expect("repeat run");
    assert_eq!(a.to_json(), b.to_json());
    let par = explorer()
        .with_space(space())
        .with_threads(4)
        .run(&bm)
        .expect("parallel run");
    assert_eq!(a.to_json(), par.to_json());
}

/// Acceptance (b), same-seed repeats: two runs emit bit-identical JSON.
#[test]
fn repeated_runs_are_bit_identical() {
    let bm = benchmarks::hal();
    let a = explorer().run(&bm).expect("first run");
    let b = explorer().run(&bm).expect("second run");
    assert_eq!(a.to_json(), b.to_json());
}

/// Acceptance (b), parallel ≡ sequential: the pool cannot perturb a
/// single bit of the report, at any thread count.
#[test]
fn parallel_and_sequential_runs_are_bit_identical() {
    let bm = benchmarks::facet();
    let seq = explorer()
        .with_parallel(false)
        .run(&bm)
        .expect("sequential run");
    for threads in [2, 3, 8] {
        let par = explorer()
            .with_threads(threads)
            .run(&bm)
            .expect("parallel run");
        assert_eq!(seq.to_json(), par.to_json(), "threads = {threads}");
        assert_eq!(
            seq.frontier().len(),
            par.frontier().len(),
            "threads = {threads}"
        );
    }
}

/// Monte-Carlo exploration: with multiple stimulus seeds per point,
/// every point's JSON carries the power mean plus 95 % confidence
/// bounds, and the run stays bit-identical across repeats and thread
/// counts — the determinism contract survives the batched kernel.
#[test]
fn monte_carlo_exploration_is_deterministic_and_carries_ci() {
    let bm = benchmarks::hal();
    let mc = || explorer().with_budget(5).with_power_seeds(4).with_batch(8);
    let a = mc().run(&bm).expect("first run");
    assert!(a.results.iter().all(|r| r.power_ci.is_some()));
    for r in &a.results {
        let ci = r.power_ci.as_ref().unwrap();
        assert_eq!(ci.seeds, 4);
        assert!((ci.mean_mw - r.objectives.power_mw).abs() < 1e-12);
    }
    let json = a.to_json();
    assert!(json.contains("\"power_ci95_mw\":"));
    assert!(json.contains("\"power_seeds\":4"));

    let b = mc().run(&bm).expect("repeat run");
    assert_eq!(json, b.to_json(), "repeat runs must be bit-identical");
    for threads in [2, 5] {
        let par = mc().with_threads(threads).run(&bm).expect("parallel run");
        assert_eq!(json, par.to_json(), "threads = {threads}");
    }
    // The lane width is a throughput knob, never a results knob.
    let narrow = mc().with_batch(2).run(&bm).expect("narrow run");
    assert_eq!(json, narrow.to_json());
}

/// A different seed is allowed to (and here does) change the JSON — the
/// determinism above is per-seed, not a constant output.
#[test]
fn seed_actually_feeds_the_evaluation() {
    let bm = benchmarks::hal();
    let a = explorer().with_budget(5).with_seed(1).run(&bm).unwrap();
    let b = explorer().with_budget(5).with_seed(2).run(&bm).unwrap();
    assert_ne!(a.to_json(), b.to_json());
}

/// Budgeted runs stop gracefully: exactly `budget` points evaluated
/// (≥ the five anchors), the skip count honest, every evaluated point
/// accounted for as either retained on the frontier or dominated.
#[test]
fn budget_caps_evaluation_and_keeps_anchors() {
    let bm = benchmarks::biquad();
    let report = explorer().with_budget(7).run(&bm).unwrap();
    assert_eq!(report.evaluated, 7);
    assert_eq!(report.skipped, report.lattice_points - 7);
    assert_eq!(report.remaining, 0);
    assert_eq!(report.results.len() as u64 + report.dominated, 7);
    // The lattice leads with the five paper-table anchor rows, so any
    // budget ≥ 5 still evaluates the paper's own configurations.
    let lattice = ExploreSpace::default().generator();
    let styles: Vec<DesignStyle> = (0..5).map(|i| lattice.point_at(i).style).collect();
    assert_eq!(styles, DesignStyle::paper_rows());
}

/// Voltage scaling shows up on the frontier as genuinely new trade-off
/// points: some low-voltage point survives dominance pruning.
#[test]
fn voltage_scaled_points_reach_the_frontier() {
    let bm = benchmarks::bandpass();
    let report = explorer().run(&bm).unwrap();
    assert!(
        report
            .frontier()
            .into_iter()
            .any(|r| r.point.volts < multiclock::explore::NOMINAL_VOLTS),
        "{}",
        report.render_ranked()
    );
}

/// Custom spaces restrict the lattice: with one voltage and no affine
/// stretches, every point is a nominal reference-schedule point.
#[test]
fn custom_space_restricts_the_lattice() {
    let bm = benchmarks::facet();
    let space = ExploreSpace {
        n_max: 3,
        voltages: vec![multiclock::explore::NOMINAL_VOLTS],
        stretches: vec![],
        ..ExploreSpace::default()
    };
    let report = explorer().with_space(space).run(&bm).unwrap();
    assert!(report
        .results
        .iter()
        .all(|r| r.point.scheduler == SchedulerChoice::Reference
            && r.point.volts == multiclock::explore::NOMINAL_VOLTS));
    assert_eq!(report.skipped, 0);
}

/// The `--scale` preset spans the advertised 10⁵+ point lattice without
/// materialising it: the generator is lazy and indexable.
#[test]
fn scale_preset_spans_at_least_one_hundred_thousand_points() {
    let lattice = ExploreSpace::scale().generator();
    assert!(
        lattice.len() >= 100_000,
        "scale lattice has only {} points",
        lattice.len()
    );
    // Spot-index deep into the lattice — O(1), no enumeration.
    let deep = lattice.point_at(lattice.len() - 1);
    assert!(deep.scenario > 0);
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mcpm-explore-accept-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Acceptance (interrupt/resume): a run stopped mid-lattice and resumed
/// from its checkpoint emits JSON byte-identical to a straight-through
/// run — across thread counts and both batch kernels.
#[test]
fn interrupted_runs_resume_bit_identically_on_both_backends() {
    use multiclock::sim::BatchBackend;
    let bm = benchmarks::hal();
    let dir = scratch("resume");
    for backend in [BatchBackend::Batched, BatchBackend::Bitsliced] {
        let base = || {
            explorer()
                .with_power_seeds(3)
                .with_batch_backend(backend)
                .with_budget(9)
        };
        let straight = base().run(&bm).unwrap().to_json();
        for threads in [1, 4] {
            let ck = dir.join(format!("{backend:?}-{threads}.ckpt"));
            // Interrupt: evaluate only the anchor floor, checkpointing.
            base()
                .with_budget(5)
                .with_checkpoint(&ck)
                .with_checkpoint_every(2)
                .with_threads(threads)
                .run(&bm)
                .unwrap();
            // Resume to the full budget.
            let resumed = base()
                .with_checkpoint(&ck)
                .with_resume(true)
                .with_threads(threads)
                .run(&bm)
                .unwrap();
            assert_eq!(
                straight,
                resumed.to_json(),
                "backend {backend:?}, threads {threads}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance (persistent cache): a warm re-run against the same
/// cross-run cache directory performs zero flow evaluations and still
/// emits byte-identical deterministic JSON.
#[test]
fn warm_cache_rerun_does_no_flow_work() {
    let bm = benchmarks::biquad();
    let dir = scratch("warm");
    let run = || {
        explorer()
            .with_budget(8)
            .with_cache_dir(&dir)
            .run(&bm)
            .unwrap()
    };
    let cold = run();
    assert!(cold.flow_evals > 0);
    let warm = run();
    assert_eq!(warm.flow_evals, 0, "warm run must re-evaluate nothing");
    assert_eq!(warm.disk_hits + warm.dedup_served, warm.evaluated as u64);
    assert_eq!(cold.to_json(), warm.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted checkpoint is a typed, recoverable error — never a panic.
#[test]
fn corrupt_checkpoint_is_a_typed_error() {
    let bm = benchmarks::hal();
    let dir = scratch("corrupt");
    let ck = dir.join("broken.ckpt");
    std::fs::write(&ck, "mcpm-explore checkpoint v1\ngarbage\n").unwrap();
    let err = explorer()
        .with_budget(5)
        .with_checkpoint(&ck)
        .with_resume(true)
        .run(&bm)
        .unwrap_err();
    let text = err.to_string();
    assert!(text.contains("checkpoint"), "unexpected error: {text}");
    let _ = std::fs::remove_dir_all(&dir);
}
