//! Acceptance tests for the design-space explorer (`mc-explore`): the
//! frontier recovers the paper's best multi-clock configuration on every
//! paper benchmark, and the whole run — numbers, frontier, JSON — is
//! bit-identical across repeats and between sequential and parallel
//! evaluation.

use multiclock::dfg::benchmarks;
use multiclock::explore::{ExploreSpace, Explorer, SchedulerChoice};
use multiclock::DesignStyle;

/// Enough vectors for stable numbers, small enough for CI.
const COMPUTATIONS: usize = 60;

fn explorer() -> Explorer {
    Explorer::new().with_computations(COMPUTATIONS)
}

/// The paper-table best multi-clock style for `bm`: the lowest-power row
/// among `MultiClock(n ≥ 2)` of the five-row paper table.
fn paper_best_style(bm: &benchmarks::Benchmark) -> DesignStyle {
    let table = multiclock::experiment::paper_table(bm, COMPUTATIONS, 42).expect("paper table");
    table
        .rows
        .iter()
        .filter(|r| matches!(r.style, DesignStyle::MultiClock(n) if n >= 2))
        .min_by(|a, b| a.report.power.total_mw.total_cmp(&b.report.power.total_mw))
        .expect("paper table has multi-clock rows")
        .style
}

/// Acceptance (a): on every paper benchmark, the frontier of the full
/// default lattice contains the paper's best multi-clock configuration
/// (reference schedule; any supply voltage — undervolting the same
/// configuration is a legitimate refinement, not a contradiction).
#[test]
fn frontier_contains_the_paper_best_multiclock_configuration() {
    for bm in benchmarks::paper_benchmarks() {
        let best = paper_best_style(&bm);
        let report = explorer().run(&bm).expect("exploration succeeds");
        let found = report
            .frontier()
            .into_iter()
            .any(|r| r.point.style == best && r.point.scheduler == SchedulerChoice::Reference);
        assert!(
            found,
            "{}: paper-best {} not on the frontier:\n{}",
            bm.name(),
            best.label(),
            report.render_ranked()
        );
    }
}

/// Acceptance (b), same-seed repeats: two runs emit bit-identical JSON.
#[test]
fn repeated_runs_are_bit_identical() {
    let bm = benchmarks::hal();
    let a = explorer().run(&bm).expect("first run");
    let b = explorer().run(&bm).expect("second run");
    assert_eq!(a.to_json(), b.to_json());
}

/// Acceptance (b), parallel ≡ sequential: the pool cannot perturb a
/// single bit of the report, at any thread count.
#[test]
fn parallel_and_sequential_runs_are_bit_identical() {
    let bm = benchmarks::facet();
    let seq = explorer()
        .with_parallel(false)
        .run(&bm)
        .expect("sequential run");
    for threads in [2, 3, 8] {
        let par = explorer()
            .with_threads(threads)
            .run(&bm)
            .expect("parallel run");
        assert_eq!(seq.to_json(), par.to_json(), "threads = {threads}");
        assert_eq!(
            seq.frontier().len(),
            par.frontier().len(),
            "threads = {threads}"
        );
    }
}

/// Monte-Carlo exploration: with multiple stimulus seeds per point,
/// every point's JSON carries the power mean plus 95 % confidence
/// bounds, and the run stays bit-identical across repeats and thread
/// counts — the determinism contract survives the batched kernel.
#[test]
fn monte_carlo_exploration_is_deterministic_and_carries_ci() {
    let bm = benchmarks::hal();
    let mc = || explorer().with_budget(5).with_power_seeds(4).with_batch(8);
    let a = mc().run(&bm).expect("first run");
    assert!(a.results.iter().all(|r| r.power_ci.is_some()));
    for r in &a.results {
        let ci = r.power_ci.as_ref().unwrap();
        assert_eq!(ci.seeds, 4);
        assert!((ci.mean_mw - r.objectives.power_mw).abs() < 1e-12);
    }
    let json = a.to_json();
    assert!(json.contains("\"power_ci95_mw\":"));
    assert!(json.contains("\"power_seeds\":4"));

    let b = mc().run(&bm).expect("repeat run");
    assert_eq!(json, b.to_json(), "repeat runs must be bit-identical");
    for threads in [2, 5] {
        let par = mc().with_threads(threads).run(&bm).expect("parallel run");
        assert_eq!(json, par.to_json(), "threads = {threads}");
    }
    // The lane width is a throughput knob, never a results knob.
    let narrow = mc().with_batch(2).run(&bm).expect("narrow run");
    assert_eq!(json, narrow.to_json());
}

/// A different seed is allowed to (and here does) change the JSON — the
/// determinism above is per-seed, not a constant output.
#[test]
fn seed_actually_feeds_the_evaluation() {
    let bm = benchmarks::hal();
    let a = explorer().with_budget(5).with_seed(1).run(&bm).unwrap();
    let b = explorer().with_budget(5).with_seed(2).run(&bm).unwrap();
    assert_ne!(a.to_json(), b.to_json());
}

/// Budgeted runs stop gracefully: exactly `budget` points (≥ the five
/// anchors), the skip count reported, anchors evaluated first.
#[test]
fn budget_caps_evaluation_and_keeps_anchors() {
    let bm = benchmarks::biquad();
    let report = explorer().with_budget(7).run(&bm).unwrap();
    assert_eq!(report.results.len(), 7);
    assert_eq!(report.skipped, report.lattice_points - 7);
    let styles: Vec<DesignStyle> = report.results[..5].iter().map(|r| r.point.style).collect();
    assert_eq!(styles, DesignStyle::paper_rows());
}

/// Voltage scaling shows up on the frontier as genuinely new trade-off
/// points: some low-voltage point survives dominance pruning.
#[test]
fn voltage_scaled_points_reach_the_frontier() {
    let bm = benchmarks::bandpass();
    let report = explorer().run(&bm).unwrap();
    assert!(
        report
            .frontier()
            .into_iter()
            .any(|r| r.point.volts < multiclock::explore::NOMINAL_VOLTS),
        "{}",
        report.render_ranked()
    );
}

/// Custom spaces restrict the lattice: with one voltage and no affine
/// stretches, every point is a nominal reference-schedule point.
#[test]
fn custom_space_restricts_the_lattice() {
    let bm = benchmarks::facet();
    let space = ExploreSpace {
        n_max: 3,
        voltages: vec![multiclock::explore::NOMINAL_VOLTS],
        stretches: vec![],
    };
    let report = explorer().with_space(space).run(&bm).unwrap();
    assert!(report
        .results
        .iter()
        .all(|r| r.point.scheduler == SchedulerChoice::Reference
            && r.point.volts == multiclock::explore::NOMINAL_VOLTS));
    assert_eq!(report.skipped, 0);
}
