//! The paper-shape assertions: the qualitative results of Tables 1–4 must
//! reproduce — who wins, in which direction, and (loosely) by how much.
//! Absolute mW/λ² values are calibration-dependent and are *not* asserted;
//! see EXPERIMENTS.md for the measured-vs-published numbers.

use multiclock::dfg::benchmarks;
use multiclock::experiment::paper_table;
use multiclock::DesignStyle;

const COMPUTATIONS: usize = 250;
const SEED: u64 = 42;

fn power(table: &multiclock::experiment::Table, style: DesignStyle) -> f64 {
    table
        .row(&style.label())
        .unwrap_or_else(|| panic!("row {style} present"))
        .report
        .power
        .total_mw
}

fn area(table: &multiclock::experiment::Table, style: DesignStyle) -> f64 {
    table
        .row(&style.label())
        .unwrap_or_else(|| panic!("row {style} present"))
        .report
        .area
        .total_lambda2
}

#[test]
fn gating_always_beats_no_management() {
    for bm in benchmarks::paper_benchmarks() {
        let t = paper_table(&bm, COMPUTATIONS, SEED).expect("table builds");
        assert!(
            power(&t, DesignStyle::ConventionalGated)
                < power(&t, DesignStyle::ConventionalNonGated),
            "{}",
            bm.name()
        );
    }
}

#[test]
fn two_clocks_beat_one_clock_everywhere() {
    for bm in benchmarks::paper_benchmarks() {
        let t = paper_table(&bm, COMPUTATIONS, SEED).expect("table builds");
        assert!(
            power(&t, DesignStyle::MultiClock(2)) < power(&t, DesignStyle::MultiClock(1)),
            "{}",
            bm.name()
        );
    }
}

#[test]
fn multiclock_beats_gated_on_compute_bound_benchmarks() {
    // FACET, HAL and the biquad reproduce the paper's headline: the best
    // multi-clock design beats the gated baseline by >= 25 % (the paper
    // reports 49 %, 54 %, 37 %). The band is deliberately loose: our
    // substrate is a simulator, not the authors' COMPASS flow.
    for bm in [benchmarks::facet(), benchmarks::hal(), benchmarks::biquad()] {
        let t = paper_table(&bm, COMPUTATIONS, SEED).expect("table builds");
        let red = t
            .gated_to_best_multiclock_reduction()
            .expect("rows present");
        assert!(
            red >= 0.25,
            "{}: gated→multiclock reduction only {:.1} %",
            bm.name(),
            red * 100.0
        );
        assert!(red <= 0.70, "{}: implausibly large reduction", bm.name());
    }
}

#[test]
fn bandpass_multiclock_is_at_least_competitive() {
    // The register-dominated band-pass filter is our one divergence from
    // the paper (which reports 35 %): under a strong gated baseline the
    // two-clock design wins only slightly and the three-clock design
    // shows the diminishing-returns crossover the paper warns about. We
    // assert competitiveness (within 10 % of gated), not victory.
    let bm = benchmarks::bandpass();
    let t = paper_table(&bm, COMPUTATIONS, SEED).expect("table builds");
    let gated = power(&t, DesignStyle::ConventionalGated);
    let best = power(&t, DesignStyle::MultiClock(2)).min(power(&t, DesignStyle::MultiClock(3)));
    assert!(
        best < gated * 1.10,
        "bandpass best multiclock {best} vs gated {gated}"
    );
}

#[test]
fn three_clock_power_is_minimal_for_facet_and_hal() {
    for bm in [benchmarks::facet(), benchmarks::hal()] {
        let t = paper_table(&bm, COMPUTATIONS, SEED).expect("table builds");
        let p3 = power(&t, DesignStyle::MultiClock(3));
        for style in DesignStyle::paper_rows() {
            assert!(
                p3 <= power(&t, style) + 1e-9,
                "{}: {style} beats 3 clocks",
                bm.name()
            );
        }
    }
}

#[test]
fn area_grows_with_clock_count_modestly() {
    // The paper reports ~5–12 % area increase from 1 to 3 clocks on HAL /
    // biquad / bandpass; our allocator pays more for HAL's extra
    // multipliers but must stay within ~2.5x.
    for bm in benchmarks::paper_benchmarks() {
        let t = paper_table(&bm, 60, SEED).expect("table builds");
        let a1 = area(&t, DesignStyle::MultiClock(1));
        let a3 = area(&t, DesignStyle::MultiClock(3));
        assert!(a3 >= a1 * 0.95, "{}: area shrank implausibly", bm.name());
        assert!(a3 <= a1 * 2.5, "{}: area exploded {a1} -> {a3}", bm.name());
    }
}

#[test]
fn memory_cells_track_the_papers_direction() {
    // Multi-clock designs use at least as many memory elements as the
    // 1-clock design (the paper's Mem Cells column grows with clocks).
    for bm in benchmarks::paper_benchmarks() {
        let t = paper_table(&bm, 30, SEED).expect("table builds");
        let m1 = t
            .row(&DesignStyle::MultiClock(1).label())
            .unwrap()
            .report
            .stats
            .mem_cells;
        let m3 = t
            .row(&DesignStyle::MultiClock(3).label())
            .unwrap()
            .report
            .stats
            .mem_cells;
        assert!(m3 >= m1, "{}: mem cells fell {m1} -> {m3}", bm.name());
    }
}

#[test]
fn clock_sweep_shows_diminishing_returns() {
    // §5.2: "you can not keep adding clocks and expect power reduction".
    // Somewhere in 1..=6 the marginal gain must flatten: the best
    // improvement happens in the first three steps of the sweep.
    let bm = benchmarks::facet();
    let sweep = multiclock::experiment::clock_sweep(&bm, 6, COMPUTATIONS, SEED).expect("sweeps");
    let deltas: Vec<f64> = sweep
        .windows(2)
        .map(|w| w[0].1.power.total_mw - w[1].1.power.total_mw)
        .collect();
    let best = deltas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let early_best = deltas[..3]
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        (early_best - best).abs() < 1e-9,
        "largest marginal gain should come early: {deltas:?}"
    );
}
