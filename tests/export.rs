//! Integration tests for the export back ends: structural VHDL, Graphviz
//! DOT, and VCD waveform dumps, produced from fully synthesised designs.

use multiclock::dfg::benchmarks;
use multiclock::rtl::export::{to_dot, to_vhdl};
use multiclock::rtl::PowerMode;
use multiclock::sim::{simulate, vcd::to_vcd, SimConfig};
use multiclock::{DesignStyle, Synthesizer};

fn design(style: DesignStyle) -> multiclock::Design {
    let bm = benchmarks::hal();
    Synthesizer::for_benchmark(&bm)
        .synthesize(style)
        .expect("synthesises")
}

#[test]
fn vhdl_export_covers_every_component_and_net() {
    let d = design(DesignStyle::MultiClock(3));
    let nl = &d.datapath.netlist;
    let text = to_vhdl(nl);
    for n in nl.net_ids() {
        assert!(
            text.contains(nl.net_name(n)),
            "net {} missing from VHDL",
            nl.net_name(n)
        );
    }
    // Clock ports for all three phases.
    for k in nl.scheme().phases() {
        assert!(text.contains(&format!("{k} : in bit;")));
    }
    // Controller annotation covers the whole period.
    for t in 1..=nl.controller().len() {
        assert!(text.contains(&format!("T{t}:")), "step {t} missing");
    }
}

#[test]
fn dot_export_is_well_formed_for_all_styles() {
    for style in DesignStyle::paper_rows() {
        let d = design(style);
        let dot = to_dot(&d.datapath.netlist);
        assert!(dot.starts_with("digraph"));
        assert_eq!(
            dot.matches('{').count(),
            dot.matches('}').count(),
            "{style}"
        );
        let nodes = dot.lines().filter(|l| l.contains("[shape=")).count();
        assert_eq!(nodes, d.datapath.netlist.num_components(), "{style}");
    }
}

#[test]
fn vcd_round_trip_is_consistent_with_trace() {
    let d = design(DesignStyle::MultiClock(2));
    let nl = &d.datapath.netlist;
    let cfg = SimConfig::new(PowerMode::multiclock(), 4, 11).with_trace();
    let res = simulate(nl, &cfg);
    let dump = to_vcd(nl, &res).expect("traced");
    // Every declared variable has at least the initial dump value.
    let declared = dump.lines().filter(|l| l.starts_with("$var")).count();
    assert_eq!(declared, nl.num_nets());
    let initial_values = dump
        .lines()
        .skip_while(|l| !l.starts_with("$dumpvars"))
        .take_while(|l| !l.starts_with("$end"))
        .filter(|l| l.starts_with('b'))
        .count();
    assert_eq!(initial_values, nl.num_nets());
    // Value-change counts are bounded by trace content: the number of `b`
    // lines after t0 equals the number of (step, net) pairs whose value
    // changed.
    let trace = res.trace.expect("trace present");
    let mut expected_changes = 0;
    for w in trace.windows(2) {
        expected_changes += w[0].iter().zip(&w[1]).filter(|(a, b)| a != b).count();
    }
    let after_t0: Vec<&str> = dump
        .lines()
        .skip_while(|l| *l != "#1")
        .filter(|l| l.starts_with('b'))
        .collect();
    assert_eq!(after_t0.len(), expected_changes);
}

#[test]
fn exports_work_for_every_bundled_benchmark() {
    for bm in benchmarks::all_benchmarks() {
        let d = Synthesizer::for_benchmark(&bm)
            .synthesize(DesignStyle::MultiClock(2))
            .unwrap_or_else(|e| panic!("{}: {e}", bm.name()));
        let nl = &d.datapath.netlist;
        assert!(to_vhdl(nl).contains(&format!("entity {}", nl.name())));
        assert!(to_dot(nl).contains(nl.name()));
    }
}
