//! Integration tests backing the figure reproductions: the properties the
//! paper's Figs. 2, 4, 5 and 6 illustrate must hold programmatically, not
//! just render nicely.

use std::collections::BTreeMap;

use multiclock::clocks::{ClockScheme, PhaseId};
use multiclock::dfg::benchmarks;
use multiclock::rtl::PowerMode;
use multiclock::sim::simulate_with_inputs;
use multiclock::{DesignStyle, Synthesizer};

/// Fig. 2: the rendered waveform has exactly one phase high per step.
#[test]
fn waveform_phases_are_mutually_exclusive() {
    for n in 2..=4u32 {
        let scheme = ClockScheme::new(n).expect("valid");
        let w = scheme.waveform(12);
        let lines: Vec<&str> = w.lines().collect();
        assert_eq!(lines.len(), n as usize + 1);
        // Per 4-char step cell, exactly one of the phase rows is high.
        let cells = 12usize;
        for c in 0..cells {
            let hi = lines[1..]
                .iter()
                .filter(|l| {
                    let body = &l[7..];
                    &body[c * 4..c * 4 + 4] == "__##"
                })
                .count();
            assert_eq!(hi, 1, "step {} of n={n}", c + 1);
        }
    }
}

/// Fig. 4: in a two-clock design, every memory output transitions only at
/// steps owned by its own phase.
#[test]
fn memory_outputs_only_switch_on_their_phase() {
    let bm = benchmarks::motivating();
    let design = Synthesizer::for_benchmark(&bm)
        .synthesize(DesignStyle::MultiClock(2))
        .expect("synthesises");
    let nl = &design.datapath.netlist;
    let mask = (1u64 << nl.width()) - 1;
    let vectors: Vec<BTreeMap<String, u64>> = (0..4)
        .map(|c| {
            nl.inputs()
                .iter()
                .enumerate()
                .map(|(i, (name, _))| (name.clone(), (5 * c + i as u64) & mask))
                .collect()
        })
        .collect();
    let res = simulate_with_inputs(nl, PowerMode::multiclock(), &vectors, true);
    let trace = res.trace.expect("traced");
    let period = nl.controller().len();
    for mem in nl.mems() {
        let comp = nl.component(mem.comp());
        let phase = comp.mem_phase().expect("mems have phases");
        let net = comp.output().index();
        for (s, pair) in trace.windows(2).enumerate() {
            if pair[0][net] != pair[1][net] {
                // The value at trace row s+1 was captured at the end of
                // step index s+1 (1-based step (s+1) % period …).
                let step = (s as u32 + 1) % period + 1;
                let step = if step > period { step - period } else { step };
                assert!(
                    nl.scheme().is_active(phase, step),
                    "{} ({phase}) switched at step {step}",
                    comp.label()
                );
            }
        }
    }
}

/// Fig. 5: the split allocator's partition-local numbering round-trips
/// through the scheme's global/local maps on the motivating example.
#[test]
fn split_partition_numbering_matches_paper() {
    let bm = benchmarks::motivating();
    let scheme = ClockScheme::new(2).expect("valid");
    // Odd steps are partition 1 with local steps 1', 2', 3'; even steps
    // partition 2 with 1'', 2''.
    let expected = [
        (1u32, 1u32, 1u32),
        (2, 2, 1),
        (3, 1, 2),
        (4, 2, 2),
        (5, 1, 3),
    ];
    for (global, phase, local) in expected {
        assert_eq!(scheme.phase_of_step(global), Ok(PhaseId::new(phase)));
        assert_eq!(scheme.local_step(global), Ok(local));
        assert_eq!(scheme.global_step(local, PhaseId::new(phase)), global);
    }
    assert_eq!(
        scheme.local_length(PhaseId::new(1), bm.schedule.length()),
        3
    );
    assert_eq!(
        scheme.local_length(PhaseId::new(2), bm.schedule.length()),
        2
    );
}

/// Fig. 6: transfer insertion shortens the source lifetime and the
/// transfer lands in the reading partition.
#[test]
fn transfer_rewrites_match_fig6() {
    use multiclock::alloc::{PVarSource, Problem};
    use multiclock::dfg::{DfgBuilder, Op, Schedule};
    let mut b = DfgBuilder::new("fig6", 4);
    let a = b.input("a");
    let x = b.op_named("x", Op::Add, a, a);
    let e = b.op_named("e", Op::Sub, a, x);
    let y = b.op_named("y", Op::Mul, x, e);
    b.mark_output(y);
    let dfg = b.finish().expect("well-formed");
    let schedule = Schedule::new(&dfg, vec![1, 2, 4], 4).expect("legal");
    let scheme = ClockScheme::new(2).expect("valid");
    let with = Problem::build(&dfg, &schedule, scheme, true);
    let without = Problem::build(&dfg, &schedule, scheme, false);
    assert_eq!(with.transfers, 1);
    let x_idx = dfg.var_by_name("x").unwrap().index();
    assert!(with.vars[x_idx].death < without.vars[x_idx].death);
    let transfer = with
        .vars
        .iter()
        .find(|v| matches!(v.source, PVarSource::Transfer(_)))
        .expect("one transfer");
    assert_eq!(
        transfer.phase,
        PhaseId::new(2),
        "lands in the reader's partition"
    );
    assert_eq!(transfer.write_step, 2, "captured at the intermediate step");
}

/// The §2.2 busy-fraction numbers derive from the motivating benchmark's
/// actual schedule, not just constants: Circuit 1's two ALUs each run 3
/// ops of the 5-step behaviour; Circuit 2's units run 2.
#[test]
fn motivating_busy_fractions_derive_from_schedule() {
    use multiclock::power::analysis::busy_fraction;
    let bm = benchmarks::motivating();
    // Conventional minimal allocation: 6 ops over 2 ALUs = 3 each.
    let conv = Synthesizer::for_benchmark(&bm)
        .synthesize(DesignStyle::ConventionalNonGated)
        .expect("synthesises");
    let stats = conv.datapath.netlist.stats();
    assert_eq!(stats.alus.len(), 2);
    let ops_per_alu = bm.dfg.num_nodes() as u32 / stats.alus.len() as u32;
    assert!((busy_fraction(ops_per_alu, 5, 1) - 0.75).abs() < 1e-12);
    // Two-clock allocation: 3 ALUs, 2 ops each.
    let two = Synthesizer::for_benchmark(&bm)
        .synthesize(DesignStyle::MultiClock(2))
        .expect("synthesises");
    let stats2 = two.datapath.netlist.stats();
    assert_eq!(stats2.alus.len(), 3);
    let ops_per_alu2 = bm.dfg.num_nodes() as u32 / stats2.alus.len() as u32;
    assert!((busy_fraction(ops_per_alu2, 5, 1) - 0.5).abs() < 1e-12);
}
