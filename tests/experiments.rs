//! Integration tests over the experiment pipeline: ablations, timing,
//! power profiles and per-component attribution, exercised across crates
//! exactly the way the benchmark harness drives them.

use multiclock::dfg::benchmarks;
use multiclock::power::{
    estimate_power, per_component_power, profile::power_profile, timing::analyze_timing,
};
use multiclock::rtl::PowerMode;
use multiclock::sim::{simulate, SimConfig};
use multiclock::tech::TechLibrary;
use multiclock::{experiment, DesignStyle, Synthesizer};

#[test]
fn every_design_style_meets_target_frequency() {
    // The scheme's premise: no performance loss. All styles must close
    // timing at the library's reporting frequency.
    for bm in benchmarks::paper_benchmarks() {
        let synth = Synthesizer::for_benchmark(&bm).with_computations(20);
        for style in DesignStyle::paper_rows() {
            let r = synth.evaluate(style).expect("evaluates");
            assert!(
                r.timing.meets_target,
                "{} under {style}: fmax {:.1} MHz < target",
                bm.name(),
                r.timing.fmax_mhz
            );
        }
    }
}

#[test]
fn latch_vs_dff_holds_on_every_benchmark() {
    for bm in benchmarks::paper_benchmarks() {
        let (latch, dff) = experiment::latch_vs_dff(&bm, 2, 150, 42).expect("runs");
        assert!(
            latch.power.total_mw < dff.power.total_mw,
            "{}: latch {} vs dff {}",
            bm.name(),
            latch.power.total_mw,
            dff.power.total_mw
        );
        assert!(
            latch.area.total_lambda2 < dff.area.total_lambda2,
            "{}",
            bm.name()
        );
    }
}

#[test]
fn control_latching_never_hurts_significantly() {
    for bm in benchmarks::paper_benchmarks() {
        let (hold, zero) = experiment::control_latching(&bm, 2, 150, 42).expect("runs");
        assert!(
            hold.power.total_mw <= zero.power.total_mw * 1.02,
            "{}: hold {} vs zero {}",
            bm.name(),
            hold.power.total_mw,
            zero.power.total_mw
        );
    }
}

#[test]
fn phase_affine_helps_on_every_paper_benchmark() {
    for bm in benchmarks::paper_benchmarks() {
        let (reference, affine) =
            experiment::phase_affine_vs_reference(&bm, 2, 4, 150, 42).expect("runs");
        assert!(
            affine.power.total_mw < reference.power.total_mw,
            "{}: affine {} vs reference {}",
            bm.name(),
            affine.power.total_mw,
            reference.power.total_mw
        );
    }
}

#[test]
fn profile_average_tracks_aggregate_power() {
    // The per-step profile prices with design-average capacitances; its
    // mean must stay within 25 % of the exact aggregate estimate.
    let bm = benchmarks::hal();
    let synth = Synthesizer::for_benchmark(&bm);
    let design = synth
        .synthesize(DesignStyle::MultiClock(2))
        .expect("synthesises");
    let lib = TechLibrary::vsc450();
    let cfg = SimConfig::new(PowerMode::multiclock(), 200, 7).with_profile();
    let res = simulate(&design.datapath.netlist, &cfg);
    let exact = estimate_power(&design.datapath.netlist, &res.activity, &lib);
    let prof = power_profile(&design.datapath.netlist, &res.activity, &lib).expect("profiled");
    let ratio = prof.average_mw() / exact.total_mw;
    assert!(
        (0.75..1.25).contains(&ratio),
        "profile mean {} vs exact {} (ratio {ratio})",
        prof.average_mw(),
        exact.total_mw
    );
}

#[test]
fn component_attribution_accounts_for_most_power() {
    // Per-component attribution covers internal + driven-net energy;
    // receiver input caps and controller overhead are not attributed, so
    // the sum must land between 50 % and 105 % of the total.
    let bm = benchmarks::biquad();
    let synth = Synthesizer::for_benchmark(&bm);
    let design = synth
        .synthesize(DesignStyle::MultiClock(2))
        .expect("synthesises");
    let lib = TechLibrary::vsc450();
    let res = simulate(
        &design.datapath.netlist,
        &SimConfig::new(PowerMode::multiclock(), 200, 7),
    );
    let exact = estimate_power(&design.datapath.netlist, &res.activity, &lib);
    let attributed: f64 = per_component_power(&design.datapath.netlist, &res.activity, &lib)
        .iter()
        .map(|c| c.mw)
        .sum();
    let ratio = attributed / exact.total_mw;
    assert!(
        (0.5..1.05).contains(&ratio),
        "attributed {attributed} vs exact {} (ratio {ratio})",
        exact.total_mw
    );
}

#[test]
fn timing_is_dominated_by_the_divider_on_facet() {
    // FACET contains a divider, the slowest 4-bit unit; its delay must
    // show in the critical path.
    let bm = benchmarks::facet();
    let synth = Synthesizer::for_benchmark(&bm);
    let design = synth
        .synthesize(DesignStyle::ConventionalNonGated)
        .expect("synthesises");
    let lib = TechLibrary::vsc450();
    let t = analyze_timing(&design.datapath.netlist, &lib);
    let div_delay = lib.alu_delay_ns(
        multiclock::dfg::FunctionSet::single(multiclock::dfg::Op::Div),
        4,
    );
    assert!(
        t.critical_path_ns > div_delay,
        "critical {} must exceed the divider's {div_delay}",
        t.critical_path_ns
    );
}

#[test]
fn clock_sweep_is_deterministic_and_complete() {
    let bm = benchmarks::ar_lattice();
    let a = experiment::clock_sweep(&bm, 4, 80, 9).expect("sweeps");
    let b = experiment::clock_sweep(&bm, 4, 80, 9).expect("sweeps");
    assert_eq!(a.len(), 4);
    for ((na, ra), (nb, rb)) in a.iter().zip(&b) {
        assert_eq!(na, nb);
        assert_eq!(ra.power.total_mw, rb.power.total_mw);
    }
}

#[test]
fn latch_discipline_holds_for_every_multiclock_design() {
    use multiclock::rtl::discipline::check_latch_discipline;
    for bm in benchmarks::all_benchmarks() {
        let synth = Synthesizer::for_benchmark(&bm);
        for n in [1u32, 2, 3] {
            let design = synth
                .synthesize(DesignStyle::MultiClock(n))
                .unwrap_or_else(|e| panic!("{} n={n}: {e}", bm.name()));
            let hazards = check_latch_discipline(&design.datapath.netlist, false);
            assert!(hazards.is_empty(), "{} n={n}: {:?}", bm.name(), hazards);
        }
    }
}

#[test]
fn conventional_dff_designs_are_not_latch_convertible() {
    // The reason conventional datapaths need DFFs: audited as latches, at
    // least some of the paper benchmarks' conventional designs exhibit
    // read/write overlaps.
    use multiclock::rtl::discipline::check_latch_discipline;
    let mut any_hazard = false;
    for bm in benchmarks::paper_benchmarks() {
        let design = Synthesizer::for_benchmark(&bm)
            .synthesize(DesignStyle::ConventionalGated)
            .expect("synthesises");
        // A conventional DFF design is always clean as-built…
        assert!(check_latch_discipline(&design.datapath.netlist, false).is_empty());
        // …but not necessarily if its registers were latches.
        any_hazard |= !check_latch_discipline(&design.datapath.netlist, true).is_empty();
    }
    assert!(
        any_hazard,
        "expected at least one conventional design to fail the latch audit"
    );
}

#[test]
fn ewf_scales_through_the_whole_pipeline() {
    // The 34-op EWF stress benchmark must flow through synthesis,
    // verification and evaluation at several clock counts.
    let bm = benchmarks::ewf();
    let synth = Synthesizer::for_benchmark(&bm).with_computations(40);
    for n in [1u32, 2, 4] {
        let design = synth
            .synthesize_verified(DesignStyle::MultiClock(n))
            .unwrap_or_else(|e| panic!("n={n}: {e}"));
        let r = synth
            .evaluate(DesignStyle::MultiClock(n))
            .expect("evaluates");
        assert!(r.power.total_mw > 0.0);
        assert!(design.datapath.netlist.stats().mem_cells >= 17, "n={n}");
    }
}
