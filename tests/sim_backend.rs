//! Differential tests: the compiled simulation kernel must be
//! bit-identical to the reference interpreter — activity counters,
//! outputs, per-step trace and per-step profile — across every built-in
//! benchmark, power mode, clock count and seed.
//!
//! This is the contract that lets every consumer (tables, sweeps,
//! equivalence checks, power reports) run on the kernel by default while
//! the interpreter stays the readable specification.

use mc_alloc::{allocate, AllocOptions, Strategy};
use mc_clocks::ClockScheme;
use mc_dfg::benchmarks;
use mc_rtl::{Netlist, PowerMode};
use mc_sim::{simulate, CompiledNetlist, SimBackend, SimConfig, Stimulus};

/// The allocation strategies that apply to `n` clocks.
fn strategies(n: u32) -> &'static [Strategy] {
    if n == 1 {
        &[Strategy::Conventional]
    } else {
        &[Strategy::Split, Strategy::Integrated]
    }
}

fn modes() -> [PowerMode; 3] {
    [
        PowerMode::non_gated(),
        PowerMode::gated(),
        PowerMode::multiclock(),
    ]
}

/// Runs both backends under identical configuration and asserts the full
/// result is bit-identical.
fn assert_backends_agree(netlist: &Netlist, mode: PowerMode, computations: usize, seed: u64) {
    let base = SimConfig::new(mode, computations, seed)
        .with_trace()
        .with_profile();
    let compiled = simulate(netlist, &base.clone().with_backend(SimBackend::Compiled));
    let interpreted = simulate(netlist, &base.with_backend(SimBackend::Interpreter));
    let ctx = format!(
        "netlist `{}` mode [{mode}] computations {computations} seed {seed}",
        netlist.name()
    );
    assert_eq!(
        compiled.activity, interpreted.activity,
        "activity diverged: {ctx}"
    );
    assert_eq!(
        compiled.outputs, interpreted.outputs,
        "outputs diverged: {ctx}"
    );
    assert_eq!(compiled.trace, interpreted.trace, "trace diverged: {ctx}");
    assert_eq!(
        compiled.inputs, interpreted.inputs,
        "inputs diverged: {ctx}"
    );
}

#[test]
fn kernel_matches_interpreter_on_all_benchmarks_modes_clocks_seeds() {
    for bm in benchmarks::all_benchmarks() {
        for n in 1u32..=4 {
            for &strategy in strategies(n) {
                let opts = AllocOptions::new(strategy, ClockScheme::new(n).unwrap());
                let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap_or_else(|e| {
                    panic!("{} {strategy} n={n}: allocation failed: {e}", bm.name())
                });
                for mode in modes() {
                    for seed in [3u64, 17, 2026] {
                        assert_backends_agree(&dp.netlist, mode, 6, seed);
                    }
                }
            }
        }
    }
}

#[test]
fn kernel_matches_interpreter_on_empty_and_single_computation_runs() {
    let bm = benchmarks::hal();
    let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(3).unwrap());
    let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap();
    for computations in [0usize, 1, 2] {
        for mode in modes() {
            assert_backends_agree(&dp.netlist, mode, computations, 5);
        }
    }
}

#[test]
fn kernel_matches_interpreter_on_wide_datapaths() {
    for width in [16u8, 32, 48] {
        let bm = benchmarks::hal_w(width);
        let opts = AllocOptions::new(Strategy::Split, ClockScheme::new(2).unwrap());
        let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap();
        for mode in modes() {
            assert_backends_agree(&dp.netlist, mode, 5, 41);
        }
    }
}

#[test]
fn compile_once_run_many_matches_per_call_simulation() {
    let bm = benchmarks::ewf();
    let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(2).unwrap());
    let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap();
    let mode = PowerMode::multiclock();
    let compiled = CompiledNetlist::compile(&dp.netlist, mode);
    for seed in [1u64, 2, 3] {
        let vectors = Stimulus::UniformRandom.vectors(&dp.netlist, 4, seed);
        let reused = compiled.simulate(&vectors, false, true).unwrap();
        let fresh = mc_sim::try_simulate_with_inputs(&dp.netlist, mode, &vectors, false);
        let mut fresh = fresh.unwrap();
        // try_simulate_with_inputs doesn't profile; re-run via config for
        // the profiled comparison.
        let cfg = SimConfig::new(mode, vectors.len(), 0).with_profile();
        let profiled = mc_sim::simulate_with_config(&dp.netlist, &vectors, &cfg).unwrap();
        assert_eq!(reused.activity, profiled.activity);
        fresh.activity.per_step = None;
        let mut reused_stripped = reused.activity.clone();
        reused_stripped.per_step = None;
        assert_eq!(reused_stripped, fresh.activity);
        assert_eq!(reused.outputs, fresh.outputs);
    }
}
