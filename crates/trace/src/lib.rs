//! **mc-trace** — zero-cost-when-disabled structured tracing and metrics.
//!
//! The whole stack (pass pipeline, simulation kernels, explorer pool, CLI)
//! records into this crate when tracing is enabled, and pays one relaxed
//! atomic load per call site when it is not. Two primitives:
//!
//! * **Spans** — named intervals with start, duration and parent, recorded
//!   per thread via the RAII [`SpanGuard`] returned by [`span`]. Guards
//!   must be dropped in LIFO order on their thread (the natural lexical
//!   nesting).
//! * **Counters** — monotone `u64` sums keyed by a static name, in two
//!   determinism classes:
//!   - [`count`] for **deterministic** counters whose totals depend only on
//!     the workload (instructions executed, toggles counted, Pareto points
//!     pruned). These must be bit-identical across repeated runs and
//!     thread counts, and they are what the deterministic export carries.
//!   - [`count_runtime`] for **scheduling-dependent** counters (tasks
//!     stolen by the work-stealing pool, artifact-cache hits/misses under
//!     concurrent evaluation). These appear only in the timing-bearing
//!     Chrome export, mirroring how `ExploreReport` keeps wall-clock
//!     fields out of its deterministic JSON.
//!
//! Recording is lock-free per event: every thread appends to its own
//! buffer, which drains into a global collector when the thread exits (or
//! when [`take`] runs on that thread). [`take`] returns a [`Trace`] that
//! exports as Chrome `trace_event` JSON ([`Trace::to_chrome_json`],
//! loadable in Perfetto / `chrome://tracing`) or as deterministic
//! counters-only JSON ([`Trace::deterministic_json`]).
//!
//! ```
//! mc_trace::enable();
//! {
//!     let _root = mc_trace::span("demo.root");
//!     let _child = mc_trace::span("demo.child");
//!     mc_trace::count("demo.widgets", 3);
//! }
//! let trace = mc_trace::take();
//! mc_trace::disable();
//! assert_eq!(trace.counters.get("demo.widgets"), Some(&3));
//! assert_eq!(trace.span_counts().get("demo.root"), Some(&1));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;
pub mod summary;

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

/// Shared time origin for all span timestamps (first use wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn micros_since_epoch() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Global collector the per-thread buffers drain into.
fn sink() -> &'static Mutex<Vec<ThreadLog>> {
    static SINK: OnceLock<Mutex<Vec<ThreadLog>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// Turn recording on. Idempotent; also pins the time origin.
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn recording off. Already-buffered events stay until [`take`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether tracing is currently recording. One relaxed load — this is the
/// entire disabled-path cost of every instrumentation site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One closed (or still-open) span interval.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name, e.g. `"pass.allocate"`.
    pub name: Cow<'static, str>,
    /// Start in microseconds since the trace epoch.
    pub start_us: u64,
    /// Duration in microseconds (0 until the guard drops).
    pub dur_us: u64,
    /// Index of the enclosing span in the same thread's span list.
    pub parent: Option<u32>,
}

/// Everything one thread recorded (possibly one of several flushes).
struct ThreadLog {
    thread: u64,
    spans: Vec<SpanRecord>,
    counters: BTreeMap<&'static str, u64>,
    runtime: BTreeMap<&'static str, u64>,
}

/// The live per-thread buffer behind the `LOCAL` thread-local.
struct Local {
    thread: u64,
    /// Bumped on flush so stale guards from before a [`take`] can't touch
    /// records that now live in the collector.
    generation: u32,
    spans: Vec<SpanRecord>,
    counters: BTreeMap<&'static str, u64>,
    runtime: BTreeMap<&'static str, u64>,
    stack: Vec<u32>,
}

impl Local {
    fn new() -> Local {
        Local {
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            generation: 0,
            spans: Vec::new(),
            counters: BTreeMap::new(),
            runtime: BTreeMap::new(),
            stack: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.spans.is_empty() && self.counters.is_empty() && self.runtime.is_empty() {
            return;
        }
        let log = ThreadLog {
            thread: self.thread,
            spans: std::mem::take(&mut self.spans),
            counters: std::mem::take(&mut self.counters),
            runtime: std::mem::take(&mut self.runtime),
        };
        self.stack.clear();
        self.generation += 1;
        sink().lock().expect("trace sink lock").push(log);
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&mut Local) -> R) -> Option<R> {
    LOCAL
        .try_with(|cell| {
            let mut slot = cell.borrow_mut();
            Some(f(slot.get_or_insert_with(Local::new)))
        })
        .unwrap_or(None)
}

/// RAII guard returned by [`span`]; records the duration when dropped.
#[must_use = "a span measures the scope of its guard — bind it to a variable"]
pub struct SpanGuard {
    /// `(span index, generation)` in this thread's buffer, or `None` when
    /// tracing was disabled at open time.
    slot: Option<(u32, u32)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((idx, generation)) = self.slot else {
            return;
        };
        let end = micros_since_epoch();
        with_local(|local| {
            if local.generation != generation {
                return;
            }
            if let Some(rec) = local.spans.get_mut(idx as usize) {
                rec.dur_us = end.saturating_sub(rec.start_us);
            }
            if local.stack.last() == Some(&idx) {
                local.stack.pop();
            } else {
                local.stack.retain(|&i| i != idx);
            }
        });
    }
}

/// Open a span; it closes (and gets its duration) when the returned guard
/// drops. Near-free when tracing is disabled.
#[inline]
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { slot: None };
    }
    span_slow(name.into())
}

fn span_slow(name: Cow<'static, str>) -> SpanGuard {
    let start = micros_since_epoch();
    let slot = with_local(|local| {
        let idx = local.spans.len() as u32;
        local.spans.push(SpanRecord {
            name,
            start_us: start,
            dur_us: 0,
            parent: local.stack.last().copied(),
        });
        local.stack.push(idx);
        (idx, local.generation)
    });
    SpanGuard { slot }
}

/// Add `delta` to a **deterministic** counter — one whose total depends
/// only on the workload, never on scheduling. Near-free when disabled.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_local(|local| *local.counters.entry(name).or_insert(0) += delta);
}

/// Add `delta` to a **scheduling-dependent** counter (steals, concurrent
/// cache hits). Excluded from the deterministic export. Near-free when
/// disabled.
#[inline]
pub fn count_runtime(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_local(|local| *local.runtime.entry(name).or_insert(0) += delta);
}

/// Hand the calling thread's buffer to the global collector *now*.
///
/// The buffer also flushes automatically when the thread exits, but
/// thread-local destructors run **after** `std::thread::scope` has
/// counted the thread as finished — a [`take`] on the parent can race
/// them and silently miss whole worker buffers. A worker closure that
/// records events must therefore call `flush()` as its last statement;
/// everything buffered before the closure returns is then guaranteed to
/// be visible to a `take` that runs after the scope joins. No-op when
/// the thread never recorded anything.
pub fn flush() {
    let _ = LOCAL.try_with(|cell| {
        if let Some(local) = cell.borrow_mut().as_mut() {
            local.flush();
        }
    });
}

/// All spans one thread recorded, in open order.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// Dense per-process thread id (assignment order is scheduling-
    /// dependent; only used to lay spans out on rows in the Chrome view).
    pub id: u64,
    /// Spans opened on this thread; `SpanRecord::parent` indexes here.
    pub spans: Vec<SpanRecord>,
}

/// A drained trace: everything recorded since the previous [`take`].
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Per-thread span lists, sorted by thread id.
    pub threads: Vec<ThreadTrace>,
    /// Deterministic counters, merged (summed) across threads.
    pub counters: BTreeMap<String, u64>,
    /// Scheduling-dependent counters, merged across threads.
    pub runtime_counters: BTreeMap<String, u64>,
}

/// Drain every flushed buffer (plus the calling thread's live buffer) into
/// a [`Trace`]. Worker threads must have [`flush`]ed (or fully exited,
/// destructors included) first — anything still buffered on another thread
/// is left for the next `take`.
pub fn take() -> Trace {
    with_local(Local::flush);
    let logs: Vec<ThreadLog> = std::mem::take(&mut *sink().lock().expect("trace sink lock"));

    let mut threads: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut runtime: BTreeMap<String, u64> = BTreeMap::new();
    for log in logs {
        let spans = threads.entry(log.thread).or_default();
        // A thread may have flushed more than once; parent indices are
        // relative to each flush, so offset them past what's already there.
        let base = spans.len() as u32;
        spans.extend(log.spans.into_iter().map(|mut rec| {
            rec.parent = rec.parent.map(|p| p + base);
            rec
        }));
        for (name, v) in log.counters {
            *counters.entry(name.to_owned()).or_insert(0) += v;
        }
        for (name, v) in log.runtime {
            *runtime.entry(name.to_owned()).or_insert(0) += v;
        }
    }
    Trace {
        threads: threads
            .into_iter()
            .map(|(id, spans)| ThreadTrace { id, spans })
            .collect(),
        counters,
        runtime_counters: runtime,
    }
}

fn push_counter_obj(out: &mut String, counters: &BTreeMap<String, u64>) {
    out.push('{');
    for (i, (name, v)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{v}", json::escape_string(name));
    }
    out.push('}');
}

impl Trace {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.threads.iter().all(|t| t.spans.is_empty())
            && self.counters.is_empty()
            && self.runtime_counters.is_empty()
    }

    /// How many spans were opened per name (deterministic when the
    /// instrumentation sites are).
    pub fn span_counts(&self) -> BTreeMap<String, u64> {
        let mut counts = BTreeMap::new();
        for t in &self.threads {
            for s in &t.spans {
                *counts.entry(s.name.clone().into_owned()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Chrome `trace_event` JSON (object form). `traceEvents` carries one
    /// complete (`"ph":"X"`) event per span; the extra top-level keys —
    /// `counters` (deterministic), `runtimeCounters`, `spanCounts` — are
    /// ignored by Perfetto/`chrome://tracing` but make the file
    /// self-describing.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for t in &self.threads {
            for s in &t.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"name\":{},\"cat\":\"mc\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":1,\"tid\":{}",
                    json::escape_string(&s.name),
                    s.start_us,
                    s.dur_us,
                    t.id
                );
                if let Some(p) = s.parent {
                    let _ = write!(
                        out,
                        ",\"args\":{{\"parent\":{}}}",
                        json::escape_string(&t.spans[p as usize].name)
                    );
                }
                out.push('}');
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\",\"counters\":");
        push_counter_obj(&mut out, &self.counters);
        out.push_str(",\"runtimeCounters\":");
        push_counter_obj(&mut out, &self.runtime_counters);
        out.push_str(",\"spanCounts\":");
        push_counter_obj(&mut out, &self.span_counts());
        out.push_str("}\n");
        out
    }

    /// Deterministic JSON: the [`count`]-class counters only — no
    /// timestamps, no thread ids, no scheduling-dependent counters, and no
    /// span counts (concurrent artifact-cache races can change how many
    /// times a pass actually *runs*, so per-name span counts are
    /// thread-count-dependent even when every counted quantity is not).
    /// Bit-identical across repeated runs and thread counts; this is what
    /// CI diffs.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::from("{\"counters\":");
        push_counter_obj(&mut out, &self.counters);
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global, so tests that enable it must not
    /// overlap (the default test harness runs them on multiple threads).
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = serial();
        disable();
        let _ = take(); // drop anything a previous test left behind
        {
            let _s = span("t.nothing");
            count("t.nothing", 7);
            count_runtime("t.nothing.rt", 7);
        }
        let trace = take();
        assert!(!trace.counters.contains_key("t.nothing"));
        assert!(!trace.runtime_counters.contains_key("t.nothing.rt"));
        assert_eq!(trace.span_counts().get("t.nothing"), None);
    }

    #[test]
    fn spans_nest_and_counters_sum() {
        let _guard = serial();
        let _ = take();
        enable();
        {
            let _root = span("t.root");
            for _ in 0..3 {
                let _child = span("t.child");
                count("t.items", 2);
            }
        }
        let trace = take();
        disable();
        let counts = trace.span_counts();
        assert_eq!(counts.get("t.root"), Some(&1));
        assert_eq!(counts.get("t.child"), Some(&3));
        assert_eq!(trace.counters.get("t.items"), Some(&6));

        // Every t.child has t.root as parent on the same thread.
        for t in &trace.threads {
            for s in t.spans.iter().filter(|s| s.name == "t.child") {
                let parent = s.parent.expect("child has parent");
                assert_eq!(t.spans[parent as usize].name, "t.root");
            }
        }
    }

    #[test]
    fn scoped_workers_hand_off_with_an_explicit_flush() {
        // `thread::scope` counts a worker as finished when its closure
        // returns, *before* thread-local destructors run — so the closure
        // must flush explicitly or a take() right after the scope can miss
        // its buffer. This is the contract the explorer pool relies on.
        let _guard = serial();
        let _ = take();
        enable();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    {
                        let _s = span("t.task");
                        count("t.done", 1);
                        count_runtime("t.stolen", 1);
                    }
                    flush();
                });
            }
        });
        let trace = take();
        disable();
        assert_eq!(trace.span_counts().get("t.task"), Some(&4));
        assert_eq!(trace.counters.get("t.done"), Some(&4));
        assert_eq!(trace.runtime_counters.get("t.stolen"), Some(&4));
        assert!(trace.threads.iter().filter(|t| !t.spans.is_empty()).count() >= 1);
    }

    #[test]
    fn joined_threads_flush_on_exit() {
        // A plain `spawn` + `join` waits for full thread termination,
        // thread-local destructors included, so the Drop-based flush is
        // sufficient there.
        let _guard = serial();
        let _ = take();
        enable();
        let handle = std::thread::spawn(|| {
            let _s = span("t.joined");
            count("t.joined.n", 2);
        });
        handle.join().expect("worker");
        let trace = take();
        disable();
        assert_eq!(trace.span_counts().get("t.joined"), Some(&1));
        assert_eq!(trace.counters.get("t.joined.n"), Some(&2));
    }

    #[test]
    fn chrome_json_parses_and_carries_counters() {
        let _guard = serial();
        let _ = take();
        enable();
        {
            let _root = span("t.chrome \"quoted\"");
            count("t.chrome.n", 5);
        }
        let trace = take();
        disable();
        let doc = json::parse(&trace.to_chrome_json()).expect("chrome json parses");
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("t.chrome \"quoted\"")));
        for e in events {
            assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("X"));
            assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
            assert!(e.get("dur").and_then(|v| v.as_f64()).is_some());
        }
        let counters = doc.get("counters").unwrap();
        assert_eq!(
            counters.get("t.chrome.n").and_then(|v| v.as_f64()),
            Some(5.0)
        );
    }

    #[test]
    fn deterministic_json_is_count_class_counters_only() {
        let _guard = serial();
        let _ = take();
        enable();
        {
            let _s = span("t.span");
            count("t.det", 1);
            count_runtime("t.rt", 1);
        }
        let trace = take();
        disable();
        let det = trace.deterministic_json();
        assert_eq!(det, "{\"counters\":{\"t.det\":1}}\n");
        assert!(!det.contains("t.rt"), "no scheduling-dependent counters");
        assert!(!det.contains("t.span"), "no span counts");
        let chrome = trace.to_chrome_json();
        assert!(chrome.contains("t.rt"));
        assert!(chrome.contains("t.span"));
    }

    #[test]
    fn take_is_a_reset() {
        let _guard = serial();
        let _ = take();
        enable();
        count("t.once", 1);
        let first = take();
        let second = take();
        disable();
        assert_eq!(first.counters.get("t.once"), Some(&1));
        assert!(!second.counters.contains_key("t.once"));
    }
}
