//! A minimal JSON reader/writer — just enough to emit trace files and to
//! validate and summarise them again (`mcpm trace-summary`), keeping the
//! crate dependency-free.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, keys in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The number, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// An object's numeric members as a sorted name → integer map
    /// (fractional parts truncate). Empty for non-objects.
    pub fn to_u64_map(&self) -> BTreeMap<String, u64> {
        let mut map = BTreeMap::new();
        if let Value::Object(members) = self {
            for (k, v) in members {
                if let Some(n) = v.as_f64() {
                    map.insert(k.clone(), n as u64);
                }
            }
        }
        map
    }
}

/// A parse failure with its byte offset in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: decode `\uD800-\uDBFF`
                            // followed by `\uDC00-\uDFFF`.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + low.wrapping_sub(0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this is
                    // always a char boundary walk).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits after \\u"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse()
            .map(Value::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

/// Escape and quote a string for JSON output.
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Value::Num(-1250.0));
        assert_eq!(
            parse(r#""a\nb\u0041\u00e9""#).unwrap(),
            Value::Str("a\nbAé".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":false}}"#).unwrap();
        let items = doc.get("a").and_then(|v| v.as_array()).unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].get("b"), Some(&Value::Null));
        assert_eq!(
            doc.get("c").and_then(|v| v.get("d")),
            Some(&Value::Bool(false))
        );
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::Str("😀".to_owned())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "nul", "1 2", "\"\\x\"", "\"", "[1 2]", "tru",
            "-", "01x",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn escape_round_trips() {
        let original = "a\"b\\c\nd\té\u{1}";
        let quoted = escape_string(original);
        assert_eq!(
            parse(&quoted).unwrap(),
            Value::Str(original.to_owned()),
            "escape of {original:?} round-trips"
        );
    }

    #[test]
    fn u64_map_extracts_numeric_members() {
        let doc = parse(r#"{"b":2,"a":1,"s":"x"}"#).unwrap();
        let map = doc.to_u64_map();
        assert_eq!(map.len(), 2);
        assert_eq!(map.get("a"), Some(&1));
        assert_eq!(map.get("b"), Some(&2));
    }
}
