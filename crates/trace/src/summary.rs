//! Validation and pretty-printing of trace files (`mcpm trace-summary`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json;

/// Aggregated per-name span statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// How many spans carried this name.
    pub count: u64,
    /// Summed duration, microseconds.
    pub total_us: u64,
    /// Longest single span, microseconds.
    pub max_us: u64,
}

/// A validated, aggregated view of a Chrome-format trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Per-name span statistics, descending by total duration.
    pub spans: Vec<SpanStats>,
    /// Deterministic counters from the file.
    pub counters: BTreeMap<String, u64>,
    /// Scheduling-dependent counters from the file.
    pub runtime_counters: BTreeMap<String, u64>,
    /// Per-name span open counts from the file (deterministic).
    pub span_counts: BTreeMap<String, u64>,
    /// `max(end) - min(start)` over all events, microseconds.
    pub wall_us: u64,
    /// Microseconds of the wall covered by the union of all spans.
    pub covered_us: u64,
}

impl TraceSummary {
    /// Parse and validate a trace document produced by
    /// [`Trace::to_chrome_json`](crate::Trace::to_chrome_json): a JSON
    /// object whose `traceEvents` is an array of complete events (string
    /// `name`, `"ph":"X"`, numeric `ts`/`dur`/`tid`) with `counters` /
    /// `runtimeCounters` / `spanCounts` objects alongside.
    pub fn from_json(text: &str) -> Result<TraceSummary, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        if doc.as_object().is_none() {
            return Err("trace document must be a JSON object".into());
        }
        let events = doc
            .get("traceEvents")
            .ok_or("missing `traceEvents` key")?
            .as_array()
            .ok_or("`traceEvents` must be an array")?;

        let mut stats: BTreeMap<String, SpanStats> = BTreeMap::new();
        let mut intervals: Vec<(u64, u64)> = Vec::with_capacity(events.len());
        for (i, event) in events.iter().enumerate() {
            let field = |key: &str| {
                event
                    .get(key)
                    .ok_or(format!("traceEvents[{i}] missing `{key}`"))
            };
            let name = field("name")?
                .as_str()
                .ok_or(format!("traceEvents[{i}].name must be a string"))?;
            let ph = field("ph")?
                .as_str()
                .ok_or(format!("traceEvents[{i}].ph must be a string"))?;
            if ph != "X" {
                return Err(format!("traceEvents[{i}].ph is `{ph}`, expected `X`"));
            }
            let num = |key: &str| -> Result<u64, String> {
                field(key)?
                    .as_f64()
                    .filter(|n| *n >= 0.0)
                    .map(|n| n as u64)
                    .ok_or(format!(
                        "traceEvents[{i}].{key} must be a non-negative number"
                    ))
            };
            let ts = num("ts")?;
            let dur = num("dur")?;
            num("tid")?;
            let entry = stats.entry(name.to_owned()).or_insert(SpanStats {
                name: name.to_owned(),
                count: 0,
                total_us: 0,
                max_us: 0,
            });
            entry.count += 1;
            entry.total_us += dur;
            entry.max_us = entry.max_us.max(dur);
            intervals.push((ts, ts + dur));
        }

        let counter_map = |key: &str| -> Result<BTreeMap<String, u64>, String> {
            match doc.get(key) {
                None => Err(format!("missing `{key}` key")),
                Some(v) if v.as_object().is_some() => Ok(v.to_u64_map()),
                Some(_) => Err(format!("`{key}` must be an object")),
            }
        };

        let (wall_us, covered_us) = wall_and_union(&mut intervals);
        let mut spans: Vec<SpanStats> = stats.into_values().collect();
        spans.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
        Ok(TraceSummary {
            spans,
            counters: counter_map("counters")?,
            runtime_counters: counter_map("runtimeCounters")?,
            span_counts: counter_map("spanCounts")?,
            wall_us,
            covered_us,
        })
    }

    /// Fraction of the wall clock covered by the union of all spans
    /// (1.0 for an empty trace, which has no wall to cover).
    pub fn coverage(&self) -> f64 {
        if self.wall_us == 0 {
            1.0
        } else {
            self.covered_us as f64 / self.wall_us as f64
        }
    }

    /// Deterministic counters-only JSON, bit-identical across repeated
    /// runs and thread counts: `{"counters":{...}}`. Span counts are
    /// deliberately excluded — artifact-cache races under concurrency can
    /// change how many times a pass runs. This is what CI diffs between
    /// two runs.
    pub fn deterministic_json(&self) -> String {
        let members: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{}:{v}", json::escape_string(k)))
            .collect();
        format!("{{\"counters\":{{{}}}}}\n", members.join(","))
    }

    /// Human-readable table: spans by total time, then both counter
    /// classes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "wall {:.3} ms, span coverage {:.1} %",
            self.wall_us as f64 / 1e3,
            self.coverage() * 100.0
        );
        let _ = writeln!(
            out,
            "\n{:<28} {:>7} {:>12} {:>12} {:>12} {:>6}",
            "span", "count", "total ms", "mean µs", "max µs", "wall%"
        );
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{:<28} {:>7} {:>12.3} {:>12.1} {:>12} {:>6.1}",
                s.name,
                s.count,
                s.total_us as f64 / 1e3,
                s.total_us as f64 / s.count.max(1) as f64,
                s.max_us,
                if self.wall_us == 0 {
                    0.0
                } else {
                    100.0 * s.total_us as f64 / self.wall_us as f64
                }
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters (deterministic):");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<34} {v:>16}");
            }
        }
        if !self.runtime_counters.is_empty() {
            let _ = writeln!(out, "\ncounters (scheduling-dependent):");
            for (name, v) in &self.runtime_counters {
                let _ = writeln!(out, "  {name:<34} {v:>16}");
            }
        }
        out
    }
}

/// `(wall, union)`: the full extent of the events and how much of it the
/// merged intervals cover. Sorts `intervals` in place.
fn wall_and_union(intervals: &mut [(u64, u64)]) -> (u64, u64) {
    if intervals.is_empty() {
        return (0, 0);
    }
    intervals.sort_unstable();
    let wall_start = intervals[0].0;
    let mut wall_end = 0;
    let mut covered = 0;
    let mut cur = intervals[0];
    for &(start, end) in intervals[1..].iter() {
        wall_end = wall_end.max(end);
        if start <= cur.1 {
            cur.1 = cur.1.max(end);
        } else {
            covered += cur.1 - cur.0;
            cur = (start, end);
        }
    }
    covered += cur.1 - cur.0;
    wall_end = wall_end.max(cur.1);
    (wall_end - wall_start, covered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        concat!(
            "{\"traceEvents\":[",
            "{\"name\":\"root\",\"cat\":\"mc\",\"ph\":\"X\",\"ts\":0,\"dur\":100,\"pid\":1,\"tid\":0},",
            "{\"name\":\"leaf\",\"cat\":\"mc\",\"ph\":\"X\",\"ts\":10,\"dur\":30,\"pid\":1,\"tid\":0},",
            "{\"name\":\"leaf\",\"cat\":\"mc\",\"ph\":\"X\",\"ts\":50,\"dur\":40,\"pid\":1,\"tid\":1}",
            "],\"displayTimeUnit\":\"ms\",",
            "\"counters\":{\"sim.instructions\":1234},",
            "\"runtimeCounters\":{\"pool.steals\":7},",
            "\"spanCounts\":{\"root\":1,\"leaf\":2}}"
        )
        .to_owned()
    }

    #[test]
    fn aggregates_and_coverage() {
        let summary = TraceSummary::from_json(&sample()).expect("valid");
        assert_eq!(summary.wall_us, 100);
        assert_eq!(summary.covered_us, 100); // root covers everything
        assert_eq!(summary.coverage(), 1.0);
        assert_eq!(summary.spans[0].name, "root");
        let leaf = summary.spans.iter().find(|s| s.name == "leaf").unwrap();
        assert_eq!(leaf.count, 2);
        assert_eq!(leaf.total_us, 70);
        assert_eq!(leaf.max_us, 40);
        assert_eq!(summary.counters.get("sim.instructions"), Some(&1234));
        assert_eq!(summary.runtime_counters.get("pool.steals"), Some(&7));
    }

    #[test]
    fn deterministic_json_is_counters_only() {
        let summary = TraceSummary::from_json(&sample()).expect("valid");
        assert_eq!(
            summary.deterministic_json(),
            "{\"counters\":{\"sim.instructions\":1234}}\n"
        );
    }

    #[test]
    fn schema_violations_are_reported() {
        for (bad, needle) in [
            ("[]", "must be a JSON object"),
            ("{}", "missing `traceEvents`"),
            ("{\"traceEvents\":3}", "must be an array"),
            ("{\"traceEvents\":[{}]}", "missing `name`"),
            (
                "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"dur\":0,\"tid\":0}]}",
                "expected `X`",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":\"0\",\"dur\":0,\"tid\":0}]}",
                "non-negative number",
            ),
            ("{\"traceEvents\":[]}", "missing `counters`"),
            (
                "{\"traceEvents\":[],\"counters\":{},\"runtimeCounters\":{},\"spanCounts\":3}",
                "`spanCounts` must be an object",
            ),
        ] {
            let err = TraceSummary::from_json(bad).expect_err(bad);
            assert!(err.contains(needle), "`{bad}` → `{err}` lacks `{needle}`");
        }
    }

    #[test]
    fn render_mentions_all_sections() {
        let text = TraceSummary::from_json(&sample()).unwrap().render();
        assert!(text.contains("span coverage 100.0 %"));
        assert!(text.contains("sim.instructions"));
        assert!(text.contains("pool.steals"));
        assert!(text.contains("leaf"));
    }

    #[test]
    fn union_handles_gaps_and_overlaps() {
        let mut iv = vec![(0, 10), (5, 20), (30, 40)];
        assert_eq!(wall_and_union(&mut iv), (40, 30));
    }
}
