//! The sharded on-disk result cache behind `mcpm serve`.
//!
//! The implementation lives in [`mc_core::cache`] so that `mc-explore`
//! can persist per-point evaluation records through the same store
//! (mc-serve depends on mc-explore, so the shared code must sit below
//! both). This module re-exports it under the historical path; the
//! server keys whole response documents by the FNV-1a hash of the
//! canonical request (see [`crate::api`]).

pub use mc_core::cache::{fnv1a, DiskCache, CACHE_VERSION};
