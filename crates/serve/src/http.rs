//! Just enough HTTP/1.1 to serve and query JSON endpoints over
//! `std::net` — hand-rolled, keeping the crate dependency-free like
//! mc-prng and mc-trace.
//!
//! The server side reads one request per connection (`Connection: close`
//! semantics) with hard caps on header and body size; the client side
//! ([`http_request`]) exists so tests, `scripts/ci.sh`, and `mcpm
//! request` can talk to the server without assuming `curl` is installed.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Maximum accepted header block (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted request body.
const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verb, e.g. `GET` / `POST`.
    pub method: String,
    /// The request path, e.g. `/eval`.
    pub path: String,
    /// The (possibly empty) body.
    pub body: String,
}

/// A request-reading failure, carrying the HTTP status to answer with.
#[derive(Debug)]
pub struct HttpError {
    /// Status code for the error response (400/413/...).
    pub status: u16,
    /// Human-readable reason, returned in the JSON error body.
    pub message: String,
}

impl HttpError {
    fn bad(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }
}

/// Reads and parses one HTTP/1.1 request from `stream`.
///
/// # Errors
///
/// Returns an [`HttpError`] (with the status to respond with) on
/// malformed requests, oversized heads/bodies, or I/O failures.
pub fn read_request<R: Read>(stream: &mut R) -> Result<Request, HttpError> {
    // Read byte-wise until the blank line; requests are small and this
    // avoids over-reading into the body.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(HttpError {
                status: 431,
                message: format!("request header exceeds {MAX_HEAD} bytes"),
            });
        }
        match stream.read(&mut byte) {
            Ok(0) => return Err(HttpError::bad("connection closed mid-header")),
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(HttpError::bad(format!("read error: {e}"))),
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| HttpError::bad("non-UTF-8 header"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::bad(format!(
            "malformed request line `{request_line}`"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError {
            status: 505,
            message: format!("unsupported protocol `{version}`"),
        });
    }
    let mut content_length = 0usize;
    for line in lines.filter(|l| !l.is_empty()) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::bad(format!("bad Content-Length `{}`", value.trim())))?;
        }
    }
    if content_length > MAX_BODY {
        return Err(HttpError {
            status: 413,
            message: format!("request body exceeds {MAX_BODY} bytes"),
        });
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| HttpError::bad(format!("truncated body: {e}")))?;
    let body = String::from_utf8(body).map_err(|_| HttpError::bad("non-UTF-8 body"))?;
    Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        body,
    })
}

/// The standard reason phrase for the statuses this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes one `Connection: close` JSON response.
///
/// # Errors
///
/// Propagates write failures (the server logs and drops the connection).
pub fn write_response<W: Write>(stream: &mut W, status: u16, body: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len()
    )?;
    stream.flush()
}

/// Minimal blocking HTTP client: one request, one response, connection
/// closed. Returns `(status, body)`.
///
/// # Errors
///
/// Propagates connection/IO failures and malformed responses.
pub fn http_request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: mcpm-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Splits a raw HTTP response into `(status, body)`.
///
/// # Errors
///
/// Fails on responses without a valid status line or header terminator.
pub fn parse_response(raw: &[u8]) -> io::Result<(u16, String)> {
    let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| invalid("no header/body separator in response"))?;
    let head =
        std::str::from_utf8(&raw[..split]).map_err(|_| invalid("non-UTF-8 response head"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    let body = String::from_utf8(raw[split + 4..].to_vec())
        .map_err(|_| invalid("non-UTF-8 response body"))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /eval HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/eval");
        assert_eq!(req.body, "hello");
    }

    #[test]
    fn parses_a_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.body, "");
    }

    #[test]
    fn content_length_is_case_insensitive() {
        let raw = b"POST /x HTTP/1.0\r\ncontent-LENGTH: 2\r\n\r\nok";
        assert_eq!(read_request(&mut &raw[..]).unwrap().body, "ok");
    }

    #[test]
    fn rejects_malformed_requests() {
        for (raw, status) in [
            (&b"garbage\r\n\r\n"[..], 400),
            (&b"GET /x SPDY/3\r\n\r\n"[..], 505),
            (&b"POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n"[..], 400),
            (
                &b"POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort"[..],
                400,
            ),
        ] {
            let err = read_request(&mut &raw[..]).unwrap_err();
            assert_eq!(err.status, status, "{}", err.message);
        }
    }

    #[test]
    fn oversized_header_is_rejected() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD + 10));
        let err = read_request(&mut &raw[..]).unwrap_err();
        assert_eq!(err.status, 431);
    }

    #[test]
    fn response_round_trips_through_the_client_parser() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "{\"ok\":true}\n").unwrap();
        let (status, body) = parse_response(&wire).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}\n");
    }
}
