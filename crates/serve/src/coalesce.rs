//! Request coalescing: N identical in-flight requests share one compute.
//!
//! The first arrival for a key becomes the *leader* and runs the compute
//! closure; every later arrival for the same key blocks on a condvar and
//! receives the leader's result. The ordering invariant that makes "two
//! concurrent identical requests → exactly one flow run" deterministic
//! rather than probabilistic: the leader publishes its result (and, in the
//! server, writes the disk cache — the compute closure does that before
//! returning) *before* removing the key from the in-flight map. A request
//! arriving at any moment therefore either joins the in-flight entry or
//! finds the finished result in the disk cache; there is no window where
//! it could start a second compute.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// The shared result type: the response body, cheap to clone to any
/// number of waiters, or an error message.
pub type Shared = Result<Arc<String>, String>;

#[derive(Debug)]
struct Inflight {
    done: Mutex<Option<Shared>>,
    ready: Condvar,
}

impl Inflight {
    fn publish(&self, result: Shared) {
        *self.done.lock().expect("inflight lock") = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Shared {
        let mut done = self.done.lock().expect("inflight lock");
        loop {
            match &*done {
                Some(result) => return result.clone(),
                None => done = self.ready.wait(done).expect("inflight lock"),
            }
        }
    }
}

/// What [`Coalescer::run`] did for this caller.
#[derive(Debug)]
pub struct Outcome {
    /// The computed (or shared) response body.
    pub result: Shared,
    /// `true` when this caller piggybacked on another request's compute.
    pub coalesced: bool,
}

/// Deduplicates concurrent identical requests by cache key.
#[derive(Debug, Default)]
pub struct Coalescer {
    inflight: Mutex<HashMap<u64, Arc<Inflight>>>,
}

impl Coalescer {
    /// Creates an empty coalescer.
    #[must_use]
    pub fn new() -> Coalescer {
        Coalescer::default()
    }

    /// How many keys are being computed right now.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inflight.lock().expect("inflight map lock").len()
    }

    /// Runs `compute` for `key`, unless an identical request is already in
    /// flight — then blocks until that one finishes and shares its result.
    pub fn run(&self, key: u64, compute: impl FnOnce() -> Shared) -> Outcome {
        let (entry, leader) = {
            let mut map = self.inflight.lock().expect("inflight map lock");
            match map.get(&key) {
                Some(entry) => (Arc::clone(entry), false),
                None => {
                    let entry = Arc::new(Inflight {
                        done: Mutex::new(None),
                        ready: Condvar::new(),
                    });
                    map.insert(key, Arc::clone(&entry));
                    (Arc::clone(&entry), true)
                }
            }
        };
        if !leader {
            return Outcome {
                result: entry.wait(),
                coalesced: true,
            };
        }
        // If `compute` panics, the guard still wakes the waiters with an
        // error and clears the key, so nobody blocks forever and the next
        // request retries cleanly.
        let guard = LeaderGuard {
            coalescer: self,
            key,
            entry: &entry,
            published: false,
        };
        let result = compute();
        guard.finish(result.clone());
        Outcome {
            result,
            coalesced: false,
        }
    }

    fn remove(&self, key: u64) {
        self.inflight
            .lock()
            .expect("inflight map lock")
            .remove(&key);
    }
}

struct LeaderGuard<'a> {
    coalescer: &'a Coalescer,
    key: u64,
    entry: &'a Inflight,
    published: bool,
}

impl LeaderGuard<'_> {
    fn finish(mut self, result: Shared) {
        self.entry.publish(result);
        self.published = true;
        // Publish first, remove second — see the module invariant.
        self.coalescer.remove(self.key);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.entry.publish(Err(
                "internal error: request computation panicked".to_owned()
            ));
            self.coalescer.remove(self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn single_caller_computes_uncoalesced() {
        let c = Coalescer::new();
        let out = c.run(1, || Ok(Arc::new("body".to_owned())));
        assert!(!out.coalesced);
        assert_eq!(*out.result.unwrap(), "body");
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn concurrent_identical_requests_compute_once() {
        let c = Arc::new(Coalescer::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let start = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (c, computes, start) =
                    (Arc::clone(&c), Arc::clone(&computes), Arc::clone(&start));
                std::thread::spawn(move || {
                    start.wait();
                    c.run(42, move || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Hold the in-flight window open long enough for
                        // the other callers to arrive.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        Ok(Arc::new("shared".to_owned()))
                    })
                })
            })
            .collect();
        let outcomes: Vec<Outcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one compute");
        assert!(outcomes
            .iter()
            .all(|o| *o.result.clone().unwrap() == "shared"));
        assert_eq!(
            outcomes.iter().filter(|o| o.coalesced).count(),
            7,
            "everyone but the leader coalesces"
        );
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let c = Coalescer::new();
        let a = c.run(1, || Ok(Arc::new("a".to_owned())));
        let b = c.run(2, || Ok(Arc::new("b".to_owned())));
        assert!(!a.coalesced && !b.coalesced);
    }

    #[test]
    fn errors_are_shared_and_key_is_cleared() {
        let c = Coalescer::new();
        let out = c.run(5, || Err("boom".to_owned()));
        assert_eq!(out.result.unwrap_err(), "boom");
        // The failed key is gone: the next caller recomputes.
        let out = c.run(5, || Ok(Arc::new("ok".to_owned())));
        assert_eq!(*out.result.unwrap(), "ok");
    }

    #[test]
    fn panicking_leader_wakes_waiters_with_an_error() {
        let c = Arc::new(Coalescer::new());
        let start = Arc::new(Barrier::new(2));
        let waiter = {
            let (c, start) = (Arc::clone(&c), Arc::clone(&start));
            std::thread::spawn(move || {
                start.wait();
                // Give the leader time to claim the key.
                std::thread::sleep(std::time::Duration::from_millis(20));
                c.run(9, || Ok(Arc::new("fallback".to_owned())))
            })
        };
        let leader = {
            let (c, start) = (Arc::clone(&c), Arc::clone(&start));
            std::thread::spawn(move || {
                start.wait();
                c.run(9, || {
                    std::thread::sleep(std::time::Duration::from_millis(60));
                    panic!("leader died");
                })
            })
        };
        assert!(leader.join().is_err());
        let out = waiter.join().unwrap();
        // The waiter either coalesced onto the panicking leader (error
        // shared) or arrived after cleanup and computed fresh.
        if out.coalesced {
            assert!(out.result.unwrap_err().contains("panicked"));
        } else {
            assert_eq!(*out.result.unwrap(), "fallback");
        }
        assert_eq!(c.in_flight(), 0);
    }
}
