//! Typed requests for the four service endpoints, shared by the `mcpm`
//! CLI and the HTTP server.
//!
//! The byte-identity contract — a server response must equal the one-shot
//! CLI `--json` output — is guaranteed *by construction*: the CLI `--json`
//! paths and the server handlers both call [`ApiRequest::run_json`], so
//! there is exactly one place that renders each document.
//!
//! Cache keys are content-addressed: [`ApiRequest::cache_key`] hashes a
//! canonical rendering of the request *plus the design content* (DSL +
//! schedule for bundled benchmarks, raw text for user sources) with the
//! stable FNV-1a hash from [`crate::cache`]. Knobs that provably never
//! change the response bytes — `parallel`, `threads`, `batch`, `backend`
//! (the workspace's bit-identity invariants) — are deliberately excluded,
//! so e.g. a bitsliced-backend request warms the cache for a batched one.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use mc_bench::harness::{json_array, JsonObj};
use mc_core::dfg::benchmarks::{self, Benchmark};
use mc_core::rtl::export;
use mc_core::sim::BatchBackend;
use mc_core::{experiment, retrofit, DesignStyle, Flow, Synthesizer};
use mc_explore::{ExploreSpace, Explorer, GatingVariant, RewriteChoice, NOMINAL_VOLTS};
use mc_trace::json::Value;

use crate::cache::fnv1a;

/// The behaviour a request evaluates: a bundled benchmark by name, or an
/// inline source text (behavioural DSL for eval/sweep/explore, VHDL or
/// mcnl for retrofit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignRef {
    /// One of the bundled paper benchmarks, by name.
    Benchmark(String),
    /// An inline design source shipped with the request.
    Source {
        /// Design name (what `--file`'s stem provides on the CLI).
        name: String,
        /// The source text.
        text: String,
    },
}

impl DesignRef {
    /// Loads the behaviour, mirroring the CLI's `--benchmark`/`--file`
    /// semantics (file sources parse as the behavioural DSL and schedule
    /// ASAP).
    ///
    /// # Errors
    ///
    /// Unknown benchmark names and parse failures, as messages.
    pub fn load(&self) -> Result<Benchmark, String> {
        match self {
            DesignRef::Benchmark(name) => find_benchmark(name),
            DesignRef::Source { name, text } => {
                let dfg = mc_core::dfg::parse::parse_dfg(name, text)
                    .map_err(|e| format!("{name}: {e}"))?;
                let schedule = mc_core::dfg::scheduler::asap(&dfg);
                Ok(Benchmark {
                    dfg,
                    schedule,
                    description: "user behaviour from file",
                })
            }
        }
    }

    /// The canonical design content the cache key hashes: DSL + schedule
    /// for benchmarks (so a changed benchmark definition changes the
    /// key), the raw text for sources.
    ///
    /// # Errors
    ///
    /// Fails for unknown benchmark names.
    pub fn content(&self) -> Result<String, String> {
        match self {
            DesignRef::Benchmark(name) => Ok(behavior_content(&find_benchmark(name)?)),
            DesignRef::Source { name, text } => Ok(format!("source {name}\n{text}")),
        }
    }
}

fn find_benchmark(name: &str) -> Result<Benchmark, String> {
    // The typed resolver distinguishes unknown names from malformed or
    // out-of-range `random:<nodes>:<seed>` specs; surface its message.
    benchmarks::parse_name(name).map_err(|e| e.to_string())
}

fn behavior_content(bm: &Benchmark) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "name {}", bm.dfg.name());
    s.push_str(&mc_core::dfg::parse::to_dsl(&bm.dfg));
    let _ = writeln!(s, "schedule length={}", bm.schedule.length());
    for t in 1..=bm.schedule.length() {
        let _ = writeln!(s, "step {t}: {:?}", bm.schedule.nodes_at_step(t));
    }
    s
}

/// `POST /eval` — the paper's five-style table.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequest {
    /// What to evaluate.
    pub design: DesignRef,
    /// Random computations per simulation (default 400).
    pub computations: usize,
    /// Stimulus seed (default 42).
    pub seed: u64,
}

/// `POST /sweep` — the clock-count ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// What to evaluate.
    pub design: DesignRef,
    /// Sweep 1..=`max_clocks` (default 6).
    pub max_clocks: u32,
    /// Random computations per simulation (default 400).
    pub computations: usize,
    /// Stimulus seed (default 42).
    pub seed: u64,
}

/// `POST /explore` — Pareto design-space exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreRequest {
    /// What to explore.
    pub design: DesignRef,
    /// Largest clock count in the lattice (default 4).
    pub max_clocks: u32,
    /// Supply voltages in the lattice (default `[4.65, 3.3]`).
    pub voltages: Vec<f64>,
    /// Schedule stretch factors in the lattice (default `[2]`).
    pub stretches: Vec<u32>,
    /// Data-dependent gating variants: the first `gating` entries of
    /// [`mc_explore::GatingVariant::ALL`] (default 1 = baseline only).
    pub gating: u32,
    /// Equivalence-checked datapath rewrites: the first `rewrites`
    /// entries of [`mc_explore::RewriteChoice::ALL`] (default 1 =
    /// baseline only).
    pub rewrites: u32,
    /// Stimulus-distribution scenarios per configuration (default 1).
    pub scenarios: u32,
    /// Evaluation budget (points), unlimited when `None`.
    pub budget: Option<usize>,
    /// Monte-Carlo stimulus seeds per point (default 1).
    pub power_seeds: usize,
    /// Batched-kernel lanes (default 16; never changes results).
    pub batch: usize,
    /// Random computations per simulation (default 400).
    pub computations: usize,
    /// Stimulus seed (default 42).
    pub seed: u64,
    /// Evaluate points on the worker pool (default true; results are
    /// bit-identical either way).
    pub parallel: bool,
    /// Worker-pool width override (`None` → auto).
    pub threads: Option<usize>,
    /// Multi-seed simulation kernel (never changes results).
    pub backend: BatchBackend,
}

/// `POST /retrofit` — single-clock → multi-phase latch conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrofitRequest {
    /// The design to convert; sources may be exported VHDL or mcnl.
    pub design: DesignRef,
    /// Number of non-overlapping phases (default 3, minimum 2).
    pub clocks: u32,
    /// Equivalence-check seeds (default 5).
    pub seeds: usize,
    /// Random computations per equivalence seed (default 400).
    pub computations: usize,
    /// Base stimulus seed (default 42).
    pub seed: u64,
    /// Verify seeds on scoped threads (bit-identical either way).
    pub parallel: bool,
    /// Multi-seed simulation kernel (never changes results).
    pub backend: BatchBackend,
}

/// A parsed request for any of the four compute endpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiRequest {
    /// `POST /eval`
    Eval(EvalRequest),
    /// `POST /sweep`
    Sweep(SweepRequest),
    /// `POST /explore`
    Explore(ExploreRequest),
    /// `POST /retrofit`
    Retrofit(RetrofitRequest),
}

impl ApiRequest {
    /// The endpoint name (`eval`/`sweep`/`explore`/`retrofit`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ApiRequest::Eval(_) => "eval",
            ApiRequest::Sweep(_) => "sweep",
            ApiRequest::Explore(_) => "explore",
            ApiRequest::Retrofit(_) => "retrofit",
        }
    }

    /// The canonical string the cache key hashes. Every field that can
    /// change the response bytes appears here; fields that provably
    /// cannot (`parallel`, `threads`, `batch`, `backend`) do not.
    ///
    /// # Errors
    ///
    /// Fails for unknown benchmark names.
    pub fn canonical(&self) -> Result<String, String> {
        let mut s = format!("mcpm-serve request v3\nkind={}\n", self.kind());
        match self {
            ApiRequest::Eval(r) => {
                let _ = writeln!(s, "computations={}", r.computations);
                let _ = writeln!(s, "seed={}", r.seed);
                let _ = writeln!(s, "design:\n{}", r.design.content()?);
            }
            ApiRequest::Sweep(r) => {
                let _ = writeln!(s, "max_clocks={}", r.max_clocks);
                let _ = writeln!(s, "computations={}", r.computations);
                let _ = writeln!(s, "seed={}", r.seed);
                let _ = writeln!(s, "design:\n{}", r.design.content()?);
            }
            ApiRequest::Explore(r) => {
                let _ = writeln!(s, "max_clocks={}", r.max_clocks);
                let volts: Vec<String> = r.voltages.iter().map(f64::to_string).collect();
                let _ = writeln!(s, "voltages={}", volts.join(","));
                let stretches: Vec<String> = r.stretches.iter().map(u32::to_string).collect();
                let _ = writeln!(s, "stretches={}", stretches.join(","));
                let _ = writeln!(s, "gating={}", r.gating);
                let _ = writeln!(s, "rewrites={}", r.rewrites);
                let _ = writeln!(s, "scenarios={}", r.scenarios);
                match r.budget {
                    Some(b) => {
                        let _ = writeln!(s, "budget={b}");
                    }
                    None => {
                        let _ = writeln!(s, "budget=none");
                    }
                }
                let _ = writeln!(s, "power_seeds={}", r.power_seeds);
                let _ = writeln!(s, "computations={}", r.computations);
                let _ = writeln!(s, "seed={}", r.seed);
                let _ = writeln!(s, "design:\n{}", r.design.content()?);
            }
            ApiRequest::Retrofit(r) => {
                let _ = writeln!(s, "clocks={}", r.clocks);
                let _ = writeln!(s, "seeds={}", r.seeds);
                let _ = writeln!(s, "computations={}", r.computations);
                let _ = writeln!(s, "seed={}", r.seed);
                let _ = writeln!(s, "design:\n{}", r.design.content()?);
            }
        }
        Ok(s)
    }

    /// The content-addressed cache key: FNV-1a of [`Self::canonical`].
    ///
    /// # Errors
    ///
    /// Fails for unknown benchmark names.
    pub fn cache_key(&self) -> Result<u64, String> {
        Ok(fnv1a(self.canonical()?.as_bytes()))
    }

    /// Runs the request and renders the JSON document — the single code
    /// path behind both the CLI `--json` output and the server responses.
    /// The document has no trailing newline (the CLI's stdout `println!`
    /// and the server's `+ "\n"` add the same one).
    ///
    /// # Errors
    ///
    /// Synthesis/verification failures, as messages.
    pub fn run_json(&self, flows: &FlowPool) -> Result<String, String> {
        match self {
            ApiRequest::Eval(r) => {
                let bm = r.design.load()?;
                let flow = flows.flow_for(&bm, r.computations, r.seed);
                let table = experiment::paper_table_parallel_in(&flow, bm.name())
                    .map_err(|e| e.to_string())?;
                Ok(table_json(&table, r.seed, r.computations))
            }
            ApiRequest::Sweep(r) => {
                let bm = r.design.load()?;
                let flow = flows.flow_for(&bm, r.computations, r.seed);
                let sweep = experiment::clock_sweep_parallel_in(&flow, r.max_clocks)
                    .map_err(|e| e.to_string())?;
                let rows = json_array(sweep.iter().map(|(n, rep)| {
                    JsonObj::new()
                        .num("clocks", n)
                        .num("power_mw", rep.power.total_mw)
                        .num("area_lambda2", rep.area.total_lambda2)
                        .num("mem_cells", rep.stats.mem_cells)
                        .num("mux_inputs", rep.stats.mux_inputs)
                        .finish()
                }));
                Ok(JsonObj::new()
                    .str("benchmark", bm.name())
                    .num("seed", r.seed)
                    .num("computations", r.computations)
                    .raw("rows", &rows)
                    .finish())
            }
            ApiRequest::Explore(r) => {
                let bm = r.design.load()?;
                let mut explorer = Explorer::new()
                    .with_space(ExploreSpace {
                        n_max: r.max_clocks,
                        voltages: r.voltages.clone(),
                        stretches: r.stretches.clone(),
                        gating: GatingVariant::first_n(r.gating as usize),
                        rewrites: RewriteChoice::first_n(r.rewrites as usize),
                        scenarios: r.scenarios,
                    })
                    .with_computations(r.computations)
                    .with_seed(r.seed)
                    .with_power_seeds(r.power_seeds)
                    .with_batch(r.batch)
                    .with_batch_backend(r.backend)
                    .with_parallel(r.parallel);
                if let Some(budget) = r.budget {
                    explorer = explorer.with_budget(budget);
                }
                if let Some(threads) = r.threads {
                    explorer = explorer.with_threads(threads);
                }
                let report = explorer.run(&bm).map_err(|e| e.to_string())?;
                Ok(report.to_json())
            }
            ApiRequest::Retrofit(r) => {
                let converted = match &r.design {
                    DesignRef::Benchmark(name) => {
                        // Round-trip through the VHDL exporter so bundled
                        // benchmarks exercise the same importer a real
                        // design file would (mirrors the CLI).
                        let bm = find_benchmark(name)?;
                        let nl = Synthesizer::for_benchmark(&bm)
                            .synthesize(DesignStyle::ConventionalNonGated)
                            .map_err(|e| e.to_string())?
                            .datapath
                            .netlist;
                        retrofit::retrofit_source(&export::to_vhdl(&nl), r.clocks)
                    }
                    DesignRef::Source { text, .. } => retrofit::retrofit_source(text, r.clocks),
                }
                .map_err(|e| e.to_string())?;
                let opts = retrofit::RetrofitOptions {
                    computations: r.computations,
                    seeds: mc_core::power::derive_seeds(r.seed, r.seeds),
                    parallel: r.parallel,
                    backend: r.backend,
                    ..Default::default()
                };
                let report =
                    retrofit::verify_retrofit(&converted, &opts).map_err(|e| e.to_string())?;
                let hist = json_array(report.phase_histogram.iter().map(|c| c.to_string()));
                Ok(JsonObj::new()
                    .str("design", converted.original.name())
                    .num("clocks", r.clocks)
                    .num("seeds", report.seeds)
                    .num("computations", report.computations)
                    .num("original_power_mw", report.original.power.total_mw)
                    .num("converted_power_mw", report.converted.power.total_mw)
                    .num("power_reduction_pct", report.power_reduction_pct)
                    .num("latency_factor", report.latency_factor)
                    .num("shadows", report.shadows)
                    .raw("registers_per_phase", &hist)
                    .finish())
            }
        }
    }
}

/// Serialises an experiment table with the bench-harness JSON conventions
/// (`f64` via `Display`: shortest round-trip, deterministic). This is the
/// `mcpm eval --json` document.
#[must_use]
pub fn table_json(table: &experiment::Table, seed: u64, computations: usize) -> String {
    let rows = json_array(table.rows.iter().map(|row| {
        JsonObj::new()
            .str("style", &row.label)
            .num("power_mw", row.report.power.total_mw)
            .num("area_lambda2", row.report.area.total_lambda2)
            .str("alus", &row.report.stats.alu_summary())
            .num("mem_cells", row.report.stats.mem_cells)
            .num("mux_inputs", row.report.stats.mux_inputs)
            .finish()
    }));
    let mut doc = JsonObj::new()
        .str("benchmark", &table.benchmark)
        .num("seed", seed)
        .num("computations", computations)
        .raw("rows", &rows);
    if let Some(red) = table.gated_to_best_multiclock_reduction() {
        doc = doc.num("gated_to_best_multiclock_reduction", red);
    }
    doc.finish()
}

/// A pool of [`Flow`]s keyed by content fingerprint + computations +
/// seed, so repeated requests against the same behaviour reuse a warm
/// in-memory artifact cache. Safe for byte-identity: cached artifacts are
/// content-keyed and bit-identical to recomputation (the workspace's
/// standing invariant, exercised by the tier-1 tests).
#[derive(Debug, Default)]
pub struct FlowPool {
    flows: Mutex<HashMap<u64, Arc<Flow>>>,
}

impl FlowPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> FlowPool {
        FlowPool::default()
    }

    /// The flow for this (behaviour, computations, seed) triple, created
    /// on first use.
    #[must_use]
    pub fn flow_for(&self, bm: &Benchmark, computations: usize, seed: u64) -> Arc<Flow> {
        let candidate = Flow::for_benchmark(bm)
            .with_computations(computations)
            .with_seed(seed);
        let key =
            fnv1a(format!("{:016x}/{computations}/{seed}", candidate.fingerprint()).as_bytes());
        let mut flows = self.flows.lock().expect("flow pool lock");
        Arc::clone(flows.entry(key).or_insert_with(|| Arc::new(candidate)))
    }

    /// Number of distinct flows held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flows.lock().expect("flow pool lock").len()
    }

    /// Whether the pool holds no flows yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Parses a request body for endpoint `kind`, with CLI-equivalent
/// defaults, bound checks, and hard rejection of unknown fields (a typo
/// must never silently run with defaults — same rule as the CLI's
/// unknown-flag errors).
///
/// # Errors
///
/// A message describing the first problem found.
pub fn parse_request(kind: &str, body: &str) -> Result<ApiRequest, String> {
    let allowed: &[&str] = match kind {
        "eval" => &["benchmark", "source", "computations", "seed"],
        "sweep" => &["benchmark", "source", "computations", "seed", "max_clocks"],
        "explore" => &[
            "benchmark",
            "source",
            "computations",
            "seed",
            "max_clocks",
            "voltages",
            "stretch",
            "gating",
            "rewrites",
            "scenarios",
            "budget",
            "seeds",
            "batch",
            "backend",
            "threads",
            "parallel",
        ],
        "retrofit" => &[
            "benchmark",
            "source",
            "computations",
            "seed",
            "clocks",
            "seeds",
            "parallel",
            "backend",
        ],
        other => return Err(format!("unknown endpoint kind `{other}`")),
    };
    let body = if body.trim().is_empty() { "{}" } else { body };
    let doc = mc_trace::json::parse(body).map_err(|e| e.to_string())?;
    let members = doc
        .as_object()
        .ok_or("request body must be a JSON object")?;
    for (key, _) in members {
        if !allowed.contains(&key.as_str()) {
            let list: Vec<String> = allowed.iter().map(|f| format!("\"{f}\"")).collect();
            return Err(format!(
                "unknown field \"{key}\" for /{kind}; valid fields: {}",
                list.join(", ")
            ));
        }
    }
    let design = design_field(&doc)?;
    let computations = int_field(&doc, "computations", 400, 1)? as usize;
    let seed = int_field(&doc, "seed", 42, 0)?;
    Ok(match kind {
        "eval" => ApiRequest::Eval(EvalRequest {
            design,
            computations,
            seed,
        }),
        "sweep" => ApiRequest::Sweep(SweepRequest {
            design,
            max_clocks: u32::try_from(int_field(&doc, "max_clocks", 6, 1)?)
                .map_err(|_| "`max_clocks` out of range".to_owned())?,
            computations,
            seed,
        }),
        "explore" => ApiRequest::Explore(ExploreRequest {
            design,
            max_clocks: u32::try_from(int_field(&doc, "max_clocks", 4, 1)?)
                .map_err(|_| "`max_clocks` out of range".to_owned())?,
            voltages: f64_list_field(&doc, "voltages", &[NOMINAL_VOLTS, 3.3])?,
            stretches: u32_list_field(&doc, "stretch", &[2])?,
            gating: {
                let g = int_field(&doc, "gating", 1, 1)?;
                if g > GatingVariant::ALL.len() as u64 {
                    return Err(format!(
                        "`gating` out of range (1..={})",
                        GatingVariant::ALL.len()
                    ));
                }
                g as u32
            },
            rewrites: {
                let r = int_field(&doc, "rewrites", 1, 1)?;
                if r > RewriteChoice::ALL.len() as u64 {
                    return Err(format!(
                        "`rewrites` out of range (1..={})",
                        RewriteChoice::ALL.len()
                    ));
                }
                r as u32
            },
            scenarios: u32::try_from(int_field(&doc, "scenarios", 1, 1)?)
                .map_err(|_| "`scenarios` out of range".to_owned())?,
            budget: opt_int_field(&doc, "budget", 1)?.map(|b| b as usize),
            power_seeds: int_field(&doc, "seeds", 1, 1)? as usize,
            batch: int_field(&doc, "batch", Flow::DEFAULT_BATCH as u64, 1)? as usize,
            computations,
            seed,
            parallel: bool_field(&doc, "parallel", true)?,
            threads: opt_int_field(&doc, "threads", 1)?.map(|t| t as usize),
            backend: backend_field(&doc)?,
        }),
        "retrofit" => ApiRequest::Retrofit(RetrofitRequest {
            design,
            clocks: u32::try_from(int_field(&doc, "clocks", 3, 2)?)
                .map_err(|_| "`clocks` out of range".to_owned())?,
            seeds: int_field(&doc, "seeds", 5, 1)? as usize,
            computations,
            seed,
            parallel: bool_field(&doc, "parallel", true)?,
            backend: backend_field(&doc)?,
        }),
        _ => unreachable!("kind validated above"),
    })
}

fn design_field(doc: &Value) -> Result<DesignRef, String> {
    match (doc.get("benchmark"), doc.get("source")) {
        (Some(b), None) => Ok(DesignRef::Benchmark(
            b.as_str().ok_or("`benchmark` must be a string")?.to_owned(),
        )),
        (None, Some(s)) => {
            let name = s
                .get("name")
                .and_then(Value::as_str)
                .ok_or("`source.name` must be a string")?;
            let text = s
                .get("text")
                .and_then(Value::as_str)
                .ok_or("`source.text` must be a string")?;
            Ok(DesignRef::Source {
                name: name.to_owned(),
                text: text.to_owned(),
            })
        }
        (Some(_), Some(_)) => Err("pass either \"benchmark\" or \"source\", not both".to_owned()),
        (None, None) => Err(
            "missing design: pass \"benchmark\": NAME or \"source\": {\"name\", \"text\"}"
                .to_owned(),
        ),
    }
}

/// Integer field with a default and a lower bound. JSON numbers are f64,
/// so integers are exact up to 2^53 — far beyond any knob here.
fn int_field(doc: &Value, key: &str, default: u64, min: u64) -> Result<u64, String> {
    match opt_int_field(doc, key, min)? {
        Some(v) => Ok(v),
        None => Ok(default),
    }
}

fn opt_int_field(doc: &Value, key: &str, min: u64) -> Result<Option<u64>, String> {
    let Some(v) = doc.get(key) else {
        return Ok(None);
    };
    let n = v
        .as_f64()
        .ok_or_else(|| format!("`{key}` must be a number"))?;
    if n.fract() != 0.0 || n < 0.0 || n > 2f64.powi(53) {
        return Err(format!("`{key}` must be a non-negative integer"));
    }
    let n = n as u64;
    if n < min {
        return Err(format!("`{key}` must be at least {min}"));
    }
    Ok(Some(n))
}

fn bool_field(doc: &Value, key: &str, default: bool) -> Result<bool, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("`{key}` must be true or false")),
    }
}

fn f64_list_field(doc: &Value, key: &str, default: &[f64]) -> Result<Vec<f64>, String> {
    let Some(v) = doc.get(key) else {
        return Ok(default.to_vec());
    };
    let items = v
        .as_array()
        .ok_or_else(|| format!("`{key}` must be an array of numbers"))?;
    items
        .iter()
        .map(|item| {
            item.as_f64()
                .ok_or_else(|| format!("`{key}` must contain only numbers"))
        })
        .collect()
}

fn u32_list_field(doc: &Value, key: &str, default: &[u32]) -> Result<Vec<u32>, String> {
    let values = f64_list_field(
        doc,
        key,
        &default.iter().map(|&v| f64::from(v)).collect::<Vec<_>>(),
    )?;
    values
        .into_iter()
        .map(|v| {
            if v.fract() == 0.0 && (0.0..=f64::from(u32::MAX)).contains(&v) {
                Ok(v as u32)
            } else {
                Err(format!("`{key}` must contain only non-negative integers"))
            }
        })
        .collect()
}

fn backend_field(doc: &Value) -> Result<BatchBackend, String> {
    match doc.get("backend") {
        None => Ok(BatchBackend::default()),
        Some(v) => {
            let name = v.as_str().ok_or("`backend` must be a string")?;
            BatchBackend::from_name(name).ok_or_else(|| {
                format!("invalid backend `{name}`: expected `batched` or `bitsliced`")
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_fills_cli_defaults() {
        let req = parse_request("eval", r#"{"benchmark":"hal"}"#).unwrap();
        let ApiRequest::Eval(r) = &req else {
            panic!("wrong kind");
        };
        assert_eq!(r.computations, 400);
        assert_eq!(r.seed, 42);
        let req = parse_request("explore", r#"{"benchmark":"hal"}"#).unwrap();
        let ApiRequest::Explore(r) = &req else {
            panic!("wrong kind");
        };
        assert_eq!(r.max_clocks, 4);
        assert_eq!(r.voltages, vec![NOMINAL_VOLTS, 3.3]);
        assert_eq!(r.stretches, vec![2]);
        assert_eq!(r.gating, 1);
        assert_eq!(r.rewrites, 1);
        assert_eq!(r.scenarios, 1);
        assert_eq!(r.budget, None);
        assert_eq!(r.power_seeds, 1);
        assert_eq!(r.batch, Flow::DEFAULT_BATCH);
        assert!(r.parallel);
        let req = parse_request("retrofit", r#"{"benchmark":"facet","clocks":4}"#).unwrap();
        let ApiRequest::Retrofit(r) = &req else {
            panic!("wrong kind");
        };
        assert_eq!(r.clocks, 4);
        assert_eq!(r.seeds, 5);
    }

    #[test]
    fn parse_rejects_unknown_fields_and_bad_values() {
        assert!(parse_request("eval", r#"{"benchmark":"hal","clocks":3}"#)
            .unwrap_err()
            .contains("unknown field \"clocks\""));
        assert!(
            parse_request("eval", r#"{"benchmark":"hal","computations":0}"#)
                .unwrap_err()
                .contains("at least 1")
        );
        assert!(
            parse_request("retrofit", r#"{"benchmark":"hal","clocks":1}"#)
                .unwrap_err()
                .contains("at least 2")
        );
        assert!(parse_request("eval", r#"{"benchmark":"hal","seed":1.5}"#)
            .unwrap_err()
            .contains("integer"));
        assert!(parse_request("eval", "[1,2]")
            .unwrap_err()
            .contains("object"));
        assert!(parse_request("eval", "{nope").is_err());
        assert!(parse_request("eval", "{}")
            .unwrap_err()
            .contains("missing design"));
        assert!(
            parse_request("explore", r#"{"benchmark":"hal","backend":"quantum"}"#)
                .unwrap_err()
                .contains("invalid backend")
        );
        assert!(
            parse_request("explore", r#"{"benchmark":"hal","gating":6}"#)
                .unwrap_err()
                .contains("`gating` out of range")
        );
        assert!(
            parse_request("explore", r#"{"benchmark":"hal","rewrites":9}"#)
                .unwrap_err()
                .contains("`rewrites` out of range")
        );
        assert!(parse_request("eval", r#"{"benchmark":"random:9999:1"}"#)
            .unwrap()
            .cache_key()
            .unwrap_err()
            .contains("node count 9999"),);
        assert!(parse_request("eval", r#"{"benchmark":"random:abc"}"#)
            .unwrap()
            .cache_key()
            .unwrap_err()
            .contains("random benchmark spec"),);
    }

    #[test]
    fn cache_key_is_stable_and_content_sensitive() {
        let a = parse_request("eval", r#"{"benchmark":"hal","computations":50}"#).unwrap();
        let b = parse_request("eval", r#"{"computations":50,"benchmark":"hal"}"#).unwrap();
        assert_eq!(
            a.cache_key().unwrap(),
            b.cache_key().unwrap(),
            "field order must not matter"
        );
        let c = parse_request("eval", r#"{"benchmark":"hal","computations":51}"#).unwrap();
        assert_ne!(a.cache_key().unwrap(), c.cache_key().unwrap());
        let d = parse_request("eval", r#"{"benchmark":"facet","computations":50}"#).unwrap();
        assert_ne!(a.cache_key().unwrap(), d.cache_key().unwrap());
        let e = parse_request("sweep", r#"{"benchmark":"hal","computations":50}"#).unwrap();
        assert_ne!(
            a.cache_key().unwrap(),
            e.cache_key().unwrap(),
            "kind must partition the key space"
        );
    }

    #[test]
    fn result_irrelevant_knobs_stay_out_of_the_key() {
        let a = parse_request("explore", r#"{"benchmark":"hal"}"#).unwrap();
        let b = parse_request(
            "explore",
            r#"{"benchmark":"hal","backend":"bitsliced","parallel":false,"threads":2,"batch":4}"#,
        )
        .unwrap();
        assert_eq!(a.cache_key().unwrap(), b.cache_key().unwrap());
        // ...but result-relevant ones change it.
        let c = parse_request("explore", r#"{"benchmark":"hal","seeds":3}"#).unwrap();
        assert_ne!(a.cache_key().unwrap(), c.cache_key().unwrap());
        let d = parse_request("explore", r#"{"benchmark":"hal","scenarios":2}"#).unwrap();
        assert_ne!(a.cache_key().unwrap(), d.cache_key().unwrap());
        let e = parse_request("explore", r#"{"benchmark":"hal","gating":3}"#).unwrap();
        assert_ne!(a.cache_key().unwrap(), e.cache_key().unwrap());
        let f = parse_request("explore", r#"{"benchmark":"hal","rewrites":4}"#).unwrap();
        assert_ne!(a.cache_key().unwrap(), f.cache_key().unwrap());
    }

    #[test]
    fn unknown_benchmark_fails_key_and_run() {
        let req = parse_request("eval", r#"{"benchmark":"nonesuch"}"#).unwrap();
        let err = req.cache_key().unwrap_err();
        assert!(err.contains("unknown benchmark `nonesuch`"), "{err}");
        assert!(err.contains("available:"), "{err}");
    }

    #[test]
    fn flow_pool_reuses_by_content() {
        let pool = FlowPool::new();
        let bm = benchmarks::hal();
        let a = pool.flow_for(&bm, 50, 42);
        let b = pool.flow_for(&bm, 50, 42);
        assert!(Arc::ptr_eq(&a, &b), "same triple → same flow");
        let c = pool.flow_for(&bm, 50, 43);
        assert!(!Arc::ptr_eq(&a, &c), "seed is part of the identity");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn eval_run_json_matches_the_experiment_path() {
        // The document must equal what the one-shot experiment + renderer
        // produce — the CLI calls this same code, closing the loop.
        let req = parse_request("eval", r#"{"benchmark":"facet","computations":40}"#).unwrap();
        let direct = experiment::paper_table_parallel(&benchmarks::facet(), 40, 42).unwrap();
        assert_eq!(
            req.run_json(&FlowPool::new()).unwrap(),
            table_json(&direct, 42, 40)
        );
    }

    #[test]
    fn source_designs_run_and_key_on_text() {
        let dsl = mc_core::dfg::parse::to_dsl(&benchmarks::hal().dfg);
        let body = format!(
            r#"{{"source":{{"name":"mine","text":{}}},"computations":30}}"#,
            mc_trace::json::escape_string(&dsl)
        );
        let req = parse_request("sweep", &body).unwrap();
        let json = req.run_json(&FlowPool::new()).unwrap();
        assert!(json.contains("\"benchmark\":\"mine\""), "{json}");
        // Different text → different key.
        let other = format!(
            r#"{{"source":{{"name":"mine","text":{}}},"computations":30}}"#,
            mc_trace::json::escape_string(&format!("{dsl}\n"))
        );
        assert_ne!(
            req.cache_key().unwrap(),
            parse_request("sweep", &other).unwrap().cache_key().unwrap()
        );
    }
}
