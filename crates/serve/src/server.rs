//! The `mcpm serve` server: a TCP accept loop feeding a bounded
//! [`WorkerPool`], with the on-disk cache
//! and the coalescer in front of the compute path.
//!
//! Request lifecycle for the four compute endpoints:
//!
//! 1. parse + validate (`400` on any problem),
//! 2. content-addressed disk-cache lookup (`serve.cache.hit` → respond),
//! 3. coalesce: identical in-flight requests share one compute
//!    (`serve.coalesced`),
//! 4. the leader runs the flow, appends the CLI's trailing newline,
//!    writes the cache entry, then publishes (see [`crate::coalesce`] for
//!    why that order makes "one flow run" deterministic).

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mc_bench::harness::JsonObj;
use mc_explore::pool::{default_threads, WorkerPool};

use crate::api::{self, FlowPool};
use crate::cache::DiskCache;
use crate::coalesce::Coalescer;
use crate::http::{read_request, write_response, Request};

/// Server configuration (the `mcpm serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 → ephemeral).
    pub addr: String,
    /// On-disk cache root.
    pub cache_dir: PathBuf,
    /// Worker-pool width.
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7878".to_owned(),
            cache_dir: PathBuf::from("target/mcpm-serve-cache"),
            threads: default_threads(),
        }
    }
}

/// Typed server failures, each with an actionable message — bind errors
/// in particular must exit non-zero with a hint, never panic.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listen address failed.
    Bind {
        /// The address that could not be bound.
        addr: String,
        /// The OS error.
        source: io::Error,
    },
    /// The cache directory could not be opened/created.
    Cache {
        /// The cache root in question.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
    /// Any other server I/O failure.
    Io(io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, source } => {
                write!(f, "cannot bind `{addr}`: {source}")?;
                match source.kind() {
                    io::ErrorKind::AddrInUse => {
                        write!(f, " — is another `mcpm serve` already running there?")
                    }
                    io::ErrorKind::PermissionDenied => {
                        write!(f, " — ports below 1024 need elevated privileges")
                    }
                    _ => Ok(()),
                }
            }
            ServeError::Cache { path, source } => {
                write!(
                    f,
                    "cannot open cache directory `{}`: {source}",
                    path.display()
                )
            }
            ServeError::Io(e) => write!(f, "server I/O error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Aggregate request counters, readable at `GET /stats`.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests accepted (all endpoints).
    pub requests: AtomicU64,
    /// Compute requests answered from the disk cache.
    pub cache_hits: AtomicU64,
    /// Compute requests that missed the disk cache.
    pub cache_misses: AtomicU64,
    /// Requests that piggybacked on an identical in-flight compute.
    pub coalesced: AtomicU64,
    /// Cold computes actually performed (cache-miss leaders).
    pub flow_runs: AtomicU64,
    /// Requests answered with a 4xx/5xx.
    pub errors: AtomicU64,
}

struct ServerCtx {
    cache: DiskCache,
    coalescer: Coalescer,
    flows: FlowPool,
    stats: ServerStats,
    shutdown: AtomicBool,
    /// Where the listener actually lives; `/shutdown` dials it to wake
    /// the (blocking) accept loop.
    addr: SocketAddr,
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<ServerCtx>,
    threads: usize,
}

impl Server {
    /// Binds the listen socket and opens the cache.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] / [`ServeError::Cache`] with actionable
    /// messages.
    pub fn bind(config: &ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Bind {
            addr: config.addr.clone(),
            source,
        })?;
        let cache = DiskCache::open(&config.cache_dir).map_err(|source| ServeError::Cache {
            path: config.cache_dir.clone(),
            source,
        })?;
        let addr = listener.local_addr().map_err(ServeError::Io)?;
        Ok(Server {
            listener,
            ctx: Arc::new(ServerCtx {
                cache,
                coalescer: Coalescer::new(),
                flows: FlowPool::new(),
                stats: ServerStats::default(),
                shutdown: AtomicBool::new(false),
                addr,
            }),
            threads: config.threads.max(1),
        })
    }

    /// The actually bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS lookup failure.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener.local_addr().map_err(ServeError::Io)
    }

    /// The server's aggregate counters.
    #[must_use]
    pub fn stats(&self) -> &ServerStats {
        &self.ctx.stats
    }

    /// Runs the accept loop until a `POST /shutdown` arrives, then drains
    /// every in-flight connection (graceful: queued work finishes, the
    /// shutdown response itself is written) and returns.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener failures.
    pub fn run(self) -> Result<(), ServeError> {
        // Blocking accept: zero idle CPU and no polling-induced latency
        // floor. The `/shutdown` handler sets the flag and then dials the
        // listener itself, so the loop always wakes to observe it.
        let pool = WorkerPool::new(self.threads);
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.ctx.shutdown.load(Ordering::SeqCst) {
                        // Likely the wake-up connection; either way we
                        // are draining — close it unanswered.
                        drop(stream);
                        break;
                    }
                    let ctx = Arc::clone(&self.ctx);
                    pool.submit(move || handle_connection(stream, &ctx));
                }
                // Transient accept errors (connection reset during
                // handshake, fd pressure): keep serving.
                Err(_) => {
                    if self.ctx.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        // Graceful drain: every accepted connection runs to completion.
        pool.join();
        Ok(())
    }
}

fn handle_connection(mut stream: TcpStream, ctx: &ServerCtx) {
    // A stuck client must not wedge a worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_nonblocking(false);
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(e) => {
            ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(&mut stream, e.status, &error_body(&e.message));
            return;
        }
    };
    let (status, body) = respond(&request, ctx);
    if status >= 400 {
        ctx.stats.errors.fetch_add(1, Ordering::Relaxed);
    }
    let _ = write_response(&mut stream, status, &body);
}

fn error_body(message: &str) -> String {
    format!("{}\n", JsonObj::new().str("error", message).finish())
}

fn respond(request: &Request, ctx: &ServerCtx) -> (u16, String) {
    ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, "{\"status\":\"ok\"}\n".to_owned()),
        ("GET", "/stats") => (200, stats_body(ctx)),
        ("POST", "/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            // Wake the blocking accept loop so it notices the flag; the
            // throwaway connection is closed unanswered.
            drop(TcpStream::connect(ctx.addr));
            (200, "{\"status\":\"shutting down\"}\n".to_owned())
        }
        ("POST", "/eval") => compute(ctx, "eval", &request.body),
        ("POST", "/sweep") => compute(ctx, "sweep", &request.body),
        ("POST", "/explore") => compute(ctx, "explore", &request.body),
        ("POST", "/retrofit") => compute(ctx, "retrofit", &request.body),
        (
            _,
            "/healthz" | "/stats" | "/shutdown" | "/eval" | "/sweep" | "/explore" | "/retrofit",
        ) => (
            405,
            error_body(&format!(
                "method {} not allowed for {}",
                request.method, request.path
            )),
        ),
        (_, path) => (404, error_body(&format!("no such endpoint `{path}`"))),
    }
}

fn stats_body(ctx: &ServerCtx) -> String {
    let s = &ctx.stats;
    format!(
        "{}\n",
        JsonObj::new()
            .str("status", "ok")
            .num("requests", s.requests.load(Ordering::Relaxed))
            .num("cache_hits", s.cache_hits.load(Ordering::Relaxed))
            .num("cache_misses", s.cache_misses.load(Ordering::Relaxed))
            .num("coalesced", s.coalesced.load(Ordering::Relaxed))
            .num("flow_runs", s.flow_runs.load(Ordering::Relaxed))
            .num("errors", s.errors.load(Ordering::Relaxed))
            .num("cache_entries", ctx.cache.len())
            .num("cache_evictions", ctx.cache.evictions())
            .num("flows", ctx.flows.len())
            .finish()
    )
}

/// The cache → coalesce → compute path shared by the four endpoints.
fn compute(ctx: &ServerCtx, kind: &str, body: &str) -> (u16, String) {
    let _span = mc_trace::span(format!("serve.request.{kind}"));
    let request = match api::parse_request(kind, body) {
        Ok(request) => request,
        Err(message) => return (400, error_body(&message)),
    };
    let canonical = match request.canonical() {
        Ok(canonical) => canonical,
        Err(message) => return (400, error_body(&message)),
    };
    // The coalescer keys on the hash; the disk cache keys on the full
    // canonical text so hash collisions degrade to recomputation, never
    // to a wrong response.
    let key = crate::cache::fnv1a(canonical.as_bytes());
    if let Some(cached) = ctx.cache.get(&canonical) {
        ctx.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        mc_trace::count_runtime("serve.cache.hit", 1);
        return (200, cached);
    }
    ctx.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
    mc_trace::count_runtime("serve.cache.miss", 1);
    let outcome = ctx.coalescer.run(key, || {
        let _span = mc_trace::span("serve.compute");
        ctx.stats.flow_runs.fetch_add(1, Ordering::Relaxed);
        // The CLI prints the document with `println!`; the stored body
        // carries the same trailing newline so responses are
        // byte-identical to CLI stdout.
        let response = format!("{}\n", request.run_json(&ctx.flows)?);
        // Best-effort persist *before* publishing: a later identical
        // request either coalesces onto this one or hits the disk cache.
        let _ = ctx.cache.put(&canonical, &response);
        Ok(Arc::new(response))
    });
    if outcome.coalesced {
        ctx.stats.coalesced.fetch_add(1, Ordering::Relaxed);
        mc_trace::count_runtime("serve.coalesced", 1);
    }
    match outcome.result {
        Ok(response) => (200, (*response).clone()),
        Err(message) => (500, error_body(&message)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::http_request;

    fn temp_config(tag: &str) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            cache_dir: std::env::temp_dir()
                .join(format!("mc-serve-server-test-{tag}-{}", std::process::id())),
            threads: 2,
        }
    }

    fn start(config: &ServeConfig) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind(config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    #[test]
    fn healthz_stats_and_shutdown() {
        let config = temp_config("health");
        let (addr, handle) = start(&config);
        let (status, body) = http_request(addr, "GET", "/healthz", "").unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}\n"));
        let (status, body) = http_request(addr, "GET", "/stats", "").unwrap();
        assert_eq!(status, 200);
        let stats = mc_trace::json::parse(&body).unwrap();
        assert_eq!(stats.get("status").and_then(|v| v.as_str()), Some("ok"));
        assert_eq!(stats.get("flow_runs").and_then(|v| v.as_f64()), Some(0.0));
        let (status, _) = http_request(addr, "POST", "/shutdown", "").unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap();
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }

    #[test]
    fn unknown_paths_and_methods_are_typed_errors() {
        let config = temp_config("errors");
        let (addr, handle) = start(&config);
        let (status, body) = http_request(addr, "GET", "/nonesuch", "").unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("no such endpoint"));
        let (status, _) = http_request(addr, "GET", "/eval", "").unwrap();
        assert_eq!(status, 405);
        let (status, body) =
            http_request(addr, "POST", "/eval", r#"{"benchmark":"nonesuch"}"#).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("unknown benchmark"));
        let (status, _) = http_request(addr, "POST", "/eval", "{not json").unwrap();
        assert_eq!(status, 400);
        http_request(addr, "POST", "/shutdown", "").unwrap();
        handle.join().unwrap();
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }

    #[test]
    fn bind_conflict_is_a_typed_error() {
        let config = temp_config("bind");
        let first = Server::bind(&config).unwrap();
        let taken = ServeConfig {
            addr: first.local_addr().unwrap().to_string(),
            ..config.clone()
        };
        let Err(err) = Server::bind(&taken) else {
            panic!("second bind on the same port must fail");
        };
        assert!(matches!(err, ServeError::Bind { .. }));
        assert!(err.to_string().contains("already running"), "{err}");
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }

    #[test]
    fn eval_misses_then_hits_the_cache() {
        let config = temp_config("cache");
        let (addr, handle) = start(&config);
        let body = r#"{"benchmark":"facet","computations":30}"#;
        let (status, first) = http_request(addr, "POST", "/eval", body).unwrap();
        assert_eq!(status, 200, "{first}");
        assert!(first.ends_with('\n'));
        let (status, second) = http_request(addr, "POST", "/eval", body).unwrap();
        assert_eq!(status, 200);
        assert_eq!(first, second, "cached response must be byte-identical");
        let (_, stats) = http_request(addr, "GET", "/stats", "").unwrap();
        let stats = mc_trace::json::parse(&stats).unwrap();
        assert_eq!(stats.get("cache_hits").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(stats.get("flow_runs").and_then(|v| v.as_f64()), Some(1.0));
        http_request(addr, "POST", "/shutdown", "").unwrap();
        handle.join().unwrap();
        let _ = std::fs::remove_dir_all(&config.cache_dir);
    }
}
