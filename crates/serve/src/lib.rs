//! **mc-serve** — the persistent synthesis/exploration service behind
//! `mcpm serve`.
//!
//! A hand-rolled, dependency-free HTTP/1.1 server over
//! `std::net::TcpListener` exposing the one-shot CLI's JSON commands as
//! endpoints (`POST /eval`, `/sweep`, `/explore`, `/retrofit`, plus `GET
//! /healthz` and `/stats`, and `POST /shutdown` for a graceful drain),
//! backed by three layers that make repeated queries cheap without ever
//! changing a byte of output:
//!
//! * [`api`] — typed requests whose [`run_json`](api::ApiRequest::run_json)
//!   is the *same code* the CLI `--json` paths call, so server responses
//!   are byte-identical to one-shot CLI output by construction;
//! * [`cache`] — a sharded, content-addressed, on-disk result cache
//!   (atomic rename publication, versioned entries, corruption evicted
//!   and recomputed, never a panic) that survives server restarts;
//! * [`coalesce`] — request coalescing, so N identical in-flight requests
//!   share exactly one flow run.
//!
//! Compute runs on the deterministic
//! [`WorkerPool`](mc_explore::pool::WorkerPool), and every request is
//! traced (`serve.request.*` spans; `serve.cache.hit` / `serve.cache.miss`
//! / `serve.coalesced` counters) through the existing mc-trace machinery.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod cache;
pub mod coalesce;
pub mod http;
pub mod server;

pub use cache::{fnv1a, DiskCache, CACHE_VERSION};
pub use server::{ServeConfig, ServeError, Server, ServerStats};
