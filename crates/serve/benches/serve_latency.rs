//! Service-layer latency benchmark: cold (every request a fresh cache
//! key, paying the full synthesis/evaluation pipeline) vs warm (one
//! identical request repeated, answered off the sharded disk cache), plus
//! coalesced throughput (concurrent duplicates of an unseen key sharing a
//! single pipeline run). Emits `BENCH_serve.json`.
//!
//! The server runs in-process on an ephemeral port and is exercised over
//! real TCP, so every number includes the HTTP round trip — the cache is
//! only a win if it beats the pipeline *including* that overhead, and the
//! bench asserts it does by at least 5x (medians, so one descheduled
//! iteration cannot skew the ratio). Warm responses are also asserted
//! byte-identical to the response that populated the cache.
//!
//! Run with `cargo bench -p mc-serve --bench serve_latency`. The JSON
//! lands at `$MC_SERVE_OUT` (default `BENCH_serve.json` in the working
//! directory); `MC_BENCH_ITERS` adjusts the iteration count.

use std::io::Write as _;
use std::time::Instant;

use mc_bench::harness::{iterations, median_duration, JsonObj};
use mc_serve::http::http_request;
use mc_serve::{ServeConfig, Server};

/// Monte-Carlo depth of each sweep request — enough that the pipeline
/// dominates the HTTP round trip on the cold path.
const COMPUTATIONS: usize = 400;
/// Concurrent duplicate requests in the coalescing stage.
const COALESCE_CLIENTS: usize = 8;

fn post(addr: &str, path: &str, body: &str) -> String {
    let (status, text) = http_request(addr, "POST", path, body).expect("request succeeds");
    assert_eq!(status, 200, "{text}");
    text
}

fn flow_runs(addr: &str) -> u64 {
    let (status, text) = http_request(addr, "GET", "/stats", "").expect("stats request");
    assert_eq!(status, 200, "{text}");
    let doc = mc_trace::json::parse(&text).expect("stats is JSON");
    doc.get("flow_runs")
        .and_then(mc_trace::json::Value::as_f64)
        .expect("flow_runs in stats") as u64
}

fn sweep_body(benchmark: &str, seed: u64) -> String {
    format!(
        r#"{{"benchmark":"{benchmark}","max_clocks":3,"computations":{COMPUTATIONS},"seed":{seed}}}"#
    )
}

fn main() {
    let iters = iterations();
    let cache_dir = std::env::temp_dir().join(format!("mcpm-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: cache_dir.clone(),
        threads: 4,
    };
    let server = Server::bind(&config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let run = std::thread::spawn(move || server.run().expect("server run"));

    // Cold: the seed is part of the cache key, so a fresh seed per
    // iteration defeats both the disk cache and the in-memory flow pool —
    // every request is a genuine pipeline run.
    let mut cold = Vec::with_capacity(iters);
    for i in 0..iters {
        let body = sweep_body("facet", 1_000 + i as u64);
        let t = Instant::now();
        post(&addr, "/sweep", &body);
        cold.push(t.elapsed());
    }

    // Warm: populate once, then repeat the identical request — every
    // timed answer comes off disk, byte-identical to the original.
    let warm_request = sweep_body("facet", 42);
    let reference = post(&addr, "/sweep", &warm_request);
    let mut warm = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        let text = post(&addr, "/sweep", &warm_request);
        warm.push(t.elapsed());
        assert_eq!(text, reference, "warm response must replay cached bytes");
    }

    let cold_med = median_duration(&cold);
    let warm_med = median_duration(&warm);
    let speedup = cold_med.as_secs_f64() / warm_med.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 5.0,
        "cache hit must be >=5x faster than a pipeline run \
         (cold {cold_med:?} vs warm {warm_med:?}, {speedup:.1}x)"
    );

    // Coalescing: concurrent duplicates of a key nobody has asked for
    // yet. However the arrivals interleave, the pipeline runs once.
    let runs_before = flow_runs(&addr);
    let coalesce_request = sweep_body("hal", 7);
    let t = Instant::now();
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let (addr, body) = (&addr, &coalesce_request);
        let handles: Vec<_> = (0..COALESCE_CLIENTS)
            .map(|_| scope.spawn(move || post(addr, "/sweep", body)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t.elapsed();
    for other in &bodies[1..] {
        assert_eq!(*other, bodies[0], "coalesced responses must be identical");
    }
    let runs_delta = flow_runs(&addr) - runs_before;
    assert_eq!(
        runs_delta, 1,
        "duplicates must share exactly one pipeline run"
    );
    let coalesced_rps = COALESCE_CLIENTS as f64 / wall.as_secs_f64().max(1e-9);

    let (status, _) = http_request(&addr, "POST", "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    run.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&cache_dir);

    println!(
        "serve_latency: cold {:>10.3?}  warm {:>10.3?}  speedup {speedup:>7.1}x  \
         coalesced {COALESCE_CLIENTS} clients in {wall:.3?} ({coalesced_rps:.0} req/s, \
         {runs_delta} flow run)",
        cold_med, warm_med
    );

    let coalesced = JsonObj::new()
        .num("clients", COALESCE_CLIENTS)
        .num("wall_ms", wall.as_secs_f64() * 1e3)
        .num("requests_per_sec", coalesced_rps)
        .num("flow_runs_delta", runs_delta)
        .finish();
    let json = JsonObj::new()
        .str("bench", "serve_latency")
        .num("iterations", iters)
        .num("computations", COMPUTATIONS)
        .num("cold_ms", cold_med.as_secs_f64() * 1e3)
        .num("warm_ms", warm_med.as_secs_f64() * 1e3)
        .num("cold_over_warm_speedup", speedup)
        .bool("warm_bytes_identical", true)
        .raw("coalesced", &coalesced)
        .finish();
    let out_path = std::env::var("MC_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    let mut file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    file.write_all(json.as_bytes()).expect("write bench json");
    file.write_all(b"\n").expect("write bench json");
    println!("wrote {out_path}");
}
