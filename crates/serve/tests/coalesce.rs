//! In-process proof, through the trace machinery, that identical
//! requests share one pipeline run: concurrent duplicates either
//! coalesce onto the in-flight leader or hit the cache entry the leader
//! published, so `flow.runs` stays at exactly 1.
//!
//! This lives in its own test binary on purpose — `mc_trace` counters
//! are process-global, and any other test recording spans in parallel
//! would pollute the totals asserted here.

use mc_serve::http::http_request;
use mc_serve::{ServeConfig, Server};

#[test]
fn duplicate_requests_produce_exactly_one_flow_run() {
    mc_trace::enable();
    let cache_dir = std::env::temp_dir().join(format!(
        "mcpm-serve-test-{}-trace-coalesce",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: cache_dir.clone(),
        threads: 4,
    };
    let server = Server::bind(&config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let run = std::thread::spawn(move || server.run().expect("server run"));

    // One sweep point = one pipeline run, so `flow.runs` below is an
    // exact count rather than styles-times-requests arithmetic.
    let body = r#"{"benchmark":"facet","max_clocks":1,"computations":30}"#;
    let responses: Vec<String> = std::thread::scope(|scope| {
        let addr = &addr;
        let handles: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(move || {
                    let (status, text) =
                        http_request(addr, "POST", "/sweep", body).expect("eval request");
                    assert_eq!(status, 200, "{text}");
                    text
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(responses[0], responses[1]);

    // A third request after both returned is a guaranteed disk-cache hit.
    let (status, text) = http_request(&addr, "POST", "/sweep", body).expect("third request");
    assert_eq!(status, 200);
    assert_eq!(text, responses[0]);

    let (status, _) = http_request(&addr, "POST", "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200);
    run.join().expect("server thread");
    mc_trace::disable();
    let trace = mc_trace::take();
    let _ = std::fs::remove_dir_all(&cache_dir);

    let counter = |name: &str| trace.runtime_counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("flow.runs"), 1, "{:?}", trace.runtime_counters);
    // The duplicate either coalesced (still in flight) or hit the cache
    // (leader already published); the third request always hits.
    assert_eq!(counter("serve.cache.hit") + counter("serve.coalesced"), 2);
    assert!(counter("serve.cache.miss") >= 1);
    let spans = trace.span_counts();
    assert_eq!(spans.get("serve.compute").copied().unwrap_or(0), 1);
    assert_eq!(spans.get("serve.request.sweep").copied().unwrap_or(0), 3);
}
