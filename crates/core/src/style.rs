//! Design styles: the five rows of the paper's evaluation tables, plus a
//! fully custom configuration for ablations.

use std::fmt;

use mc_alloc::Strategy;
use mc_rtl::{ControlPolicy, PowerMode};
use mc_tech::MemKind;

/// How a behaviour is synthesised and operated — one row of a paper table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignStyle {
    /// Conventional allocation, DFF registers, free-running clock, no
    /// power management ("Conven. Alloc. (Non-Gated Clock)").
    ConventionalNonGated,
    /// Conventional allocation, DFF registers, gated clocks plus ALU
    /// operand isolation ("Conven. Alloc. (Gated Clock)", the industrial
    /// baseline of the paper's reference \[10\]).
    ConventionalGated,
    /// The paper's scheme with `n` non-overlapping clocks: integrated
    /// allocation, latches, latched control lines. `MultiClock(1)` is the
    /// "1 Clock" row — same allocation discipline without partitioning.
    MultiClock(u32),
    /// Fully explicit configuration, for ablations.
    Custom {
        /// Allocation strategy.
        strategy: Strategy,
        /// Number of phase clocks.
        clocks: u32,
        /// Memory-element kind.
        mem_kind: MemKind,
        /// Transfer-variable insertion (integrated strategy only).
        transfers: bool,
        /// Operating power mode.
        mode: PowerMode,
    },
}

impl DesignStyle {
    /// The five styles of every paper table, in row order.
    #[must_use]
    pub fn paper_rows() -> [DesignStyle; 5] {
        [
            DesignStyle::ConventionalNonGated,
            DesignStyle::ConventionalGated,
            DesignStyle::MultiClock(1),
            DesignStyle::MultiClock(2),
            DesignStyle::MultiClock(3),
        ]
    }

    /// The number of phase clocks this style uses.
    #[must_use]
    pub fn clocks(&self) -> u32 {
        match self {
            DesignStyle::ConventionalNonGated | DesignStyle::ConventionalGated => 1,
            DesignStyle::MultiClock(n) => *n,
            DesignStyle::Custom { clocks, .. } => *clocks,
        }
    }

    /// The allocation strategy this style implies.
    #[must_use]
    pub fn strategy(&self) -> Strategy {
        match self {
            DesignStyle::ConventionalNonGated | DesignStyle::ConventionalGated => {
                Strategy::Conventional
            }
            DesignStyle::MultiClock(_) => Strategy::Integrated,
            DesignStyle::Custom { strategy, .. } => *strategy,
        }
    }

    /// The memory-element kind this style implies.
    #[must_use]
    pub fn mem_kind(&self) -> MemKind {
        match self {
            DesignStyle::ConventionalNonGated | DesignStyle::ConventionalGated => MemKind::Dff,
            DesignStyle::MultiClock(_) => MemKind::Latch,
            DesignStyle::Custom { mem_kind, .. } => *mem_kind,
        }
    }

    /// Whether integrated allocation inserts transfer variables.
    #[must_use]
    pub fn transfers(&self) -> bool {
        match self {
            DesignStyle::MultiClock(_) => true,
            DesignStyle::ConventionalNonGated | DesignStyle::ConventionalGated => false,
            DesignStyle::Custom { transfers, .. } => *transfers,
        }
    }

    /// The operating power mode this style implies.
    #[must_use]
    pub fn power_mode(&self) -> PowerMode {
        match self {
            DesignStyle::ConventionalNonGated => PowerMode::non_gated(),
            DesignStyle::ConventionalGated => PowerMode::gated(),
            DesignStyle::MultiClock(_) => PowerMode::multiclock(),
            DesignStyle::Custom { mode, .. } => *mode,
        }
    }

    /// The row label used in table output.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            DesignStyle::ConventionalNonGated => "Conven. Alloc. (Non-Gated Clock)".to_owned(),
            DesignStyle::ConventionalGated => "Conven. Alloc. (Gated Clock)".to_owned(),
            DesignStyle::MultiClock(n) => {
                if *n == 1 {
                    "1 Clock".to_owned()
                } else {
                    format!("{n} Clocks")
                }
            }
            DesignStyle::Custom {
                strategy,
                clocks,
                mem_kind,
                transfers,
                mode,
            } => {
                let mk = match mem_kind {
                    MemKind::Latch => "latch",
                    MemKind::Dff => "dff",
                };
                let pol = match mode.control_policy {
                    ControlPolicy::Hold => "hold",
                    ControlPolicy::Zero => "zero",
                };
                format!(
                    "custom({strategy}, {clocks} clk, {mk}, tr={transfers}, \
                     gated={}, iso={}, ctl={pol})",
                    mode.gated_mem_clocks, mode.operand_isolation
                )
            }
        }
    }
}

impl fmt::Display for DesignStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_are_the_five_table_rows() {
        let rows = DesignStyle::paper_rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].clocks(), 1);
        assert_eq!(rows[4].clocks(), 3);
        assert_eq!(rows[1].power_mode(), PowerMode::gated());
    }

    #[test]
    fn conventional_styles_use_dffs() {
        assert_eq!(DesignStyle::ConventionalNonGated.mem_kind(), MemKind::Dff);
        assert_eq!(DesignStyle::ConventionalGated.mem_kind(), MemKind::Dff);
        assert_eq!(DesignStyle::MultiClock(2).mem_kind(), MemKind::Latch);
    }

    #[test]
    fn labels_match_paper_table_rows() {
        assert!(DesignStyle::ConventionalGated
            .label()
            .contains("Gated Clock"));
        assert_eq!(DesignStyle::MultiClock(1).label(), "1 Clock");
        assert_eq!(DesignStyle::MultiClock(3).label(), "3 Clocks");
    }

    #[test]
    fn custom_label_is_descriptive() {
        let s = DesignStyle::Custom {
            strategy: Strategy::Split,
            clocks: 2,
            mem_kind: MemKind::Dff,
            transfers: false,
            mode: PowerMode::multiclock(),
        };
        let l = s.label();
        assert!(l.contains("split"));
        assert!(l.contains("2 clk"));
        assert!(l.contains("dff"));
    }
}
