//! The concrete passes of the synthesis flow and their typed artifacts.
//!
//! The DAC'96 scheme is a staged pipeline:
//!
//! ```text
//! Behavior ──PartitionPass──▶ PartitionedSchedule ──AllocatePass──▶ Datapath
//!     │                                                               │
//!     └────────────VerifyPass (equivalence oracle)◀───────────────────┤
//!                                                                     │
//!                         SimulatePass ──▶ SimTrace ──PowerPass──▶ DesignReport
//! ```
//!
//! Each pass implements [`Pass`]: a typed
//! input-artifact → output-artifact transformation that runs inside a
//! [`FlowContext`], which times it, records
//! artifact statistics, and collects its diagnostics. The
//! [`Flow`] driver chains the passes and caches
//! shareable artifacts content-keyed (see `flow.rs`).

use mc_alloc::{allocate, AllocOptions, Datapath};
use mc_clocks::ClockScheme;
use mc_dfg::benchmarks::Benchmark;
use mc_dfg::{Dfg, Schedule};
use mc_power::{evaluate_design_with_activity, DesignReport};
use mc_rtl::PowerMode;
use mc_sim::{Activity, SimBackend, SimConfig};

use crate::flow::{Artifact, Evaluated, Flow, FlowContext, Pass};
use crate::style::DesignStyle;
use crate::synthesizer::SynthesisError;

/// The flow's root artifact: a behaviour and its schedule.
#[derive(Debug, Clone)]
pub struct Behavior {
    /// The behavioural data-flow graph.
    pub dfg: Dfg,
    /// The control-step schedule.
    pub schedule: Schedule,
}

impl Behavior {
    /// Wraps a behaviour and schedule.
    #[must_use]
    pub fn new(dfg: Dfg, schedule: Schedule) -> Self {
        Behavior { dfg, schedule }
    }

    /// The behaviour of a bundled benchmark (cloned).
    #[must_use]
    pub fn for_benchmark(bm: &Benchmark) -> Self {
        Behavior::new(bm.dfg.clone(), bm.schedule.clone())
    }
}

impl Artifact for Behavior {
    fn label(&self) -> String {
        format!(
            "Behavior{{{}: {} ops, {} steps}}",
            self.dfg.name(),
            self.dfg.num_nodes(),
            self.schedule.length()
        )
    }

    fn size(&self) -> usize {
        self.dfg.num_nodes()
    }
}

/// The schedule partitioned over the phase clocks of a style: which
/// partition owns each control step, and how the operations distribute.
#[derive(Debug, Clone)]
pub struct PartitionedSchedule {
    /// The non-overlapping clock scheme.
    pub scheme: ClockScheme,
    /// The style this partitioning serves.
    pub style: DesignStyle,
    /// Operations per partition (index 0 = phase 1).
    pub ops_per_partition: Vec<usize>,
    /// Control steps owned per partition (index 0 = phase 1).
    pub steps_per_partition: Vec<u32>,
}

impl Artifact for PartitionedSchedule {
    fn label(&self) -> String {
        format!(
            "PartitionedSchedule{{{} clocks, ops {:?}}}",
            self.scheme.num_clocks(),
            self.ops_per_partition
        )
    }

    fn size(&self) -> usize {
        self.ops_per_partition.iter().sum()
    }
}

/// §3: build the clock scheme and partition the scheduled behaviour —
/// `Behavior → PartitionedSchedule`.
#[derive(Debug, Clone, Copy)]
pub struct PartitionPass {
    /// The design style whose clock count drives the partitioning.
    pub style: DesignStyle,
}

impl Pass for PartitionPass {
    type Input<'a> = &'a Behavior;
    type Output = PartitionedSchedule;

    fn name(&self) -> &'static str {
        "partition"
    }

    fn run(
        &self,
        behavior: Self::Input<'_>,
        ctx: &mut FlowContext,
    ) -> Result<Self::Output, SynthesisError> {
        let scheme = ClockScheme::new(self.style.clocks())?;
        let n = scheme.num_clocks() as usize;
        let mut ops = vec![0usize; n];
        let mut steps = vec![0u32; n];
        for t in 1..=behavior.schedule.length() {
            let phase = scheme.phase_of_step(t)?.get() as usize - 1;
            steps[phase] += 1;
            ops[phase] += behavior.schedule.nodes_at_step(t).len();
        }
        if n > 1 {
            if let Some(idle) = ops.iter().position(|&o| o == 0) {
                ctx.warn(
                    self.name(),
                    format!(
                        "partition {} owns no operations: its phase clock gates nothing",
                        idle + 1
                    ),
                );
            }
        }
        ctx.info(
            self.name(),
            format!(
                "{} control steps over {n} partition(s), ops {ops:?}",
                behavior.schedule.length()
            ),
        );
        Ok(PartitionedSchedule {
            scheme,
            style: self.style,
            ops_per_partition: ops,
            steps_per_partition: steps,
        })
    }
}

impl Artifact for Datapath {
    fn label(&self) -> String {
        let stats = self.netlist.stats();
        format!(
            "Datapath{{{}: {} ALUs, {} mems, {} nets}}",
            self.netlist.name(),
            stats.alus.len(),
            stats.mem_cells,
            stats.nets
        )
    }

    fn size(&self) -> usize {
        self.netlist.num_components()
    }
}

/// §4: allocate the partitioned behaviour into a structural datapath
/// (split / integrated / conventional) — `PartitionedSchedule → Datapath`.
/// The composed netlist rides inside the datapath artifact.
#[derive(Debug, Clone, Copy)]
pub struct AllocatePass;

impl Pass for AllocatePass {
    type Input<'a> = (&'a Behavior, &'a PartitionedSchedule);
    type Output = Datapath;

    fn name(&self) -> &'static str {
        "allocate"
    }

    fn run(
        &self,
        (behavior, partitioned): Self::Input<'_>,
        ctx: &mut FlowContext,
    ) -> Result<Self::Output, SynthesisError> {
        let style = partitioned.style;
        let opts = AllocOptions::new(style.strategy(), partitioned.scheme)
            .with_mem_kind(style.mem_kind())
            .with_transfers(style.transfers())
            .with_tech(ctx.tech().clone());
        let datapath = allocate(&behavior.dfg, &behavior.schedule, &opts)?;
        let transfers = datapath.problem.transfers;
        if transfers > 0 {
            ctx.info(
                self.name(),
                format!("inserted {transfers} transfer variable(s) (§4.2 step 1)"),
            );
        }
        Ok(datapath)
    }
}

/// Outcome of the equivalence oracle: how many random computations the
/// netlist matched the behaviour on.
#[derive(Debug, Clone, Copy)]
pub struct Verification {
    /// Number of random computations checked.
    pub computations: usize,
}

impl Artifact for Verification {
    fn label(&self) -> String {
        format!("Verification{{{} computations}}", self.computations)
    }

    fn size(&self) -> usize {
        self.computations
    }
}

/// The correctness oracle: simulate the netlist against direct DFG
/// evaluation over random vectors — `(Behavior, Datapath) → Verification`.
#[derive(Debug, Clone, Copy)]
pub struct VerifyPass {
    /// The power mode under which the netlist is exercised.
    pub mode: PowerMode,
}

impl Pass for VerifyPass {
    type Input<'a> = (&'a Behavior, &'a Datapath);
    type Output = Verification;

    fn name(&self) -> &'static str {
        "verify"
    }

    fn run(
        &self,
        (behavior, datapath): Self::Input<'_>,
        ctx: &mut FlowContext,
    ) -> Result<Self::Output, SynthesisError> {
        let computations = ctx.computations().min(64);
        mc_sim::verify_equivalence(
            &behavior.dfg,
            &datapath.netlist,
            self.mode,
            computations,
            ctx.seed(),
        )
        .map_err(SynthesisError::Equivalence)?;
        Ok(Verification { computations })
    }
}

/// Switching activity of one simulated run — the `SimTrace` artifact the
/// power model prices.
#[derive(Debug, Clone)]
pub struct SimTrace {
    /// Aggregated switching-activity counters.
    pub activity: Activity,
    /// The power mode the design ran under.
    pub mode: PowerMode,
    /// Computations simulated.
    pub computations: usize,
    /// The execution backend that produced the trace.
    pub backend: SimBackend,
    /// Simulation throughput in control steps per second (compile time
    /// included for the compiled backend; aggregated across seeds for
    /// Monte-Carlo runs).
    pub steps_per_sec: f64,
    /// Per-seed activities of a Monte-Carlo run (empty for the
    /// historical single-seed path; `seed_activities[0]` is the flow
    /// seed and equals [`SimTrace::activity`]).
    pub seed_activities: Vec<Activity>,
}

impl Artifact for SimTrace {
    fn label(&self) -> String {
        format!(
            "SimTrace{{{} steps, {} net toggles, {:.2e} steps/s}}",
            self.activity.steps,
            self.activity.total_net_toggles(),
            self.steps_per_sec
        )
    }

    fn size(&self) -> usize {
        self.activity.steps as usize
    }
}

/// §5.1: run the phase-accurate simulator over random stimulus and count
/// every priced event — `Datapath → SimTrace`.
#[derive(Debug, Clone, Copy)]
pub struct SimulatePass {
    /// The power mode under which the design operates.
    pub mode: PowerMode,
}

impl Pass for SimulatePass {
    type Input<'a> = &'a Datapath;
    type Output = SimTrace;

    fn name(&self) -> &'static str {
        "simulate"
    }

    fn run(
        &self,
        datapath: Self::Input<'_>,
        ctx: &mut FlowContext,
    ) -> Result<Self::Output, SynthesisError> {
        let cfg = SimConfig::new(self.mode, ctx.computations(), ctx.seed());
        if ctx.power_seeds() > 1 {
            return self.run_monte_carlo(datapath, ctx, cfg.backend);
        }
        let started = std::time::Instant::now();
        let result = mc_sim::simulate(&datapath.netlist, &cfg);
        let elapsed = started.elapsed().as_secs_f64();
        let steps_per_sec = if elapsed > 0.0 {
            result.activity.steps as f64 / elapsed
        } else {
            f64::INFINITY
        };
        ctx.info(
            self.name(),
            format!(
                "{} backend: {} steps in {:.2} ms ({:.3e} steps/s)",
                cfg.backend,
                result.activity.steps,
                elapsed * 1e3,
                steps_per_sec
            ),
        );
        Ok(SimTrace {
            activity: result.activity,
            mode: self.mode,
            computations: ctx.computations(),
            backend: cfg.backend,
            steps_per_sec,
            seed_activities: Vec::new(),
        })
    }
}

impl SimulatePass {
    /// Monte-Carlo path: the selected multi-seed kernel
    /// ([`FlowContext::backend`]) sweeps [`FlowContext::power_seeds`]
    /// derived seeds, [`FlowContext::batch`] lanes at a time (the
    /// bit-sliced kernel always runs 64-seed populations). Lane 0
    /// carries the flow seed, so [`SimTrace::activity`] is bit-identical
    /// to the single-seed run.
    fn run_monte_carlo(
        &self,
        datapath: &Datapath,
        ctx: &mut FlowContext,
        backend: SimBackend,
    ) -> Result<SimTrace, SynthesisError> {
        let seeds = mc_power::derive_seeds(ctx.seed(), ctx.power_seeds());
        let started = std::time::Instant::now();
        let kernel =
            mc_sim::SeedKernel::compile(&datapath.netlist, self.mode, ctx.backend(), ctx.batch());
        let seed_activities: Vec<Activity> =
            kernel.run_seeds_activity(ctx.computations(), &seeds, /* collect_profile */ false);
        let elapsed = started.elapsed().as_secs_f64();
        let total_steps: u64 = seed_activities.iter().map(|a| a.steps).sum();
        let steps_per_sec = if elapsed > 0.0 {
            total_steps as f64 / elapsed
        } else {
            f64::INFINITY
        };
        ctx.info(
            self.name(),
            format!(
                "{} backend: {} seeds x {} lanes, {} steps in {:.2} ms ({:.3e} steps/s)",
                kernel.backend(),
                seeds.len(),
                kernel.lanes(),
                total_steps,
                elapsed * 1e3,
                steps_per_sec
            ),
        );
        let activity = seed_activities[0].clone();
        Ok(SimTrace {
            activity,
            mode: self.mode,
            computations: ctx.computations(),
            backend,
            steps_per_sec,
            seed_activities,
        })
    }
}

/// The artifact of a [`SweepPass`]: every point's full instrumented
/// evaluation, in input order.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One instrumented evaluation per swept style, in input order.
    pub evaluated: Vec<Evaluated>,
}

impl SweepOutcome {
    /// How many of the sweep's pass executions were served from the
    /// artifact cache instead of running.
    #[must_use]
    pub fn cache_served(&self) -> usize {
        self.evaluated
            .iter()
            .flat_map(|e| &e.metrics)
            .filter(|m| m.cache_hit)
            .count()
    }
}

impl Artifact for SweepOutcome {
    fn label(&self) -> String {
        format!(
            "Sweep{{{} points, {} cache-served passes}}",
            self.evaluated.len(),
            self.cache_served()
        )
    }

    fn size(&self) -> usize {
        self.evaluated.len()
    }
}

/// A multi-point evaluation as one instrumented pass: every style runs
/// through the full pipeline of the shared [`Flow`] (so allocations
/// common to several points are synthesised once and served from the
/// artifact cache), and the sweep reports per-point timings and cache
/// diagnostics into the surrounding [`FlowContext`] — the explorer and
/// the `mcpm sweep` timing tables read them from there.
#[derive(Debug, Clone, Copy)]
pub struct SweepPass;

impl Pass for SweepPass {
    type Input<'a> = (&'a Flow, &'a [DesignStyle]);
    type Output = SweepOutcome;

    fn name(&self) -> &'static str {
        "sweep"
    }

    fn run(
        &self,
        (flow, styles): Self::Input<'_>,
        ctx: &mut FlowContext,
    ) -> Result<Self::Output, SynthesisError> {
        let mut evaluated = Vec::with_capacity(styles.len());
        for &style in styles {
            let e = flow.evaluate_instrumented(style)?;
            let served = e.metrics.iter().filter(|m| m.cache_hit).count();
            ctx.info(
                self.name(),
                format!(
                    "{}: {:.1?} across {} pass(es), {} cache-served",
                    style.label(),
                    e.total_duration(),
                    e.metrics.len(),
                    served
                ),
            );
            evaluated.push(e);
        }
        Ok(SweepOutcome { evaluated })
    }
}

impl Artifact for DesignReport {
    fn label(&self) -> String {
        format!(
            "DesignReport{{{}: {:.2} mW, {:.0} λ²}}",
            self.name, self.power.total_mw, self.area.total_lambda2
        )
    }

    fn size(&self) -> usize {
        self.stats.mem_cells + self.stats.mux_inputs + self.stats.alus.len()
    }
}

/// §5: price the counted transitions with the technology library —
/// `(Datapath, SimTrace) → DesignReport`.
#[derive(Debug, Clone, Copy)]
pub struct PowerPass;

impl Pass for PowerPass {
    type Input<'a> = (&'a Datapath, &'a SimTrace);
    type Output = DesignReport;

    fn name(&self) -> &'static str {
        "power"
    }

    fn run(
        &self,
        (datapath, trace): Self::Input<'_>,
        ctx: &mut FlowContext,
    ) -> Result<Self::Output, SynthesisError> {
        if trace.seed_activities.len() > 1 {
            return Ok(mc_power::evaluate_design_monte_carlo(
                &datapath.netlist,
                trace.mode,
                ctx.tech(),
                &trace.seed_activities,
            ));
        }
        Ok(evaluate_design_with_activity(
            &datapath.netlist,
            trace.mode,
            ctx.tech(),
            &trace.activity,
        ))
    }
}
