//! The single-clock → multi-phase retrofit flow (§4 applied to *existing*
//! RTL): take a conventional single-clock datapath — imported from
//! structural VHDL, the `mcnl` interchange format, or an in-memory
//! [`Netlist`] — and re-emit it as a latch-based multi-clock design under
//! the paper's non-overlapping `n`-phase scheme, without rescheduling.
//!
//! Where the allocator (`mc-alloc`) *builds* a multi-clock datapath from a
//! behaviour, the retrofit *converts* one that already exists:
//!
//! 1. **Import** — parse the source into the flat netlist and lift it into
//!    the hierarchical [`Circuit`] model ([`retrofit_source`]).
//! 2. **Lifetime inference** — derive each register's write steps and
//!    per-step read cones from the controller, and cross-check them
//!    against observed activity from a compiled-kernel probe simulation
//!    ([`infer_lifetimes`]).
//! 3. **Phase partition** — assign every register a phase `1..=n` so that
//!    within each original step, every register is captured strictly
//!    before the registers it reads (the non-overlapping clocking rule
//!    that makes transparent latches safe). Constraint chains deeper than
//!    `n` and read/write cycles are broken with *shadow latches*: a
//!    phase-1 latch that samples the old value at the start of every step
//!    group, so readers see pre-step state regardless of capture order.
//! 4. **Emit** — stretch the controller by `n` (each original step becomes
//!    `n` sub-steps holding the same selects and functions), schedule each
//!    register's load on its own phase's sub-step, convert every DFF to a
//!    latch, and flatten back to a [`Netlist`].
//! 5. **Verify** — simulate original and converted designs over identical
//!    stimulus and require bit-identical outputs per computation, then
//!    price both with the Monte-Carlo power estimator
//!    ([`verify_retrofit`]).
//!
//! The converted design computes at `f/n` per phase — throughput per
//! computation drops by the reported latency factor `n` — but every latch
//! is clocked at `f/n` with the cheaper latch clock load, which is the
//! paper's power trade.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use mc_clocks::{ClockError, ClockScheme, PhaseId};
use mc_power::{evaluate_design_monte_carlo, DesignReport};
use mc_rtl::discipline::check_latch_discipline;
use mc_rtl::hier::{Cell, Circuit, CircuitWord, HierError};
use mc_rtl::import::{from_mcnl, from_vhdl, ImportError};
use mc_rtl::{Netlist, Path, PowerMode};
use mc_sim::{
    simulate, try_simulate_with_inputs, Activity, BatchBackend, BitslicedProgram, SimConfig,
    SimError, Stimulus,
};
use mc_tech::{MemKind, TechLibrary};

/// Errors from the retrofit flow.
#[derive(Debug)]
pub enum RetrofitError {
    /// The source text failed to parse.
    Import(ImportError),
    /// The input design is not single-clock (retrofit converts
    /// conventional designs; multi-clock inputs are already converted).
    NotSingleClock(u32),
    /// The target clock count is not a valid multi-phase scheme.
    Clock(ClockError),
    /// Retrofitting needs at least two phases.
    TooFewClocks(u32),
    /// The rewritten circuit failed to flatten (an internal bug).
    Hier(HierError),
    /// The converted netlist violates the latch discipline (an internal
    /// bug in the phase partition).
    Discipline(String),
    /// Simulation of either design failed.
    Sim(SimError),
    /// The converted design diverged from the original.
    Diverged(Box<RetrofitMismatch>),
}

/// The first observed output divergence between original and converted
/// designs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetrofitMismatch {
    /// The stimulus seed under which the divergence occurred.
    pub seed: u64,
    /// The 0-based computation index.
    pub computation: usize,
    /// The diverging output port.
    pub port: String,
    /// The original design's output value.
    pub original: u64,
    /// The converted design's output value.
    pub converted: u64,
}

impl fmt::Display for RetrofitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetrofitError::Import(e) => write!(f, "import: {e}"),
            RetrofitError::NotSingleClock(n) => {
                write!(
                    f,
                    "input design runs {n} clocks; retrofit expects a single clock"
                )
            }
            RetrofitError::Clock(e) => write!(f, "clock scheme: {e}"),
            RetrofitError::TooFewClocks(n) => {
                write!(f, "retrofit needs at least 2 phases, got {n}")
            }
            RetrofitError::Hier(e) => write!(f, "circuit rewrite: {e}"),
            RetrofitError::Discipline(s) => {
                write!(f, "converted design violates the latch discipline: {s}")
            }
            RetrofitError::Sim(e) => write!(f, "simulation: {e}"),
            RetrofitError::Diverged(m) => write!(
                f,
                "seed {} computation {}: output `{}` diverged ({} vs {})",
                m.seed, m.computation, m.port, m.original, m.converted
            ),
        }
    }
}

impl std::error::Error for RetrofitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RetrofitError::Import(e) => Some(e),
            RetrofitError::Clock(e) => Some(e),
            RetrofitError::Hier(e) => Some(e),
            RetrofitError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ImportError> for RetrofitError {
    fn from(e: ImportError) -> Self {
        RetrofitError::Import(e)
    }
}

impl From<HierError> for RetrofitError {
    fn from(e: HierError) -> Self {
        RetrofitError::Hier(e)
    }
}

impl From<SimError> for RetrofitError {
    fn from(e: SimError) -> Self {
        RetrofitError::Sim(e)
    }
}

/// Register lifetimes of a single-clock design: per-register write steps
/// and read cones derived from the controller, cross-checked against a
/// compiled-kernel probe simulation.
#[derive(Debug, Clone)]
pub struct Lifetimes {
    /// 1-based steps where the controller asserts each register's load.
    pub writes: BTreeMap<Path, BTreeSet<u32>>,
    /// 1-based steps where each register is read — combinationally by a
    /// capturing register, or by a primary output at the period boundary.
    pub reads: BTreeMap<Path, BTreeSet<u32>>,
    /// Per step (index 0 = step 1): each loading register mapped to the
    /// source registers its data-input cone reads under that step's
    /// control word.
    pub cones: Vec<BTreeMap<Path, BTreeSet<Path>>>,
    /// Stored-bit flips per register observed by the probe simulation;
    /// a register absent from `writes` must show zero toggles here.
    pub observed_store_toggles: BTreeMap<Path, u64>,
}

/// The combinational source registers of `start`'s value under `word`:
/// every `Cell::Mem` whose output reaches `start` through ALUs and the
/// selected mux paths (unselected muxes are traversed conservatively, as
/// in the flat discipline check).
fn cone_sources(circuit: &Circuit, start: &Path, word: &CircuitWord) -> BTreeSet<Path> {
    let mut out = BTreeSet::new();
    let mut stack = vec![start.clone()];
    let mut seen = BTreeSet::new();
    while let Some(p) = stack.pop() {
        if !seen.insert(p.clone()) {
            continue;
        }
        match &circuit.cells[&p] {
            Cell::Input { .. } | Cell::Const { .. } => {}
            Cell::Mem { .. } => {
                out.insert(p);
            }
            Cell::Alu { a, b, .. } => {
                stack.push(a.clone());
                stack.push(b.clone());
            }
            Cell::Mux { inputs } => match word.mux_sel.get(&p) {
                Some(&s) if s < inputs.len() => stack.push(inputs[s].clone()),
                _ => stack.extend(inputs.iter().cloned()),
            },
        }
    }
    out
}

/// Infers register lifetimes for a single-clock design: write steps and
/// read cones from the controller schedule, plus observed store activity
/// from a `probe_computations`-long compiled-kernel run seeded with
/// `probe_seed`.
#[must_use]
pub fn infer_lifetimes(
    netlist: &Netlist,
    circuit: &Circuit,
    probe_computations: usize,
    probe_seed: u64,
) -> Lifetimes {
    let _span = mc_trace::span("retrofit.lifetimes");
    let period = circuit.words.len() as u32;
    let mut writes: BTreeMap<Path, BTreeSet<u32>> = BTreeMap::new();
    let mut reads: BTreeMap<Path, BTreeSet<u32>> = BTreeMap::new();
    let mut cones = Vec::with_capacity(circuit.words.len());
    for (i, word) in circuit.words.iter().enumerate() {
        let t = i as u32 + 1;
        let mut step_cones = BTreeMap::new();
        for loader in &word.mem_load {
            writes.entry(loader.clone()).or_default().insert(t);
            let Cell::Mem { input, .. } = &circuit.cells[loader] else {
                continue; // flatten rejects loads on non-mems later
            };
            let srcs = cone_sources(circuit, input, word);
            for src in &srcs {
                reads.entry(src.clone()).or_default().insert(t);
            }
            step_cones.insert(loader.clone(), srcs);
        }
        cones.push(step_cones);
    }
    // Primary outputs read their driving registers at the boundary step.
    for (_, p) in &circuit.outputs {
        if matches!(circuit.cells.get(p), Some(Cell::Mem { .. })) {
            reads.entry(p.clone()).or_default().insert(period);
        }
    }
    // Probe run: the compiled kernel's store counters bound which
    // registers actually change — a register the controller never loads
    // must be inert in silicon too.
    let probe = simulate(
        netlist,
        &SimConfig::new(PowerMode::non_gated(), probe_computations, probe_seed),
    );
    let observed_store_toggles = netlist
        .mems()
        .map(|m| {
            let c = m.comp();
            (
                netlist.component(c).path().clone(),
                probe.activity.store_toggles[c.index()],
            )
        })
        .collect();
    Lifetimes {
        writes,
        reads,
        cones,
        observed_store_toggles,
    }
}

/// Assigns each register a phase in `1..=n` and selects the registers
/// that need shadow latches.
///
/// Constraint: for every original step `t` and every pair of registers
/// `(reader, source)` both written at `t` where `reader`'s input cone
/// reads `source`, `phase(reader) < phase(source)` — the reader captures
/// the old value before the source's latch opens. Registers written at
/// the boundary step, and registers driving primary outputs, are pinned
/// to phase `n` (the boundary sub-step), preserving the reset-preload and
/// output-observation semantics. Conflicts — cycles, chains deeper than
/// `n`, edges into pinned registers — are resolved by shadowing the
/// lexicographically smallest offender and re-solving to a fixpoint.
fn partition_phases(
    circuit: &Circuit,
    life: &Lifetimes,
    n: u32,
) -> (BTreeMap<Path, u32>, BTreeSet<Path>) {
    let _span = mc_trace::span("retrofit.partition");
    let period = circuit.words.len() as u32;
    let mems: Vec<&Path> = circuit
        .cells
        .iter()
        .filter(|(_, c)| matches!(c, Cell::Mem { .. }))
        .map(|(p, _)| p)
        .collect();
    let mut pinned: BTreeSet<&Path> = mems
        .iter()
        .filter(|p| life.writes.get(**p).is_some_and(|w| w.contains(&period)))
        .copied()
        .collect();
    for (_, p) in &circuit.outputs {
        if let Some((key, Cell::Mem { .. })) = circuit.cells.get_key_value(p) {
            pinned.insert(key);
        }
    }

    let mut shadowed: BTreeSet<Path> = BTreeSet::new();
    loop {
        // Constraint edges reader → source among same-step writers whose
        // source is not (yet) shadowed.
        let mut preds: BTreeMap<&Path, BTreeSet<&Path>> = BTreeMap::new();
        let mut reads_shadow: BTreeSet<&Path> = BTreeSet::new();
        for (i, step_cones) in life.cones.iter().enumerate() {
            let t = i as u32 + 1;
            for (reader, srcs) in step_cones {
                let reader = circuit
                    .cells
                    .get_key_value(reader)
                    .expect("cone keys exist")
                    .0;
                for src in srcs {
                    if shadowed.contains(src) {
                        reads_shadow.insert(reader);
                    } else if src != reader && life.writes.get(src).is_some_and(|w| w.contains(&t))
                    {
                        let src = circuit.cells.get_key_value(src).expect("cone srcs exist").0;
                        preds.entry(src).or_default().insert(reader);
                    }
                }
            }
        }
        let base = |p: &Path| -> u32 {
            if pinned.contains(p) {
                n
            } else if shadowed.contains(p) || reads_shadow.contains(p) {
                2
            } else {
                1
            }
        };
        // Longest-chain levels over the constraint DAG (Kahn, determinate
        // ready order by path).
        let mut indeg: BTreeMap<&Path, usize> = mems.iter().map(|&p| (p, 0)).collect();
        let mut succs: BTreeMap<&Path, Vec<&Path>> = BTreeMap::new();
        for (&src, readers) in &preds {
            *indeg.get_mut(src).expect("src is a mem") += readers.len();
            for &r in readers {
                succs.entry(r).or_default().push(src);
            }
        }
        let mut lvl: BTreeMap<&Path, u32> = BTreeMap::new();
        let mut ready: BTreeSet<&Path> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&p, _)| p)
            .collect();
        while let Some(&p) = ready.iter().next() {
            ready.remove(p);
            let chain = preds
                .get(p)
                .into_iter()
                .flatten()
                .map(|r| lvl[r] + 1)
                .max()
                .unwrap_or(0);
            lvl.insert(p, base(p).max(chain));
            for &s in succs.get(p).into_iter().flatten() {
                let d = indeg.get_mut(s).expect("succ is a mem");
                *d -= 1;
                if *d == 0 {
                    ready.insert(s);
                }
            }
        }
        if lvl.len() < mems.len() {
            // A read/write cycle among same-step writers: shadow the
            // smallest unlevelled register and re-solve.
            let stuck = mems
                .iter()
                .find(|p| !lvl.contains_key(**p))
                .expect("unlevelled register exists");
            shadowed.insert((*stuck).clone());
            continue;
        }
        if let Some((&p, _)) = lvl.iter().find(|(_, &l)| l > n) {
            shadowed.insert(p.clone());
            continue;
        }
        let phases = mems
            .iter()
            .map(|&p| (p.clone(), if pinned.contains(p) { n } else { lvl[p] }))
            .collect();
        return (phases, shadowed);
    }
}

/// Chooses a fresh path for `p`'s shadow latch (the path with `_shadow`
/// appended to the leaf, uniquified against existing cells and previously
/// chosen shadows).
fn shadow_path(p: &Path, taken: &BTreeMap<Path, Cell>, chosen: &BTreeMap<Path, Path>) -> Path {
    let mut candidate = Path::parse(&format!("{p}_shadow")).expect("valid shadow path");
    let mut k = 2u32;
    while taken.contains_key(&candidate) || chosen.values().any(|c| c == &candidate) {
        candidate = Path::parse(&format!("{p}_shadow{k}")).expect("valid shadow path");
        k += 1;
    }
    candidate
}

/// Rewrites `circuit` into the `n`-phase latch form: controller stretched
/// by `n`, loads scheduled on each register's phase sub-step, every
/// memory element converted to a latch, shadow latches inserted and their
/// readers redirected.
fn emit_multiphase(
    circuit: &Circuit,
    scheme: ClockScheme,
    phases: &BTreeMap<Path, u32>,
    shadowed: &BTreeSet<Path>,
) -> Circuit {
    let _span = mc_trace::span("retrofit.emit");
    let n = scheme.num_clocks();
    let period = circuit.words.len() as u32;
    let mut shadow_of: BTreeMap<Path, Path> = BTreeMap::new();
    for p in shadowed {
        let sp = shadow_path(p, &circuit.cells, &shadow_of);
        shadow_of.insert(p.clone(), sp);
    }
    let redirect = |p: &Path| shadow_of.get(p).cloned().unwrap_or_else(|| p.clone());

    let mut out = Circuit::new(
        &format!("{}_retro{}clk", circuit.name, n),
        circuit.width,
        scheme,
        period * n,
    );
    for (p, cell) in &circuit.cells {
        let rewritten = match cell {
            Cell::Input { port } => Cell::Input { port: port.clone() },
            Cell::Const { value } => Cell::Const { value: *value },
            Cell::Alu { fs, a, b } => Cell::Alu {
                fs: *fs,
                a: redirect(a),
                b: redirect(b),
            },
            Cell::Mux { inputs } => Cell::Mux {
                inputs: inputs.iter().map(&redirect).collect(),
            },
            Cell::Mem { input, .. } => Cell::Mem {
                kind: MemKind::Latch,
                phase: PhaseId::new(phases[p]),
                input: redirect(input),
            },
        };
        out.cells.insert(p.clone(), rewritten);
    }
    // Shadow latches: phase 1, fed by the shadowed register directly (not
    // through the redirect — the shadow is the one legitimate old-value
    // reader).
    for (orig, sp) in &shadow_of {
        out.cells.insert(
            sp.clone(),
            Cell::Mem {
                kind: MemKind::Latch,
                phase: PhaseId::new(1),
                input: orig.clone(),
            },
        );
    }
    for t in 1..=period {
        let word = &circuit.words[(t - 1) as usize];
        for k in 1..=n {
            let sub = &mut out.words[((t - 1) * n + k - 1) as usize];
            sub.mux_sel = word.mux_sel.clone();
            sub.alu_fn = word.alu_fn.clone();
        }
        for m in &word.mem_load {
            let k = phases[m];
            out.words[((t - 1) * n + k - 1) as usize]
                .mem_load
                .insert(m.clone());
        }
        // Every shadow samples its register's pre-step value on phase 1 of
        // every step group.
        for sp in shadow_of.values() {
            out.words[((t - 1) * n) as usize]
                .mem_load
                .insert(sp.clone());
        }
    }
    // Outputs keep reading the original registers: shadows lag by one
    // step group, but output registers hold their final values.
    out.outputs = circuit.outputs.clone();
    out
}

/// A retrofitted design: the original single-clock netlist, the rewritten
/// multi-phase circuit, and its flattened form.
#[derive(Debug, Clone)]
pub struct Retrofit {
    /// The single-clock input design.
    pub original: Netlist,
    /// The rewritten hierarchical circuit (latch-based, `clocks` phases).
    pub circuit: Circuit,
    /// The flattened multi-phase netlist.
    pub converted: Netlist,
    /// The number of phase clocks.
    pub clocks: u32,
    /// Phase assigned to each original register.
    pub phases: BTreeMap<Path, PhaseId>,
    /// Registers that received a shadow latch.
    pub shadowed: BTreeSet<Path>,
    /// The inferred lifetimes the partition was computed from.
    pub lifetimes: Lifetimes,
}

impl Retrofit {
    /// Registers per phase, indexed `[phase 1, …, phase n]` (shadow
    /// latches included in phase 1).
    #[must_use]
    pub fn phase_histogram(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.clocks as usize];
        for &p in self.phases.values() {
            counts[p.index()] += 1;
        }
        counts[0] += self.shadowed.len();
        counts
    }
}

/// Retrofits a single-clock netlist onto `clocks` non-overlapping phases.
///
/// # Errors
///
/// Returns [`RetrofitError::NotSingleClock`] for multi-clock inputs,
/// [`RetrofitError::TooFewClocks`]/[`RetrofitError::Clock`] for bad
/// targets, and internal-bug variants if the rewritten circuit fails to
/// flatten or violates the latch discipline.
pub fn retrofit_netlist(original: Netlist, clocks: u32) -> Result<Retrofit, RetrofitError> {
    let _span = mc_trace::span("retrofit");
    let source_clocks = original.scheme().num_clocks();
    if source_clocks != 1 {
        return Err(RetrofitError::NotSingleClock(source_clocks));
    }
    if clocks < 2 {
        return Err(RetrofitError::TooFewClocks(clocks));
    }
    let scheme = ClockScheme::new(clocks).map_err(RetrofitError::Clock)?;
    let circuit = Circuit::from_netlist(&original);
    let lifetimes = infer_lifetimes(&original, &circuit, 64, 0xC0FF_EE00);
    let (phases, shadowed) = partition_phases(&circuit, &lifetimes, clocks);
    let multi = emit_multiphase(&circuit, scheme, &phases, &shadowed);
    let converted = {
        let _span = mc_trace::span("retrofit.flatten");
        multi.flatten()?
    };
    let hazards = check_latch_discipline(&converted, false);
    if !hazards.is_empty() {
        let listing: Vec<String> = hazards.iter().take(3).map(ToString::to_string).collect();
        return Err(RetrofitError::Discipline(format!(
            "{} hazard(s): {}",
            hazards.len(),
            listing.join("; ")
        )));
    }
    Ok(Retrofit {
        original,
        circuit: multi,
        converted,
        clocks,
        phases: phases
            .into_iter()
            .map(|(p, k)| (p, PhaseId::new(k)))
            .collect(),
        shadowed,
        lifetimes,
    })
}

/// Imports a structural design from text — `mc-rtl`'s exported VHDL when
/// the text contains an `entity`, the `mcnl` interchange format otherwise
/// — and retrofits it onto `clocks` phases.
///
/// # Errors
///
/// [`RetrofitError::Import`] for parse failures, plus everything
/// [`retrofit_netlist`] returns.
pub fn retrofit_source(text: &str, clocks: u32) -> Result<Retrofit, RetrofitError> {
    let netlist = {
        let _span = mc_trace::span("retrofit.import");
        if text.contains("entity ") {
            from_vhdl(text)?
        } else {
            from_mcnl(text)?
        }
    };
    retrofit_netlist(netlist, clocks)
}

/// Configuration for [`verify_retrofit`].
#[derive(Debug, Clone)]
pub struct RetrofitOptions {
    /// Computations simulated per stimulus seed.
    pub computations: usize,
    /// Stimulus seeds (one Monte-Carlo sample each).
    pub seeds: Vec<u64>,
    /// Fan the per-seed simulations over scoped threads. The report is
    /// bit-identical either way; parallelism only changes wall-clock.
    pub parallel: bool,
    /// The simulation kernel verifying the seeds: [`BatchBackend::Batched`]
    /// runs one scalar simulation per seed (optionally in parallel),
    /// [`BatchBackend::Bitsliced`] sweeps the whole seed population
    /// through the bit-plane kernel in one pass. Per-seed activities and
    /// outputs are bit-identical either way, so the report never encodes
    /// the backend.
    pub backend: BatchBackend,
    /// The technology library pricing both designs.
    pub tech: TechLibrary,
}

impl Default for RetrofitOptions {
    fn default() -> Self {
        RetrofitOptions {
            computations: 200,
            seeds: mc_power::derive_seeds(42, 5),
            parallel: false,
            backend: BatchBackend::default(),
            tech: TechLibrary::vsc450(),
        }
    }
}

/// The verified comparison of a retrofit: equivalence plus Monte-Carlo
/// power/area of both designs.
#[derive(Debug, Clone)]
pub struct RetrofitReport {
    /// Evaluation of the single-clock original (non-gated clocks).
    pub original: DesignReport,
    /// Evaluation of the converted multi-phase design.
    pub converted: DesignReport,
    /// Power reduction of the converted design vs the original, percent.
    pub power_reduction_pct: f64,
    /// Steps per computation grow by this factor (`n`): the paper's
    /// latency cost of running each phase at `f/n` without rescheduling.
    pub latency_factor: u32,
    /// Shadow latches inserted.
    pub shadows: usize,
    /// Registers per phase (shadows counted in phase 1).
    pub phase_histogram: Vec<usize>,
    /// Computations checked per seed.
    pub computations: usize,
    /// Stimulus seeds checked.
    pub seeds: usize,
}

/// Finds the first output divergence between the two designs' runs for
/// one seed — the shared check of the scalar and bit-sliced paths, so
/// both report the identical [`RetrofitMismatch`].
fn check_outputs(
    seed: u64,
    orig: &[BTreeMap<String, u64>],
    conv: &[BTreeMap<String, u64>],
) -> Result<(), RetrofitError> {
    for (c, (o, v)) in orig.iter().zip(conv).enumerate() {
        if o != v {
            let (port, original, converted) = o
                .iter()
                .find_map(|(name, &ov)| {
                    let cv = v.get(name).copied().unwrap_or(u64::MAX);
                    (cv != ov).then(|| (name.clone(), ov, cv))
                })
                .unwrap_or_else(|| ("<ports>".to_owned(), 0, 0));
            return Err(RetrofitError::Diverged(Box::new(RetrofitMismatch {
                seed,
                computation: c,
                port,
                original,
                converted,
            })));
        }
    }
    Ok(())
}

/// Simulates one seed on both designs and checks output equivalence.
fn run_seed(
    r: &Retrofit,
    computations: usize,
    seed: u64,
) -> Result<(Activity, Activity), RetrofitError> {
    let vectors = Stimulus::UniformRandom
        .flat_vectors(&r.original, computations, seed)
        .to_vectors();
    let orig = try_simulate_with_inputs(&r.original, PowerMode::non_gated(), &vectors, false)?;
    let conv = try_simulate_with_inputs(&r.converted, PowerMode::multiclock(), &vectors, false)?;
    check_outputs(seed, &orig.outputs, &conv.outputs)?;
    Ok((orig.activity, conv.activity))
}

/// Bit-sliced path: sweeps the whole seed population through the
/// bit-plane kernel on both designs at once. Each seed's stimulus is the
/// same [`Stimulus::UniformRandom`] draw the scalar path makes, seeds are
/// checked in schedule order and computations in order within a seed, so
/// the first reported divergence — and every activity — is bit-identical
/// to [`run_seed`] over the same schedule.
fn run_seeds_bitsliced(
    r: &Retrofit,
    computations: usize,
    seeds: &[u64],
) -> Result<Vec<(Activity, Activity)>, RetrofitError> {
    let vectors: Vec<Vec<BTreeMap<String, u64>>> = seeds
        .iter()
        .map(|&seed| {
            Stimulus::UniformRandom
                .flat_vectors(&r.original, computations, seed)
                .to_vectors()
        })
        .collect();
    let orig = BitslicedProgram::compile(&r.original, PowerMode::non_gated())
        .run_vectors(&vectors, false)?;
    let conv = BitslicedProgram::compile(&r.converted, PowerMode::multiclock())
        .run_vectors(&vectors, false)?;
    for ((&seed, o), v) in seeds.iter().zip(&orig).zip(&conv) {
        check_outputs(seed, &o.outputs, &v.outputs)?;
    }
    Ok(orig
        .into_iter()
        .zip(conv)
        .map(|(o, v)| (o.activity, v.activity))
        .collect())
}

/// Verifies a retrofit — bit-identical outputs over every seed — and
/// prices both designs with the Monte-Carlo estimator.
///
/// Deterministic: sequential and parallel runs produce bit-identical
/// reports (per-seed work is independent; results are reduced in seed
/// order).
///
/// # Errors
///
/// [`RetrofitError::Diverged`] on the first output mismatch,
/// [`RetrofitError::Sim`] if a simulation rejects its stimulus.
pub fn verify_retrofit(
    r: &Retrofit,
    opts: &RetrofitOptions,
) -> Result<RetrofitReport, RetrofitError> {
    let _span = mc_trace::span("retrofit.verify");
    assert!(
        !opts.seeds.is_empty(),
        "verification needs at least one seed"
    );
    let pairs: Vec<Result<(Activity, Activity), RetrofitError>> =
        if opts.backend == BatchBackend::Bitsliced {
            // One population sweep per design; `parallel` is moot here.
            match run_seeds_bitsliced(r, opts.computations, &opts.seeds) {
                Ok(pairs) => pairs.into_iter().map(Ok).collect(),
                Err(e) => vec![Err(e)],
            }
        } else if opts.parallel {
            std::thread::scope(|s| {
                let handles: Vec<_> = opts
                    .seeds
                    .iter()
                    .map(|&seed| {
                        s.spawn(move || {
                            let out = run_seed(r, opts.computations, seed);
                            mc_trace::flush();
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("seed worker panicked"))
                    .collect()
            })
        } else {
            opts.seeds
                .iter()
                .map(|&seed| run_seed(r, opts.computations, seed))
                .collect()
        };
    let mut orig_acts = Vec::with_capacity(pairs.len());
    let mut conv_acts = Vec::with_capacity(pairs.len());
    for p in pairs {
        let (o, c) = p?;
        orig_acts.push(o);
        conv_acts.push(c);
    }
    let original =
        evaluate_design_monte_carlo(&r.original, PowerMode::non_gated(), &opts.tech, &orig_acts);
    let converted = evaluate_design_monte_carlo(
        &r.converted,
        PowerMode::multiclock(),
        &opts.tech,
        &conv_acts,
    );
    let power_reduction_pct = 100.0 * converted.power.reduction_vs(&original.power);
    Ok(RetrofitReport {
        power_reduction_pct,
        latency_factor: r.clocks,
        shadows: r.shadowed.len(),
        phase_histogram: r.phase_histogram(),
        computations: opts.computations,
        seeds: opts.seeds.len(),
        original,
        converted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignStyle, Synthesizer};
    use mc_dfg::benchmarks;
    use mc_rtl::export::to_vhdl;

    fn conventional(bm: &benchmarks::Benchmark) -> Netlist {
        Synthesizer::for_benchmark(bm)
            .synthesize(DesignStyle::ConventionalNonGated)
            .expect("paper benchmarks synthesise conventionally")
            .datapath
            .netlist
    }

    #[test]
    fn retrofit_converts_all_paper_benchmarks() {
        for bm in benchmarks::paper_benchmarks() {
            for n in [2u32, 3] {
                let nl = conventional(&bm);
                let r =
                    retrofit_netlist(nl, n).unwrap_or_else(|e| panic!("{} n={n}: {e}", bm.name()));
                assert_eq!(r.converted.scheme().num_clocks(), n);
                // Latch-based: every memory element converted.
                for m in r.converted.mems() {
                    let comp = r.converted.component(m.comp());
                    assert!(matches!(
                        comp.kind(),
                        mc_rtl::ComponentKind::Mem {
                            kind: MemKind::Latch,
                            ..
                        }
                    ));
                }
                assert_eq!(
                    r.converted.controller().len(),
                    r.original.controller().len() * n,
                    "controller stretched by the latency factor"
                );
                // Lint-clean: no dead logic, no off-phase loads.
                let warnings = mc_rtl::lint::warnings(&r.converted);
                assert!(warnings.is_empty(), "{} n={n}: {warnings:?}", bm.name());
            }
        }
    }

    #[test]
    fn retrofit_round_trips_through_vhdl_export() {
        let bm = benchmarks::hal();
        let nl = conventional(&bm);
        let text = to_vhdl(&nl);
        let r = retrofit_source(&text, 3).expect("imported design retrofits");
        assert_eq!(r.original.name(), nl.name());
        assert_eq!(r.converted.scheme().num_clocks(), 3);
    }

    #[test]
    fn verified_equivalence_and_power_reduction() {
        for bm in benchmarks::paper_benchmarks() {
            let nl = conventional(&bm);
            let r = retrofit_netlist(nl, 2).expect("retrofits");
            let opts = RetrofitOptions {
                computations: 60,
                seeds: mc_power::derive_seeds(7, 3),
                ..RetrofitOptions::default()
            };
            let report =
                verify_retrofit(&r, &opts).unwrap_or_else(|e| panic!("{}: {e}", bm.name()));
            assert!(
                report.power_reduction_pct > 0.0,
                "{}: {:.2} mW vs {:.2} mW",
                bm.name(),
                report.converted.power.total_mw,
                report.original.power.total_mw
            );
            assert_eq!(report.latency_factor, 2);
        }
    }

    #[test]
    fn parallel_verification_is_bit_identical_to_sequential() {
        let nl = conventional(&benchmarks::facet());
        let r = retrofit_netlist(nl, 3).expect("retrofits");
        let seq = RetrofitOptions {
            computations: 40,
            seeds: mc_power::derive_seeds(11, 4),
            parallel: false,
            ..RetrofitOptions::default()
        };
        let par = RetrofitOptions {
            parallel: true,
            ..seq.clone()
        };
        let a = verify_retrofit(&r, &seq).unwrap();
        let b = verify_retrofit(&r, &par).unwrap();
        assert_eq!(
            a.original.power.total_mw.to_bits(),
            b.original.power.total_mw.to_bits()
        );
        assert_eq!(
            a.converted.power.total_mw.to_bits(),
            b.converted.power.total_mw.to_bits()
        );
        assert_eq!(
            a.power_reduction_pct.to_bits(),
            b.power_reduction_pct.to_bits()
        );
        assert_eq!(a.phase_histogram, b.phase_histogram);
    }

    #[test]
    fn bitsliced_verification_is_bit_identical_to_scalar() {
        let nl = conventional(&benchmarks::biquad());
        let r = retrofit_netlist(nl, 2).expect("retrofits");
        let scalar = RetrofitOptions {
            computations: 40,
            seeds: mc_power::derive_seeds(11, 5),
            backend: BatchBackend::Batched,
            ..RetrofitOptions::default()
        };
        let sliced = RetrofitOptions {
            backend: BatchBackend::Bitsliced,
            ..scalar.clone()
        };
        let a = verify_retrofit(&r, &scalar).unwrap();
        let b = verify_retrofit(&r, &sliced).unwrap();
        assert_eq!(
            a.original.power.total_mw.to_bits(),
            b.original.power.total_mw.to_bits()
        );
        assert_eq!(
            a.converted.power.total_mw.to_bits(),
            b.converted.power.total_mw.to_bits()
        );
        assert_eq!(
            a.power_reduction_pct.to_bits(),
            b.power_reduction_pct.to_bits()
        );
        assert_eq!(a.phase_histogram, b.phase_histogram);
    }

    #[test]
    fn multiclock_inputs_are_rejected() {
        let d = Synthesizer::for_benchmark(&benchmarks::hal())
            .synthesize(DesignStyle::MultiClock(2))
            .unwrap();
        assert!(matches!(
            retrofit_netlist(d.datapath.netlist, 2),
            Err(RetrofitError::NotSingleClock(2))
        ));
    }

    #[test]
    fn too_few_clocks_is_rejected() {
        let nl = conventional(&benchmarks::hal());
        assert!(matches!(
            retrofit_netlist(nl, 1),
            Err(RetrofitError::TooFewClocks(1))
        ));
    }

    #[test]
    fn lifetimes_match_controller_schedule() {
        let nl = conventional(&benchmarks::hal());
        let circuit = Circuit::from_netlist(&nl);
        let life = infer_lifetimes(&nl, &circuit, 32, 1);
        // Every register the probe saw toggling is one the controller
        // loads somewhere.
        for (p, &toggles) in &life.observed_store_toggles {
            if toggles > 0 {
                assert!(
                    life.writes.get(p).is_some_and(|w| !w.is_empty()),
                    "{p} toggles without a scheduled load"
                );
            }
        }
        // Boundary-step loads exist (the input registers).
        let period = circuit.words.len() as u32;
        assert!(life.writes.values().any(|w| w.contains(&period)));
    }
}
