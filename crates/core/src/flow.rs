//! The pass-pipeline flow layer: typed passes, per-pass instrumentation,
//! content-keyed artifact caching, and parallel multi-style evaluation.
//!
//! [`Flow`] is the driver behind [`Synthesizer`](crate::Synthesizer) and
//! the [`experiment`](crate::experiment) module. It chains the concrete
//! passes of [`crate::passes`]
//!
//! ```text
//! Behavior → PartitionedSchedule → Datapath → SimTrace → DesignReport
//!                                     └──────── Verification
//! ```
//!
//! inside a [`FlowContext`] that wall-clocks every pass, records the
//! produced artifact's label and size, and collects diagnostics. Artifacts
//! are cached content-keyed: the key hashes the behaviour (DSL text +
//! schedule), the technology parameters, and exactly the style components
//! the artifact depends on. A [`Datapath`] is keyed *without* the power
//! mode — the paper tables' non-gated and gated rows share one
//! conventional allocation, which therefore runs once — while a
//! [`DesignReport`] additionally keys the mode, computation count and
//! stimulus seed.
//!
//! Multi-style evaluation can run on scoped threads
//! ([`Flow::evaluate_styles_parallel`]); results are deterministic and
//! bit-identical to the sequential path because every evaluation is
//! independently seeded.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mc_alloc::Datapath;
use mc_dfg::benchmarks::Benchmark;
use mc_dfg::{Dfg, Schedule};
use mc_power::DesignReport;
use mc_sim::BatchBackend;
use mc_tech::TechLibrary;

use crate::passes::{AllocatePass, Behavior, PartitionPass, PowerPass, SimulatePass, VerifyPass};
use crate::style::DesignStyle;
use crate::synthesizer::{Design, SynthesisError};

/// A value produced by a [`Pass`]: anything the flow can describe for
/// instrumentation.
pub trait Artifact {
    /// A short human-readable description, recorded in [`PassMetrics`].
    fn label(&self) -> String;

    /// A representative size (nodes, components, steps…) for growth
    /// tracking across the pipeline.
    fn size(&self) -> usize;
}

/// One stage of the synthesis flow: a typed transformation from an input
/// artifact (borrowed from the driver) to an owned output artifact.
///
/// Passes run through [`FlowContext::run`], which times them and records
/// the output artifact's statistics; inside `run` a pass reports
/// findings via [`FlowContext::info`] / [`FlowContext::warn`].
pub trait Pass {
    /// The borrowed input artifact(s).
    type Input<'a>;
    /// The produced artifact.
    type Output: Artifact;

    /// Stable pass name used in metrics and diagnostics.
    fn name(&self) -> &'static str;

    /// Executes the pass.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError`] when the transformation fails.
    fn run(
        &self,
        input: Self::Input<'_>,
        ctx: &mut FlowContext,
    ) -> Result<Self::Output, SynthesisError>;
}

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Informational: normal pipeline narration.
    Info,
    /// Warning: suspicious but not fatal (e.g. an idle clock partition).
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// A finding reported by a pass while it ran.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The pass that reported it.
    pub pass: &'static str,
    /// Severity.
    pub severity: Severity,
    /// The message.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.severity, self.pass, self.message)
    }
}

/// Instrumentation record for one executed (or cache-served) pass.
#[derive(Debug, Clone)]
pub struct PassMetrics {
    /// The pass name.
    pub pass: &'static str,
    /// Wall-clock duration (the cache lookup time on a hit).
    pub duration: Duration,
    /// The produced artifact's label.
    pub artifact: String,
    /// The produced artifact's representative size.
    pub artifact_size: usize,
    /// Whether the artifact came from the cache instead of running the
    /// pass.
    pub cache_hit: bool,
}

impl fmt::Display for PassMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:>9.1?} {}{}",
            self.pass,
            self.duration,
            self.artifact,
            if self.cache_hit { "  (cached)" } else { "" }
        )
    }
}

/// Renders a metrics slice as an aligned multi-line block.
#[must_use]
pub fn render_metrics(metrics: &[PassMetrics]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for m in metrics {
        let _ = writeln!(s, "  {m}");
    }
    s
}

/// The execution context threaded through every pass: evaluation
/// configuration plus the collected metrics and diagnostics of one
/// pipeline run.
#[derive(Debug, Clone)]
pub struct FlowContext {
    tech: TechLibrary,
    computations: usize,
    seed: u64,
    power_seeds: usize,
    batch: usize,
    backend: BatchBackend,
    metrics: Vec<PassMetrics>,
    diagnostics: Vec<Diagnostic>,
}

impl FlowContext {
    /// A fresh context (single-seed power estimation, default lane
    /// width; see [`FlowContext::with_monte_carlo`]).
    #[must_use]
    pub fn new(tech: TechLibrary, computations: usize, seed: u64) -> Self {
        FlowContext {
            tech,
            computations,
            seed,
            power_seeds: 1,
            batch: Flow::DEFAULT_BATCH,
            backend: BatchBackend::default(),
            metrics: Vec::new(),
            diagnostics: Vec::new(),
        }
    }

    /// Configures Monte-Carlo power estimation: `power_seeds` stimulus
    /// seeds simulated through the batched kernel at `batch` lanes.
    #[must_use]
    pub fn with_monte_carlo(mut self, power_seeds: usize, batch: usize) -> Self {
        self.power_seeds = power_seeds.max(1);
        self.batch = batch.max(1);
        self
    }

    /// Selects the multi-seed simulation kernel (throughput only —
    /// results are bit-identical across backends).
    #[must_use]
    pub fn with_backend(mut self, backend: BatchBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The technology library evaluations price against.
    #[must_use]
    pub fn tech(&self) -> &TechLibrary {
        &self.tech
    }

    /// Random computations per simulation/verification.
    #[must_use]
    pub fn computations(&self) -> usize {
        self.computations
    }

    /// The stimulus seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Stimulus seeds per power estimate (1 = single-seed point sample,
    /// the historical behaviour).
    #[must_use]
    pub fn power_seeds(&self) -> usize {
        self.power_seeds
    }

    /// Lane width of the batched kernel used when
    /// [`FlowContext::power_seeds`] exceeds one.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The multi-seed simulation kernel in use.
    #[must_use]
    pub fn backend(&self) -> BatchBackend {
        self.backend
    }

    /// Records an informational diagnostic.
    pub fn info(&mut self, pass: &'static str, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            pass,
            severity: Severity::Info,
            message: message.into(),
        });
    }

    /// Records a warning diagnostic.
    pub fn warn(&mut self, pass: &'static str, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            pass,
            severity: Severity::Warning,
            message: message.into(),
        });
    }

    /// Runs a pass: times it, records the artifact statistics, and
    /// returns its output.
    ///
    /// # Errors
    ///
    /// Propagates the pass's [`SynthesisError`].
    pub fn run<P: Pass>(
        &mut self,
        pass: &P,
        input: P::Input<'_>,
    ) -> Result<P::Output, SynthesisError> {
        let _span = mc_trace::span(pass.name());
        let start = Instant::now();
        let output = pass.run(input, self)?;
        self.metrics.push(PassMetrics {
            pass: pass.name(),
            duration: start.elapsed(),
            artifact: output.label(),
            artifact_size: output.size(),
            cache_hit: false,
        });
        Ok(output)
    }

    /// Records a cache-served artifact as a pseudo pass execution so that
    /// instrumentation shows where time was *not* spent.
    pub fn record_cache_hit<A: Artifact + ?Sized>(
        &mut self,
        pass: &'static str,
        artifact: &A,
        lookup: Duration,
    ) {
        self.metrics.push(PassMetrics {
            pass,
            duration: lookup,
            artifact: artifact.label(),
            artifact_size: artifact.size(),
            cache_hit: true,
        });
    }

    /// The metrics collected so far.
    #[must_use]
    pub fn metrics(&self) -> &[PassMetrics] {
        &self.metrics
    }

    /// The diagnostics collected so far.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    fn into_parts(self) -> (Vec<PassMetrics>, Vec<Diagnostic>) {
        (self.metrics, self.diagnostics)
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    datapaths: HashMap<u64, Arc<Datapath>>,
    reports: HashMap<u64, Arc<DesignReport>>,
    verified: HashSet<u64>,
}

/// Aggregate cache counters, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an artifact.
    pub hits: usize,
    /// Lookups that had to run the producing pass(es).
    pub misses: usize,
    /// Datapaths currently cached.
    pub datapaths: usize,
    /// Reports currently cached.
    pub reports: usize,
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({} datapaths, {} reports cached)",
            self.hits, self.misses, self.datapaths, self.reports
        )
    }
}

/// The content-keyed artifact cache shared by all evaluations of one
/// [`Flow`] (including concurrent ones).
#[derive(Debug, Default)]
struct ArtifactCache {
    inner: Mutex<CacheInner>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ArtifactCache {
    fn get_datapath(&self, key: u64) -> Option<Arc<Datapath>> {
        let found = self
            .inner
            .lock()
            .expect("cache lock")
            .datapaths
            .get(&key)
            .cloned();
        self.count(found.is_some());
        found
    }

    fn put_datapath(&self, key: u64, dp: Arc<Datapath>) {
        self.inner
            .lock()
            .expect("cache lock")
            .datapaths
            .insert(key, dp);
    }

    fn get_report(&self, key: u64) -> Option<Arc<DesignReport>> {
        let found = self
            .inner
            .lock()
            .expect("cache lock")
            .reports
            .get(&key)
            .cloned();
        self.count(found.is_some());
        found
    }

    fn put_report(&self, key: u64, report: Arc<DesignReport>) {
        self.inner
            .lock()
            .expect("cache lock")
            .reports
            .insert(key, report);
    }

    fn is_verified(&self, key: u64) -> bool {
        let found = self
            .inner
            .lock()
            .expect("cache lock")
            .verified
            .contains(&key);
        self.count(found);
        found
    }

    fn mark_verified(&self, key: u64) {
        self.inner.lock().expect("cache lock").verified.insert(key);
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            // Scheduling-dependent: concurrent rows race check-then-insert,
            // so hit/miss splits vary with thread count (like `CacheStats`,
            // which the deterministic reports exclude).
            mc_trace::count_runtime("flow.cache.hits", 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            mc_trace::count_runtime("flow.cache.misses", 1);
        }
    }

    fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            datapaths: inner.datapaths.len(),
            reports: inner.reports.len(),
        }
    }

    fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.datapaths.clear();
        inner.reports.clear();
        inner.verified.clear();
    }
}

impl Clone for ArtifactCache {
    fn clone(&self) -> Self {
        let inner = self.inner.lock().expect("cache lock");
        ArtifactCache {
            inner: Mutex::new(CacheInner {
                datapaths: inner.datapaths.clone(),
                reports: inner.reports.clone(),
                verified: inner.verified.clone(),
            }),
            hits: AtomicUsize::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicUsize::new(self.misses.load(Ordering::Relaxed)),
        }
    }
}

/// One fully-instrumented evaluation: the report plus everything the flow
/// learned while producing it.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The evaluated style.
    pub style: DesignStyle,
    /// The complete design report (shared with the cache).
    pub report: Arc<DesignReport>,
    /// Per-pass instrumentation, in execution order.
    pub metrics: Vec<PassMetrics>,
    /// Diagnostics reported by the passes.
    pub diagnostics: Vec<Diagnostic>,
}

impl Evaluated {
    /// Total wall-clock across all recorded passes.
    #[must_use]
    pub fn total_duration(&self) -> Duration {
        self.metrics.iter().map(|m| m.duration).sum()
    }
}

/// The pass-pipeline driver: holds one behaviour plus the evaluation
/// configuration, chains the passes of [`crate::passes`], caches
/// shareable artifacts, and evaluates design styles sequentially or on
/// scoped threads.
///
/// # Examples
///
/// ```
/// use mc_core::{DesignStyle, Flow};
/// use mc_dfg::benchmarks;
///
/// # fn main() -> Result<(), mc_core::SynthesisError> {
/// let flow = Flow::for_benchmark(&benchmarks::hal()).with_computations(60);
/// let evaluated = flow.evaluate_styles_parallel(&DesignStyle::paper_rows())?;
/// assert_eq!(evaluated.len(), 5);
/// for e in &evaluated {
///     assert!(e.report.power.total_mw > 0.0);
///     assert!(!e.metrics.is_empty()); // per-pass timings recorded
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Flow {
    behavior: Behavior,
    tech: TechLibrary,
    computations: usize,
    seed: u64,
    power_seeds: usize,
    batch: usize,
    backend: BatchBackend,
    fingerprint: u64,
    cache: ArtifactCache,
}

impl Flow {
    /// A flow over an explicit behaviour and schedule.
    #[must_use]
    pub fn new(dfg: Dfg, schedule: Schedule) -> Self {
        Self::from_behavior(Behavior::new(dfg, schedule))
    }

    /// A flow over a bundled benchmark (clones its DFG and schedule).
    #[must_use]
    pub fn for_benchmark(bm: &Benchmark) -> Self {
        Self::from_behavior(Behavior::for_benchmark(bm))
    }

    /// A flow over a prepared [`Behavior`] artifact.
    #[must_use]
    pub fn from_behavior(behavior: Behavior) -> Self {
        let tech = TechLibrary::vsc450();
        let fingerprint = fingerprint(&behavior, &tech);
        Flow {
            behavior,
            tech,
            computations: 400,
            seed: 42,
            power_seeds: 1,
            batch: Self::DEFAULT_BATCH,
            backend: BatchBackend::default(),
            fingerprint,
            cache: ArtifactCache::default(),
        }
    }

    /// Default lane width of the batched simulation kernel.
    pub const DEFAULT_BATCH: usize = 16;

    /// Overrides the technology library (re-keys the cache).
    #[must_use]
    pub fn with_tech(mut self, tech: TechLibrary) -> Self {
        self.tech = tech;
        self.fingerprint = fingerprint(&self.behavior, &self.tech);
        self
    }

    /// Sets the random computations per evaluation (default 400).
    #[must_use]
    pub fn with_computations(mut self, computations: usize) -> Self {
        self.computations = computations.max(1);
        self
    }

    /// Sets the stimulus seed (default 42).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of stimulus seeds per power estimate (default 1,
    /// the historical single-seed point sample). With more than one
    /// seed, simulation runs through the batched multi-lane kernel and
    /// the report carries Monte-Carlo confidence bounds
    /// ([`mc_power::DesignReport::power_ci`]); seed 0 of the schedule is
    /// the flow seed itself.
    #[must_use]
    pub fn with_power_seeds(mut self, power_seeds: usize) -> Self {
        self.power_seeds = power_seeds.max(1);
        self
    }

    /// Sets the lane width of the batched simulation kernel (default
    /// [`Flow::DEFAULT_BATCH`]; only used when
    /// [`Flow::with_power_seeds`] exceeds one). The lane width never
    /// affects results — only throughput.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Selects the multi-seed simulation kernel (default
    /// [`BatchBackend::Batched`]; only used when
    /// [`Flow::with_power_seeds`] exceeds one). Like the lane width, the
    /// backend never affects results — every backend is bit-identical to
    /// the scalar compiled kernel — so it is deliberately excluded from
    /// the report cache key.
    #[must_use]
    pub fn with_batch_backend(mut self, backend: BatchBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The behaviour under synthesis.
    #[must_use]
    pub fn behavior(&self) -> &Behavior {
        &self.behavior
    }

    /// The behavioural DFG.
    #[must_use]
    pub fn dfg(&self) -> &Dfg {
        &self.behavior.dfg
    }

    /// The schedule in use.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.behavior.schedule
    }

    /// The technology library in use.
    #[must_use]
    pub fn tech(&self) -> &TechLibrary {
        &self.tech
    }

    /// Random computations per evaluation.
    #[must_use]
    pub fn computations(&self) -> usize {
        self.computations
    }

    /// The stimulus seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Stimulus seeds per power estimate.
    #[must_use]
    pub fn power_seeds(&self) -> usize {
        self.power_seeds
    }

    /// Lane width of the batched simulation kernel.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The multi-seed simulation kernel in use.
    #[must_use]
    pub fn backend(&self) -> BatchBackend {
        self.backend
    }

    /// The content fingerprint all cache keys derive from (behaviour DSL
    /// text + schedule + technology parameters).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Aggregate cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached artifact (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    fn context(&self) -> FlowContext {
        FlowContext::new(self.tech.clone(), self.computations, self.seed)
            .with_monte_carlo(self.power_seeds, self.batch)
            .with_backend(self.backend)
    }

    /// Cache key of the datapath: the allocation depends on strategy,
    /// clock count, memory kind and transfer insertion — *not* on the
    /// power mode, computations or seed, so e.g. the non-gated and gated
    /// conventional rows share one allocation.
    fn datapath_key(&self, style: DesignStyle) -> u64 {
        let mut h = DefaultHasher::new();
        self.fingerprint.hash(&mut h);
        style.strategy().hash(&mut h);
        style.clocks().hash(&mut h);
        style.mem_kind().hash(&mut h);
        style.transfers().hash(&mut h);
        h.finish()
    }

    /// Cache key of the full report: the datapath key plus everything the
    /// simulation depends on.
    fn report_key(&self, style: DesignStyle) -> u64 {
        let mut h = DefaultHasher::new();
        self.datapath_key(style).hash(&mut h);
        style.power_mode().hash(&mut h);
        self.computations.hash(&mut h);
        self.seed.hash(&mut h);
        self.power_seeds.hash(&mut h);
        h.finish()
    }

    fn verify_key(&self, style: DesignStyle) -> u64 {
        let mut h = DefaultHasher::new();
        self.report_key(style).hash(&mut h);
        "verified".hash(&mut h);
        h.finish()
    }

    /// Partition + allocate, cache-served when the same allocation was
    /// already produced (possibly under a different power mode).
    fn datapath(
        &self,
        style: DesignStyle,
        ctx: &mut FlowContext,
    ) -> Result<Arc<Datapath>, SynthesisError> {
        let key = self.datapath_key(style);
        let start = Instant::now();
        if let Some(dp) = self.cache.get_datapath(key) {
            ctx.record_cache_hit(AllocatePass.name(), &*dp, start.elapsed());
            return Ok(dp);
        }
        let partitioned = ctx.run(&PartitionPass { style }, &self.behavior)?;
        let datapath = ctx.run(&AllocatePass, (&self.behavior, &partitioned))?;
        let arc = Arc::new(datapath);
        self.cache.put_datapath(key, Arc::clone(&arc));
        Ok(arc)
    }

    fn verify(
        &self,
        style: DesignStyle,
        datapath: &Datapath,
        ctx: &mut FlowContext,
    ) -> Result<(), SynthesisError> {
        let key = self.verify_key(style);
        let pass = VerifyPass {
            mode: style.power_mode(),
        };
        let start = Instant::now();
        if self.cache.is_verified(key) {
            ctx.record_cache_hit(
                pass.name(),
                &crate::passes::Verification {
                    computations: self.computations.min(64),
                },
                start.elapsed(),
            );
            return Ok(());
        }
        ctx.run(&pass, (&self.behavior, datapath))?;
        self.cache.mark_verified(key);
        Ok(())
    }

    /// Synthesises a design in the given style through the pass pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::Clock`] for invalid clock counts and
    /// [`SynthesisError::Alloc`] if allocation fails.
    pub fn synthesize(&self, style: DesignStyle) -> Result<Design, SynthesisError> {
        let mut ctx = self.context();
        let datapath = self.datapath(style, &mut ctx)?;
        Ok(Design {
            datapath: (*datapath).clone(),
            mode: style.power_mode(),
            style,
        })
    }

    /// Synthesises and verifies functional equivalence against the
    /// behaviour over random vectors.
    ///
    /// # Errors
    ///
    /// In addition to [`Flow::synthesize`]'s errors, returns
    /// [`SynthesisError::Equivalence`] if the netlist diverges from the
    /// DFG.
    pub fn synthesize_verified(&self, style: DesignStyle) -> Result<Design, SynthesisError> {
        let mut ctx = self.context();
        let datapath = self.datapath(style, &mut ctx)?;
        self.verify(style, &datapath, &mut ctx)?;
        Ok(Design {
            datapath: (*datapath).clone(),
            mode: style.power_mode(),
            style,
        })
    }

    /// Fully evaluates a style and returns the bare report — the
    /// facade-compatible entry point.
    ///
    /// # Errors
    ///
    /// Propagates [`Flow::synthesize`]'s errors.
    pub fn evaluate(&self, style: DesignStyle) -> Result<DesignReport, SynthesisError> {
        Ok((*self.evaluate_instrumented(style)?.report).clone())
    }

    /// Fully evaluates a style: partition → allocate → simulate → price,
    /// returning the report together with per-pass metrics and
    /// diagnostics.
    ///
    /// # Errors
    ///
    /// Propagates [`Flow::synthesize`]'s errors.
    pub fn evaluate_instrumented(&self, style: DesignStyle) -> Result<Evaluated, SynthesisError> {
        let _span = mc_trace::span("flow.evaluate");
        let mut ctx = self.context();
        let key = self.report_key(style);
        let start = Instant::now();
        if let Some(report) = self.cache.get_report(key) {
            ctx.record_cache_hit(PowerPass.name(), &*report, start.elapsed());
            let (metrics, diagnostics) = ctx.into_parts();
            return Ok(Evaluated {
                style,
                report,
                metrics,
                diagnostics,
            });
        }
        // A genuine (uncached) pipeline run. The span/counter pair lets
        // callers that promise "no recompute" — the serve layer's warm
        // cache path — assert it through the trace machinery.
        let _run = mc_trace::span("flow.run");
        mc_trace::count_runtime("flow.runs", 1);
        let datapath = self.datapath(style, &mut ctx)?;
        let trace = ctx.run(
            &SimulatePass {
                mode: style.power_mode(),
            },
            &*datapath,
        )?;
        let report = ctx.run(&PowerPass, (&*datapath, &trace))?;
        let report = Arc::new(report);
        self.cache.put_report(key, Arc::clone(&report));
        let (metrics, diagnostics) = ctx.into_parts();
        Ok(Evaluated {
            style,
            report,
            metrics,
            diagnostics,
        })
    }

    /// Evaluates several styles sequentially, in order.
    ///
    /// # Errors
    ///
    /// Fails on the first style that errors.
    pub fn evaluate_styles(
        &self,
        styles: &[DesignStyle],
    ) -> Result<Vec<Evaluated>, SynthesisError> {
        styles
            .iter()
            .map(|&style| self.evaluate_instrumented(style))
            .collect()
    }

    /// Evaluates several styles concurrently on scoped threads, one per
    /// style, sharing the artifact cache. Results come back in input
    /// order and are bit-identical to [`Flow::evaluate_styles`]: every
    /// evaluation is independently seeded, so scheduling cannot perturb
    /// the numbers.
    ///
    /// # Errors
    ///
    /// Returns the first (by input order) style's error if any fail.
    ///
    /// # Panics
    ///
    /// Panics if an evaluation thread panics.
    pub fn evaluate_styles_parallel(
        &self,
        styles: &[DesignStyle],
    ) -> Result<Vec<Evaluated>, SynthesisError> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = styles
                .iter()
                .map(|&style| {
                    scope.spawn(move || {
                        let out = self.evaluate_instrumented(style);
                        // Hand the trace buffer off before the scope counts
                        // this thread as finished (see mc_trace::flush).
                        mc_trace::flush();
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("flow evaluation thread panicked"))
                .collect()
        })
    }
}

/// Content fingerprint of a behaviour + technology pair: the DSL rendering
/// of the DFG (canonical and content-complete), the schedule assignment,
/// and the technology parameters.
fn fingerprint(behavior: &Behavior, tech: &TechLibrary) -> u64 {
    let mut h = DefaultHasher::new();
    behavior.dfg.name().hash(&mut h);
    mc_dfg::parse::to_dsl(&behavior.dfg).hash(&mut h);
    behavior.schedule.length().hash(&mut h);
    for t in 1..=behavior.schedule.length() {
        behavior.schedule.nodes_at_step(t).hash(&mut h);
    }
    format!("{:?}", tech.params()).hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_dfg::benchmarks;

    fn flow() -> Flow {
        Flow::for_benchmark(&benchmarks::hal()).with_computations(40)
    }

    #[test]
    fn pipeline_produces_positive_power() {
        let e = flow()
            .evaluate_instrumented(DesignStyle::MultiClock(2))
            .unwrap();
        assert!(e.report.power.total_mw > 0.0);
        assert!(e.report.area.total_lambda2 > 0.0);
    }

    #[test]
    fn monte_carlo_flow_carries_confidence_bounds() {
        let single = flow()
            .evaluate_instrumented(DesignStyle::MultiClock(2))
            .unwrap();
        assert!(single.report.power_ci.is_none());

        let mc = flow()
            .with_power_seeds(4)
            .with_batch(8)
            .evaluate_instrumented(DesignStyle::MultiClock(2))
            .unwrap();
        let ci = mc.report.power_ci.expect("multi-seed run reports a CI");
        assert_eq!(ci.seeds, 4);
        assert!((ci.mean_mw - mc.report.power.total_mw).abs() < 1e-12);
        assert!(ci.ci95_mw >= 0.0);

        // Seed 0 of the schedule is the flow seed, so the single-seed
        // power is one of the averaged samples; with the default seed it
        // also bounds the mean from one side only by chance — instead
        // assert determinism: the same MC flow reprices identically.
        let again = flow()
            .with_power_seeds(4)
            .with_batch(8)
            .evaluate_instrumented(DesignStyle::MultiClock(2))
            .unwrap();
        assert_eq!(
            again.report.power.total_mw.to_bits(),
            mc.report.power.total_mw.to_bits()
        );
        let again_ci = again.report.power_ci.unwrap();
        assert_eq!(again_ci.ci95_mw.to_bits(), ci.ci95_mw.to_bits());
    }

    #[test]
    fn batch_width_never_changes_the_report() {
        let wide = flow()
            .with_power_seeds(5)
            .with_batch(16)
            .evaluate_instrumented(DesignStyle::ConventionalGated)
            .unwrap();
        let narrow = flow()
            .with_power_seeds(5)
            .with_batch(2)
            .evaluate_instrumented(DesignStyle::ConventionalGated)
            .unwrap();
        assert_eq!(
            wide.report.power.total_mw.to_bits(),
            narrow.report.power.total_mw.to_bits()
        );
        assert_eq!(
            wide.report.power_ci.unwrap().ci95_mw.to_bits(),
            narrow.report.power_ci.unwrap().ci95_mw.to_bits()
        );
    }

    #[test]
    fn batch_backend_never_changes_the_report() {
        let batched = flow()
            .with_power_seeds(5)
            .with_batch_backend(BatchBackend::Batched)
            .evaluate_instrumented(DesignStyle::ConventionalGated)
            .unwrap();
        let bitsliced = flow()
            .with_power_seeds(5)
            .with_batch_backend(BatchBackend::Bitsliced)
            .evaluate_instrumented(DesignStyle::ConventionalGated)
            .unwrap();
        assert_eq!(
            batched.report.power.total_mw.to_bits(),
            bitsliced.report.power.total_mw.to_bits()
        );
        assert_eq!(
            batched.report.power_ci.unwrap().ci95_mw.to_bits(),
            bitsliced.report.power_ci.unwrap().ci95_mw.to_bits()
        );
    }

    #[test]
    fn metrics_cover_every_pass_in_order() {
        let e = flow()
            .evaluate_instrumented(DesignStyle::MultiClock(3))
            .unwrap();
        let names: Vec<_> = e.metrics.iter().map(|m| m.pass).collect();
        assert_eq!(names, ["partition", "allocate", "simulate", "power"]);
        assert!(e.metrics.iter().all(|m| !m.cache_hit));
        assert!(e.metrics.iter().all(|m| m.artifact_size > 0));
    }

    #[test]
    fn diagnostics_propagate_from_passes() {
        let e = flow()
            .evaluate_instrumented(DesignStyle::MultiClock(2))
            .unwrap();
        assert!(
            e.diagnostics
                .iter()
                .any(|d| d.pass == "partition" && d.severity == Severity::Info),
            "partition pass should narrate: {:?}",
            e.diagnostics
        );
    }

    #[test]
    fn report_cache_hit_returns_identical_artifact() {
        let f = flow();
        let cold = f.evaluate_instrumented(DesignStyle::MultiClock(2)).unwrap();
        let warm = f.evaluate_instrumented(DesignStyle::MultiClock(2)).unwrap();
        // Same Arc: the cached artifact itself, not a recomputation.
        assert!(Arc::ptr_eq(&cold.report, &warm.report));
        assert_eq!(warm.metrics.len(), 1);
        assert!(warm.metrics[0].cache_hit);
        assert!(f.cache_stats().hits >= 1);
    }

    #[test]
    fn conventional_rows_share_one_allocation() {
        let f = flow();
        let ng = f
            .evaluate_instrumented(DesignStyle::ConventionalNonGated)
            .unwrap();
        let g = f
            .evaluate_instrumented(DesignStyle::ConventionalGated)
            .unwrap();
        // Same strategy/clocks/mem-kind/transfers → the gated row's
        // allocation is served from cache, only simulate+power run.
        assert!(!ng.metrics.iter().any(|m| m.cache_hit));
        let g_names: Vec<_> = g.metrics.iter().map(|m| (m.pass, m.cache_hit)).collect();
        assert_eq!(
            g_names,
            [("allocate", true), ("simulate", false), ("power", false)]
        );
        // But the reports differ: the gated mode gates clocks.
        assert!(g.report.power.total_mw < ng.report.power.total_mw);
    }

    #[test]
    fn parallel_evaluation_matches_sequential_bit_for_bit() {
        let styles = DesignStyle::paper_rows();
        let seq = flow().evaluate_styles(&styles).unwrap();
        let par = flow().evaluate_styles_parallel(&styles).unwrap();
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.style, p.style);
            assert_eq!(s.report.power.total_mw, p.report.power.total_mw);
            assert_eq!(s.report.power.clock_mw, p.report.power.clock_mw);
            assert_eq!(s.report.area.total_lambda2, p.report.area.total_lambda2);
            assert_eq!(s.report.stats.mem_cells, p.report.stats.mem_cells);
        }
    }

    #[test]
    fn fingerprint_tracks_content_not_identity() {
        let a = Flow::for_benchmark(&benchmarks::hal());
        let b = Flow::for_benchmark(&benchmarks::hal());
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = Flow::for_benchmark(&benchmarks::facet());
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = Flow::for_benchmark(&benchmarks::hal())
            .with_tech(mc_tech::TechLibrary::vsc450().at_voltage(3.3));
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn synthesize_verified_caches_verification() {
        let f = flow();
        f.synthesize_verified(DesignStyle::MultiClock(2)).unwrap();
        let before = f.cache_stats().hits;
        f.synthesize_verified(DesignStyle::MultiClock(2)).unwrap();
        assert!(f.cache_stats().hits > before);
    }

    #[test]
    fn clear_cache_forces_recomputation() {
        let f = flow();
        let a = f.evaluate_instrumented(DesignStyle::MultiClock(2)).unwrap();
        f.clear_cache();
        let b = f.evaluate_instrumented(DesignStyle::MultiClock(2)).unwrap();
        assert!(!Arc::ptr_eq(&a.report, &b.report));
        assert_eq!(a.report.power.total_mw, b.report.power.total_mw);
    }
}
