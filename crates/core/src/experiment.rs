//! The experiment pipeline: regenerates the paper's tables and the
//! ablation studies discussed in §3.2 and §5.2.
//!
//! Every experiment runs through the instrumented pass pipeline
//! ([`crate::flow::Flow`]): table rows carry their per-pass timings, the
//! table carries the passes' diagnostics, and the `_parallel` variants
//! evaluate rows on scoped threads with bit-identical results.

use std::fmt::Write as _;

use mc_alloc::Strategy;
use mc_dfg::benchmarks::Benchmark;
use mc_power::DesignReport;
use mc_rtl::{ControlPolicy, PowerMode};
use mc_tech::MemKind;

use crate::flow::{Diagnostic, Evaluated, Flow, PassMetrics};
use crate::style::DesignStyle;
use crate::synthesizer::SynthesisError;

/// One evaluated row of an experiment table.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Row label (the design style).
    pub label: String,
    /// The design style this row evaluated.
    pub style: DesignStyle,
    /// The full evaluation.
    pub report: DesignReport,
    /// Per-pass instrumentation for this row, in execution order.
    pub metrics: Vec<PassMetrics>,
}

/// A rendered experiment: one benchmark, several design styles.
#[derive(Debug, Clone)]
pub struct Table {
    /// The benchmark name.
    pub benchmark: String,
    /// Rows in presentation order.
    pub rows: Vec<TableRow>,
    /// Diagnostics the passes reported across all rows.
    pub diagnostics: Vec<Diagnostic>,
}

impl Table {
    fn from_evaluated(benchmark: String, evaluated: Vec<Evaluated>) -> Self {
        let mut rows = Vec::with_capacity(evaluated.len());
        let mut diagnostics = Vec::new();
        for e in evaluated {
            diagnostics.extend(e.diagnostics);
            rows.push(TableRow {
                label: e.style.label(),
                style: e.style,
                report: (*e.report).clone(),
                metrics: e.metrics,
            });
        }
        Table {
            benchmark,
            rows,
            diagnostics,
        }
    }

    /// Renders the table in the paper's column layout: power, area, ALUs,
    /// memory cells, mux inputs.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.benchmark);
        let _ = writeln!(
            s,
            "{:<34} {:>9} {:>10}  {:<28} {:>5} {:>6}",
            "", "Power", "Area", "ALUs", "Mem.", "Mux"
        );
        let _ = writeln!(
            s,
            "{:<34} {:>9} {:>10}  {:<28} {:>5} {:>6}",
            "", "[mW]", "[λ²]", "", "Cells", "In's"
        );
        for row in &self.rows {
            let _ = writeln!(
                s,
                "{:<34} {:>9.2} {:>10.0}  {:<28} {:>5} {:>6}",
                row.label,
                row.report.power.total_mw,
                row.report.area.total_lambda2,
                row.report.stats.alu_summary(),
                row.report.stats.mem_cells,
                row.report.stats.mux_inputs
            );
        }
        s
    }

    /// Renders the per-pass timing breakdown of every row — the flow's
    /// instrumentation view of the same table.
    #[must_use]
    pub fn render_timings(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{} — per-pass timings", self.benchmark);
        for row in &self.rows {
            let total: std::time::Duration = row.metrics.iter().map(|m| m.duration).sum();
            let _ = writeln!(s, "{:<34} {:>9.1?}", row.label, total);
            for m in &row.metrics {
                let _ = writeln!(
                    s,
                    "    {:<10} {:>9.1?}{}{}",
                    m.pass,
                    m.duration,
                    if m.cache_hit { "  (cached)" } else { "" },
                    // Simulation dominates row wall time; its artifact
                    // label carries the measured throughput.
                    if m.pass == "simulate" {
                        format!("  {}", m.artifact)
                    } else {
                        String::new()
                    }
                );
            }
        }
        s
    }

    /// The row with exactly this label, if any.
    #[must_use]
    pub fn row(&self, label: &str) -> Option<&TableRow> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// The row evaluating exactly this style, if any.
    #[must_use]
    pub fn row_for_style(&self, style: DesignStyle) -> Option<&TableRow> {
        self.rows.iter().find(|r| r.style == style)
    }

    /// Power reduction (fraction) from the gated-clock baseline row to the
    /// lowest-power genuinely multi-clock row (n ≥ 2) — the paper's
    /// headline metric. Selection is by [`TableRow::style`], so the
    /// single-clock `MultiClock(1)` baseline row can never be mistaken
    /// for a partitioned design.
    #[must_use]
    pub fn gated_to_best_multiclock_reduction(&self) -> Option<f64> {
        let gated = self.row_for_style(DesignStyle::ConventionalGated)?;
        let best = self
            .rows
            .iter()
            .filter(|r| matches!(r.style, DesignStyle::MultiClock(n) if n >= 2))
            .map(|r| r.report.power.total_mw)
            .fold(f64::INFINITY, f64::min);
        if best.is_finite() {
            Some(1.0 - best / gated.report.power.total_mw)
        } else {
            None
        }
    }
}

fn flow_for(bm: &Benchmark, computations: usize, seed: u64) -> Flow {
    Flow::for_benchmark(bm)
        .with_computations(computations)
        .with_seed(seed)
}

/// Regenerates one of the paper's Tables 1–4 for a benchmark: the five
/// design styles, evaluated with random stimulus through the pass
/// pipeline (rows sequentially).
///
/// # Errors
///
/// Propagates [`SynthesisError`] from any row.
pub fn paper_table(
    bm: &Benchmark,
    computations: usize,
    seed: u64,
) -> Result<Table, SynthesisError> {
    let flow = flow_for(bm, computations, seed);
    let evaluated = flow.evaluate_styles(&DesignStyle::paper_rows())?;
    Ok(Table::from_evaluated(bm.name().to_owned(), evaluated))
}

/// [`paper_table`] with the rows evaluated concurrently on scoped
/// threads. The result is bit-identical to the sequential table — each
/// row is independently seeded — but the wall-clock is roughly the
/// slowest row instead of the sum.
///
/// # Errors
///
/// Propagates [`SynthesisError`] from any row.
pub fn paper_table_parallel(
    bm: &Benchmark,
    computations: usize,
    seed: u64,
) -> Result<Table, SynthesisError> {
    paper_table_parallel_in(&flow_for(bm, computations, seed), bm.name())
}

/// [`paper_table_parallel`] against a caller-owned [`Flow`], so a
/// long-lived consumer (the serve layer) can keep the flow's artifact
/// cache warm across tables. Bit-identical to the one-shot variant: cached
/// artifacts are content-keyed and proven equal to recomputation.
///
/// # Errors
///
/// Propagates [`SynthesisError`] from any row.
pub fn paper_table_parallel_in(flow: &Flow, benchmark: &str) -> Result<Table, SynthesisError> {
    let evaluated = flow.evaluate_styles_parallel(&DesignStyle::paper_rows())?;
    Ok(Table::from_evaluated(benchmark.to_owned(), evaluated))
}

/// Evaluates an arbitrary style set as one instrumented
/// [`SweepPass`](crate::passes::SweepPass) execution and renders it as a
/// [`Table`]: rows share the flow's artifact cache, and the sweep's
/// per-point timing / cache-hit findings land in the table diagnostics.
/// This is the entry point behind `mcpm sweep` and the explorer's
/// sequential reference path.
///
/// # Errors
///
/// Propagates [`SynthesisError`] from any point.
pub fn style_sweep(
    bm: &Benchmark,
    styles: &[DesignStyle],
    computations: usize,
    seed: u64,
) -> Result<Table, SynthesisError> {
    use crate::flow::FlowContext;
    use crate::passes::SweepPass;
    let flow = flow_for(bm, computations, seed);
    let mut ctx = FlowContext::new(flow.tech().clone(), computations, seed);
    let outcome = ctx.run(&SweepPass, (&flow, styles))?;
    let mut table = Table::from_evaluated(bm.name().to_owned(), outcome.evaluated);
    table.diagnostics.extend(ctx.diagnostics().iter().cloned());
    Ok(table)
}

/// Ablation: sweep the clock count from 1 to `max_clocks`, showing the
/// paper's diminishing-returns effect ("you can not keep adding clocks and
/// expect power reduction").
///
/// # Errors
///
/// Propagates [`SynthesisError`] from any configuration.
pub fn clock_sweep(
    bm: &Benchmark,
    max_clocks: u32,
    computations: usize,
    seed: u64,
) -> Result<Vec<(u32, DesignReport)>, SynthesisError> {
    let flow = flow_for(bm, computations, seed);
    (1..=max_clocks)
        .map(|n| Ok((n, flow.evaluate(DesignStyle::MultiClock(n))?)))
        .collect()
}

/// [`clock_sweep`] with the sweep points evaluated concurrently on
/// scoped threads; bit-identical results.
///
/// # Errors
///
/// Propagates [`SynthesisError`] from any configuration.
pub fn clock_sweep_parallel(
    bm: &Benchmark,
    max_clocks: u32,
    computations: usize,
    seed: u64,
) -> Result<Vec<(u32, DesignReport)>, SynthesisError> {
    clock_sweep_parallel_in(&flow_for(bm, computations, seed), max_clocks)
}

/// [`clock_sweep_parallel`] against a caller-owned [`Flow`] (see
/// [`paper_table_parallel_in`] for why).
///
/// # Errors
///
/// Propagates [`SynthesisError`] from any configuration.
pub fn clock_sweep_parallel_in(
    flow: &Flow,
    max_clocks: u32,
) -> Result<Vec<(u32, DesignReport)>, SynthesisError> {
    let styles: Vec<DesignStyle> = (1..=max_clocks).map(DesignStyle::MultiClock).collect();
    let evaluated = flow.evaluate_styles_parallel(&styles)?;
    Ok(evaluated
        .into_iter()
        .zip(1..)
        .map(|(e, n)| (n, (*e.report).clone()))
        .collect())
}

/// Ablation: latch vs. DFF memory elements for the same multi-clock
/// allocation (the paper's "possible to use latches instead of registers,
/// which has significant impact").
///
/// # Errors
///
/// Propagates [`SynthesisError`].
pub fn latch_vs_dff(
    bm: &Benchmark,
    clocks: u32,
    computations: usize,
    seed: u64,
) -> Result<(DesignReport, DesignReport), SynthesisError> {
    let flow = flow_for(bm, computations, seed);
    let style = |mem_kind| DesignStyle::Custom {
        strategy: Strategy::Integrated,
        clocks,
        mem_kind,
        transfers: true,
        mode: PowerMode::multiclock(),
    };
    Ok((
        flow.evaluate(style(MemKind::Latch))?,
        flow.evaluate(style(MemKind::Dff))?,
    ))
}

/// Ablation: latched vs. unlatched control lines (§3.2 suggestion 2) on a
/// multi-clock design.
///
/// # Errors
///
/// Propagates [`SynthesisError`].
pub fn control_latching(
    bm: &Benchmark,
    clocks: u32,
    computations: usize,
    seed: u64,
) -> Result<(DesignReport, DesignReport), SynthesisError> {
    let flow = flow_for(bm, computations, seed);
    let style = |policy| DesignStyle::Custom {
        strategy: Strategy::Integrated,
        clocks,
        mem_kind: MemKind::Latch,
        transfers: true,
        mode: PowerMode {
            gated_mem_clocks: false,
            operand_isolation: false,
            control_policy: policy,
        },
    };
    Ok((
        flow.evaluate(style(ControlPolicy::Hold))?,
        flow.evaluate(style(ControlPolicy::Zero))?,
    ))
}

/// Ablation: split vs. integrated allocation under the same clock scheme
/// (§4.1 vs §4.2).
///
/// # Errors
///
/// Propagates [`SynthesisError`].
pub fn split_vs_integrated(
    bm: &Benchmark,
    clocks: u32,
    computations: usize,
    seed: u64,
) -> Result<(DesignReport, DesignReport), SynthesisError> {
    let flow = flow_for(bm, computations, seed);
    let style = |strategy| DesignStyle::Custom {
        strategy,
        clocks,
        mem_kind: MemKind::Latch,
        transfers: strategy == Strategy::Integrated,
        mode: PowerMode::multiclock(),
    };
    Ok((
        flow.evaluate(style(Strategy::Split))?,
        flow.evaluate(style(Strategy::Integrated))?,
    ))
}

/// Ablation: transfer-variable insertion on vs. off (§4.2 step 1).
///
/// # Errors
///
/// Propagates [`SynthesisError`].
pub fn transfers_on_off(
    bm: &Benchmark,
    clocks: u32,
    computations: usize,
    seed: u64,
) -> Result<(DesignReport, DesignReport), SynthesisError> {
    let flow = flow_for(bm, computations, seed);
    let style = |transfers| DesignStyle::Custom {
        strategy: Strategy::Integrated,
        clocks,
        mem_kind: MemKind::Latch,
        transfers,
        mode: PowerMode::multiclock(),
    };
    Ok((flow.evaluate(style(true))?, flow.evaluate(style(false))?))
}

/// Power of one design style under different input-stimulus models:
/// `(uniform random, random walk ±1, constant)` in mW. The paper
/// evaluates with uniform random inputs; correlated (walk) and idle
/// (constant) streams switch less, and the comparison shows how much of
/// the reported power is data-dependent.
///
/// # Errors
///
/// Propagates [`SynthesisError`].
pub fn stimulus_sensitivity(
    bm: &Benchmark,
    style: DesignStyle,
    computations: usize,
    seed: u64,
) -> Result<(f64, f64, f64), SynthesisError> {
    use mc_sim::{simulate_with_inputs, Stimulus};
    let flow = flow_for(bm, computations, seed);
    let design = flow.synthesize(style)?;
    let nl = &design.datapath.netlist;
    let run = |stim: Stimulus| -> f64 {
        let vectors = stim.vectors(nl, computations, seed);
        let res = simulate_with_inputs(nl, design.mode, &vectors, false);
        mc_power::estimate_power(nl, &res.activity, flow.tech()).total_mw
    };
    Ok((
        run(Stimulus::UniformRandom),
        run(Stimulus::RandomWalk { delta: 1 }),
        run(Stimulus::Constant),
    ))
}

/// One point of a supply-voltage sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltagePoint {
    /// Supply voltage (V).
    pub volts: f64,
    /// Total power at this supply (mW).
    pub power_mw: f64,
    /// Derated maximum frequency (MHz).
    pub fmax_mhz: f64,
    /// Whether the design still meets the 50 MHz reporting frequency.
    pub meets_target: bool,
}

/// Supply-voltage sweep for one design style — the §1 comparison the
/// paper motivates with: "reducing V_DD … comes at a cost on the delay".
/// Power falls as `V²`; the derated critical path shows where the design
/// stops meeting the target frequency. The multi-clock scheme's savings
/// are orthogonal and combine multiplicatively with whatever voltage
/// headroom remains.
///
/// # Errors
///
/// Propagates [`SynthesisError`].
pub fn voltage_scaling(
    bm: &Benchmark,
    style: DesignStyle,
    voltages: &[f64],
    computations: usize,
    seed: u64,
) -> Result<Vec<VoltagePoint>, SynthesisError> {
    let mut out = Vec::with_capacity(voltages.len());
    for &v in voltages {
        let lib = mc_tech::TechLibrary::vsc450().at_voltage(v);
        let flow = flow_for(bm, computations, seed).with_tech(lib);
        let report = flow.evaluate(style)?;
        out.push(VoltagePoint {
            volts: v,
            power_mw: report.power.total_mw,
            fmax_mhz: report.timing.fmax_mhz,
            meets_target: report.timing.meets_target,
        });
    }
    Ok(out)
}

/// Power statistics over several independent stimulus seeds: mean,
/// sample standard deviation, and extremes. Used to show that reported
/// numbers are stable against the random vectors (EXPERIMENTS.md quotes
/// single-seed values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerStats {
    /// Mean total power (mW).
    pub mean_mw: f64,
    /// Sample standard deviation (mW); 0 for a single seed.
    pub std_mw: f64,
    /// Minimum across seeds (mW).
    pub min_mw: f64,
    /// Maximum across seeds (mW).
    pub max_mw: f64,
    /// Number of seeds evaluated.
    pub seeds: usize,
}

/// Evaluates a style over `seeds` different stimulus seeds and summarises
/// the power spread.
///
/// # Errors
///
/// Propagates [`SynthesisError`].
///
/// # Panics
///
/// Panics if `seeds == 0`.
pub fn power_stats(
    bm: &Benchmark,
    style: DesignStyle,
    computations: usize,
    seeds: usize,
) -> Result<PowerStats, SynthesisError> {
    assert!(seeds >= 1, "need at least one seed");
    let mut values = Vec::with_capacity(seeds);
    for s in 0..seeds {
        let flow = flow_for(bm, computations, 1000 + s as u64 * 7919);
        values.push(flow.evaluate(style)?.power.total_mw);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = if values.len() > 1 {
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64
    } else {
        0.0
    };
    Ok(PowerStats {
        mean_mw: mean,
        std_mw: var.sqrt(),
        min_mw: values.iter().copied().fold(f64::INFINITY, f64::min),
        max_mw: values.iter().copied().fold(0.0, f64::max),
        seeds,
    })
}

/// Extension ablation: the reference schedule vs. the phase-affine
/// schedule (see [`mc_dfg::scheduler::phase_affine`]) under the same
/// multi-clock style. Returns `(reference, affine)` reports; the affine
/// schedule trades latency (`stretch` extra steps allowed) for power.
///
/// # Errors
///
/// Propagates [`SynthesisError`].
pub fn phase_affine_vs_reference(
    bm: &Benchmark,
    clocks: u32,
    stretch: u32,
    computations: usize,
    seed: u64,
) -> Result<(DesignReport, DesignReport), SynthesisError> {
    let style = DesignStyle::MultiClock(clocks);
    let reference = flow_for(bm, computations, seed).evaluate(style)?;
    let affine_schedule = mc_dfg::scheduler::phase_affine(&bm.dfg, clocks, stretch);
    let affine = Flow::new(bm.dfg.clone(), affine_schedule)
        .with_computations(computations)
        .with_seed(seed)
        .evaluate(style)?;
    Ok((reference, affine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_dfg::benchmarks;

    const N: usize = 60;

    #[test]
    fn paper_table_has_five_rows_and_renders() {
        let t = paper_table(&benchmarks::facet(), N, 42).unwrap();
        assert_eq!(t.rows.len(), 5);
        let s = t.render();
        assert!(s.contains("Non-Gated"));
        assert!(s.contains("3 Clocks"));
        assert!(s.contains("mW") || s.contains("Power"));
    }

    #[test]
    fn paper_table_rows_carry_styles_and_metrics() {
        let t = paper_table(&benchmarks::facet(), N, 42).unwrap();
        let styles: Vec<_> = t.rows.iter().map(|r| r.style).collect();
        assert_eq!(styles, DesignStyle::paper_rows());
        for row in &t.rows {
            assert!(!row.metrics.is_empty(), "{}: no pass metrics", row.label);
            assert!(row.metrics.iter().any(|m| m.pass == "simulate"));
        }
        // Rows 1–2 share the conventional allocation: exactly one of the
        // two runs "allocate" cold.
        let alloc_cold = t.rows[..2]
            .iter()
            .flat_map(|r| &r.metrics)
            .filter(|m| m.pass == "allocate" && !m.cache_hit)
            .count();
        assert_eq!(alloc_cold, 1, "conventional allocation should run once");
        assert!(t.render_timings().contains("partition"));
    }

    #[test]
    fn parallel_paper_table_matches_sequential() {
        let seq = paper_table(&benchmarks::hal(), N, 42).unwrap();
        let par = paper_table_parallel(&benchmarks::hal(), N, 42).unwrap();
        assert_eq!(seq.rows.len(), par.rows.len());
        for (s, p) in seq.rows.iter().zip(&par.rows) {
            assert_eq!(s.style, p.style);
            assert_eq!(s.report.power.total_mw, p.report.power.total_mw);
            assert_eq!(s.report.area.total_lambda2, p.report.area.total_lambda2);
            assert_eq!(s.report.stats.mux_inputs, p.report.stats.mux_inputs);
        }
    }

    #[test]
    fn facet_reproduces_paper_ordering() {
        let t = paper_table(&benchmarks::facet(), 200, 42).unwrap();
        let p = |style: DesignStyle| t.row_for_style(style).unwrap().report.power.total_mw;
        assert!(p(DesignStyle::ConventionalNonGated) > p(DesignStyle::ConventionalGated));
        assert!(p(DesignStyle::MultiClock(2)) < p(DesignStyle::ConventionalGated));
        assert!(p(DesignStyle::MultiClock(3)) < p(DesignStyle::MultiClock(2)));
        let red = t.gated_to_best_multiclock_reduction().unwrap();
        assert!(red > 0.25, "gated→multiclock reduction {red}");
    }

    #[test]
    fn reduction_ignores_the_single_clock_baseline_row() {
        // A table whose only "multi-clock" rows are the 1-clock baseline
        // must yield no reduction — the old label-suffix selection
        // ("…Clock"/"…Clocks") wrongly matched "1 Clock".
        let mut t = paper_table(&benchmarks::facet(), N, 42).unwrap();
        t.rows.retain(|r| {
            matches!(
                r.style,
                DesignStyle::ConventionalGated | DesignStyle::MultiClock(1)
            )
        });
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.gated_to_best_multiclock_reduction(), None);
    }

    #[test]
    fn style_sweep_instruments_points_and_shares_the_cache() {
        let styles = [
            DesignStyle::ConventionalNonGated,
            DesignStyle::ConventionalGated,
            DesignStyle::MultiClock(2),
        ];
        let t = style_sweep(&benchmarks::hal(), &styles, N, 42).unwrap();
        assert_eq!(t.rows.len(), 3);
        // The sweep narrates one finding per point...
        let sweep_lines: Vec<_> = t.diagnostics.iter().filter(|d| d.pass == "sweep").collect();
        assert_eq!(sweep_lines.len(), 3);
        // ...and the two conventional rows share one allocation, which the
        // gated row's narration reports as cache-served.
        assert!(
            sweep_lines[1].message.contains("1 cache-served"),
            "{}",
            sweep_lines[1].message
        );
        // Numbers are bit-identical to the plain table path.
        let plain = paper_table(&benchmarks::hal(), N, 42).unwrap();
        for row in &t.rows {
            let same = plain.row_for_style(row.style).unwrap();
            assert_eq!(row.report.power.total_mw, same.report.power.total_mw);
        }
    }

    #[test]
    fn clock_sweep_produces_monotone_clock_power() {
        let sweep = clock_sweep(&benchmarks::hal(), 4, N, 42).unwrap();
        assert_eq!(sweep.len(), 4);
        // Clock power per memory element must fall with n.
        for win in sweep.windows(2) {
            let (_, a) = &win[0];
            let (_, b) = &win[1];
            let pa = a.power.clock_mw / a.stats.mem_cells as f64;
            let pb = b.power.clock_mw / b.stats.mem_cells as f64;
            assert!(pb < pa * 1.05, "per-mem clock power rose: {pa} -> {pb}");
        }
    }

    #[test]
    fn parallel_clock_sweep_matches_sequential() {
        let seq = clock_sweep(&benchmarks::hal(), 4, N, 42).unwrap();
        let par = clock_sweep_parallel(&benchmarks::hal(), 4, N, 42).unwrap();
        assert_eq!(seq.len(), par.len());
        for ((an, a), (bn, b)) in seq.iter().zip(&par) {
            assert_eq!(an, bn);
            assert_eq!(a.power.total_mw, b.power.total_mw);
        }
    }

    #[test]
    fn latches_beat_dffs() {
        let (latch, dff) = latch_vs_dff(&benchmarks::biquad(), 2, N, 42).unwrap();
        assert!(latch.power.total_mw < dff.power.total_mw);
        assert!(latch.area.total_lambda2 < dff.area.total_lambda2);
    }

    #[test]
    fn control_latching_does_not_hurt() {
        let (hold, zero) = control_latching(&benchmarks::facet(), 2, N, 42).unwrap();
        assert!(hold.power.total_mw <= zero.power.total_mw * 1.02);
    }

    #[test]
    fn split_needs_at_least_integrated_resources() {
        let (split, integ) = split_vs_integrated(&benchmarks::hal(), 2, N, 42).unwrap();
        assert!(split.stats.mem_cells >= integ.stats.mem_cells);
    }

    #[test]
    fn transfers_ablation_runs() {
        let (on, off) = transfers_on_off(&benchmarks::bandpass(), 2, N, 42).unwrap();
        assert!(on.power.total_mw > 0.0 && off.power.total_mw > 0.0);
    }

    #[test]
    fn stimulus_sensitivity_orders_as_expected() {
        let (random, walk, constant) =
            stimulus_sensitivity(&benchmarks::biquad(), DesignStyle::MultiClock(2), 150, 42)
                .unwrap();
        assert!(random > walk, "random {random} vs walk {walk}");
        assert!(walk > constant, "walk {walk} vs constant {constant}");
        // Even an idle datapath pays clock power.
        assert!(constant > 0.1 * random, "constant {constant}");
    }

    #[test]
    fn voltage_sweep_trades_power_for_speed() {
        let points = voltage_scaling(
            &benchmarks::facet(),
            DesignStyle::MultiClock(2),
            &[5.0, 4.65, 3.3],
            N,
            42,
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        // Power falls monotonically with voltage…
        assert!(points[0].power_mw > points[1].power_mw);
        assert!(points[1].power_mw > points[2].power_mw);
        // …and fmax falls with it.
        assert!(points[0].fmax_mhz > points[2].fmax_mhz);
        // The V² law holds exactly (same activity, same caps).
        let ratio = points[2].power_mw / points[0].power_mw;
        assert!((ratio - (3.3f64 / 5.0).powi(2)).abs() < 1e-6, "{ratio}");
    }

    #[test]
    fn power_stats_are_tight_across_seeds() {
        let stats =
            power_stats(&benchmarks::facet(), DesignStyle::ConventionalGated, 150, 5).unwrap();
        assert_eq!(stats.seeds, 5);
        assert!(stats.min_mw <= stats.mean_mw && stats.mean_mw <= stats.max_mw);
        // Random-vector noise should stay within a few percent of the mean.
        assert!(
            stats.std_mw < 0.1 * stats.mean_mw,
            "noisy estimate: {stats:?}"
        );
    }

    #[test]
    fn phase_affine_scheduling_saves_power() {
        let (reference, affine) =
            phase_affine_vs_reference(&benchmarks::facet(), 2, 4, 150, 42).unwrap();
        assert!(
            affine.power.total_mw < reference.power.total_mw,
            "affine {} vs reference {}",
            affine.power.total_mw,
            reference.power.total_mw
        );
    }
}
