//! The sharded, content-addressed, on-disk result cache shared by the
//! persistent layers of the stack: `mcpm serve` keys whole response
//! documents by canonical request, and `mc-explore` keys per-point
//! evaluation records by canonical lattice point, both through this one
//! store.
//!
//! Entries are addressed by a 64-bit FNV-1a hash of the canonical text,
//! but the canonical text itself is stored in every entry header and
//! re-verified on `get`: a hash collision therefore reads as a miss for
//! the colliding request, never as the other entry's body. Entries live
//! one file each under 16 shard directories (first hex nibble of the
//! key), so a busy cache never piles every entry into one directory.
//! Writes go to a temporary file in the shard, are fsynced, and are
//! published with an atomic rename — a crash mid-save can't publish a
//! torn entry, and a failed rename removes its temp file. Reads validate
//! a versioned header (magic, schema version, key echo, canonical echo,
//! body length, body checksum); any mismatch — truncation, garbage, a
//! stale schema, a colliding canonical — evicts the file and reports a
//! miss, never a panic, and the next request simply recomputes.

use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk entry schema version. Bumping it invalidates every existing
/// entry cleanly: old files fail the header check, get evicted, and are
/// recomputed under the new schema. v3 added the canonical text to the
/// entry header so hash collisions read as misses.
pub const CACHE_VERSION: u32 = 3;

/// Number of shard directories (one per first hex nibble of the key).
const SHARDS: u64 = 16;

/// 64-bit FNV-1a — the cache's stable content hash. Unlike
/// `DefaultHasher` it is specified, so keys mean the same thing across
/// processes, runs, and toolchain versions (the whole point of a cache
/// that outlives the process).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A sharded on-disk cache mapping canonical request texts to UTF-8
/// bodies. Lookup is by FNV-1a hash of the canonical text; the stored
/// canonical is compared byte-for-byte on every hit, so two requests
/// whose hashes collide can never be served each other's results.
#[derive(Debug)]
pub struct DiskCache {
    root: PathBuf,
    /// Distinguishes concurrent writers' temp files within one process.
    seq: AtomicU64,
    evictions: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Fails if the root directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<DiskCache> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DiskCache {
            root,
            seq: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// The cache's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Corrupt/stale entries evicted by this handle so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    fn shard_dir(&self, key: u64) -> PathBuf {
        self.root.join(format!("{:x}", (key >> 60) & (SHARDS - 1)))
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.shard_dir(key).join(format!("{key:016x}.entry"))
    }

    /// Looks up the entry for `canonical`. A validation failure (wrong
    /// magic, stale schema version, truncated body, checksum mismatch, or
    /// a stored canonical that differs from the requested one — i.e. a
    /// key collision) evicts the file and returns `None` — corruption is
    /// repaired by recomputation, never surfaced as an error.
    #[must_use]
    pub fn get(&self, canonical: &str) -> Option<String> {
        let key = fnv1a(canonical.as_bytes());
        let path = self.entry_path(key);
        let raw = fs::read(&path).ok()?;
        match parse_entry(&raw, key, canonical) {
            Some(body) => Some(body),
            None => {
                // Never panic on a bad file; drop it and recompute.
                let _ = fs::remove_file(&path);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `body` under `canonical`, atomically and durably: the entry
    /// is written to a temp file in the same shard, fsynced, and renamed
    /// into place, so readers see either the old entry, the new one, or
    /// nothing — never a torso — even across a crash.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (callers treat the cache as best-effort).
    /// A failed rename removes the temp file before returning.
    pub fn put(&self, canonical: &str, body: &str) -> io::Result<()> {
        let key = fnv1a(canonical.as_bytes());
        let shard = self.shard_dir(key);
        fs::create_dir_all(&shard)?;
        let mut entry = String::with_capacity(canonical.len() + body.len() + 128);
        let _ = writeln!(entry, "mcpm-cache v{CACHE_VERSION}");
        let _ = writeln!(entry, "key={key:016x}");
        let _ = writeln!(entry, "canon_len={}", canonical.len());
        let _ = writeln!(entry, "len={}", body.len());
        let _ = writeln!(entry, "fnv={:016x}", fnv1a(body.as_bytes()));
        entry.push('\n');
        entry.push_str(canonical);
        entry.push_str(body);
        let tmp = shard.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        if let Err(e) = write_durably(&tmp, entry.as_bytes()) {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        match fs::rename(&tmp, self.entry_path(key)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Number of (well-named) entries currently on disk.
    #[must_use]
    pub fn len(&self) -> usize {
        let mut n = 0;
        for shard in 0..SHARDS {
            let dir = self.root.join(format!("{shard:x}"));
            let Ok(entries) = fs::read_dir(dir) else {
                continue;
            };
            n += entries
                .flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == "entry"))
                .count();
        }
        n
    }

    /// Whether the cache currently holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Writes `bytes` to `path` and fsyncs the file before returning, so the
/// contents are on stable storage before any rename publishes the name.
fn write_durably(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = fs::File::create(path)?;
    file.write_all(bytes)?;
    file.sync_all()
}

/// Validates one entry file against the expected key and canonical text;
/// `None` means the file is corrupt, truncated, from another schema
/// version, or belongs to a different (hash-colliding) canonical.
fn parse_entry(raw: &[u8], key: u64, canonical: &str) -> Option<String> {
    let text = std::str::from_utf8(raw).ok()?;
    let mut rest = text;
    let mut line = |prefix: &str| -> Option<&str> {
        let (head, tail) = rest.split_once('\n')?;
        rest = tail;
        head.strip_prefix(prefix)
    };
    let version: u32 = line("mcpm-cache v")?.parse().ok()?;
    if version != CACHE_VERSION {
        return None;
    }
    if u64::from_str_radix(line("key=")?, 16).ok()? != key {
        return None;
    }
    let canon_len: usize = line("canon_len=")?.parse().ok()?;
    let len: usize = line("len=")?.parse().ok()?;
    let fnv = u64::from_str_radix(line("fnv=")?, 16).ok()?;
    if !line("").is_some_and(str::is_empty) {
        return None;
    }
    if rest.len() != canon_len + len {
        return None;
    }
    // The stored canonical must match the request byte-for-byte — this is
    // what turns an FNV-1a collision into a miss instead of serving the
    // colliding entry's body.
    if rest.get(..canon_len)? != canonical {
        return None;
    }
    let body = rest.get(canon_len..)?;
    if fnv1a(body.as_bytes()) != fnv {
        return None;
    }
    Some(body.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mc-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn round_trips_and_counts_entries() {
        let cache = DiskCache::open(temp_root("roundtrip")).unwrap();
        assert!(cache.is_empty());
        cache.put("request one", "{\"x\":1}\n").unwrap();
        cache.put("request two", "{\"y\":2}\n").unwrap();
        assert_eq!(cache.get("request one").as_deref(), Some("{\"x\":1}\n"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn survives_a_reopen() {
        let root = temp_root("reopen");
        DiskCache::open(&root)
            .unwrap()
            .put("stable canonical", "persisted")
            .unwrap();
        let reopened = DiskCache::open(&root).unwrap();
        assert_eq!(
            reopened.get("stable canonical").as_deref(),
            Some("persisted")
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn canonicals_with_newlines_round_trip() {
        // Real canonicals are multi-line documents; the length-prefixed
        // header must carry them losslessly.
        let cache = DiskCache::open(temp_root("multiline")).unwrap();
        let canonical = "mcpm-serve request v3\nkind=explore\ndesign:\nname hal\n";
        cache.put(canonical, "body goes here").unwrap();
        assert_eq!(cache.get(canonical).as_deref(), Some("body goes here"));
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn truncated_entry_is_evicted_not_fatal() {
        let cache = DiskCache::open(temp_root("truncated")).unwrap();
        let canonical = "truncation victim";
        cache
            .put(canonical, "a body that will be cut short")
            .unwrap();
        let path = cache.entry_path(fnv1a(canonical.as_bytes()));
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 5]).unwrap();
        assert_eq!(cache.get(canonical), None);
        assert!(!path.exists(), "corrupt entry must be evicted");
        assert_eq!(cache.evictions(), 1);
        // Recompute path: a fresh put works again.
        cache.put(canonical, "recomputed").unwrap();
        assert_eq!(cache.get(canonical).as_deref(), Some("recomputed"));
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn garbage_and_flipped_bytes_are_evicted() {
        let cache = DiskCache::open(temp_root("garbage")).unwrap();
        let canonical = "garbage target";
        let key = fnv1a(canonical.as_bytes());
        // Pure garbage under the entry name.
        fs::create_dir_all(cache.shard_dir(key)).unwrap();
        fs::write(cache.entry_path(key), b"\xff\xfenot an entry").unwrap();
        assert_eq!(cache.get(canonical), None);
        assert_eq!(cache.evictions(), 1);
        // A bit flip in the body fails the checksum.
        cache.put(canonical, "checksummed body").unwrap();
        let path = cache.entry_path(key);
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x20;
        fs::write(&path, raw).unwrap();
        assert_eq!(cache.get(canonical), None);
        assert_eq!(cache.evictions(), 2);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn stale_schema_version_is_evicted() {
        let cache = DiskCache::open(temp_root("version")).unwrap();
        let canonical = "versioned";
        cache.put(canonical, "new-schema body").unwrap();
        let path = cache.entry_path(fnv1a(canonical.as_bytes()));
        let old = fs::read_to_string(&path).unwrap().replacen(
            &format!("v{CACHE_VERSION}"),
            &format!("v{}", CACHE_VERSION + 1),
            1,
        );
        fs::write(&path, old).unwrap();
        assert_eq!(cache.get(canonical), None, "other-version entry must miss");
        assert!(!path.exists());
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn wrong_key_in_header_is_evicted() {
        let cache = DiskCache::open(temp_root("wrongkey")).unwrap();
        cache.put("original owner", "body").unwrap();
        // Move the entry to where another canonical's key would live: the
        // header's key echo no longer matches the file name.
        let other = fnv1a(b"squatter");
        fs::create_dir_all(cache.shard_dir(other)).unwrap();
        fs::rename(
            cache.entry_path(fnv1a(b"original owner")),
            cache.entry_path(other),
        )
        .unwrap();
        assert_eq!(cache.get("squatter"), None);
        assert_eq!(cache.evictions(), 1);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn forced_key_collision_misses_instead_of_serving_the_wrong_body() {
        // A real 64-bit FNV-1a collision is infeasible to construct, so
        // forge on disk exactly what one would produce: an entry sitting
        // at the victim's path, with the victim's key in its header (a
        // collision means both canonicals hash to the same key), but
        // storing the *other* request's canonical text and body.
        let cache = DiskCache::open(temp_root("collision")).unwrap();
        let victim = "canonical request A";
        let squatter = "canonical request B";
        let victim_key = fnv1a(victim.as_bytes());
        let mut entry = String::new();
        let _ = writeln!(entry, "mcpm-cache v{CACHE_VERSION}");
        let _ = writeln!(entry, "key={victim_key:016x}");
        let _ = writeln!(entry, "canon_len={}", squatter.len());
        let _ = writeln!(entry, "len={}", "squatter body".len());
        let _ = writeln!(entry, "fnv={:016x}", fnv1a(b"squatter body"));
        entry.push('\n');
        entry.push_str(squatter);
        entry.push_str("squatter body");
        fs::create_dir_all(cache.shard_dir(victim_key)).unwrap();
        fs::write(cache.entry_path(victim_key), &entry).unwrap();
        // The colliding entry's body must never be served for the victim.
        assert_eq!(cache.get(victim), None);
        assert_eq!(cache.evictions(), 1);
        assert!(!cache.entry_path(victim_key).exists());
        // The victim recomputes and stores its own result cleanly.
        cache.put(victim, "victim body").unwrap();
        assert_eq!(cache.get(victim).as_deref(), Some("victim body"));
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn failed_rename_reports_the_error_and_leaves_no_temp_litter() {
        let cache = DiskCache::open(temp_root("renamefail")).unwrap();
        let canonical = "blocked entry";
        let key = fnv1a(canonical.as_bytes());
        // A directory squatting on the entry path makes the final rename
        // fail after the temp file is written and fsynced.
        fs::create_dir_all(cache.entry_path(key)).unwrap();
        assert!(cache.put(canonical, "body").is_err());
        let stray: Vec<_> = fs::read_dir(cache.shard_dir(key))
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(stray.is_empty(), "failed rename must remove its temp file");
        let _ = fs::remove_dir_all(cache.root());
    }
}
