//! The sharded, content-addressed, on-disk result cache shared by the
//! persistent layers of the stack: `mcpm serve` keys whole response
//! documents by canonical request, and `mc-explore` keys per-point
//! evaluation records by canonical lattice point, both through this one
//! store.
//!
//! Entries are keyed by a 64-bit FNV-1a hash of a canonicalised
//! description of the content and stored one file per entry under 16
//! shard directories (first hex nibble of the key), so a busy cache never
//! piles every entry into one directory. Writes go to a temporary file in
//! the shard and are published with an atomic rename — a crashed writer
//! can leave a stale `.tmp-*` file but never a half-written entry under
//! the final name. Reads validate a versioned header (magic, schema
//! version, key echo, body length, body checksum); any mismatch —
//! truncation, garbage, a stale schema — evicts the file and reports a
//! miss, never a panic, and the next request simply recomputes.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk entry schema version. Bumping it invalidates every existing
/// entry cleanly: old files fail the header check, get evicted, and are
/// recomputed under the new schema.
pub const CACHE_VERSION: u32 = 2;

/// Number of shard directories (one per first hex nibble of the key).
const SHARDS: u64 = 16;

/// 64-bit FNV-1a — the cache's stable content hash. Unlike
/// `DefaultHasher` it is specified, so keys mean the same thing across
/// processes, runs, and toolchain versions (the whole point of a cache
/// that outlives the process).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A sharded on-disk cache mapping `u64` keys to UTF-8 bodies.
#[derive(Debug)]
pub struct DiskCache {
    root: PathBuf,
    /// Distinguishes concurrent writers' temp files within one process.
    seq: AtomicU64,
    evictions: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Fails if the root directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<DiskCache> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DiskCache {
            root,
            seq: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// The cache's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Corrupt/stale entries evicted by this handle so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    fn shard_dir(&self, key: u64) -> PathBuf {
        self.root.join(format!("{:x}", (key >> 60) & (SHARDS - 1)))
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.shard_dir(key).join(format!("{key:016x}.entry"))
    }

    /// Looks up `key`. A validation failure (wrong magic, stale schema
    /// version, truncated body, checksum mismatch) evicts the file and
    /// returns `None` — corruption is repaired by recomputation, never
    /// surfaced as an error.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<String> {
        let path = self.entry_path(key);
        let raw = fs::read(&path).ok()?;
        match parse_entry(&raw, key) {
            Some(body) => Some(body),
            None => {
                // Never panic on a bad file; drop it and recompute.
                let _ = fs::remove_file(&path);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `body` under `key`, atomically: the entry is written to a
    /// temp file in the same shard and renamed into place, so readers see
    /// either the old entry, the new one, or nothing — never a torso.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (callers treat the cache as best-effort).
    pub fn put(&self, key: u64, body: &str) -> io::Result<()> {
        let shard = self.shard_dir(key);
        fs::create_dir_all(&shard)?;
        let mut entry = String::with_capacity(body.len() + 96);
        let _ = writeln!(entry, "mcpm-cache v{CACHE_VERSION}");
        let _ = writeln!(entry, "key={key:016x}");
        let _ = writeln!(entry, "len={}", body.len());
        let _ = writeln!(entry, "fnv={:016x}", fnv1a(body.as_bytes()));
        entry.push('\n');
        entry.push_str(body);
        let tmp = shard.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, &entry)?;
        match fs::rename(&tmp, self.entry_path(key)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Number of (well-named) entries currently on disk.
    #[must_use]
    pub fn len(&self) -> usize {
        let mut n = 0;
        for shard in 0..SHARDS {
            let dir = self.root.join(format!("{shard:x}"));
            let Ok(entries) = fs::read_dir(dir) else {
                continue;
            };
            n += entries
                .flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == "entry"))
                .count();
        }
        n
    }

    /// Whether the cache currently holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Validates one entry file against the expected key; `None` means the
/// file is corrupt, truncated, or from another schema version.
fn parse_entry(raw: &[u8], key: u64) -> Option<String> {
    let text = std::str::from_utf8(raw).ok()?;
    let mut rest = text;
    let mut line = |prefix: &str| -> Option<&str> {
        let (head, tail) = rest.split_once('\n')?;
        rest = tail;
        head.strip_prefix(prefix)
    };
    let version: u32 = line("mcpm-cache v")?.parse().ok()?;
    if version != CACHE_VERSION {
        return None;
    }
    if u64::from_str_radix(line("key=")?, 16).ok()? != key {
        return None;
    }
    let len: usize = line("len=")?.parse().ok()?;
    let fnv = u64::from_str_radix(line("fnv=")?, 16).ok()?;
    if !line("").is_some_and(str::is_empty) {
        return None;
    }
    if rest.len() != len || fnv1a(rest.as_bytes()) != fnv {
        return None;
    }
    Some(rest.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mc-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn round_trips_and_counts_entries() {
        let cache = DiskCache::open(temp_root("roundtrip")).unwrap();
        assert!(cache.is_empty());
        let key = fnv1a(b"request one");
        cache.put(key, "{\"x\":1}\n").unwrap();
        cache.put(fnv1a(b"request two"), "{\"y\":2}\n").unwrap();
        assert_eq!(cache.get(key).as_deref(), Some("{\"x\":1}\n"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn survives_a_reopen() {
        let root = temp_root("reopen");
        let key = 0x1234_5678_9abc_def0;
        DiskCache::open(&root)
            .unwrap()
            .put(key, "persisted")
            .unwrap();
        let reopened = DiskCache::open(&root).unwrap();
        assert_eq!(reopened.get(key).as_deref(), Some("persisted"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_entry_is_evicted_not_fatal() {
        let cache = DiskCache::open(temp_root("truncated")).unwrap();
        let key = 7;
        cache.put(key, "a body that will be cut short").unwrap();
        let path = cache.entry_path(key);
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 5]).unwrap();
        assert_eq!(cache.get(key), None);
        assert!(!path.exists(), "corrupt entry must be evicted");
        assert_eq!(cache.evictions(), 1);
        // Recompute path: a fresh put works again.
        cache.put(key, "recomputed").unwrap();
        assert_eq!(cache.get(key).as_deref(), Some("recomputed"));
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn garbage_and_flipped_bytes_are_evicted() {
        let cache = DiskCache::open(temp_root("garbage")).unwrap();
        let key = 99;
        // Pure garbage under the entry name.
        fs::create_dir_all(cache.shard_dir(key)).unwrap();
        fs::write(cache.entry_path(key), b"\xff\xfenot an entry").unwrap();
        assert_eq!(cache.get(key), None);
        assert_eq!(cache.evictions(), 1);
        // A bit flip in the body fails the checksum.
        cache.put(key, "checksummed body").unwrap();
        let path = cache.entry_path(key);
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x20;
        fs::write(&path, raw).unwrap();
        assert_eq!(cache.get(key), None);
        assert_eq!(cache.evictions(), 2);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn stale_schema_version_is_evicted() {
        let cache = DiskCache::open(temp_root("version")).unwrap();
        let key = 3;
        cache.put(key, "new-schema body").unwrap();
        let path = cache.entry_path(key);
        let old = fs::read_to_string(&path).unwrap().replacen(
            &format!("v{CACHE_VERSION}"),
            &format!("v{}", CACHE_VERSION + 1),
            1,
        );
        fs::write(&path, old).unwrap();
        assert_eq!(cache.get(key), None, "other-version entry must miss");
        assert!(!path.exists());
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn wrong_key_in_header_is_evicted() {
        let cache = DiskCache::open(temp_root("wrongkey")).unwrap();
        cache.put(11, "body").unwrap();
        // Move the entry to where another key would live.
        fs::create_dir_all(cache.shard_dir(12)).unwrap();
        fs::rename(cache.entry_path(11), cache.entry_path(12)).unwrap();
        assert_eq!(cache.get(12), None);
        assert_eq!(cache.evictions(), 1);
        let _ = fs::remove_dir_all(cache.root());
    }
}
