//! The top-level synthesis facade: behaviour + schedule → synthesised
//! design → verified, evaluated report.
//!
//! [`Synthesizer`] is a thin wrapper over the pass-pipeline
//! [`Flow`](crate::flow::Flow) — it keeps the original one-call API while
//! every synthesis runs through the instrumented, artifact-cached
//! pipeline. Use [`Synthesizer::flow`] (or [`Flow`](crate::flow::Flow)
//! directly) for per-pass metrics, diagnostics and parallel evaluation.

use std::fmt;

use mc_alloc::{AllocError, Datapath};
use mc_clocks::ClockError;
use mc_dfg::benchmarks::Benchmark;
use mc_dfg::{Dfg, Schedule};
use mc_power::DesignReport;
use mc_rtl::{NetlistError, PowerMode};
use mc_sim::Mismatch;
use mc_tech::TechLibrary;

use crate::flow::Flow;
use crate::style::DesignStyle;

/// Errors from the synthesis flow.
#[derive(Debug)]
pub enum SynthesisError {
    /// The clock count was invalid.
    Clock(ClockError),
    /// Allocation failed.
    Alloc(AllocError),
    /// Netlist construction or validation failed.
    Netlist(NetlistError),
    /// The synthesised design diverged from the behaviour (an internal
    /// bug; surfaced rather than silently reported).
    Equivalence(Box<Mismatch>),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Clock(e) => write!(f, "clock scheme: {e}"),
            SynthesisError::Alloc(e) => write!(f, "allocation: {e}"),
            SynthesisError::Netlist(e) => write!(f, "netlist: {e}"),
            SynthesisError::Equivalence(m) => write!(f, "equivalence check failed: {m}"),
        }
    }
}

impl std::error::Error for SynthesisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthesisError::Clock(e) => Some(e),
            SynthesisError::Alloc(e) => Some(e),
            SynthesisError::Netlist(e) => Some(e),
            SynthesisError::Equivalence(m) => Some(m),
        }
    }
}

#[doc(hidden)]
impl From<ClockError> for SynthesisError {
    fn from(e: ClockError) -> Self {
        SynthesisError::Clock(e)
    }
}

#[doc(hidden)]
impl From<AllocError> for SynthesisError {
    fn from(e: AllocError) -> Self {
        SynthesisError::Alloc(e)
    }
}

#[doc(hidden)]
impl From<NetlistError> for SynthesisError {
    fn from(e: NetlistError) -> Self {
        SynthesisError::Netlist(e)
    }
}

/// A synthesised design: the datapath plus the power mode it runs under.
#[derive(Debug, Clone)]
pub struct Design {
    /// The synthesised datapath (netlist + allocation artifacts).
    pub datapath: Datapath,
    /// The operating power mode.
    pub mode: PowerMode,
    /// The style that produced this design.
    pub style: DesignStyle,
}

/// The synthesis facade: holds a behaviour, its schedule and the
/// evaluation configuration, and synthesises/evaluates any
/// [`DesignStyle`] through the pass pipeline.
///
/// # Examples
///
/// ```
/// use mc_core::{DesignStyle, Synthesizer};
/// use mc_dfg::benchmarks;
///
/// # fn main() -> Result<(), mc_core::SynthesisError> {
/// let synth = Synthesizer::for_benchmark(&benchmarks::hal()).with_computations(100);
/// let report = synth.evaluate(DesignStyle::MultiClock(2))?;
/// assert!(report.power.total_mw > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Synthesizer {
    flow: Flow,
}

impl Synthesizer {
    /// A synthesizer for an explicit behaviour and schedule.
    #[must_use]
    pub fn new(dfg: Dfg, schedule: Schedule) -> Self {
        Synthesizer {
            flow: Flow::new(dfg, schedule),
        }
    }

    /// A synthesizer for a bundled benchmark (clones its DFG and reference
    /// schedule).
    #[must_use]
    pub fn for_benchmark(bm: &Benchmark) -> Self {
        Synthesizer {
            flow: Flow::for_benchmark(bm),
        }
    }

    /// Overrides the technology library.
    #[must_use]
    pub fn with_tech(mut self, tech: TechLibrary) -> Self {
        self.flow = self.flow.with_tech(tech);
        self
    }

    /// Sets the number of random computations per evaluation (default
    /// 400).
    #[must_use]
    pub fn with_computations(mut self, computations: usize) -> Self {
        self.flow = self.flow.with_computations(computations);
        self
    }

    /// Sets the stimulus seed (default 42).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.flow = self.flow.with_seed(seed);
        self
    }

    /// The behaviour being synthesised.
    #[must_use]
    pub fn dfg(&self) -> &Dfg {
        self.flow.dfg()
    }

    /// The schedule in use.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        self.flow.schedule()
    }

    /// The technology library in use.
    #[must_use]
    pub fn tech(&self) -> &TechLibrary {
        self.flow.tech()
    }

    /// The underlying pass-pipeline driver, for instrumented or parallel
    /// evaluation.
    #[must_use]
    pub fn flow(&self) -> &Flow {
        &self.flow
    }

    /// Synthesises a design in the given style.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::Clock`] for invalid clock counts and
    /// [`SynthesisError::Alloc`] if allocation fails.
    pub fn synthesize(&self, style: DesignStyle) -> Result<Design, SynthesisError> {
        self.flow.synthesize(style)
    }

    /// Synthesises and verifies functional equivalence against the
    /// behaviour over random vectors.
    ///
    /// # Errors
    ///
    /// In addition to [`Synthesizer::synthesize`]'s errors, returns
    /// [`SynthesisError::Equivalence`] if the netlist diverges from the
    /// DFG.
    pub fn synthesize_verified(&self, style: DesignStyle) -> Result<Design, SynthesisError> {
        self.flow.synthesize_verified(style)
    }

    /// Synthesises and fully evaluates a style: random simulation, power
    /// and area estimation, resource statistics.
    ///
    /// # Errors
    ///
    /// Propagates [`Synthesizer::synthesize`]'s errors.
    pub fn evaluate(&self, style: DesignStyle) -> Result<DesignReport, SynthesisError> {
        self.flow.evaluate(style)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_dfg::benchmarks;

    #[test]
    fn synthesize_all_paper_styles() {
        let synth = Synthesizer::for_benchmark(&benchmarks::facet());
        for style in DesignStyle::paper_rows() {
            let d = synth.synthesize(style).unwrap();
            assert_eq!(d.datapath.netlist.scheme().num_clocks(), style.clocks());
            assert_eq!(d.mode, style.power_mode());
        }
    }

    #[test]
    fn verified_synthesis_passes_for_paper_styles() {
        let synth = Synthesizer::for_benchmark(&benchmarks::biquad()).with_computations(20);
        for style in DesignStyle::paper_rows() {
            synth
                .synthesize_verified(style)
                .unwrap_or_else(|e| panic!("{style}: {e}"));
        }
    }

    #[test]
    fn evaluate_produces_positive_power_and_area() {
        let synth = Synthesizer::for_benchmark(&benchmarks::hal()).with_computations(50);
        let r = synth.evaluate(DesignStyle::MultiClock(2)).unwrap();
        assert!(r.power.total_mw > 0.0);
        assert!(r.area.total_lambda2 > 0.0);
        assert!(r.stats.mem_cells > 0);
    }

    #[test]
    fn invalid_clock_count_errors() {
        let synth = Synthesizer::for_benchmark(&benchmarks::hal());
        assert!(matches!(
            synth.synthesize(DesignStyle::MultiClock(0)),
            Err(SynthesisError::Clock(_))
        ));
        assert!(matches!(
            synth.synthesize(DesignStyle::MultiClock(99)),
            Err(SynthesisError::Clock(_))
        ));
    }

    #[test]
    fn evaluation_is_deterministic() {
        let synth = Synthesizer::for_benchmark(&benchmarks::facet()).with_computations(60);
        let a = synth.evaluate(DesignStyle::ConventionalGated).unwrap();
        let b = synth.evaluate(DesignStyle::ConventionalGated).unwrap();
        assert_eq!(a.power.total_mw, b.power.total_mw);
        assert_eq!(a.area.total_lambda2, b.area.total_lambda2);
    }

    #[test]
    fn custom_style_round_trips() {
        let synth = Synthesizer::for_benchmark(&benchmarks::hal()).with_computations(20);
        let style = DesignStyle::Custom {
            strategy: mc_alloc::Strategy::Split,
            clocks: 2,
            mem_kind: mc_tech::MemKind::Latch,
            transfers: false,
            mode: mc_rtl::PowerMode::multiclock(),
        };
        let d = synth.synthesize_verified(style).unwrap();
        assert_eq!(d.datapath.strategy, mc_alloc::Strategy::Split);
    }
}
