//! Multi-clock low-power RTL synthesis — a full reproduction of
//! *"An Effective Power Management Scheme for RTL Design Based on Multiple
//! Clocks"* (DAC 1996).
//!
//! The scheme divides a single clock of frequency `f` into `n`
//! non-overlapping phase clocks of `f/n`, partitions the scheduled
//! behaviour so each partition is active only in its own phase, and
//! allocates each partition into its own latch-based datapath module.
//! Effective throughput stays `f`; clock, storage and combinational power
//! fall. This crate is the facade over the full stack:
//!
//! * [`mc_dfg`] — behaviours, schedules, schedulers, benchmarks;
//! * [`mc_clocks`] — the non-overlapping clock scheme;
//! * [`mc_alloc`] — conventional / split / integrated allocation;
//! * [`mc_rtl`] — structural netlists and controllers;
//! * [`mc_sim`] — phase-accurate simulation with transition counting;
//! * [`mc_power`] — COMPASS-style power/area estimation;
//! * [`mc_tech`] — the calibrated 0.8 µm-style cell library.
//!
//! # Quick start
//!
//! ```
//! use mc_core::{DesignStyle, Synthesizer};
//! use mc_dfg::benchmarks;
//!
//! # fn main() -> Result<(), mc_core::SynthesisError> {
//! // Synthesise the HAL differential-equation benchmark five ways and
//! // compare — the paper's Table 2 in a few lines.
//! let synth = Synthesizer::for_benchmark(&benchmarks::hal()).with_computations(100);
//! let gated = synth.evaluate(DesignStyle::ConventionalGated)?;
//! let three = synth.evaluate(DesignStyle::MultiClock(3))?;
//! assert!(three.power.total_mw < gated.power.total_mw);
//! # Ok(())
//! # }
//! ```
//!
//! The [`experiment`] module regenerates every paper table
//! ([`experiment::paper_table`], or [`experiment::paper_table_parallel`]
//! on scoped threads) and the ablations; the `mc-bench` crate wraps them
//! in runnable binaries and in-tree benches.
//!
//! # The pass pipeline
//!
//! Everything above runs through the [`flow`] layer: an explicit pass
//! pipeline (`Behavior → PartitionedSchedule → Datapath → SimTrace →
//! DesignReport`, see [`passes`]) with per-pass wall-clock and artifact
//! instrumentation, pass diagnostics, and a content-keyed artifact cache
//! so shared pipeline prefixes run once. [`Flow`] is the driver;
//! [`Synthesizer`] is the thin facade over it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod experiment;
pub mod flow;
pub mod passes;
pub mod retrofit;
pub mod rewrite;
mod style;
mod synthesizer;

pub use flow::{CacheStats, Diagnostic, Evaluated, Flow, PassMetrics, Severity};
pub use retrofit::{
    retrofit_netlist, retrofit_source, verify_retrofit, Retrofit, RetrofitError, RetrofitOptions,
    RetrofitReport,
};
pub use rewrite::{verify_rewrite, RewriteChoice, RewriteError, RewriteMismatch, RewriteOptions};
pub use style::DesignStyle;
pub use synthesizer::{Design, SynthesisError, Synthesizer};

// Re-export the stack so downstream users need a single dependency.
pub use mc_alloc as alloc;
pub use mc_clocks as clocks;
pub use mc_dfg as dfg;
pub use mc_power as power;
pub use mc_rtl as rtl;
pub use mc_sim as sim;
pub use mc_tech as tech;
