//! Equivalence-checked datapath rewriting — the explorer's first
//! *generated* design-space axis.
//!
//! The paper fixes the datapath and optimises clocking and allocation
//! around it; rewriting the behaviour itself (operator strength
//! reduction, operand commutation, schedule re-balancing) reaches
//! power/area points no clocking knob can. Each [`RewriteChoice`] is a
//! deterministic, infallible transformation of a scheduled behaviour:
//! when its rule set finds nothing to change, the behaviour comes back
//! unchanged, so the explorer can fold the point onto its baseline twin
//! and serve it from structural dedup.
//!
//! Soundness is never assumed: [`verify_rewrite`] replays the rewritten
//! behaviour against the original through the compiled simulation kernel
//! on a Monte-Carlo seed schedule and demands bit-identical outputs per
//! seed × computation, reporting the first divergence as a typed
//! [`RewriteError::Diverged`] — the same contract as the retrofit
//! verifier. The explorer refuses to score any rewritten point whose
//! choice has not passed this check.
//!
//! The rule set is deliberately small and schedule-preserving:
//!
//! * **Strength** — single-node operator demotions: `x * 2^k` becomes a
//!   shift (`x << k`), `x * 0` an AND-mask, and `x * 1` / `x + 0` /
//!   `x - 0` wire-through ORs. Multi-node shift/add chain expansion is
//!   out of scope: the schedule contract forbids same-step chaining, so
//!   a chain would stretch the schedule rather than win power.
//! * **Balance** — moves nodes out of over-full control steps into
//!   emptier feasible steps (respecting strict dependence), levelling
//!   per-step parallelism so allocation needs fewer functional units.
//!   The DFG is untouched; only the schedule changes.
//! * **Commute** — canonicalises operand order of commutative
//!   operations: constants to the right, variable pairs in variable-id
//!   order. Same graph semantics, different mux wiring and binding.

use std::fmt;

use mc_dfg::benchmarks::Benchmark;
use mc_dfg::{Dfg, DfgBuilder, NodeId, Op, Operand, Schedule};
use mc_rtl::PowerMode;
use mc_sim::{try_simulate_with_inputs, SimError, Stimulus};

use crate::passes::Behavior;
use crate::style::DesignStyle;
use crate::synthesizer::{SynthesisError, Synthesizer};

/// One point on the explorer's rewrite axis: which rewrite rule family
/// is applied to the behaviour before scheduling-style and clocking
/// choices are made. `Baseline` leaves the behaviour untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RewriteChoice {
    /// No rewriting; the bundled behaviour and reference schedule.
    Baseline,
    /// Operator strength reduction (power-of-two multiplies to shifts,
    /// `x*0` / `x*1` / `x+0` / `x-0` folds).
    Strength,
    /// Schedule re-balancing: level per-step parallelism by moving nodes
    /// into emptier feasible steps.
    Balance,
    /// Commutation: canonical operand order for commutative operations.
    Commute,
}

impl RewriteChoice {
    /// Every choice, `Baseline` first (the explorer's anchor rows always
    /// enumerate under `Baseline`).
    pub const ALL: [RewriteChoice; 4] = [
        RewriteChoice::Baseline,
        RewriteChoice::Strength,
        RewriteChoice::Balance,
        RewriteChoice::Commute,
    ];

    /// The first `n` choices (clamped to `1..=ALL.len()`), mirroring
    /// `GatingVariant::first_n`: `--rewrites 1` is baseline-only,
    /// `--rewrites 4` spans the whole rule set.
    #[must_use]
    pub fn first_n(n: usize) -> Vec<RewriteChoice> {
        Self::ALL[..n.clamp(1, Self::ALL.len())].to_vec()
    }

    /// Stable label used in point canonical text, JSON and CLI output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RewriteChoice::Baseline => "baseline",
            RewriteChoice::Strength => "strength",
            RewriteChoice::Balance => "balance",
            RewriteChoice::Commute => "commute",
        }
    }

    /// Applies the choice to a scheduled behaviour. Infallible and
    /// deterministic: when no rule of the family fires, the result is
    /// structurally equal to the input (`dfg` and `schedule` compare
    /// equal), which the explorer uses to fold no-op points onto their
    /// baseline twins.
    #[must_use]
    pub fn apply(self, base: &Behavior) -> Behavior {
        match self {
            RewriteChoice::Baseline => base.clone(),
            RewriteChoice::Strength => Behavior::new(
                rewrite_nodes(&base.dfg, strength_reduce_node),
                base.schedule.clone(),
            ),
            RewriteChoice::Balance => Behavior::new(
                base.dfg.clone(),
                balance_schedule(&base.dfg, &base.schedule),
            ),
            RewriteChoice::Commute => Behavior::new(
                rewrite_nodes(&base.dfg, commute_node),
                base.schedule.clone(),
            ),
        }
    }

    /// Applies the choice to a bundled benchmark's behaviour.
    #[must_use]
    pub fn apply_to_benchmark(self, bm: &Benchmark) -> Behavior {
        self.apply(&Behavior::for_benchmark(bm))
    }
}

impl fmt::Display for RewriteChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One rewritten node: the (possibly unchanged) operation and operands.
/// Destination variables are never renamed and node order never changes,
/// so the reference schedule stays valid verbatim.
type NodeRewrite = (Op, Operand, Operand);

/// Rebuilds `dfg` with `rule` applied to every node. Variable ids, node
/// ids, names and output markings are preserved exactly; only ops and
/// operands may change. Rules must not introduce reads of new variables
/// (they may only drop or keep existing reads), which keeps every
/// schedule of the original graph valid for the rewritten one.
fn rewrite_nodes(dfg: &Dfg, rule: fn(&Dfg, NodeId) -> NodeRewrite) -> Dfg {
    let mut b = DfgBuilder::new(dfg.name(), dfg.width());
    // A DfgBuilder creates each node's destination variable at insertion,
    // so replaying variables in id order — inputs directly, internals via
    // their writer node — reproduces both id spaces exactly.
    for v in dfg.var_ids() {
        let var = dfg.var(v);
        if var.is_input() {
            b.input(var.name());
        } else {
            let n = dfg.writer_of(v).expect("internal variables have writers");
            let (op, lhs, rhs) = rule(dfg, n);
            b.op_named(var.name(), op, lhs, rhs);
        }
    }
    for v in dfg.outputs() {
        b.mark_output(v);
    }
    b.finish()
        .expect("rewrite rules preserve graph well-formedness")
}

/// Strength reduction for one node. All identities are exact under the
/// modular `width`-bit semantics of [`Op::apply`] (constants are masked
/// to the datapath width before classification).
fn strength_reduce_node(dfg: &Dfg, n: NodeId) -> NodeRewrite {
    let node = dfg.node(n);
    let mask = (1u64 << dfg.width()) - 1;
    let width = u64::from(dfg.width());
    // A single constant operand (either side of a commutative op, the
    // right side of subtraction) paired with the other operand `x`.
    let const_and_other = |allow_lhs: bool| -> Option<(u64, Operand)> {
        match (node.lhs(), node.rhs()) {
            (x, Operand::Const(c)) => Some((c & mask, x)),
            (Operand::Const(c), x) if allow_lhs => Some((c & mask, x)),
            _ => None,
        }
    };
    match node.op() {
        Op::Mul => {
            if let Some((c, x)) = const_and_other(true) {
                if c == 0 {
                    // x * 0 == 0 == x & 0: the AND costs a linear cell
                    // instead of a multiplier array.
                    return (Op::And, x, Operand::Const(0));
                }
                if c == 1 {
                    // x * 1 == x == x | 0.
                    return (Op::Or, x, Operand::Const(0));
                }
                if c.is_power_of_two() {
                    let k = u64::from(c.trailing_zeros());
                    if k < width {
                        // x * 2^k == x << k in modular arithmetic.
                        return (Op::Shl, x, Operand::Const(k));
                    }
                }
            }
        }
        Op::Add => {
            if let Some((0, x)) = const_and_other(true) {
                return (Op::Or, x, Operand::Const(0));
            }
        }
        Op::Sub => {
            // Only x - 0 folds; 0 - x negates.
            if let (x, Operand::Const(c)) = (node.lhs(), node.rhs()) {
                if c & mask == 0 {
                    return (Op::Or, x, Operand::Const(0));
                }
            }
        }
        _ => {}
    }
    (node.op(), node.lhs(), node.rhs())
}

/// Commutation canonicalisation for one node: for commutative operations,
/// constants move to the right operand and variable pairs are ordered by
/// variable id. Non-commutative operations pass through untouched.
fn commute_node(dfg: &Dfg, n: NodeId) -> NodeRewrite {
    let node = dfg.node(n);
    if !node.op().is_commutative() {
        return (node.op(), node.lhs(), node.rhs());
    }
    let (lhs, rhs) = match (node.lhs(), node.rhs()) {
        (Operand::Const(c), x @ Operand::Var(_)) => (x, Operand::Const(c)),
        (Operand::Var(a), Operand::Var(b)) if a > b => (Operand::Var(b), Operand::Var(a)),
        (lhs, rhs) => (lhs, rhs),
    };
    (node.op(), lhs, rhs)
}

/// Levels per-step parallelism: repeatedly moves a node from a fuller
/// step into a strictly emptier feasible step (strict dependence and the
/// schedule length are preserved), until no move improves. Each applied
/// move strictly lowers the sum of squared step occupancies, so the loop
/// terminates. Multi-cycle schedules are returned unchanged — their
/// feasibility windows interact with latencies, and every bundled
/// reference schedule is unit-latency.
fn balance_schedule(dfg: &Dfg, schedule: &Schedule) -> Schedule {
    if schedule.has_multicycle_ops() {
        return schedule.clone();
    }
    let length = schedule.length();
    let mut steps: Vec<u32> = schedule.steps().to_vec();
    let mut occupancy = vec![0usize; length as usize + 1];
    for &t in &steps {
        occupancy[t as usize] += 1;
    }
    loop {
        let mut moved = false;
        for n in dfg.node_ids() {
            let t = steps[n.index()];
            let lo = dfg
                .preds(n)
                .map(|p| steps[p.index()] + 1)
                .max()
                .unwrap_or(1);
            let hi = dfg
                .succs(n)
                .iter()
                .map(|s| steps[s.index()] - 1)
                .min()
                .unwrap_or(length);
            let Some(target) = (lo..=hi.min(length)).min_by_key(|&c| (occupancy[c as usize], c))
            else {
                continue;
            };
            if occupancy[target as usize] + 1 < occupancy[t as usize] {
                occupancy[t as usize] -= 1;
                occupancy[target as usize] += 1;
                steps[n.index()] = target;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    Schedule::new(dfg, steps, length).expect("balancing preserves dependence and range")
}

/// The first observed output divergence between the original and the
/// rewritten behaviour's synthesised designs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteMismatch {
    /// The stimulus seed under which the divergence occurred.
    pub seed: u64,
    /// The 0-based computation index.
    pub computation: usize,
    /// The diverging output port.
    pub port: String,
    /// The original design's output value.
    pub original: u64,
    /// The rewritten design's output value.
    pub rewritten: u64,
}

/// Errors from rewrite verification.
#[derive(Debug)]
pub enum RewriteError {
    /// Either behaviour failed to synthesise.
    Synthesis(SynthesisError),
    /// Simulation of either design failed.
    Sim(SimError),
    /// The rewritten design diverged from the original.
    Diverged(Box<RewriteMismatch>),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Synthesis(e) => write!(f, "synthesis: {e}"),
            RewriteError::Sim(e) => write!(f, "simulation: {e}"),
            RewriteError::Diverged(m) => write!(
                f,
                "seed {} computation {}: output `{}` diverged ({} vs {})",
                m.seed, m.computation, m.port, m.original, m.rewritten
            ),
        }
    }
}

impl std::error::Error for RewriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RewriteError::Synthesis(e) => Some(e),
            RewriteError::Sim(e) => Some(e),
            RewriteError::Diverged(_) => None,
        }
    }
}

impl From<SynthesisError> for RewriteError {
    fn from(e: SynthesisError) -> Self {
        RewriteError::Synthesis(e)
    }
}

impl From<SimError> for RewriteError {
    fn from(e: SimError) -> Self {
        RewriteError::Sim(e)
    }
}

/// Verification depth: stimulus seeds and computations per seed.
#[derive(Debug, Clone)]
pub struct RewriteOptions {
    /// Computations simulated per stimulus seed.
    pub computations: usize,
    /// Stimulus seeds (one Monte-Carlo sample each).
    pub seeds: Vec<u64>,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            computations: 200,
            seeds: mc_power::derive_seeds(42, 5),
        }
    }
}

/// Verifies a rewrite by replaying both behaviours through the compiled
/// simulation kernel: both are synthesised as conventional non-gated
/// designs, driven with *identical* per-seed stimulus vectors (generated
/// from the original design, whose input ports the rewrite preserves),
/// and required to produce bit-identical outputs for every
/// seed × computation.
///
/// # Errors
///
/// [`RewriteError::Diverged`] on the first output mismatch (reported in
/// seed-schedule order, so the error is deterministic),
/// [`RewriteError::Synthesis`] / [`RewriteError::Sim`] when either
/// design fails to build or simulate.
pub fn verify_rewrite(
    original: &Behavior,
    rewritten: &Behavior,
    opts: &RewriteOptions,
) -> Result<(), RewriteError> {
    let _span = mc_trace::span("rewrite.verify");
    assert!(
        !opts.seeds.is_empty(),
        "verification needs at least one seed"
    );
    let synth = |b: &Behavior| -> Result<_, RewriteError> {
        let design = Synthesizer::new(b.dfg.clone(), b.schedule.clone())
            .synthesize(DesignStyle::ConventionalNonGated)?;
        Ok(design.datapath.netlist)
    };
    let orig_nl = synth(original)?;
    let rewr_nl = synth(rewritten)?;
    for &seed in &opts.seeds {
        let vectors = Stimulus::UniformRandom
            .flat_vectors(&orig_nl, opts.computations, seed)
            .to_vectors();
        let orig = try_simulate_with_inputs(&orig_nl, PowerMode::non_gated(), &vectors, false)?;
        let rewr = try_simulate_with_inputs(&rewr_nl, PowerMode::non_gated(), &vectors, false)?;
        for (c, (o, r)) in orig.outputs.iter().zip(&rewr.outputs).enumerate() {
            if o != r {
                let (port, original, rewritten) = o
                    .iter()
                    .find_map(|(name, &ov)| {
                        let rv = r.get(name).copied().unwrap_or(u64::MAX);
                        (rv != ov).then(|| (name.clone(), ov, rv))
                    })
                    .unwrap_or_else(|| ("<ports>".to_owned(), 0, 0));
                return Err(RewriteError::Diverged(Box::new(RewriteMismatch {
                    seed,
                    computation: c,
                    port,
                    original,
                    rewritten,
                })));
            }
        }
    }
    if mc_trace::enabled() {
        mc_trace::count("rewrite.verified", 1);
        mc_trace::count(
            "rewrite.verify.computations",
            (opts.computations * opts.seeds.len()) as u64,
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_dfg::benchmarks;
    use mc_dfg::scheduler;

    fn verify_quick(original: &Behavior, rewritten: &Behavior) {
        let opts = RewriteOptions {
            computations: 40,
            seeds: mc_power::derive_seeds(7, 3),
        };
        verify_rewrite(original, rewritten, &opts).expect("rewrite must be equivalent");
    }

    /// A behaviour exercising every strength-reduction identity.
    fn strength_rich() -> Behavior {
        let mut b = DfgBuilder::new("strengthy", 8);
        let x = b.input("x");
        let y = b.input("y");
        let m8 = b.op_named("m8", Op::Mul, x, 8u64); // -> x << 3
        let mz = b.op_named("mz", Op::Mul, 0u64, y); // -> y & 0
        let m1 = b.op_named("m1", Op::Mul, y, 1u64); // -> y | 0
        let a0 = b.op_named("a0", Op::Add, x, 0u64); // -> x | 0
        let s0 = b.op_named("s0", Op::Sub, y, 0u64); // -> y | 0
        let t = b.op_named("t", Op::Add, m8, mz);
        let u = b.op_named("u", Op::Add, m1, a0);
        let out = b.op_named("out", Op::Add, t, u);
        let out2 = b.op_named("out2", Op::Add, s0, out);
        b.mark_output(out2);
        let dfg = b.finish().expect("well-formed");
        let schedule = scheduler::asap(&dfg);
        Behavior::new(dfg, schedule)
    }

    #[test]
    fn labels_and_first_n_behave_like_the_gating_axis() {
        assert_eq!(RewriteChoice::ALL[0], RewriteChoice::Baseline);
        let labels: Vec<_> = RewriteChoice::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, ["baseline", "strength", "balance", "commute"]);
        assert_eq!(RewriteChoice::first_n(0), vec![RewriteChoice::Baseline]);
        assert_eq!(RewriteChoice::first_n(1), vec![RewriteChoice::Baseline]);
        assert_eq!(RewriteChoice::first_n(2).len(), 2);
        assert_eq!(RewriteChoice::first_n(99).len(), RewriteChoice::ALL.len());
        assert_eq!(RewriteChoice::Balance.to_string(), "balance");
    }

    #[test]
    fn baseline_is_the_identity() {
        for bm in benchmarks::all_benchmarks() {
            let base = Behavior::for_benchmark(&bm);
            let same = RewriteChoice::Baseline.apply(&base);
            assert_eq!(same.dfg, base.dfg, "{}", bm.name());
            assert_eq!(same.schedule, base.schedule, "{}", bm.name());
        }
    }

    #[test]
    fn strength_demotes_every_identity_and_stays_equivalent() {
        let base = strength_rich();
        let rewritten = RewriteChoice::Strength.apply(&base);
        assert_eq!(rewritten.schedule, base.schedule, "schedule reused");
        let h = rewritten.dfg.op_histogram();
        assert!(!h.contains_key(&Op::Mul), "all multiplies demoted: {h:?}");
        assert_eq!(h[&Op::Shl], 1, "x*8 became a shift");
        assert_eq!(h[&Op::And], 1, "x*0 became a mask");
        assert_eq!(h[&Op::Or], 3, "x*1, x+0, x-0 became wire-through ORs");
        // Ids, names and outputs are preserved.
        assert_eq!(rewritten.dfg.num_vars(), base.dfg.num_vars());
        assert_eq!(rewritten.dfg.num_nodes(), base.dfg.num_nodes());
        verify_quick(&base, &rewritten);
    }

    #[test]
    fn strength_ignores_non_power_constants_and_negation() {
        // hal's only constants are 3 (not a power of two): nothing fires.
        let base = Behavior::for_benchmark(&benchmarks::hal());
        let rewritten = RewriteChoice::Strength.apply(&base);
        assert_eq!(rewritten.dfg, base.dfg);
        // 0 - x must not fold to x.
        let mut b = DfgBuilder::new("neg", 8);
        let x = b.input("x");
        let n = b.op_named("n", Op::Sub, 0u64, x);
        b.mark_output(n);
        let dfg = b.finish().unwrap();
        let schedule = scheduler::asap(&dfg);
        let base = Behavior::new(dfg, schedule);
        let rewritten = RewriteChoice::Strength.apply(&base);
        assert_eq!(rewritten.dfg, base.dfg, "negation left alone");
    }

    #[test]
    fn commute_moves_constants_right_and_orders_variables() {
        let base = Behavior::for_benchmark(&benchmarks::hal());
        let rewritten = RewriteChoice::Commute.apply(&base);
        assert_eq!(rewritten.schedule, base.schedule);
        assert_ne!(rewritten.dfg, base.dfg, "hal's 3*x constants move right");
        for n in rewritten.dfg.node_ids() {
            let node = rewritten.dfg.node(n);
            if node.op().is_commutative() {
                assert!(
                    !matches!(
                        (node.lhs(), node.rhs()),
                        (Operand::Const(_), Operand::Var(_))
                    ),
                    "constants sit on the right after commutation"
                );
                if let (Operand::Var(a), Operand::Var(b)) = (node.lhs(), node.rhs()) {
                    assert!(a <= b, "variable pairs are id-ordered");
                }
            }
        }
        verify_quick(&base, &rewritten);
    }

    #[test]
    fn balance_levels_hal_parallelism_and_stays_equivalent() {
        let base = Behavior::for_benchmark(&benchmarks::hal());
        assert_eq!(base.schedule.max_parallelism(), 4);
        let rewritten = RewriteChoice::Balance.apply(&base);
        assert_eq!(rewritten.dfg, base.dfg, "balance never touches the DFG");
        assert_eq!(rewritten.schedule.length(), base.schedule.length());
        assert!(
            rewritten.schedule.max_parallelism() < base.schedule.max_parallelism(),
            "hal's 4-wide step T3 must level down, got {}",
            rewritten.schedule.max_parallelism()
        );
        verify_quick(&base, &rewritten);
    }

    #[test]
    fn every_choice_is_equivalent_on_every_paper_benchmark() {
        for bm in benchmarks::paper_benchmarks() {
            let base = Behavior::for_benchmark(&bm);
            for choice in RewriteChoice::ALL {
                let rewritten = choice.apply(&base);
                let opts = RewriteOptions {
                    computations: 30,
                    seeds: mc_power::derive_seeds(5, 2),
                };
                verify_rewrite(&base, &rewritten, &opts)
                    .unwrap_or_else(|e| panic!("{} under {}: {e}", bm.name(), choice));
            }
        }
    }

    #[test]
    fn an_unsound_rewrite_is_reported_as_a_typed_divergence() {
        let base = Behavior::for_benchmark(&benchmarks::facet());
        // Forge a wrong "rewrite": flip the output node's op.
        let broken = rewrite_nodes(&base.dfg, |dfg, n| {
            let node = dfg.node(n);
            if dfg.var(node.dest()).name() == "r1" {
                (Op::Add, node.lhs(), node.rhs())
            } else {
                (node.op(), node.lhs(), node.rhs())
            }
        });
        let rewritten = Behavior::new(broken, base.schedule.clone());
        let opts = RewriteOptions {
            computations: 40,
            seeds: mc_power::derive_seeds(7, 3),
        };
        match verify_rewrite(&base, &rewritten, &opts) {
            Err(RewriteError::Diverged(m)) => {
                assert_eq!(m.seed, opts.seeds[0], "first seed reports first");
                assert_eq!(m.port, "r1");
                let text = RewriteError::Diverged(m).to_string();
                assert!(text.contains("diverged"), "{text}");
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn rewrites_are_deterministic() {
        for choice in RewriteChoice::ALL {
            let a = choice.apply_to_benchmark(&benchmarks::bandpass());
            let b = choice.apply_to_benchmark(&benchmarks::bandpass());
            assert_eq!(a.dfg, b.dfg, "{choice}");
            assert_eq!(a.schedule, b.schedule, "{choice}");
        }
    }
}
