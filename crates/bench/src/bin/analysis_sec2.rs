//! Reproduces the paper's §2.1/§2.2 closed-form analysis: busy fractions
//! under overlapped computations and the capacitance conditions for the
//! multi-clock scheme to win.
//!
//! Usage: `cargo run -p mc-bench --bin analysis_sec2`

use mc_power::analysis;

fn main() {
    println!("§2 analysis — motivating example (5-step behaviour, overlap 1)\n");

    // Circuit 1: two ALUs, each busy 3 of 4 effective steps.
    let busy1 = analysis::busy_fraction(3, 5, 1);
    // Circuit 2: disjoint subcircuits, each busy 2 of 4 effective steps.
    let busy2 = analysis::busy_fraction(2, 5, 1);
    println!(
        "Circuit 1 component busy fraction: {:.0} % (paper: 75 %)",
        busy1 * 100.0
    );
    println!(
        "Circuit 2 component busy fraction: {:.0} % (paper: 50 %)",
        busy2 * 100.0
    );

    println!("\n§2.1 no power management: need C21 + C22 < 2·C1");
    for ratio in [1.6f64, 2.0, 2.4] {
        let wins = analysis::wins_without_power_management(&[ratio / 2.0, ratio / 2.0], 1.0);
        println!("  ΣC/C1 = {ratio:.1}: multi-clock wins? {wins}");
    }

    println!(
        "\n§2.2 vs gated clocks: need C21 + C22 < (busy1/busy2)·C1 = {:.2}·C1",
        analysis::capacitance_headroom(busy1, busy2)
    );
    for ratio in [1.2f64, 1.5, 1.8] {
        let wins =
            analysis::wins_against_gated_clocks(&[ratio / 2.0, ratio / 2.0], 1.0, busy1, busy2);
        println!("  ΣC/C1 = {ratio:.1}: multi-clock wins? {wins}");
    }

    println!(
        "\ncrude register advantage (paper: P1 − P2 ≈ 3/4·C_R·V²·f): {:.3} mW \
         for C_R = 0.32 pF at 4.65 V, 50 MHz",
        analysis::crude_register_advantage_mw(0.32, 4.65, 50.0)
    );
}
