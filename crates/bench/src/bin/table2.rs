//! Regenerates the paper's Table 2.
//!
//! Usage: `cargo run -p mc-bench --bin table2 [--computations N] [--seed S]`

fn main() {
    let _ = mc_bench::run_paper_table(2, mc_bench::RunConfig::from_args());
}
