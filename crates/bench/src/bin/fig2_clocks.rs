//! Reproduces Fig. 2 of the paper: the non-overlapping multi-clock
//! waveforms derived from a single clock.
//!
//! Usage: `cargo run -p mc-bench --bin fig2_clocks`

use mc_clocks::ClockScheme;

fn main() {
    for n in [2u32, 3] {
        let scheme = ClockScheme::new(n).expect("small clock counts are valid");
        println!("Fig. 2 — {scheme}");
        print!("{}", scheme.waveform(8));
        println!(
            "non-overlap verified over 64 steps: {}",
            scheme.verify_non_overlapping(64)
        );
        println!();
    }
}
