//! Reproduces Fig. 6 of the paper: lifetime analysis of READs and WRITEs
//! with transfer-variable insertion — a cross-partition operand is copied
//! into the reading partition, the original read is deleted, and the
//! shortened lifetime enables a register merge.
//!
//! Usage: `cargo run -p mc-bench --bin fig6_lifetime`

use mc_alloc::{allocate_registers, LifetimeView, PVarSource, Problem};
use mc_clocks::ClockScheme;
use mc_dfg::{DfgBuilder, Op, Schedule};
use mc_tech::MemKind;

fn render(problem: &Problem, title: &str) {
    println!("{title}");
    println!(
        "  {:<10} {:>6} {:>6} {:>8}  source",
        "variable", "write", "death", "phase"
    );
    for v in &problem.vars {
        let src = match v.source {
            PVarSource::PrimaryInput(_) => "primary input".to_owned(),
            PVarSource::Node(n) => format!("op {n}"),
            PVarSource::Transfer(s) => format!("transfer of {}", problem.vars[s].name),
        };
        println!(
            "  {:<10} {:>6} {:>6} {:>8}  {src}",
            v.name,
            v.write_step,
            v.death,
            v.phase.to_string()
        );
    }
    let regs = allocate_registers(problem, MemKind::Latch, LifetimeView::Global);
    let merged: Vec<String> = regs
        .iter()
        .map(|g| {
            g.pvars
                .iter()
                .map(|&i| problem.vars[i].name.clone())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    println!("  latches after left-edge merge: {}", merged.join(", "));
    println!();
}

fn main() {
    // The Fig. 6 situation: x is written in one partition, consumed by a
    // multiplication scheduled two steps later in the other partition, so
    // a transfer variable captures x into the reader's partition at the
    // intermediate step and x's own lifetime shrinks.
    let mut b = DfgBuilder::new("fig6", 4);
    let a = b.input("a");
    let x = b.op_named("x", Op::Add, a, a); // T1, partition 1
    let e = b.op_named("e", Op::Sub, a, x); // T2, partition 2
    let y = b.op_named("y", Op::Mul, x, e); // T4, partition 2
    let u = b.op_named("u", Op::Add, y, a); // T5, partition 1
    b.mark_output(u);
    let dfg = b.finish().expect("Fig. 6 example is well-formed");
    let schedule = Schedule::new(&dfg, vec![1, 2, 4, 5], 5).expect("schedule is legal");
    let scheme = ClockScheme::new(2).expect("two clocks");

    println!("Fig. 6 — lifetime analysis with and without transfer variables\n");
    let before = Problem::build(&dfg, &schedule, scheme, false);
    render(&before, "(a) before: y reads x across partitions at T4");
    let after = Problem::build(&dfg, &schedule, scheme, true);
    render(
        &after,
        "(b) after: transfer captured at T2 in partition 2; x dies earlier",
    );
    println!(
        "transfers inserted: {} (cross-partition reads {} -> {})",
        after.transfers,
        before.cross_partition_reads(),
        after.cross_partition_reads()
    );
}
