//! Regenerates all four paper tables in one run (the data source for
//! EXPERIMENTS.md).
//!
//! Usage: `cargo run -p mc-bench --bin all_tables [--computations N]`

fn main() {
    let cfg = mc_bench::RunConfig::from_args();
    for i in 1..=4 {
        let _ = mc_bench::run_paper_table(i, cfg);
        println!();
    }
}
