//! Reproduces Fig. 1 of the paper: the §2 motivating example synthesised
//! two ways — Circuit 1 (minimal-resource, single clock) and Circuit 2
//! (partitioned, two non-overlapping clocks) — with the §2.1/§2.2 power
//! comparison.
//!
//! Usage: `cargo run -p mc-bench --bin fig1_motivating [--computations N]`

use mc_bench::RunConfig;
use mc_core::{DesignStyle, Synthesizer};
use mc_dfg::benchmarks;

fn main() {
    let cfg = RunConfig::from_args();
    let bm = benchmarks::motivating();
    println!("Fig. 1 — motivating example ({})", bm.description);
    println!("{}", bm.dfg);
    println!("schedule:");
    for t in 1..=bm.schedule.length() {
        let nodes: Vec<String> = bm
            .schedule
            .nodes_at_step(t)
            .into_iter()
            .map(|n| format!("N{}", n.index() + 1))
            .collect();
        println!("  T{t}: {}", nodes.join(" "));
    }
    let synth = Synthesizer::for_benchmark(&bm)
        .with_computations(cfg.computations)
        .with_seed(cfg.seed);

    println!("\n--- Circuit 1: minimal-resource conventional allocation ---");
    let c1 = synth
        .synthesize(DesignStyle::ConventionalNonGated)
        .expect("circuit 1 synthesises");
    println!("{}", c1.datapath.netlist);

    println!("--- Circuit 2: two-clock partitioned allocation ---");
    let c2 = synth
        .synthesize(DesignStyle::MultiClock(2))
        .expect("circuit 2 synthesises");
    println!("{}", c2.datapath.netlist);
    for (phase, comps) in c2.datapath.netlist.dpm_groups() {
        println!(
            "  DPM of {phase}: {} components (subcircuit active on {phase} only)",
            comps.len()
        );
    }

    println!("\n--- §2 power comparison ---");
    let r1_ng = synth.evaluate(DesignStyle::ConventionalNonGated).unwrap();
    let r1_g = synth.evaluate(DesignStyle::ConventionalGated).unwrap();
    let r2 = synth.evaluate(DesignStyle::MultiClock(2)).unwrap();
    println!("Circuit 1, no power management : {}", r1_ng.power);
    println!("Circuit 1, gated clocks        : {}", r1_g.power);
    println!("Circuit 2, two clocks          : {}", r2.power);
    println!(
        "two-clock vs no management: {:.1} % reduction (paper argues C21+C22 < 2·C1 suffices)",
        100.0 * r2.power.reduction_vs(&r1_ng.power)
    );
    println!(
        "two-clock vs gated clocks : {:.1} % reduction (paper argues C21+C22 < 3/2·C1 suffices)",
        100.0 * r2.power.reduction_vs(&r1_g.power)
    );
}
