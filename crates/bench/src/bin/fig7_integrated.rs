//! Reproduces Fig. 7 of the paper: the datapath produced by the
//! integrated allocation algorithm for a small two-clock example,
//! including the controller schedule.
//!
//! Usage: `cargo run -p mc-bench --bin fig7_integrated`

use mc_alloc::{allocate, AllocOptions, Strategy};
use mc_clocks::ClockScheme;
use mc_dfg::benchmarks;
use mc_rtl::export::to_vhdl;

fn main() {
    let bm = benchmarks::motivating();
    let scheme = ClockScheme::new(2).expect("two clocks");
    let dp = allocate(
        &bm.dfg,
        &bm.schedule,
        &AllocOptions::new(Strategy::Integrated, scheme),
    )
    .expect("integrated allocation succeeds");

    println!("Fig. 7 — integrated allocation of `{}`", bm.name());
    println!("{}", dp.netlist);
    println!("register binding:");
    for (i, g) in dp.regs.iter().enumerate() {
        let names: Vec<&str> = g
            .pvars
            .iter()
            .map(|&v| dp.problem.vars[v].name.as_str())
            .collect();
        println!("  mem{i} ({}, {:?}): {}", g.phase, g.kind, names.join(", "));
    }
    println!("ALU binding:");
    for (i, g) in dp.alus.iter().enumerate() {
        let ops: Vec<String> = g
            .ops
            .iter()
            .map(|&o| format!("{}@T{}", dp.problem.ops[o].op, dp.problem.ops[o].step))
            .collect();
        println!("  alu{i} {} ({}): {}", g.fs, g.phase, ops.join(", "));
    }
    println!("\n{}", to_vhdl(&dp.netlist));
}
