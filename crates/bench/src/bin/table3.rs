//! Regenerates the paper's Table 3.
//!
//! Usage: `cargo run -p mc-bench --bin table3 [--computations N] [--seed S]`

fn main() {
    let _ = mc_bench::run_paper_table(3, mc_bench::RunConfig::from_args());
}
