//! Regenerates the paper's Table 4.
//!
//! Usage: `cargo run -p mc-bench --bin table4 [--computations N] [--seed S]`

fn main() {
    let _ = mc_bench::run_paper_table(4, mc_bench::RunConfig::from_args());
}
