//! Reproduces Fig. 5 of the paper: the split-allocation walk-through —
//! partition the schedule (step 1), allocate each partition independently
//! (step 2), remove redundancies and interconnect (step 3).
//!
//! Usage: `cargo run -p mc-bench --bin fig5_split`

use mc_alloc::{allocate, AllocOptions, Strategy};
use mc_clocks::ClockScheme;
use mc_dfg::benchmarks;

fn main() {
    let bm = benchmarks::motivating();
    let scheme = ClockScheme::new(2).expect("two clocks");
    println!(
        "Fig. 5 — split allocation of `{}` under {scheme}",
        bm.name()
    );

    // Step 1: partition the schedule by odd/even steps with local numbering.
    println!("\nStep 1 (partition the schedule):");
    for k in scheme.phases() {
        println!("  partition {k} (local steps are the paper's primed numbering):");
        for t in 1..=bm.schedule.length() {
            if !scheme.is_active(k, t) {
                continue;
            }
            let local = scheme.local_step(t).expect("steps are 1-based");
            let nodes: Vec<String> = bm
                .schedule
                .nodes_at_step(t)
                .into_iter()
                .map(|n| format!("N{}", n.index() + 1))
                .collect();
            println!("    T{t} -> local {local}': {}", nodes.join(" "));
        }
    }

    // Steps 2+3: the split allocator (partition-local lifetimes) plus the
    // composer's clean-up (shared input registers, direct cross-partition
    // connections instead of duplicated pseudo-I/O registers).
    println!("\nSteps 2–3 (allocate partitions, remove redundancies, interconnect):");
    let dp = allocate(
        &bm.dfg,
        &bm.schedule,
        &AllocOptions::new(Strategy::Split, scheme),
    )
    .expect("split allocation succeeds");
    println!("{}", dp.netlist);
    let stats = dp.netlist.stats();
    println!(
        "result: ALUs {}, mem cells {}, mux inputs {}, cross-partition reads {}",
        stats.alu_summary(),
        stats.mem_cells,
        stats.mux_inputs,
        dp.cross_partition_reads()
    );

    // Contrast with integrated allocation (Fig. 7's method).
    let integ = allocate(
        &bm.dfg,
        &bm.schedule,
        &AllocOptions::new(Strategy::Integrated, scheme),
    )
    .expect("integrated allocation succeeds");
    let istats = integ.netlist.stats();
    println!(
        "integrated allocation of the same behaviour: ALUs {}, mem cells {}, mux inputs {}",
        istats.alu_summary(),
        istats.mem_cells,
        istats.mux_inputs
    );
}
