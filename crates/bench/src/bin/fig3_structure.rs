//! Reproduces Fig. 3 of the paper: the functional-block / datapath-module
//! structural model, shown on a synthesised two-clock design with its
//! structural VHDL export.
//!
//! Usage: `cargo run -p mc-bench --bin fig3_structure`

use mc_core::{DesignStyle, Synthesizer};
use mc_dfg::benchmarks;
use mc_rtl::export::to_vhdl;

fn main() {
    let bm = benchmarks::hal();
    let synth = Synthesizer::for_benchmark(&bm);
    let design = synth
        .synthesize(DesignStyle::MultiClock(2))
        .expect("HAL synthesises under two clocks");
    let nl = &design.datapath.netlist;
    println!("Fig. 3 — FB/DPM structure of `{}`", nl.name());
    println!("{nl}");
    println!("datapath modules (Fig. 3b): one per phase clock");
    for (phase, comps) in nl.dpm_groups() {
        println!("  DPM({phase}):");
        for c in comps {
            println!("    {}", nl.component(c));
        }
    }
    println!("\nstructural export (the VHDL the paper fed to COMPASS):\n");
    println!("{}", to_vhdl(nl));
}
