//! Reproduces Fig. 4 of the paper: the timing relationship between two
//! datapath modules under a two-clock scheme — stored values switch only
//! at their own phase's clock edges and are stable elsewhere.
//!
//! Usage: `cargo run -p mc-bench --bin fig4_timing`

use std::collections::BTreeMap;

use mc_core::{DesignStyle, Synthesizer};
use mc_dfg::benchmarks;
use mc_rtl::PowerMode;
use mc_sim::simulate_with_inputs;

fn main() {
    let bm = benchmarks::motivating();
    let synth = Synthesizer::for_benchmark(&bm);
    let design = synth
        .synthesize(DesignStyle::MultiClock(2))
        .expect("motivating example synthesises under two clocks");
    let nl = &design.datapath.netlist;

    // Two computations with differing inputs so the trace shows edges.
    let mask = (1u64 << nl.width()) - 1;
    let vectors: Vec<BTreeMap<String, u64>> = (0..3)
        .map(|c| {
            nl.inputs()
                .iter()
                .enumerate()
                .map(|(i, (name, _))| (name.clone(), (3 * c + 2 * i as u64 + 1) & mask))
                .collect()
        })
        .collect();
    let res = simulate_with_inputs(nl, PowerMode::multiclock(), &vectors, true);
    let trace = res.trace.expect("trace requested");

    println!(
        "Fig. 4 — per-step values of memory-element outputs (`{}`)",
        nl.name()
    );
    let period = nl.controller().len();
    print!("{:<24}", "signal \\ step");
    for s in 1..=trace.len() {
        let t = (s as u32 - 1) % period + 1;
        print!(" T{t:<3}");
    }
    println!();
    for mem in nl.mems() {
        let comp = nl.component(mem.comp());
        let phase = comp.mem_phase().expect("mems have phases");
        let net = comp.output();
        print!("{:<24}", format!("{} ({})", comp.label(), phase));
        let mut prev = None;
        for row in &trace {
            let v = row[net.index()];
            let marker = if prev == Some(v) { ' ' } else { '*' };
            print!(" {v:>2}{marker} ");
            prev = Some(v);
        }
        println!();
    }
    println!("(* marks a transition; R-values change only on their own phase's edges — the Fig. 4 property)");
}
