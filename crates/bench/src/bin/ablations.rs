//! Runs the ablation studies discussed in the paper's §3.2 and §5.2:
//! clock-count sweep (diminishing returns), latch vs. DFF memories,
//! latched vs. unlatched control lines, split vs. integrated allocation,
//! and transfer-variable insertion.
//!
//! Usage: `cargo run -p mc-bench --bin ablations [--computations N]`

use mc_bench::RunConfig;
use mc_core::experiment;
use mc_dfg::benchmarks;

fn main() {
    let cfg = RunConfig::from_args();
    let (n, seed) = (cfg.computations, cfg.seed);

    println!("== Ablation 1: clock-count sweep (diminishing returns, §5.2) ==");
    for bm in benchmarks::paper_benchmarks() {
        let sweep = experiment::clock_sweep(&bm, 6, n, seed).expect("sweep succeeds");
        print!("{:<9}:", bm.name());
        for (k, rep) in &sweep {
            print!(
                "  n={k}: {:5.2} mW / {:4.2} Mλ²",
                rep.power.total_mw,
                rep.area.total_lambda2 / 1e6
            );
        }
        println!();
    }

    println!("\n== Ablation 2: latch vs DFF memory elements (§2.2) ==");
    for bm in benchmarks::paper_benchmarks() {
        let (latch, dff) = experiment::latch_vs_dff(&bm, 2, n, seed).expect("runs");
        println!(
            "{:<9}: latch {:5.2} mW / {:4.2} Mλ²   dff {:5.2} mW / {:4.2} Mλ²   latch saves {:4.1} %",
            bm.name(),
            latch.power.total_mw,
            latch.area.total_lambda2 / 1e6,
            dff.power.total_mw,
            dff.area.total_lambda2 / 1e6,
            100.0 * (1.0 - latch.power.total_mw / dff.power.total_mw)
        );
    }

    println!("\n== Ablation 3: latched vs unlatched control lines (§3.2) ==");
    for bm in benchmarks::paper_benchmarks() {
        let (hold, zero) = experiment::control_latching(&bm, 2, n, seed).expect("runs");
        println!(
            "{:<9}: latched {:5.2} mW   unlatched {:5.2} mW   latching saves {:4.1} %",
            bm.name(),
            hold.power.total_mw,
            zero.power.total_mw,
            100.0 * (1.0 - hold.power.total_mw / zero.power.total_mw)
        );
    }

    println!("\n== Ablation 4: split vs integrated allocation (§4.1 vs §4.2) ==");
    for bm in benchmarks::paper_benchmarks() {
        let (split, integ) = experiment::split_vs_integrated(&bm, 2, n, seed).expect("runs");
        println!(
            "{:<9}: split {:5.2} mW / mem {:2}   integrated {:5.2} mW / mem {:2}",
            bm.name(),
            split.power.total_mw,
            split.stats.mem_cells,
            integ.power.total_mw,
            integ.stats.mem_cells
        );
    }

    println!("\n== Ablation 5: transfer variables on/off (§4.2 step 1) ==");
    for bm in benchmarks::all_benchmarks() {
        let (on, off) = experiment::transfers_on_off(&bm, 2, n, seed).expect("runs");
        println!(
            "{:<10}: with {:5.2} mW / mem {:2}   without {:5.2} mW / mem {:2}",
            bm.name(),
            on.power.total_mw,
            on.stats.mem_cells,
            off.power.total_mw,
            off.stats.mem_cells
        );
    }

    println!("\n== Ablation 6 (extension): on-chip phase-generator overhead ==");
    println!("(the paper, like our tables, treats the phase clocks as chip inputs)");
    {
        use mc_alloc::{allocate, AllocOptions, Strategy};
        use mc_clocks::ClockScheme;
        use mc_power::clock_generator_overhead;
        use mc_tech::TechLibrary;
        let bm = benchmarks::hal();
        let lib = TechLibrary::vsc450();
        for k in 2..=4u32 {
            let dp = allocate(
                &bm.dfg,
                &bm.schedule,
                &AllocOptions::new(Strategy::Integrated, ClockScheme::new(k).expect("valid")),
            )
            .expect("allocates");
            let (area, power) = clock_generator_overhead(&dp.netlist, &lib);
            println!(
                "hal, n={k}: generator {power:.2} mW, {area:.0} λ² \
                 (visible on a 4-bit datapath; amortises at real widths)"
            );
        }
    }

    println!("\n== Ablation 7 (extension): phase-affine scheduling, 2 clocks, stretch 4 ==");
    for bm in benchmarks::paper_benchmarks() {
        let (reference, affine) =
            experiment::phase_affine_vs_reference(&bm, 2, 4, n, seed).expect("runs");
        println!(
            "{:<9}: reference {:5.2} mW   affine {:5.2} mW   saves {:4.1} % (at added latency)",
            bm.name(),
            reference.power.total_mw,
            affine.power.total_mw,
            100.0 * (1.0 - affine.power.total_mw / reference.power.total_mw)
        );
    }

    println!("\n== Ablation 8 (extension): input-stimulus sensitivity, 2 clocks ==");
    println!("(the paper uses uniform random inputs; correlated streams switch less)");
    for bm in benchmarks::paper_benchmarks() {
        let (random, walk, constant) =
            experiment::stimulus_sensitivity(&bm, mc_core::DesignStyle::MultiClock(2), n, seed)
                .expect("runs");
        println!(
            "{:<9}: uniform {:5.2} mW   walk±1 {:5.2} mW ({:4.1} % less)   constant {:5.2} mW",
            bm.name(),
            random,
            walk,
            100.0 * (1.0 - walk / random),
            constant
        );
    }

    println!("\n== Ablation 9 (extension): supply-voltage scaling vs multi-clocking ==");
    println!("(the paper's §1: lowering V_DD saves V² power but costs delay; phases don't)");
    let bm = benchmarks::hal();
    for style in [
        mc_core::DesignStyle::ConventionalGated,
        mc_core::DesignStyle::MultiClock(3),
    ] {
        let points =
            experiment::voltage_scaling(&bm, style, &[5.0, 4.65, 3.3], n, seed).expect("runs");
        print!("{:<34}", style.label());
        for p in points {
            print!(
                "  {:.2}V: {:5.2} mW, fmax {:3.0} MHz{}",
                p.volts,
                p.power_mw,
                p.fmax_mhz,
                if p.meets_target { "" } else { " (!)" }
            );
        }
        println!();
    }
}
