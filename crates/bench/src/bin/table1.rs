//! Regenerates the paper's Table 1.
//!
//! Usage: `cargo run -p mc-bench --bin table1 [--computations N] [--seed S]`

fn main() {
    let _ = mc_bench::run_paper_table(1, mc_bench::RunConfig::from_args());
}
