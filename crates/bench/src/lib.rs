//! Shared harness code for the table/figure regeneration binaries and the
//! in-tree micro-benchmarks: CLI configuration and the paper's published
//! numbers for side-by-side comparison.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod harness;

use mc_dfg::benchmarks::{self, Benchmark};

/// Run configuration shared by every binary: number of random
/// computations per design and the stimulus seed. Parsed from
/// `--computations N` / `--seed S` command-line arguments.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Random computations per evaluated design.
    pub computations: usize,
    /// Stimulus seed.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            computations: 400,
            seed: 42,
        }
    }
}

impl RunConfig {
    /// Parses `--computations N` and `--seed S` from the process
    /// arguments, falling back to the defaults (400 computations, seed
    /// 42). Unknown arguments are ignored.
    #[must_use]
    pub fn from_args() -> Self {
        let mut cfg = RunConfig::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--computations" if i + 1 < args.len() => {
                    if let Ok(n) = args[i + 1].parse() {
                        cfg.computations = n;
                    }
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    if let Ok(s) = args[i + 1].parse() {
                        cfg.seed = s;
                    }
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        cfg
    }
}

/// One row of the paper's published tables: label, power (mW), area (λ²),
/// memory cells, mux inputs.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Design-style label.
    pub label: &'static str,
    /// Published power in mW.
    pub power_mw: f64,
    /// Published layout area in λ².
    pub area_lambda2: f64,
    /// Published memory-cell count.
    pub mem_cells: u32,
    /// Published mux-input count.
    pub mux_inputs: u32,
}

const fn row(
    label: &'static str,
    power_mw: f64,
    area_lambda2: f64,
    mem_cells: u32,
    mux_inputs: u32,
) -> PaperRow {
    PaperRow {
        label,
        power_mw,
        area_lambda2,
        mem_cells,
        mux_inputs,
    }
}

/// Table 1 (FACET) as published.
pub const PAPER_TABLE_1: [PaperRow; 5] = [
    row("Conven. Alloc. (Non-Gated Clock)", 9.85, 2_680_425.0, 8, 10),
    row("Conven. Alloc. (Gated Clock)", 6.92, 2_383_553.0, 8, 10),
    row("1 Clock", 7.39, 2_668_365.0, 10, 12),
    row("2 Clocks", 6.41, 2_552_425.0, 10, 12),
    row("3 Clocks", 3.52, 2_484_873.0, 14, 4),
];

/// Table 2 (HAL) as published.
pub const PAPER_TABLE_2: [PaperRow; 5] = [
    row(
        "Conven. Alloc. (Non-Gated Clock)",
        12.48,
        3_080_133.0,
        8,
        10,
    ),
    row("Conven. Alloc. (Gated Clock)", 8.12, 2_819_025.0, 8, 10),
    row("1 Clock", 5.61, 2_627_484.0, 12, 20),
    row("2 Clocks", 4.98, 2_901_501.0, 14, 20),
    row("3 Clocks", 3.73, 2_954_465.0, 17, 8),
];

/// Table 3 (Biquad filter) as published.
pub const PAPER_TABLE_3: [PaperRow; 5] = [
    row(
        "Conven. Alloc. (Non-Gated Clock)",
        18.65,
        5_118_795.0,
        18,
        35,
    ),
    row("Conven. Alloc. (Gated Clock)", 11.49, 4_826_283.0, 18, 35),
    row("1 Clock", 11.31, 5_126_718.0, 20, 47),
    row("2 Clocks", 9.24, 5_194_451.0, 20, 56),
    row("3 Clocks", 7.19, 5_327_823.0, 26, 45),
];

/// Table 4 (Band-pass filter) as published.
pub const PAPER_TABLE_4: [PaperRow; 5] = [
    row(
        "Conven. Alloc. (Non-Gated Clock)",
        18.01,
        5_588_975.0,
        23,
        39,
    ),
    row("Conven. Alloc. (Gated Clock)", 8.87, 4_181_238.0, 23, 39),
    row("1 Clock", 7.39, 3_049_956.0, 15, 50),
    row("2 Clocks", 6.15, 3_729_654.0, 19, 57),
    row("3 Clocks", 5.78, 4_728_731.0, 25, 66),
];

/// The benchmark and published rows for paper table `i` (1–4).
///
/// # Panics
///
/// Panics for table numbers outside 1–4.
#[must_use]
pub fn table_spec(i: usize) -> (Benchmark, &'static [PaperRow; 5]) {
    match i {
        1 => (benchmarks::facet(), &PAPER_TABLE_1),
        2 => (benchmarks::hal(), &PAPER_TABLE_2),
        3 => (benchmarks::biquad(), &PAPER_TABLE_3),
        4 => (benchmarks::bandpass(), &PAPER_TABLE_4),
        _ => panic!("the paper has tables 1-4, asked for {i}"),
    }
}

/// Runs paper table `i` and prints measured-vs-published rows plus the
/// headline reduction comparison. Returns the rendered text (also
/// printed).
///
/// # Panics
///
/// Panics if synthesis fails (indicates an internal bug) or `i` is out of
/// range.
#[must_use]
pub fn run_paper_table(i: usize, cfg: RunConfig) -> String {
    use std::fmt::Write as _;
    let (bm, paper) = table_spec(i);
    // Rows run concurrently through the instrumented pass pipeline;
    // results are bit-identical to the sequential path.
    let table = mc_core::experiment::paper_table_parallel(&bm, cfg.computations, cfg.seed)
        .expect("paper table synthesis succeeds");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table {i}: {} — measured (this reproduction) vs published (DAC'96)",
        bm.name()
    );
    let _ = writeln!(
        out,
        "{:<34} {:>8} {:>8} | {:>9} {:>9} | {:>5} {:>5} | {:>5} {:>5}",
        "", "mW", "mW*", "λ²", "λ²*", "Mem", "Mem*", "MuxI", "MuxI*"
    );
    for (rowm, rowp) in table.rows.iter().zip(paper.iter()) {
        let _ = writeln!(
            out,
            "{:<34} {:>8.2} {:>8.2} | {:>9.0} {:>9.0} | {:>5} {:>5} | {:>5} {:>5}",
            rowm.label,
            rowm.report.power.total_mw,
            rowp.power_mw,
            rowm.report.area.total_lambda2,
            rowp.area_lambda2,
            rowm.report.stats.mem_cells,
            rowp.mem_cells,
            rowm.report.stats.mux_inputs,
            rowp.mux_inputs
        );
    }
    let measured = table
        .gated_to_best_multiclock_reduction()
        .expect("table has gated and multiclock rows");
    let paper_red = 1.0
        - paper[2..]
            .iter()
            .map(|r| r.power_mw)
            .fold(f64::INFINITY, f64::min)
            / paper[1].power_mw;
    let _ = writeln!(
        out,
        "gated → best multiclock power reduction: measured {:.1} %, published {:.1} %",
        measured * 100.0,
        paper_red * 100.0
    );
    let _ = writeln!(
        out,
        "(* = published; absolute calibration differs, shape is the claim)"
    );
    let _ = writeln!(out);
    let _ = write!(out, "{}", table.render_timings());
    print!("{out}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_specs_cover_1_to_4() {
        for i in 1..=4 {
            let (bm, rows) = table_spec(i);
            assert!(!bm.name().is_empty());
            assert_eq!(rows.len(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "tables 1-4")]
    fn table_5_panics() {
        let _ = table_spec(5);
    }

    #[test]
    fn published_reductions_match_paper_claims() {
        // The paper quotes 49 %, 54 %, 37 %, 35 % for Tables 1–4.
        for (rows, expect) in [
            (&PAPER_TABLE_1, 0.49),
            (&PAPER_TABLE_2, 0.54),
            (&PAPER_TABLE_3, 0.37),
            (&PAPER_TABLE_4, 0.35),
        ] {
            let best = rows[2..]
                .iter()
                .map(|r| r.power_mw)
                .fold(f64::INFINITY, f64::min);
            let red = 1.0 - best / rows[1].power_mw;
            assert!((red - expect).abs() < 0.02, "reduction {red} vs {expect}");
        }
    }

    #[test]
    fn default_config() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.computations, 400);
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    fn run_small_table_renders_comparison() {
        let cfg = RunConfig {
            computations: 30,
            seed: 1,
        };
        let out = run_paper_table(1, cfg);
        assert!(out.contains("Table 1"));
        assert!(out.contains("published"));
        assert!(out.contains("3 Clocks"));
    }
}
