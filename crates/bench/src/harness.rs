//! A minimal, dependency-free micro-benchmark harness (the workspace
//! builds hermetically, so Criterion is not available). Each benchmark is
//! timed over a fixed warm-up plus measured iterations; the report shows
//! min / mean / max wall-clock per iteration.
//!
//! Iteration count defaults to 10 and can be overridden with the
//! `MC_BENCH_ITERS` environment variable (e.g. `MC_BENCH_ITERS=3` for a
//! quick smoke run).

use std::time::{Duration, Instant};

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Measured iterations.
    pub iters: usize,
    /// Fastest iteration.
    pub min: Duration,
    /// Mean iteration time.
    pub mean: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

impl BenchResult {
    /// Renders the criterion-style one-line summary.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{:<40} [{:>10.3?} {:>10.3?} {:>10.3?}]  ({} iters)",
            self.name, self.min, self.mean, self.max, self.iters
        )
    }
}

/// The measured iteration count: `MC_BENCH_ITERS` or 10.
#[must_use]
pub fn iterations() -> usize {
    std::env::var("MC_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// Times `f` over [`iterations`] measured runs (after one warm-up run),
/// prints the summary line, and returns the timings.
pub fn bench<F: FnMut()>(name: &str, mut f: F) -> BenchResult {
    f(); // warm-up: page in code and data, fill caches
    let iters = iterations();
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed());
    }
    let min = *times.iter().min().expect("at least one iter");
    let max = *times.iter().max().expect("at least one iter");
    let mean = times.iter().sum::<Duration>() / iters as u32;
    let result = BenchResult {
        name: name.to_owned(),
        iters,
        min,
        mean,
        max,
    };
    println!("{}", result.render());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_all_iterations() {
        let mut runs = 0usize;
        let r = bench("noop", || runs += 1);
        assert_eq!(runs, r.iters + 1, "warm-up plus measured");
        assert!(r.min <= r.mean && r.mean <= r.max);
        assert!(r.render().contains("noop"));
    }
}
