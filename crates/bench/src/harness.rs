//! A minimal, dependency-free micro-benchmark harness (the workspace
//! builds hermetically, so Criterion is not available). Each benchmark is
//! timed over a fixed warm-up plus measured iterations; the report shows
//! min / median / mean / max wall-clock per iteration, and results can be emitted
//! as machine-readable JSON for the bench trajectory (`BENCH_sim.json`).
//!
//! Iteration count defaults to 10 and can be overridden with the
//! `MC_BENCH_ITERS` environment variable (e.g. `MC_BENCH_ITERS=3` for a
//! quick smoke run).

use std::time::{Duration, Instant};

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Measured iterations.
    pub iters: usize,
    /// Fastest iteration.
    pub min: Duration,
    /// Mean iteration time.
    pub mean: Duration,
    /// Median iteration time — robust against a single descheduled
    /// outlier, so speedup ratios and CI smoke checks compare medians.
    pub median: Duration,
    /// Slowest iteration.
    pub max: Duration,
    /// Work units processed per iteration (simulation control steps for
    /// the simulator benches); `None` for benches without a natural unit.
    pub steps: Option<u64>,
}

impl BenchResult {
    /// Renders the criterion-style one-line summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut line = format!(
            "{:<40} [{:>10.3?} {:>10.3?} {:>10.3?} {:>10.3?}]  ({} iters)",
            self.name, self.min, self.median, self.mean, self.max, self.iters
        );
        if let Some(sps) = self.steps_per_sec() {
            line.push_str(&format!("  {sps:.3e} steps/s"));
        }
        line
    }

    /// Throughput from the mean iteration time, when a step count is
    /// attached.
    #[must_use]
    pub fn steps_per_sec(&self) -> Option<f64> {
        let steps = self.steps?;
        let secs = self.mean.as_secs_f64();
        (secs > 0.0).then(|| steps as f64 / secs)
    }

    /// Serializes the result as one JSON object: name, iters, min/mean/max
    /// nanoseconds, and (when present) steps and steps/sec.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut obj = JsonObj::new()
            .str("name", &self.name)
            .num("iters", self.iters)
            .num("min_ns", self.min.as_nanos())
            .num("mean_ns", self.mean.as_nanos())
            .num("median_ns", self.median.as_nanos())
            .num("max_ns", self.max.as_nanos());
        if let Some(steps) = self.steps {
            obj = obj.num("steps", steps);
        }
        if let Some(sps) = self.steps_per_sec() {
            obj = obj.num("steps_per_sec", format_args!("{sps:.1}"));
        }
        obj.finish()
    }
}

/// An incremental JSON object builder — the workspace's one
/// machine-readable emitter, shared by the bench trajectory
/// (`BENCH_sim.json`), the `mcpm --json` table/sweep output and the
/// explorer reports (`BENCH_explore.json`), so every artifact speaks the
/// same format.
///
/// Values passed to [`JsonObj::num`] must render as valid JSON numbers
/// (finite floats, integers); strings are escaped via [`json_string`].
#[derive(Debug, Clone)]
pub struct JsonObj {
    buf: String,
    empty: bool,
}

impl JsonObj {
    /// An empty object (`{}` until fields are added).
    #[must_use]
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            empty: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
        self.buf.push_str(&json_string(key));
        self.buf.push(':');
    }

    /// Adds an escaped string field.
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push_str(&json_string(value));
        self
    }

    /// Adds a numeric field (the caller guarantees `value`'s `Display`
    /// output is a valid JSON number — Rust's `f64` Display is, for
    /// finite values, and is deterministic across platforms).
    #[must_use]
    pub fn num(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        use std::fmt::Write as _;
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value (nested object or array) verbatim.
    #[must_use]
    pub fn raw(mut self, key: &str, raw_json: &str) -> Self {
        self.key(key);
        self.buf.push_str(raw_json);
        self
    }

    /// Closes the object and returns the JSON text.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObj {
    fn default() -> Self {
        JsonObj::new()
    }
}

/// Joins pre-rendered JSON values into a JSON array.
#[must_use]
pub fn json_array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// Escapes `s` as a JSON string literal.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The measured iteration count: `MC_BENCH_ITERS` or 10.
#[must_use]
pub fn iterations() -> usize {
    std::env::var("MC_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// Times `f` over [`iterations`] measured runs (after one warm-up run),
/// prints the summary line, and returns the timings.
pub fn bench<F: FnMut()>(name: &str, f: F) -> BenchResult {
    bench_with_steps(name, None, f)
}

/// Like [`bench()`], attaching the number of work units one iteration
/// processes so the report carries a throughput (steps/sec).
pub fn bench_steps<F: FnMut()>(name: &str, steps: u64, f: F) -> BenchResult {
    bench_with_steps(name, Some(steps), f)
}

fn bench_with_steps<F: FnMut()>(name: &str, steps: Option<u64>, mut f: F) -> BenchResult {
    f(); // warm-up: page in code and data, fill caches
    let iters = iterations();
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed());
    }
    let min = *times.iter().min().expect("at least one iter");
    let max = *times.iter().max().expect("at least one iter");
    let mean = times.iter().sum::<Duration>() / iters as u32;
    let median = median_duration(&times);
    let result = BenchResult {
        name: name.to_owned(),
        iters,
        min,
        mean,
        median,
        max,
        steps,
    };
    println!("{}", result.render());
    result
}

/// Times two workloads over the same work in strict alternation —
/// baseline, candidate, baseline, candidate, … — after one warm-up run
/// of each. Machine-speed drift over a long bench session (frequency
/// scaling, a noisy co-tenant VM) then shifts both sides' samples
/// together instead of biasing whichever side happened to run later, so
/// a speedup ratio of the two medians stays honest. Use this whenever a
/// bench exists to *compare* two implementations rather than to track
/// one.
pub fn bench_steps_paired<A: FnMut(), B: FnMut()>(
    name_a: &str,
    name_b: &str,
    steps: u64,
    mut a: A,
    mut b: B,
) -> (BenchResult, BenchResult) {
    a();
    b();
    let iters = iterations();
    let mut times_a = Vec::with_capacity(iters);
    let mut times_b = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        a();
        times_a.push(t0.elapsed());
        let t1 = Instant::now();
        b();
        times_b.push(t1.elapsed());
    }
    let summarize = |name: &str, times: &[Duration]| {
        let result = BenchResult {
            name: name.to_owned(),
            iters,
            min: *times.iter().min().expect("at least one iter"),
            mean: times.iter().sum::<Duration>() / iters as u32,
            median: median_duration(times),
            max: *times.iter().max().expect("at least one iter"),
            steps: Some(steps),
        };
        println!("{}", result.render());
        result
    };
    (summarize(name_a, &times_a), summarize(name_b, &times_b))
}

/// The median of `times` (mean of the two central elements for even
/// counts).
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn median_duration(times: &[Duration]) -> Duration {
    assert!(!times.is_empty(), "median of no samples");
    let mut sorted = times.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_all_iterations() {
        let mut runs = 0usize;
        let r = bench("noop", || runs += 1);
        assert_eq!(runs, r.iters + 1, "warm-up plus measured");
        assert!(r.min <= r.mean && r.mean <= r.max);
        assert!(r.min <= r.median && r.median <= r.max);
        assert!(r.render().contains("noop"));
        assert!(r.steps.is_none());
        assert!(r.steps_per_sec().is_none());
    }

    #[test]
    fn json_carries_timings_and_throughput() {
        let r = BenchResult {
            name: "sim".into(),
            iters: 2,
            min: Duration::from_nanos(100),
            mean: Duration::from_nanos(200),
            median: Duration::from_nanos(180),
            max: Duration::from_nanos(300),
            steps: Some(1000),
        };
        let json = r.to_json();
        assert!(json.contains("\"name\":\"sim\""));
        assert!(json.contains("\"mean_ns\":200"));
        assert!(json.contains("\"median_ns\":180"));
        assert!(json.contains("\"steps\":1000"));
        assert!(json.contains("\"steps_per_sec\":"));
        let sps = r.steps_per_sec().unwrap();
        assert!((sps - 5e9).abs() < 1e-3, "1000 steps / 200 ns = {sps}");
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn json_obj_builds_nested_documents() {
        let inner = JsonObj::new().str("k", "v").finish();
        let doc = JsonObj::new()
            .num("n", 3)
            .bool("flag", true)
            .raw("rows", &json_array([inner.clone(), inner]))
            .finish();
        assert_eq!(
            doc,
            "{\"n\":3,\"flag\":true,\"rows\":[{\"k\":\"v\"},{\"k\":\"v\"}]}"
        );
        assert_eq!(JsonObj::new().finish(), "{}");
        assert_eq!(json_array(Vec::<String>::new()), "[]");
    }

    #[test]
    fn json_floats_render_as_plain_numbers() {
        let doc = JsonObj::new().num("x", 0.25f64).num("y", 12.0f64).finish();
        assert_eq!(doc, "{\"x\":0.25,\"y\":12}");
    }

    #[test]
    fn median_resists_one_outlier() {
        let ns = |n| Duration::from_nanos(n);
        // Odd count: middle element, unmoved by the 10 µs outlier.
        assert_eq!(median_duration(&[ns(100), ns(10_000), ns(110)]), ns(110));
        // Even count: mean of the two central elements.
        assert_eq!(
            median_duration(&[ns(100), ns(200), ns(400), ns(10_000)]),
            ns(300)
        );
        assert_eq!(median_duration(&[ns(42)]), ns(42));
    }

    #[test]
    fn bench_steps_attaches_throughput() {
        let r = bench_steps("unit", 50, || {
            std::hint::black_box(0);
        });
        assert_eq!(r.steps, Some(50));
        assert!(r.render().contains("steps/s"));
    }
}
