//! Simulator backend benchmark: compiled kernel vs reference interpreter
//! on the paper-table workloads, emitting the repo's bench trajectory
//! (`BENCH_sim.json`).
//!
//! Before timing anything, every workload is run through *both* backends
//! with tracing and profiling enabled and the results asserted
//! bit-identical — a divergence aborts the bench (and the CI smoke stage
//! built on it) before a misleading number is ever written.
//!
//! Run with `cargo bench -p mc-bench --bench sim_kernel`. The JSON lands
//! at `$MC_BENCH_OUT` (default `BENCH_sim.json` in the working
//! directory); `MC_BENCH_ITERS` adjusts the iteration count.

use std::hint::black_box;
use std::io::Write as _;

use mc_alloc::{allocate, AllocOptions, Strategy};
use mc_bench::harness::{bench_steps, json_string};
use mc_clocks::ClockScheme;
use mc_dfg::benchmarks::{self, Benchmark};
use mc_rtl::{Netlist, PowerMode};
use mc_sim::{simulate, SimBackend, SimConfig};

/// Computations per timed iteration — enough steps that per-step cost
/// dominates the one-time lowering.
const COMPUTATIONS: usize = 400;
const SEED: u64 = 42;

struct Workload {
    name: &'static str,
    netlist: Netlist,
    mode: PowerMode,
}

fn workload(
    name: &'static str,
    bm: &Benchmark,
    strategy: Strategy,
    n: u32,
    mode: PowerMode,
) -> Workload {
    let opts = AllocOptions::new(strategy, ClockScheme::new(n).expect("valid clock count"));
    let dp = allocate(&bm.dfg, &bm.schedule, &opts).expect("allocation succeeds");
    Workload {
        name,
        netlist: dp.netlist,
        mode,
    }
}

/// The paper-table design points: the multi-clock style on the four table
/// benchmarks, plus one conventional gated-clock reference point.
fn workloads() -> Vec<Workload> {
    vec![
        workload(
            "facet_integrated_n3_multiclock",
            &benchmarks::facet(),
            Strategy::Integrated,
            3,
            PowerMode::multiclock(),
        ),
        workload(
            "hal_integrated_n3_multiclock",
            &benchmarks::hal(),
            Strategy::Integrated,
            3,
            PowerMode::multiclock(),
        ),
        workload(
            "biquad_integrated_n2_multiclock",
            &benchmarks::biquad(),
            Strategy::Integrated,
            2,
            PowerMode::multiclock(),
        ),
        workload(
            "bandpass_split_n3_multiclock",
            &benchmarks::bandpass(),
            Strategy::Split,
            3,
            PowerMode::multiclock(),
        ),
        workload(
            "hal_conventional_n1_gated",
            &benchmarks::hal(),
            Strategy::Conventional,
            1,
            PowerMode::gated(),
        ),
    ]
}

/// Asserts both backends produce bit-identical results on `w` (activity,
/// outputs, trace, per-step profile) before any timing happens.
fn assert_backends_identical(w: &Workload) {
    let base = SimConfig::new(w.mode, 16, SEED).with_trace().with_profile();
    let compiled = simulate(&w.netlist, &base.clone().with_backend(SimBackend::Compiled));
    let interpreted = simulate(&w.netlist, &base.with_backend(SimBackend::Interpreter));
    assert_eq!(
        compiled.activity, interpreted.activity,
        "BACKEND DIVERGENCE (activity) on {}",
        w.name
    );
    assert_eq!(
        compiled.outputs, interpreted.outputs,
        "BACKEND DIVERGENCE (outputs) on {}",
        w.name
    );
    assert_eq!(
        compiled.trace, interpreted.trace,
        "BACKEND DIVERGENCE (trace) on {}",
        w.name
    );
}

fn main() {
    let mut entries = Vec::new();
    for w in workloads() {
        assert_backends_identical(&w);
        let steps = COMPUTATIONS as u64 * u64::from(w.netlist.controller().len());
        let cfg = SimConfig::new(w.mode, COMPUTATIONS, SEED);
        let interp = bench_steps(&format!("sim/{}/interpreter", w.name), steps, || {
            let r = simulate(
                black_box(&w.netlist),
                &cfg.clone().with_backend(SimBackend::Interpreter),
            );
            black_box(r.activity.steps);
        });
        let kernel = bench_steps(&format!("sim/{}/compiled", w.name), steps, || {
            let r = simulate(
                black_box(&w.netlist),
                &cfg.clone().with_backend(SimBackend::Compiled),
            );
            black_box(r.activity.steps);
        });
        let speedup = interp.median.as_secs_f64() / kernel.median.as_secs_f64();
        println!("{:<40} speedup {speedup:.2}x", format!("sim/{}", w.name));
        entries.push(format!(
            "{{\"benchmark\":{},\"backend\":\"compiled\",\"baseline\":\"interpreter\",\
             \"lanes\":1,\"seeds\":1,\"steps\":{steps},\"interpreter\":{},\"compiled\":{},\
             \"speedup\":{speedup:.2}}}",
            json_string(w.name),
            interp.to_json(),
            kernel.to_json()
        ));
    }

    let out_path = std::env::var("MC_BENCH_OUT").unwrap_or_else(|_| "BENCH_sim.json".to_string());
    let json = format!("[\n  {}\n]\n", entries.join(",\n  "));
    let mut file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    file.write_all(json.as_bytes()).expect("write bench json");
    println!("wrote {out_path}");
}
