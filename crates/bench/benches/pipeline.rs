//! Criterion benches for the individual pipeline stages — scheduling,
//! allocation, simulation, power pricing — so performance regressions in
//! any stage are visible separately.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mc_alloc::{allocate, AllocOptions, Strategy};
use mc_clocks::ClockScheme;
use mc_dfg::{benchmarks, scheduler};
use mc_power::{estimate_area, estimate_power};
use mc_rtl::PowerMode;
use mc_sim::{simulate, SimConfig};
use mc_tech::TechLibrary;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    let bm = benchmarks::bandpass();
    let scheme = ClockScheme::new(3).expect("three clocks");

    group.bench_function("schedule_force_directed", |b| {
        b.iter(|| black_box(scheduler::force_directed(&bm.dfg, 10).expect("schedules")))
    });
    group.bench_function("schedule_list", |b| {
        let rc = mc_dfg::ResourceConstraints::new().with_limit(mc_dfg::Op::Mul, 2);
        b.iter(|| black_box(scheduler::list_schedule(&bm.dfg, &rc).expect("schedules")))
    });
    group.bench_function("allocate_integrated_3clk", |b| {
        let opts = AllocOptions::new(Strategy::Integrated, scheme);
        b.iter(|| black_box(allocate(&bm.dfg, &bm.schedule, &opts).expect("allocates")))
    });

    let dp = allocate(
        &bm.dfg,
        &bm.schedule,
        &AllocOptions::new(Strategy::Integrated, scheme),
    )
    .expect("allocates");
    group.bench_function("simulate_200_computations", |b| {
        let cfg = SimConfig::new(PowerMode::multiclock(), 200, 7);
        b.iter(|| black_box(simulate(&dp.netlist, &cfg).activity.steps))
    });

    let lib = TechLibrary::vsc450();
    let res = simulate(&dp.netlist, &SimConfig::new(PowerMode::multiclock(), 200, 7));
    group.bench_function("price_power_and_area", |b| {
        b.iter(|| {
            let p = estimate_power(&dp.netlist, &res.activity, &lib);
            let a = estimate_area(&dp.netlist, PowerMode::multiclock(), &lib);
            black_box((p.total_mw, a.total_lambda2))
        })
    });
    group.bench_function("static_timing_analysis", |b| {
        b.iter(|| black_box(mc_power::timing::analyze_timing(&dp.netlist, &lib)))
    });
    group.bench_function("lint_netlist", |b| {
        b.iter(|| black_box(mc_rtl::lint::lint(&dp.netlist).len()))
    });
    group.bench_function("parse_dsl_round_trip", |b| {
        let text = mc_dfg::parse::to_dsl(&bm.dfg);
        b.iter(|| black_box(mc_dfg::parse::parse_dfg("bp", &text).expect("parses")))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
