//! Benches for the individual pipeline stages — scheduling, allocation,
//! simulation, power pricing — so performance regressions in any stage
//! are visible separately.
//!
//! Run with `cargo bench -p mc-bench --bench pipeline`.

use std::hint::black_box;

use mc_alloc::{allocate, AllocOptions, Strategy};
use mc_bench::harness::bench;
use mc_clocks::ClockScheme;
use mc_dfg::{benchmarks, scheduler};
use mc_power::{estimate_area, estimate_power};
use mc_rtl::PowerMode;
use mc_sim::{simulate, SimConfig};
use mc_tech::TechLibrary;

fn main() {
    let bm = benchmarks::bandpass();
    let scheme = ClockScheme::new(3).expect("three clocks");

    bench("pipeline/schedule_force_directed", || {
        black_box(scheduler::force_directed(&bm.dfg, 10).expect("schedules"));
    });
    bench("pipeline/schedule_list", || {
        let rc = mc_dfg::ResourceConstraints::new().with_limit(mc_dfg::Op::Mul, 2);
        black_box(scheduler::list_schedule(&bm.dfg, &rc).expect("schedules"));
    });
    bench("pipeline/allocate_integrated_3clk", || {
        let opts = AllocOptions::new(Strategy::Integrated, scheme);
        black_box(allocate(&bm.dfg, &bm.schedule, &opts).expect("allocates"));
    });

    let dp = allocate(
        &bm.dfg,
        &bm.schedule,
        &AllocOptions::new(Strategy::Integrated, scheme),
    )
    .expect("allocates");
    bench("pipeline/simulate_200_computations", || {
        let cfg = SimConfig::new(PowerMode::multiclock(), 200, 7);
        black_box(simulate(&dp.netlist, &cfg).activity.steps);
    });

    let lib = TechLibrary::vsc450();
    let res = simulate(
        &dp.netlist,
        &SimConfig::new(PowerMode::multiclock(), 200, 7),
    );
    bench("pipeline/price_power_and_area", || {
        let p = estimate_power(&dp.netlist, &res.activity, &lib);
        let a = estimate_area(&dp.netlist, PowerMode::multiclock(), &lib);
        black_box((p.total_mw, a.total_lambda2));
    });
    bench("pipeline/static_timing_analysis", || {
        black_box(mc_power::timing::analyze_timing(&dp.netlist, &lib));
    });
    bench("pipeline/lint_netlist", || {
        black_box(mc_rtl::lint::lint(&dp.netlist).len());
    });
    bench("pipeline/parse_dsl_round_trip", || {
        let text = mc_dfg::parse::to_dsl(&bm.dfg);
        black_box(mc_dfg::parse::parse_dfg("bp", &text).expect("parses"));
    });
}
