//! Benches regenerating the paper's Tables 1–4: each iteration
//! synthesises all five design styles of a benchmark and evaluates
//! power/area over random stimulus. The reported wall time tracks the
//! cost of a full table reproduction; the parallel variants show the
//! scoped-thread speed-up of the flow layer.
//!
//! Run with `cargo bench -p mc-bench --bench tables` (set
//! `MC_BENCH_ITERS` to adjust the iteration count).

use std::hint::black_box;

use mc_bench::harness::bench;
use mc_core::experiment::{paper_table, paper_table_parallel};
use mc_dfg::benchmarks;

const COMPUTATIONS: usize = 60;
const SEED: u64 = 42;

fn main() {
    for (table, bm) in [
        ("table1_facet", benchmarks::facet()),
        ("table2_hal", benchmarks::hal()),
        ("table3_biquad", benchmarks::biquad()),
        ("table4_bandpass", benchmarks::bandpass()),
    ] {
        bench(&format!("paper_tables/{table}"), || {
            let t =
                paper_table(black_box(&bm), COMPUTATIONS, SEED).expect("table synthesis succeeds");
            black_box(t.rows.len());
        });
        bench(&format!("paper_tables/{table}_parallel"), || {
            let t = paper_table_parallel(black_box(&bm), COMPUTATIONS, SEED)
                .expect("table synthesis succeeds");
            black_box(t.rows.len());
        });
    }
}
