//! Criterion benches regenerating the paper's Tables 1–4 (one group per
//! table): each iteration synthesises all five design styles of a
//! benchmark and evaluates power/area over random stimulus. The reported
//! wall time tracks the cost of a full table reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mc_core::experiment::paper_table;
use mc_dfg::benchmarks;

const COMPUTATIONS: usize = 60;
const SEED: u64 = 42;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_tables");
    group.sample_size(10);
    for (table, bm) in [
        ("table1_facet", benchmarks::facet()),
        ("table2_hal", benchmarks::hal()),
        ("table3_biquad", benchmarks::biquad()),
        ("table4_bandpass", benchmarks::bandpass()),
    ] {
        group.bench_function(table, |b| {
            b.iter(|| {
                let t = paper_table(black_box(&bm), COMPUTATIONS, SEED)
                    .expect("table synthesis succeeds");
                black_box(t.rows.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
