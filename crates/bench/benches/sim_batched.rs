//! Batched multi-lane kernel benchmark: aggregate multi-seed throughput
//! of [`mc_sim::BatchedProgram`] vs the same seeds looped one at a time
//! through the scalar compiled kernel, on the paper-table workloads.
//! Emits `BENCH_batch.json`.
//!
//! Each side runs its real Monte-Carlo workflow end to end: the scalar
//! loop calls `simulate` per seed (re-lowering and building output maps
//! each time, as every scalar consumer does), the batched side compiles
//! once and takes the activity-only path (`run_seeds_activity`) that
//! Monte-Carlo power estimation consumes.
//!
//! Before timing anything, every workload's batched run is asserted
//! bit-identical, lane by lane, to the scalar per-seed runs (activity
//! and outputs) — a divergence aborts the bench before a misleading
//! number is ever written.
//!
//! Run with `cargo bench -p mc-bench --bench sim_batched`. The JSON
//! lands at `$MC_BATCH_OUT` (default `BENCH_batch.json` in the working
//! directory); `MC_BENCH_ITERS` adjusts the iteration count. Speedups
//! compare medians, so one descheduled iteration cannot skew the ratio.

use std::hint::black_box;
use std::io::Write as _;

use mc_alloc::{allocate, AllocOptions, Strategy};
use mc_bench::harness::{bench_steps, json_string};
use mc_clocks::ClockScheme;
use mc_dfg::benchmarks::{self, Benchmark};
use mc_power::derive_seeds;
use mc_rtl::{Netlist, PowerMode};
use mc_sim::{simulate, simulate_seeds, BatchedProgram, SimBackend, SimConfig};

/// Computations per seed — enough steps that per-step cost dominates the
/// one-time lowering (same figure as the `sim_kernel` bench).
const COMPUTATIONS: usize = 400;
const SEED: u64 = 42;
/// The headline lane width of the issue's throughput target.
const LANES: usize = 16;

struct Workload {
    name: &'static str,
    netlist: Netlist,
    mode: PowerMode,
}

fn workload(
    name: &'static str,
    bm: &Benchmark,
    strategy: Strategy,
    n: u32,
    mode: PowerMode,
) -> Workload {
    let opts = AllocOptions::new(strategy, ClockScheme::new(n).expect("valid clock count"));
    let dp = allocate(&bm.dfg, &bm.schedule, &opts).expect("allocation succeeds");
    Workload {
        name,
        netlist: dp.netlist,
        mode,
    }
}

/// The paper-table design points: the multi-clock style on the four table
/// benchmarks, plus one conventional gated-clock reference point.
fn workloads() -> Vec<Workload> {
    vec![
        workload(
            "facet_integrated_n3_multiclock",
            &benchmarks::facet(),
            Strategy::Integrated,
            3,
            PowerMode::multiclock(),
        ),
        workload(
            "hal_integrated_n3_multiclock",
            &benchmarks::hal(),
            Strategy::Integrated,
            3,
            PowerMode::multiclock(),
        ),
        workload(
            "biquad_integrated_n2_multiclock",
            &benchmarks::biquad(),
            Strategy::Integrated,
            2,
            PowerMode::multiclock(),
        ),
        workload(
            "bandpass_split_n3_multiclock",
            &benchmarks::bandpass(),
            Strategy::Split,
            3,
            PowerMode::multiclock(),
        ),
        workload(
            "hal_conventional_n1_gated",
            &benchmarks::hal(),
            Strategy::Conventional,
            1,
            PowerMode::gated(),
        ),
    ]
}

/// Asserts every batched lane is bit-identical to a scalar compiled run
/// with the same seed (activity and outputs, plus the activity-only fast
/// path) before any timing happens.
fn assert_lanes_identical(w: &Workload, seeds: &[u64]) {
    let batched = simulate_seeds(&w.netlist, w.mode, 16, seeds, LANES, true);
    let activities =
        BatchedProgram::compile(&w.netlist, w.mode, LANES).run_seeds_activity(16, seeds, true);
    for ((seed, lane), activity) in seeds.iter().zip(&batched).zip(&activities) {
        let cfg = SimConfig::new(w.mode, 16, *seed)
            .with_profile()
            .with_backend(SimBackend::Compiled);
        let scalar = simulate(&w.netlist, &cfg);
        assert_eq!(
            lane.activity, scalar.activity,
            "LANE DIVERGENCE (activity) on {} seed {seed}",
            w.name
        );
        assert_eq!(
            lane.outputs, scalar.outputs,
            "LANE DIVERGENCE (outputs) on {} seed {seed}",
            w.name
        );
        assert_eq!(
            *activity, scalar.activity,
            "LANE DIVERGENCE (activity-only path) on {} seed {seed}",
            w.name
        );
    }
}

fn main() {
    let seeds = derive_seeds(SEED, LANES);
    let mut entries = Vec::new();
    for w in workloads() {
        assert_lanes_identical(&w, &seeds);
        let steps =
            COMPUTATIONS as u64 * u64::from(w.netlist.controller().len()) * seeds.len() as u64;
        let scalar = bench_steps(&format!("batch/{}/scalar_loop", w.name), steps, || {
            for seed in &seeds {
                let cfg =
                    SimConfig::new(w.mode, COMPUTATIONS, *seed).with_backend(SimBackend::Compiled);
                let r = simulate(black_box(&w.netlist), &cfg);
                black_box(r.activity.steps);
            }
        });
        let batched = bench_steps(&format!("batch/{}/batched_x{LANES}", w.name), steps, || {
            let program = BatchedProgram::compile(black_box(&w.netlist), w.mode, LANES);
            let activities = program.run_seeds_activity(COMPUTATIONS, &seeds, false);
            black_box(activities.len());
        });
        let speedup = scalar.median.as_secs_f64() / batched.median.as_secs_f64();
        let seeds_per_sec = seeds.len() as f64 / batched.median.as_secs_f64();
        println!(
            "{:<40} speedup {speedup:.2}x  ({seeds_per_sec:.1} seeds/s batched)",
            format!("batch/{}", w.name)
        );
        entries.push(format!(
            "{{\"benchmark\":{},\"backend\":\"batched\",\"baseline\":\"scalar_loop\",\
             \"lanes\":{LANES},\"seeds\":{},\"steps\":{steps},\
             \"scalar_loop\":{},\"batched\":{},\"speedup\":{speedup:.2},\
             \"batched_seeds_per_sec\":{seeds_per_sec:.1}}}",
            json_string(w.name),
            seeds.len(),
            scalar.to_json(),
            batched.to_json()
        ));
    }

    let out_path = std::env::var("MC_BATCH_OUT").unwrap_or_else(|_| "BENCH_batch.json".to_string());
    let json = format!("[\n  {}\n]\n", entries.join(",\n  "));
    let mut file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    file.write_all(json.as_bytes()).expect("write bench json");
    println!("wrote {out_path}");
}
