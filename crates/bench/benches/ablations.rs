//! Benches for the ablation experiments: clock-count sweep, latch-vs-DFF,
//! and control-line latching on the HAL benchmark.
//!
//! Run with `cargo bench -p mc-bench --bench ablations`.

use std::hint::black_box;

use mc_bench::harness::bench;
use mc_core::experiment;
use mc_dfg::benchmarks;

const COMPUTATIONS: usize = 40;
const SEED: u64 = 42;

fn main() {
    let bm = benchmarks::hal();
    bench("ablations/clock_sweep_1_to_4", || {
        let sweep =
            experiment::clock_sweep(black_box(&bm), 4, COMPUTATIONS, SEED).expect("sweep succeeds");
        black_box(sweep.len());
    });
    bench("ablations/clock_sweep_1_to_4_parallel", || {
        let sweep = experiment::clock_sweep_parallel(black_box(&bm), 4, COMPUTATIONS, SEED)
            .expect("sweep succeeds");
        black_box(sweep.len());
    });
    bench("ablations/latch_vs_dff", || {
        let pair = experiment::latch_vs_dff(black_box(&bm), 2, COMPUTATIONS, SEED)
            .expect("ablation succeeds");
        black_box(pair.0.power.total_mw);
    });
    bench("ablations/control_latching", || {
        let pair = experiment::control_latching(black_box(&bm), 2, COMPUTATIONS, SEED)
            .expect("ablation succeeds");
        black_box(pair.0.power.total_mw);
    });
}
