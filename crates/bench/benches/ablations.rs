//! Criterion benches for the ablation experiments: clock-count sweep,
//! latch-vs-DFF, and control-line latching on the HAL benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mc_core::experiment;
use mc_dfg::benchmarks;

const COMPUTATIONS: usize = 40;
const SEED: u64 = 42;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let bm = benchmarks::hal();
    group.bench_function("clock_sweep_1_to_4", |b| {
        b.iter(|| {
            let sweep = experiment::clock_sweep(black_box(&bm), 4, COMPUTATIONS, SEED)
                .expect("sweep succeeds");
            black_box(sweep.len())
        });
    });
    group.bench_function("latch_vs_dff", |b| {
        b.iter(|| {
            let pair = experiment::latch_vs_dff(black_box(&bm), 2, COMPUTATIONS, SEED)
                .expect("ablation succeeds");
            black_box(pair.0.power.total_mw)
        });
    });
    group.bench_function("control_latching", |b| {
        b.iter(|| {
            let pair = experiment::control_latching(black_box(&bm), 2, COMPUTATIONS, SEED)
                .expect("ablation succeeds");
            black_box(pair.0.power.total_mw)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
