//! Bit-sliced kernel benchmark: aggregate multi-seed throughput of
//! [`mc_sim::BitslicedProgram`] (64 seeds per machine word, one `u64`
//! plane per net bit) vs the 16-lane batched kernel on the paper-table
//! workloads. Emits `BENCH_bitslice.json`.
//!
//! Both sides run the activity-only Monte-Carlo path over the same
//! 64-seed schedule: the batched side compiles once and sweeps 16 lanes
//! at a time (four sweeps), the bit-sliced side compiles once and sweeps
//! the whole population in one pass. The issue's acceptance bar is a
//! ≥5x median aggregate seeds/sec ratio on at least 4 of the 5
//! workloads.
//!
//! Before timing anything, every workload's bit-sliced run is asserted
//! bit-identical, seed by seed, to scalar compiled runs (activity incl.
//! per-step profiles, and outputs) — a divergence aborts the bench
//! before a misleading number is ever written.
//!
//! Run with `cargo bench -p mc-bench --bench sim_bitsliced`. The JSON
//! lands at `$MC_BITSLICE_OUT` (default `BENCH_bitslice.json` in the
//! working directory); `MC_BENCH_ITERS` adjusts the iteration count.
//! Speedups compare medians, so one descheduled iteration cannot skew
//! the ratio.

use std::hint::black_box;
use std::io::Write as _;

use mc_alloc::{allocate, AllocOptions, Strategy};
use mc_bench::harness::{bench_steps_paired, json_string};
use mc_clocks::ClockScheme;
use mc_dfg::benchmarks::{self, Benchmark};
use mc_power::derive_seeds;
use mc_rtl::{Netlist, PowerMode};
use mc_sim::{simulate, BatchedProgram, BitslicedProgram, SimBackend, SimConfig, BITSLICE_LANES};

/// Computations per seed — enough steps that per-step cost dominates the
/// one-time lowering (same figure as the other kernel benches).
const COMPUTATIONS: usize = 400;
const SEED: u64 = 42;
/// The baseline lane width the issue's ≥5x target is measured against.
const BATCH_LANES: usize = 16;

struct Workload {
    name: &'static str,
    netlist: Netlist,
    mode: PowerMode,
}

fn workload(
    name: &'static str,
    bm: &Benchmark,
    strategy: Strategy,
    n: u32,
    mode: PowerMode,
) -> Workload {
    let opts = AllocOptions::new(strategy, ClockScheme::new(n).expect("valid clock count"));
    let dp = allocate(&bm.dfg, &bm.schedule, &opts).expect("allocation succeeds");
    Workload {
        name,
        netlist: dp.netlist,
        mode,
    }
}

/// The paper-table design points: the multi-clock style on the four table
/// benchmarks, plus one conventional gated-clock reference point.
fn workloads() -> Vec<Workload> {
    vec![
        workload(
            "facet_integrated_n3_multiclock",
            &benchmarks::facet(),
            Strategy::Integrated,
            3,
            PowerMode::multiclock(),
        ),
        workload(
            "hal_integrated_n3_multiclock",
            &benchmarks::hal(),
            Strategy::Integrated,
            3,
            PowerMode::multiclock(),
        ),
        workload(
            "biquad_integrated_n2_multiclock",
            &benchmarks::biquad(),
            Strategy::Integrated,
            2,
            PowerMode::multiclock(),
        ),
        workload(
            "bandpass_split_n3_multiclock",
            &benchmarks::bandpass(),
            Strategy::Split,
            3,
            PowerMode::multiclock(),
        ),
        workload(
            "hal_conventional_n1_gated",
            &benchmarks::hal(),
            Strategy::Conventional,
            1,
            PowerMode::gated(),
        ),
    ]
}

/// Asserts every seed of a bit-sliced population is bit-identical to a
/// scalar compiled run with the same seed (activity incl. per-step
/// profile, outputs, plus the activity-only fast path) before any timing
/// happens.
fn assert_seeds_identical(w: &Workload, seeds: &[u64]) {
    let program = BitslicedProgram::compile(&w.netlist, w.mode);
    let sliced = program.run_seeds(16, seeds, true);
    let activities = program.run_seeds_activity(16, seeds, true);
    for ((seed, result), activity) in seeds.iter().zip(&sliced).zip(&activities) {
        let cfg = SimConfig::new(w.mode, 16, *seed)
            .with_profile()
            .with_backend(SimBackend::Compiled);
        let scalar = simulate(&w.netlist, &cfg);
        assert_eq!(
            result.activity, scalar.activity,
            "SEED DIVERGENCE (activity) on {} seed {seed}",
            w.name
        );
        assert_eq!(
            result.outputs, scalar.outputs,
            "SEED DIVERGENCE (outputs) on {} seed {seed}",
            w.name
        );
        assert_eq!(
            *activity, scalar.activity,
            "SEED DIVERGENCE (activity-only path) on {} seed {seed}",
            w.name
        );
    }
}

fn main() {
    let seeds = derive_seeds(SEED, BITSLICE_LANES);
    let mut entries = Vec::new();
    for w in workloads() {
        assert_seeds_identical(&w, &seeds);
        let steps =
            COMPUTATIONS as u64 * u64::from(w.netlist.controller().len()) * seeds.len() as u64;
        // The two sides are timed in strict alternation: machine-speed
        // drift over the bench session (frequency scaling, co-tenant
        // noise) shifts both sample sets together instead of biasing
        // whichever side ran later, keeping the speedup ratio honest.
        let (batched, sliced) = bench_steps_paired(
            &format!("bitslice/{}/batched_x{BATCH_LANES}", w.name),
            &format!("bitslice/{}/bitsliced_x{BITSLICE_LANES}", w.name),
            steps,
            || {
                let program = BatchedProgram::compile(black_box(&w.netlist), w.mode, BATCH_LANES);
                let activities = program.run_seeds_activity(COMPUTATIONS, &seeds, false);
                black_box(activities.len());
            },
            || {
                let program = BitslicedProgram::compile(black_box(&w.netlist), w.mode);
                let activities = program.run_seeds_activity(COMPUTATIONS, &seeds, false);
                black_box(activities.len());
            },
        );
        let speedup = batched.median.as_secs_f64() / sliced.median.as_secs_f64();
        let batched_seeds_per_sec = seeds.len() as f64 / batched.median.as_secs_f64();
        let bitsliced_seeds_per_sec = seeds.len() as f64 / sliced.median.as_secs_f64();
        println!(
            "{:<44} speedup {speedup:.2}x  ({bitsliced_seeds_per_sec:.1} seeds/s bit-sliced \
             vs {batched_seeds_per_sec:.1} batched)",
            format!("bitslice/{}", w.name)
        );
        entries.push(format!(
            "{{\"benchmark\":{},\"backend\":\"bitsliced\",\"baseline\":\"batched\",\
             \"lanes\":{BITSLICE_LANES},\"baseline_lanes\":{BATCH_LANES},\"seeds\":{},\
             \"steps\":{steps},\"batched\":{},\"bitsliced\":{},\"speedup\":{speedup:.2},\
             \"batched_seeds_per_sec\":{batched_seeds_per_sec:.1},\
             \"bitsliced_seeds_per_sec\":{bitsliced_seeds_per_sec:.1}}}",
            json_string(w.name),
            seeds.len(),
            batched.to_json(),
            sliced.to_json()
        ));
    }

    let out_path =
        std::env::var("MC_BITSLICE_OUT").unwrap_or_else(|_| "BENCH_bitslice.json".to_string());
    let json = format!("[\n  {}\n]\n", entries.join(",\n  "));
    let mut file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    file.write_all(json.as_bytes()).expect("write bench json");
    println!("wrote {out_path}");
}
