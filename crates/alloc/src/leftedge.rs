//! The left-edge algorithm for register/latch allocation (§4.2 step 2).
//!
//! Variables are intervals `[write_step, death]`; the left-edge algorithm
//! sorts them by left edge and packs each into the first register whose
//! last interval it does not conflict with. For interval graphs this
//! yields the minimum number of registers. The *conflict* relation depends
//! on the memory element: edge-triggered registers allow intervals to
//! touch (`death == write_step`), transparent latches require strictly
//! disjoint READ/WRITE spans (the paper's rule that "only variables with
//! completely disjoint life spans may be merged" when using latches).

use mc_tech::MemKind;

/// One allocation interval: an opaque item id plus its live span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Caller-defined identifier (e.g. an index into a variable table).
    pub id: usize,
    /// Step whose end produces the value.
    pub write_step: u32,
    /// Last step during which the value must persist.
    pub death: u32,
}

impl Interval {
    /// Whether `self` and `other` may share a memory element of `kind`.
    ///
    /// Two values written in the same step always conflict (two writes to
    /// one register), which matters for zero-length intervals of unread
    /// transients.
    #[must_use]
    pub fn compatible(&self, other: &Interval, kind: MemKind) -> bool {
        if self.write_step == other.write_step {
            return false;
        }
        match kind {
            MemKind::Dff => self.death <= other.write_step || other.death <= self.write_step,
            MemKind::Latch => self.death < other.write_step || other.death < self.write_step,
        }
    }
}

/// Packs intervals into the minimum number of memory elements of `kind`
/// using the left-edge algorithm. Returns groups of item ids; each group
/// shares one register/latch. Input order does not matter; ties are broken
/// deterministically by `(write_step, death, id)`.
#[must_use]
pub fn left_edge(intervals: &[Interval], kind: MemKind) -> Vec<Vec<usize>> {
    let mut sorted: Vec<Interval> = intervals.to_vec();
    sorted.sort_by_key(|iv| (iv.write_step, iv.death, iv.id));
    // rows[r] = (last interval placed in row r, ids)
    let mut rows: Vec<(Interval, Vec<usize>)> = Vec::new();
    for iv in sorted {
        match rows
            .iter_mut()
            .find(|(last, _)| last.compatible(&iv, kind) && last.write_step <= iv.write_step)
        {
            Some((last, ids)) => {
                *last = iv;
                ids.push(iv.id);
            }
            None => rows.push((iv, vec![iv.id])),
        }
    }
    rows.into_iter().map(|(_, ids)| ids).collect()
}

/// The maximum number of simultaneously occupied registers — the lower
/// bound the left-edge algorithm achieves for edge-triggered registers.
///
/// An interval occupies its register over `(write_step, death]`; a
/// zero-length interval (unread transient) still occupies it for one
/// instant, modelled as `(write_step, write_step + 1]`. Under this
/// padding, DFF conflicts coincide exactly with interval overlaps, so the
/// returned clique number equals the optimal register count.
#[must_use]
pub fn max_overlap(intervals: &[Interval]) -> usize {
    let eff = |iv: &Interval| (iv.write_step, iv.death.max(iv.write_step + 1));
    let mut best = 0;
    for iv in intervals {
        // Peak overlap is attained at some interval's first occupied
        // instant t = write_step + 1.
        let t = eff(iv).0 + 1;
        let live = intervals
            .iter()
            .filter(|o| {
                let (w, d) = eff(o);
                w < t && d >= t
            })
            .count();
        best = best.max(live);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(id: usize, w: u32, d: u32) -> Interval {
        Interval {
            id,
            write_step: w,
            death: d,
        }
    }

    #[test]
    fn disjoint_intervals_share_one_register() {
        let ivs = [iv(0, 0, 1), iv(1, 2, 3), iv(2, 4, 5)];
        let groups = left_edge(&ivs, MemKind::Latch);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0], vec![0, 1, 2]);
    }

    #[test]
    fn touching_intervals_split_for_latches_not_dffs() {
        let ivs = [iv(0, 0, 2), iv(1, 2, 4)];
        assert_eq!(left_edge(&ivs, MemKind::Dff).len(), 1);
        assert_eq!(left_edge(&ivs, MemKind::Latch).len(), 2);
    }

    #[test]
    fn overlapping_intervals_need_separate_registers() {
        // (0,3) overlaps both others; (1,2) and (2,4) touch and may share
        // a DFF but not a latch.
        let ivs = [iv(0, 0, 3), iv(1, 1, 2), iv(2, 2, 4)];
        assert_eq!(left_edge(&ivs, MemKind::Dff).len(), 2);
        assert_eq!(left_edge(&ivs, MemKind::Latch).len(), 3);
    }

    #[test]
    fn left_edge_is_optimal_for_dffs() {
        // Classic staircase: max overlap 2, so 2 registers suffice.
        let ivs = [iv(0, 0, 2), iv(1, 1, 3), iv(2, 2, 4), iv(3, 3, 5)];
        let groups = left_edge(&ivs, MemKind::Dff);
        assert_eq!(groups.len(), 2);
        assert_eq!(max_overlap(&ivs), 2);
    }

    #[test]
    fn order_independence() {
        let a = [iv(0, 0, 2), iv(1, 3, 5), iv(2, 1, 4)];
        let mut b = a;
        b.reverse();
        assert_eq!(left_edge(&a, MemKind::Dff), left_edge(&b, MemKind::Dff));
    }

    #[test]
    fn empty_input_yields_no_registers() {
        assert!(left_edge(&[], MemKind::Latch).is_empty());
        assert_eq!(max_overlap(&[]), 0);
    }

    #[test]
    fn zero_length_intervals_pack_densely_with_dffs() {
        // Transients written and read in adjacent steps.
        let ivs = [iv(0, 1, 2), iv(1, 2, 3), iv(2, 3, 4)];
        assert_eq!(left_edge(&ivs, MemKind::Dff).len(), 1);
    }

    #[test]
    fn groups_preserve_all_items_exactly_once() {
        let ivs: Vec<Interval> = (0..20)
            .map(|i| {
                iv(
                    i,
                    (i as u32 * 7) % 13,
                    (i as u32 * 7) % 13 + 1 + (i as u32 % 5),
                )
            })
            .collect();
        for kind in [MemKind::Latch, MemKind::Dff] {
            let groups = left_edge(&ivs, kind);
            let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..20).collect::<Vec<_>>());
            // No conflicting pair within a group.
            for g in &groups {
                for (i, &x) in g.iter().enumerate() {
                    for &y in &g[i + 1..] {
                        let a = ivs.iter().find(|v| v.id == x).unwrap();
                        let b = ivs.iter().find(|v| v.id == y).unwrap();
                        assert!(a.compatible(b, kind), "{a:?} vs {b:?} under {kind:?}");
                    }
                }
            }
        }
    }
}
