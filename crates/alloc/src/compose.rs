//! Datapath composition — §4.2 step 4 (and the interconnection half of
//! §4.1's clean-up): materialises a bound allocation problem as a
//! structural netlist with its controller.
//!
//! Every allocation variable lives in a memory element; every operation
//! executes on its bound ALU, with operand muxes created wherever an ALU
//! port has several sources and input muxes wherever a memory element has
//! several writers. The controller asserts, per control step, the ALU
//! function, the mux selects, and the load enables.

use std::collections::BTreeMap;

use mc_rtl::{NetId, Netlist, NetlistBuilder, NetlistError};

use crate::alu_merge::AluGroup;
use crate::problem::{POperand, PVarSource, Problem};
use crate::registers::RegGroup;

/// Composes the netlist for `problem` with registers bound by `regs` and
/// operations bound by `alus`.
///
/// # Errors
///
/// Propagates [`NetlistError`] from validation; a failure indicates a bug
/// in the allocator rather than bad user input.
pub fn compose(
    name: &str,
    problem: &Problem,
    regs: &[RegGroup],
    alus: &[AluGroup],
    width: u8,
) -> Result<Netlist, NetlistError> {
    let mut nb = NetlistBuilder::new(name, width, problem.scheme, problem.period);

    // Primary-input ports.
    let mut port_net: BTreeMap<usize, NetId> = BTreeMap::new();
    nb.push_scope("io");
    for i in problem.input_vars() {
        let (_, net) = nb.add_input(&problem.vars[i].name);
        port_net.insert(i, net);
    }
    nb.pop_scope();

    // Constant drivers (deduplicated by value).
    let mut const_net: BTreeMap<u64, NetId> = BTreeMap::new();
    nb.push_scope("const");
    for op in &problem.ops {
        for o in [op.lhs, op.rhs] {
            if let POperand::Const(c) = o {
                const_net.entry(c).or_insert_with(|| nb.add_const(c).1);
            }
        }
    }
    nb.pop_scope();

    // Memory elements: one per register group.
    let mut group_of_pvar = vec![usize::MAX; problem.vars.len()];
    let mut mem_comp = Vec::with_capacity(regs.len());
    let mut mem_net = Vec::with_capacity(regs.len());
    nb.push_scope("regs");
    for (gi, g) in regs.iter().enumerate() {
        let label = g
            .pvars
            .iter()
            .map(|&i| problem.vars[i].name.as_str())
            .collect::<Vec<_>>()
            .join("/");
        let (c, net) = nb.add_mem(g.kind, g.phase, &label);
        mem_comp.push(c);
        mem_net.push(net);
        for &i in &g.pvars {
            group_of_pvar[i] = gi;
        }
    }
    nb.pop_scope();
    debug_assert!(
        group_of_pvar.iter().all(|&g| g != usize::MAX),
        "every variable must be bound to a register group"
    );

    // The net carrying an operand's value when read.
    let operand_net = |o: POperand| -> NetId {
        match o {
            POperand::Var(v) => mem_net[group_of_pvar[v]],
            POperand::Const(c) => const_net[&c],
        }
    };

    // ALUs with their operand muxes.
    let mut alu_of_op = vec![usize::MAX; problem.ops.len()];
    let mut alu_out = Vec::with_capacity(alus.len());
    for (ai, g) in alus.iter().enumerate() {
        for &oi in &g.ops {
            alu_of_op[oi] = ai;
        }
        let mut ops_sorted = g.ops.clone();
        ops_sorted.sort_by_key(|&oi| problem.ops[oi].step);
        // Assign operands to ports, exploiting commutativity to minimise
        // the number of distinct sources per port (fewer mux inputs ⇒ less
        // interconnect capacitance). Greedy in step order: a commutative
        // operation is flipped when that adds fewer new sources.
        let mut srcs_a: Vec<NetId> = Vec::new();
        let mut srcs_b: Vec<NetId> = Vec::new();
        let mut port_nets: Vec<(usize, NetId, NetId)> = Vec::new(); // (op, a, b)
        for &oi in &ops_sorted {
            let op = &problem.ops[oi];
            let l = operand_net(op.lhs);
            let r = operand_net(op.rhs);
            let cost = |a: &[NetId], b: &[NetId], x: NetId, y: NetId| {
                usize::from(!a.contains(&x)) + usize::from(!b.contains(&y))
            };
            let (a_net, b_net) = if op.op.is_commutative()
                && cost(&srcs_a, &srcs_b, r, l) < cost(&srcs_a, &srcs_b, l, r)
            {
                (r, l)
            } else {
                (l, r)
            };
            if !srcs_a.contains(&a_net) {
                srcs_a.push(a_net);
            }
            if !srcs_b.contains(&b_net) {
                srcs_b.push(b_net);
            }
            port_nets.push((oi, a_net, b_net));
        }
        let make_port = |nb: &mut NetlistBuilder, sources: &[NetId], suffix: &str| {
            if sources.len() == 1 {
                (None, sources[0])
            } else {
                let (m, net) = nb.add_mux(sources.to_vec(), &format!("alu{ai}_{suffix}"));
                (Some(m), net)
            }
        };
        // One functional-unit scope per ALU group: the paper's functional
        // block (operand muxes → ALU) becomes one instance subtree.
        nb.push_scope(&format!("fu{ai}"));
        let (mux_a, a_net) = make_port(&mut nb, &srcs_a, "a");
        let (mux_b, b_net) = make_port(&mut nb, &srcs_b, "b");
        let (alu, out) = nb.add_alu(g.fs, a_net, b_net, &format!("alu{ai}"));
        nb.pop_scope();
        alu_out.push(out);
        // Controller entries for every op on this ALU, asserted over the
        // whole execution window so multi-cycle units keep stable function
        // and operand selects until the capturing edge.
        for (oi, a, b) in port_nets {
            let op = &problem.ops[oi];
            for t in op.step..=op.completion() {
                let word = nb.controller_mut().word_mut(t);
                word.alu_fn.insert(alu, op.op);
                if let Some(m) = mux_a {
                    let sel = srcs_a.iter().position(|&n| n == a).expect("source present");
                    nb.controller_mut().word_mut(t).mux_sel.insert(m, sel);
                }
                if let Some(m) = mux_b {
                    let sel = srcs_b.iter().position(|&n| n == b).expect("source present");
                    nb.controller_mut().word_mut(t).mux_sel.insert(m, sel);
                }
            }
        }
    }

    // Writer of each variable: the net whose value the variable's memory
    // captures at the variable's write step.
    let writer_net = |problem: &Problem, i: usize| -> NetId {
        match problem.vars[i].source {
            PVarSource::PrimaryInput(_) => port_net[&i],
            PVarSource::Node(_) => {
                let oi = problem
                    .ops
                    .iter()
                    .position(|op| op.dest == i)
                    .expect("node-sourced variable has a defining op");
                alu_out[alu_of_op[oi]]
            }
            PVarSource::Transfer(src) => mem_net[group_of_pvar[src]],
        }
    };

    // Memory input networks and load schedule.
    for (gi, g) in regs.iter().enumerate() {
        let mut sources: Vec<NetId> = Vec::new();
        for &i in &g.pvars {
            let net = writer_net(problem, i);
            if !sources.contains(&net) {
                sources.push(net);
            }
        }
        let (mux, input_net) = if sources.len() == 1 {
            (None, sources[0])
        } else {
            nb.push_scope("regs");
            let (m, net) = nb.add_mux(sources.clone(), &format!("mem{gi}_in"));
            nb.pop_scope();
            (Some(m), net)
        };
        nb.set_mem_input(mem_comp[gi], input_net);
        for &i in &g.pvars {
            let load_step = if problem.vars[i].write_step == 0 {
                problem.period // boundary load for primary inputs
            } else {
                problem.vars[i].write_step
            };
            let word = nb.controller_mut().word_mut(load_step);
            word.mem_load.insert(mem_comp[gi]);
            if let Some(m) = mux {
                let net = writer_net(problem, i);
                let sel = sources
                    .iter()
                    .position(|&n| n == net)
                    .expect("source present");
                nb.controller_mut()
                    .word_mut(load_step)
                    .mux_sel
                    .insert(m, sel);
            }
        }
    }

    // Primary outputs.
    for (i, v) in problem.vars.iter().enumerate() {
        if v.is_output {
            nb.mark_output(&v.name, mem_net[group_of_pvar[i]]);
        }
    }

    nb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alu_merge::merge_alus;
    use crate::registers::{allocate_registers, LifetimeView};
    use mc_clocks::ClockScheme;
    use mc_dfg::benchmarks;
    use mc_tech::{MemKind, TechLibrary};

    fn build(n: u32, kind: MemKind) -> Netlist {
        let bm = benchmarks::hal();
        let scheme = ClockScheme::new(n).unwrap();
        let p = Problem::build(&bm.dfg, &bm.schedule, scheme, n > 1);
        let regs = allocate_registers(&p, kind, LifetimeView::Global);
        let alus = merge_alus(&p, &TechLibrary::vsc450(), bm.dfg.width());
        compose("hal", &p, &regs, &alus, bm.dfg.width()).expect("valid netlist")
    }

    #[test]
    fn composed_netlist_validates_for_all_clock_counts() {
        for n in [1u32, 2, 3] {
            let nl = build(n, MemKind::Latch);
            assert!(nl.stats().mem_cells > 0, "n={n}");
            assert!(!nl.stats().alus.is_empty(), "n={n}");
            assert_eq!(nl.outputs().len(), 4, "HAL has 4 outputs");
        }
    }

    #[test]
    fn controller_spans_the_padded_period() {
        let nl = build(2, MemKind::Latch);
        assert_eq!(nl.controller().len(), 4, "HAL: 4 steps, already even");
        let bm = benchmarks::biquad(); // 5 steps, pads to 6 under n=2
        let scheme = ClockScheme::new(2).unwrap();
        let p = Problem::build(&bm.dfg, &bm.schedule, scheme, true);
        let regs = allocate_registers(&p, MemKind::Latch, LifetimeView::Global);
        let alus = merge_alus(&p, &TechLibrary::vsc450(), 4);
        let nl = compose("biquad", &p, &regs, &alus, 4).unwrap();
        assert_eq!(nl.controller().len(), 6);
    }

    #[test]
    fn every_step_with_ops_has_loads() {
        let nl = build(1, MemKind::Dff);
        let bm = benchmarks::hal();
        for t in 1..=bm.schedule.length() {
            let expected = bm.schedule.nodes_at_step(t).len();
            let loads = nl.controller().word(t).mem_load.len();
            assert!(
                loads >= expected.min(1),
                "step {t}: {loads} loads for {expected} ops"
            );
        }
    }

    #[test]
    fn inputs_load_at_boundary() {
        let nl = build(2, MemKind::Latch);
        let boundary = nl.controller().len();
        let word = nl.controller().word(boundary);
        // All five HAL inputs load at the boundary step.
        assert!(word.mem_load.len() >= 5);
    }

    #[test]
    fn dff_variant_also_composes() {
        let nl = build(1, MemKind::Dff);
        let s = nl.stats();
        assert!(s.mem_cells >= 5, "at least the 5 inputs: {}", s.mem_cells);
    }

    #[test]
    fn composed_benchmarks_are_lint_clean() {
        // The allocator must never emit dead logic, off-phase loads,
        // never-loaded memories, idle ALUs or undriven selects for the
        // bundled benchmarks (which have no dead code).
        for bm in benchmarks::paper_benchmarks() {
            for n in [1u32, 2, 3] {
                let scheme = ClockScheme::new(n).unwrap();
                let p = Problem::build(&bm.dfg, &bm.schedule, scheme, n > 1);
                let regs = allocate_registers(&p, MemKind::Latch, LifetimeView::Global);
                let alus = merge_alus(&p, &TechLibrary::vsc450(), bm.dfg.width());
                let nl = compose(bm.name(), &p, &regs, &alus, bm.dfg.width()).unwrap();
                let findings = mc_rtl::lint::warnings(&nl);
                assert!(findings.is_empty(), "{} n={n}: {findings:?}", bm.name());
            }
        }
    }
}
