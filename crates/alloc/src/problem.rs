//! The allocation problem: a partition-annotated view of a scheduled DFG.
//!
//! Construction turns each DFG variable into an *allocation variable*
//! ([`PVar`]) carrying its write step, death step and clock partition, and
//! each DFG node into a [`POp`]. For multi-clock schemes the integrated
//! allocator's step 1 (§4.2) may insert *transfer variables*: when an
//! operation's operand was written in a different partition, a copy of the
//! operand is captured into the operation's own partition at an
//! intermediate step, so the consuming partition's combinational logic
//! only sees transitions on its own clock.

use std::fmt;

use mc_clocks::{ClockScheme, PhaseId};
use mc_dfg::{Dfg, NodeId, Op, Operand, Schedule, VarId};

/// Where an allocation variable's value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PVarSource {
    /// A primary input, loaded at the computation boundary.
    PrimaryInput(VarId),
    /// Written by the operation node at the variable's write step.
    Node(NodeId),
    /// A transfer copy of another allocation variable (by index), captured
    /// at the variable's write step.
    Transfer(usize),
}

/// One allocation variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PVar {
    /// Report name.
    pub name: String,
    /// Step whose ending clock edge writes the value (0 = computation
    /// boundary, used by primary inputs).
    pub write_step: u32,
    /// Last step during which the value must persist.
    pub death: u32,
    /// The clock partition owning the value.
    pub phase: PhaseId,
    /// Provenance.
    pub source: PVarSource,
    /// The original DFG variable, if any (transfers carry the source's).
    pub dfg_var: Option<VarId>,
    /// Whether this is a primary output (must survive to the period end).
    pub is_output: bool,
}

/// An operand of a [`POp`]: an allocation variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum POperand {
    /// Index into [`Problem::vars`].
    Var(usize),
    /// Literal constant.
    Const(u64),
}

/// One scheduled operation over allocation variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct POp {
    /// The originating DFG node.
    pub node: NodeId,
    /// The operation.
    pub op: Op,
    /// Control step at which execution starts (1-based).
    pub step: u32,
    /// Execution latency in steps (1 = single cycle).
    pub latency: u32,
    /// The partition owning the operation — the phase of its *completion*
    /// step, where the result is captured.
    pub phase: PhaseId,
    /// Left operand.
    pub lhs: POperand,
    /// Right operand.
    pub rhs: POperand,
    /// Destination allocation variable (index into [`Problem::vars`]).
    pub dest: usize,
}

impl POp {
    /// The step at whose end the result is stored.
    #[must_use]
    pub fn completion(&self) -> u32 {
        self.step + self.latency - 1
    }
}

/// The assembled allocation problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Problem {
    /// All allocation variables (originals first, transfers appended).
    pub vars: Vec<PVar>,
    /// All operations, in DFG node order.
    pub ops: Vec<POp>,
    /// The clock scheme.
    pub scheme: ClockScheme,
    /// The controller period: the schedule length padded up to a multiple
    /// of `n` so the computation boundary falls on phase `n`'s edge.
    pub period: u32,
    /// Number of transfer variables inserted.
    pub transfers: usize,
}

impl Problem {
    /// Builds the allocation problem for `dfg` under `schedule` and
    /// `scheme`. When `insert_transfers` is set (integrated allocation
    /// step 1), cross-partition operands are rerouted through transfer
    /// variables wherever an intermediate step of the consuming partition
    /// exists; otherwise (and where no such step exists) the operand is
    /// read directly across partitions through a latched-control mux, as
    /// §4.2 step 3 allows.
    #[must_use]
    pub fn build(
        dfg: &Dfg,
        schedule: &Schedule,
        scheme: ClockScheme,
        insert_transfers: bool,
    ) -> Self {
        let n = scheme.num_clocks();
        let period = schedule.length().div_ceil(n) * n;
        // Phase of a write step; step 0 (inputs, the boundary edge) belongs
        // to phase n, the phase owning the period's final edge.
        let phase_of_write = |w: u32| -> PhaseId {
            if w == 0 {
                PhaseId::new(n)
            } else {
                scheme.phase_of_step(w).expect("write steps are 1-based")
            }
        };
        let lifetimes = schedule.lifetimes(dfg);
        let mut vars: Vec<PVar> = dfg
            .var_ids()
            .map(|v| {
                let lt = &lifetimes[v.index()];
                let is_output = dfg.var(v).is_output();
                PVar {
                    name: dfg.var(v).name().to_owned(),
                    write_step: lt.write_step,
                    // Outputs are read externally *after* the boundary
                    // edge, so they must survive one step past the period:
                    // a final-step write into a shared register would
                    // otherwise clobber them before the environment reads.
                    death: if is_output { period + 1 } else { lt.death },
                    phase: phase_of_write(lt.write_step),
                    source: match dfg.writer_of(v) {
                        Some(nid) => PVarSource::Node(nid),
                        None => PVarSource::PrimaryInput(v),
                    },
                    dfg_var: Some(v),
                    is_output,
                }
            })
            .collect();
        let mut ops: Vec<POp> = dfg
            .node_ids()
            .map(|nid| {
                let node = dfg.node(nid);
                let step = schedule.step_of(nid);
                let latency = schedule.latency_of(nid);
                let conv = |o: Operand| match o {
                    Operand::Var(v) => POperand::Var(v.index()),
                    Operand::Const(c) => POperand::Const(c),
                };
                POp {
                    node: nid,
                    op: node.op(),
                    step,
                    latency,
                    phase: scheme
                        .phase_of_step(schedule.completion_of(nid))
                        .expect("completion steps are 1-based"),
                    lhs: conv(node.lhs()),
                    rhs: conv(node.rhs()),
                    dest: node.dest().index(),
                }
            })
            .collect();
        let mut transfers = 0;
        if insert_transfers && n > 1 {
            transfers = reroute_through_transfers(&mut vars, &mut ops, scheme);
            recompute_deaths(&mut vars, &ops, period);
        }
        Problem {
            vars,
            ops,
            scheme,
            period,
            transfers,
        }
    }

    /// Indices of the primary-input variables.
    pub fn input_vars(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.vars.len()).filter(|&i| matches!(self.vars[i].source, PVarSource::PrimaryInput(_)))
    }

    /// The operations executed in partition `k`, in step order.
    #[must_use]
    pub fn ops_in_phase(&self, k: PhaseId) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.ops.len())
            .filter(|&i| self.ops[i].phase == k)
            .collect();
        idx.sort_by_key(|&i| (self.ops[i].step, self.ops[i].node));
        idx
    }

    /// Whether any operation reads operand variable `v` across partitions
    /// (i.e. `v` lives in a different partition than the reader). Such
    /// reads are legal but cost combinational power in the reader's
    /// partition.
    #[must_use]
    pub fn cross_partition_reads(&self) -> usize {
        self.ops
            .iter()
            .flat_map(|op| [op.lhs, op.rhs].into_iter().map(move |o| (op.phase, o)))
            .filter(|&(phase, o)| match o {
                POperand::Var(v) => self.vars[v].phase != phase,
                POperand::Const(_) => false,
            })
            .count()
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "problem: {} vars ({} transfers), {} ops, period {}",
            self.vars.len(),
            self.transfers,
            self.ops.len(),
            self.period
        )?;
        for (i, v) in self.vars.iter().enumerate() {
            writeln!(
                f,
                "  v{i} {}: w@{} d@{} {} {:?}",
                v.name, v.write_step, v.death, v.phase, v.source
            )?;
        }
        Ok(())
    }
}

/// §4.2 step 1: for every operand read in a different partition than it
/// was written, capture a copy into the reader's partition at the earliest
/// reader-partition step strictly between write and read, and reroute the
/// read. Capturing at the earliest such step makes the copy shareable by
/// every later reader in that partition. Returns the number of transfer
/// variables created.
fn reroute_through_transfers(vars: &mut Vec<PVar>, ops: &mut [POp], scheme: ClockScheme) -> usize {
    use std::collections::BTreeMap;
    // (source var, reader phase) -> transfer var index
    let mut cache: BTreeMap<(usize, u32), usize> = BTreeMap::new();
    let mut created = 0;
    for op in ops.iter_mut() {
        // §4.2 step 3 offers a choice for cross-partition operands: add a
        // transfer register, or rely on latched mux controls. A transfer
        // costs a latch (area, clock pulses, store toggles); it pays only
        // when it keeps the inputs of an *expensive* unit (multiplier /
        // divider) stable, so we insert selectively.
        if !op.op.is_expensive() {
            continue;
        }
        for side in 0..2 {
            let operand = if side == 0 { op.lhs } else { op.rhs };
            let POperand::Var(v) = operand else { continue };
            let reader_phase = op.phase;
            if vars[v].phase == reader_phase {
                continue;
            }
            // Primary inputs settle at the computation boundary and stay
            // stable all period; copying them buys nothing.
            if matches!(vars[v].source, PVarSource::PrimaryInput(_)) {
                continue;
            }
            let read_step = op.step;
            let write_step = vars[v].write_step;
            // Earliest reader-phase step strictly after the write and
            // strictly before the read: capture as soon as the value
            // exists so every reader in this partition can share it.
            let capture = (write_step + 1..read_step).find(|&s| scheme.is_active(reader_phase, s));
            let Some(capture) = capture else { continue };
            let key = (v, reader_phase.get());
            let ti = *cache.entry(key).or_insert_with(|| {
                let idx = vars.len();
                let t = PVar {
                    name: format!("x_{}_{}", vars[v].name, reader_phase.get()),
                    write_step: capture,
                    death: read_step,
                    phase: reader_phase,
                    source: PVarSource::Transfer(v),
                    dfg_var: vars[v].dfg_var,
                    is_output: false,
                };
                vars.push(t);
                created += 1;
                idx
            });
            if side == 0 {
                op.lhs = POperand::Var(ti);
            } else {
                op.rhs = POperand::Var(ti);
            }
        }
    }
    created
}

/// Recomputes every variable's death step from actual readers (operation
/// operands plus transfer captures), preserving the output-persistence
/// extension. Rerouting reads through transfers shortens source lifetimes
/// — the effect the paper exploits in Fig. 6 to merge `U` and `X`.
fn recompute_deaths(vars: &mut [PVar], ops: &[POp], period: u32) {
    let mut death: Vec<u32> = vars.iter().map(|v| v.write_step).collect();
    for op in ops {
        for o in [op.lhs, op.rhs] {
            if let POperand::Var(v) = o {
                // Operands stay stable through the whole execution.
                death[v] = death[v].max(op.completion());
            }
        }
    }
    for v in vars.iter() {
        if let PVarSource::Transfer(src) = v.source {
            death[src] = death[src].max(v.write_step);
        }
    }
    for (v, d) in vars.iter_mut().zip(death) {
        v.death = if v.is_output { period + 1 } else { d };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_dfg::{benchmarks, DfgBuilder};

    /// in a, b; s = a+b @1 (phase 1); d = s-a @2 (phase 2); e = d*s @3 (p1).
    /// The final op is a multiply so the selective transfer heuristic
    /// considers its operands.
    fn chain() -> (Dfg, Schedule) {
        let mut b = DfgBuilder::new("chain", 4);
        let a = b.input("a");
        let bb = b.input("b");
        let s = b.op_named("s", Op::Add, a, bb);
        let d = b.op_named("d", Op::Sub, s, a);
        let e = b.op_named("e", Op::Mul, d, s);
        b.mark_output(e);
        let g = b.finish().unwrap();
        let sched = Schedule::new(&g, vec![1, 2, 3], 3).unwrap();
        (g, sched)
    }

    #[test]
    fn single_clock_problem_has_no_transfers() {
        let (g, s) = chain();
        let p = Problem::build(&g, &s, ClockScheme::single(), true);
        assert_eq!(p.transfers, 0);
        assert_eq!(p.vars.len(), g.num_vars());
        assert_eq!(p.period, 3);
        assert_eq!(p.cross_partition_reads(), 0);
    }

    #[test]
    fn period_pads_to_multiple_of_n() {
        let (g, s) = chain();
        let p = Problem::build(&g, &s, ClockScheme::new(2).unwrap(), false);
        assert_eq!(p.period, 4);
        let p3 = Problem::build(&g, &s, ClockScheme::new(3).unwrap(), false);
        assert_eq!(p3.period, 3);
    }

    #[test]
    fn inputs_belong_to_phase_n() {
        let (g, s) = chain();
        let p = Problem::build(&g, &s, ClockScheme::new(2).unwrap(), false);
        for i in p.input_vars() {
            assert_eq!(p.vars[i].phase, PhaseId::new(2));
            assert_eq!(p.vars[i].write_step, 0);
        }
    }

    #[test]
    fn transfer_inserted_for_cross_partition_read_with_gap() {
        let (g, s) = chain();
        // e = d + s at step 3 (phase 1); s written at step 1 (phase 1): same
        // phase, no transfer. d written step 2 (phase 2), read step 3: gap
        // (2,3) has no phase-1 step, no transfer possible.
        // s read by d at step 2 (phase 2), written step 1: gap (1,2) empty.
        // a (input, phase 2) read at steps 1 and 2: step-1 read is phase 1,
        // gap (0,1) empty -> direct.
        let p = Problem::build(&g, &s, ClockScheme::new(2).unwrap(), true);
        assert_eq!(p.transfers, 0, "no intermediate step exists in 3-chain");
        // Now with a longer gap: e moved to step 5.
        let (g2, _) = chain();
        let s2 = Schedule::new(&g2, vec![1, 2, 5], 5).unwrap();
        let p2 = Problem::build(&g2, &s2, ClockScheme::new(2).unwrap(), true);
        // d (phase 2, written @2) read @5 (phase 1): capture at step 3.
        assert_eq!(p2.transfers, 1);
        let t = &p2.vars[g2.num_vars()];
        assert_eq!(t.write_step, 3);
        assert_eq!(t.phase, PhaseId::new(1));
        assert!(matches!(t.source, PVarSource::Transfer(_)));
    }

    #[test]
    fn transfers_shorten_source_deaths() {
        let (g, _) = chain();
        let s = Schedule::new(&g, vec![1, 2, 5], 5).unwrap();
        let scheme = ClockScheme::new(2).unwrap();
        let without = Problem::build(&g, &s, scheme, false);
        let with = Problem::build(&g, &s, scheme, true);
        let d = g.var_by_name("d").unwrap().index();
        // Without transfers, d lives to its read at 5; with a transfer
        // captured at 3, d dies at 3.
        assert_eq!(without.vars[d].death, 5);
        assert_eq!(with.vars[d].death, 3);
    }

    #[test]
    fn transfers_are_shared_between_readers() {
        let mut b = DfgBuilder::new("share", 4);
        let a = b.input("a");
        let x = b.op_named("x", Op::Add, a, a); // @1 phase 1
        let r1 = b.op_named("r1", Op::Mul, x, a); // @4 phase 2
        let r2 = b.op_named("r2", Op::Mul, x, a); // @6 phase 2
        b.mark_output(r1);
        b.mark_output(r2);
        let g = b.finish().unwrap();
        let s = Schedule::new(&g, vec![1, 4, 6], 6).unwrap();
        let p = Problem::build(&g, &s, ClockScheme::new(2).unwrap(), true);
        // x (phase 1) read at steps 4 and 6 (phase 2): one shared transfer
        // captured at step 2.
        let x_transfers = p
            .vars
            .iter()
            .filter(|v| matches!(v.source, PVarSource::Transfer(src) if p.vars[src].name == "x"))
            .count();
        assert_eq!(x_transfers, 1);
    }

    #[test]
    fn cross_partition_reads_counted() {
        let (g, s) = chain();
        let p = Problem::build(&g, &s, ClockScheme::new(2).unwrap(), false);
        assert!(p.cross_partition_reads() > 0);
    }

    #[test]
    fn benchmark_problems_build() {
        for bm in benchmarks::all_benchmarks() {
            for n in [1u32, 2, 3] {
                let scheme = ClockScheme::new(n).unwrap();
                for transfers in [false, true] {
                    let p = Problem::build(&bm.dfg, &bm.schedule, scheme, transfers);
                    assert_eq!(p.ops.len(), bm.dfg.num_nodes(), "{} n={n}", bm.name());
                    assert!(p.period >= bm.schedule.length());
                    assert_eq!(p.period % n, 0);
                    // Every op's dest var is written at the op's completion.
                    for op in &p.ops {
                        assert_eq!(p.vars[op.dest].write_step, op.completion());
                    }
                }
            }
        }
    }

    #[test]
    fn ops_in_phase_partitions_all_ops() {
        let bm = benchmarks::hal();
        let scheme = ClockScheme::new(3).unwrap();
        let p = Problem::build(&bm.dfg, &bm.schedule, scheme, false);
        let total: usize = scheme.phases().map(|k| p.ops_in_phase(k).len()).sum();
        assert_eq!(total, p.ops.len());
    }
}
