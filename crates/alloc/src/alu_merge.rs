//! Greedy merging of operations into (multi-function) ALUs — §4.2 step 3.
//!
//! Operations in the same clock partition may share an ALU if they execute
//! in different control steps. Merging is cost-driven: an operation joins
//! the existing ALU whose area grows least, unless a fresh single-function
//! ALU would be cheaper (which is how multipliers end up separate from
//! add/sub units, as in the paper's tables).

use mc_clocks::PhaseId;
use mc_dfg::FunctionSet;
use mc_tech::TechLibrary;

use crate::problem::Problem;

/// A group of operations bound to one ALU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AluGroup {
    /// Indices into [`Problem::ops`], in step order.
    pub ops: Vec<usize>,
    /// The union of the operations' functions.
    pub fs: FunctionSet,
    /// The partition the ALU serves.
    pub phase: PhaseId,
}

/// Merges the problem's operations into ALUs, partition by partition.
///
/// Within each partition, operations are visited in step order; each joins
/// the compatible group (no step collision) with the smallest area
/// increase, or founds a new group when that is cheaper.
#[must_use]
pub fn merge_alus(problem: &Problem, lib: &TechLibrary, width: u8) -> Vec<AluGroup> {
    let mut groups: Vec<AluGroup> = Vec::new();
    for phase in problem.scheme.phases() {
        for oi in problem.ops_in_phase(phase) {
            let op = &problem.ops[oi];
            let single = lib.alu_area(FunctionSet::single(op.op), width);
            let mut best: Option<(f64, usize)> = None;
            for (gi, g) in groups.iter().enumerate() {
                if g.phase != phase {
                    continue;
                }
                // Execution-window collision: a multi-cycle operation
                // occupies its ALU for [step, completion].
                let collides = g.ops.iter().any(|&o| {
                    let other = &problem.ops[o];
                    !(other.completion() < op.step || op.completion() < other.step)
                });
                if collides {
                    continue;
                }
                let grown = {
                    let mut fs = g.fs;
                    fs.insert(op.op);
                    fs
                };
                let delta = lib.alu_area(grown, width) - lib.alu_area(g.fs, width);
                if best.is_none_or(|(b, _)| delta < b) {
                    best = Some((delta, gi));
                }
            }
            match best {
                Some((delta, gi)) if delta <= single => {
                    groups[gi].fs.insert(op.op);
                    groups[gi].ops.push(oi);
                }
                _ => groups.push(AluGroup {
                    ops: vec![oi],
                    fs: FunctionSet::single(op.op),
                    phase,
                }),
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_clocks::ClockScheme;
    use mc_dfg::{benchmarks, DfgBuilder, Op, Schedule};

    fn merge(dfg: &mc_dfg::Dfg, sched: &Schedule, n: u32) -> Vec<AluGroup> {
        let scheme = ClockScheme::new(n).unwrap();
        let p = Problem::build(dfg, sched, scheme, false);
        merge_alus(&p, &TechLibrary::vsc450(), dfg.width())
    }

    #[test]
    fn sequential_adds_share_one_alu() {
        let mut b = DfgBuilder::new("seq", 4);
        let a = b.input("a");
        let s1 = b.op(Op::Add, a, a);
        let s2 = b.op(Op::Add, s1, a);
        let s3 = b.op(Op::Add, s2, a);
        b.mark_output(s3);
        let g = b.finish().unwrap();
        let s = Schedule::new(&g, vec![1, 2, 3], 3).unwrap();
        let groups = merge(&g, &s, 1);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].fs.to_string(), "(+)");
        assert_eq!(groups[0].ops.len(), 3);
    }

    #[test]
    fn concurrent_ops_cannot_share() {
        let mut b = DfgBuilder::new("par", 4);
        let a = b.input("a");
        let s1 = b.op(Op::Add, a, a);
        let s2 = b.op(Op::Add, a, a);
        let s3 = b.op(Op::Add, s1, s2);
        b.mark_output(s3);
        let g = b.finish().unwrap();
        let s = Schedule::new(&g, vec![1, 1, 2], 2).unwrap();
        let groups = merge(&g, &s, 1);
        assert_eq!(groups.len(), 2, "two adds at step 1 need two ALUs");
    }

    #[test]
    fn multiplier_stays_separate_from_adder() {
        let mut b = DfgBuilder::new("mix", 4);
        let a = b.input("a");
        let s1 = b.op(Op::Add, a, a);
        let m1 = b.op(Op::Mul, s1, a);
        b.mark_output(m1);
        let g = b.finish().unwrap();
        let s = Schedule::new(&g, vec![1, 2], 2).unwrap();
        let groups = merge(&g, &s, 1);
        // Merging + into the multiplier costs more than a fresh adder
        // (multi-function penalty on a large unit), so they stay apart.
        assert_eq!(groups.len(), 2);
        let fss: Vec<String> = groups.iter().map(|g| g.fs.to_string()).collect();
        assert!(fss.contains(&"(+)".to_string()));
        assert!(fss.contains(&"(*)".to_string()));
    }

    #[test]
    fn add_sub_merge_into_one_unit() {
        let mut b = DfgBuilder::new("as", 4);
        let a = b.input("a");
        let s1 = b.op(Op::Add, a, a);
        let s2 = b.op(Op::Sub, s1, a);
        b.mark_output(s2);
        let g = b.finish().unwrap();
        let s = Schedule::new(&g, vec![1, 2], 2).unwrap();
        let groups = merge(&g, &s, 1);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].fs.to_string(), "(+-)");
    }

    #[test]
    fn partitions_never_share_alus() {
        let bm = benchmarks::hal();
        let groups = merge(&bm.dfg, &bm.schedule, 2);
        for g in &groups {
            for &oi in &g.ops {
                let scheme = ClockScheme::new(2).unwrap();
                assert_eq!(
                    scheme
                        .phase_of_step({
                            let p = Problem::build(&bm.dfg, &bm.schedule, scheme, false);
                            p.ops[oi].step
                        })
                        .unwrap(),
                    g.phase
                );
            }
        }
        // Both phases are populated for HAL's 4-step schedule.
        let phases: std::collections::BTreeSet<_> = groups.iter().map(|g| g.phase).collect();
        assert_eq!(phases.len(), 2);
    }

    #[test]
    fn every_op_lands_in_exactly_one_group() {
        for bm in benchmarks::all_benchmarks() {
            for n in [1, 2, 3] {
                let groups = merge(&bm.dfg, &bm.schedule, n);
                let mut seen: Vec<usize> = groups.iter().flat_map(|g| g.ops.clone()).collect();
                seen.sort_unstable();
                assert_eq!(seen, (0..bm.dfg.num_nodes()).collect::<Vec<_>>());
                // No step collisions inside any group.
                let scheme = ClockScheme::new(n).unwrap();
                let p = Problem::build(&bm.dfg, &bm.schedule, scheme, false);
                for g in &groups {
                    let mut steps: Vec<u32> = g.ops.iter().map(|&o| p.ops[o].step).collect();
                    steps.sort_unstable();
                    steps.dedup();
                    assert_eq!(steps.len(), g.ops.len(), "{} n={n}", bm.name());
                }
            }
        }
    }

    #[test]
    fn more_clocks_never_reduce_alu_concurrency_legality() {
        // With n clocks the same-step rule still holds; merging across
        // phases is impossible, so group count >= single-clock count is
        // typical (the paper's area growth with clock count).
        let bm = benchmarks::facet();
        let g1 = merge(&bm.dfg, &bm.schedule, 1).len();
        let g3 = merge(&bm.dfg, &bm.schedule, 3).len();
        assert!(g3 >= g1);
    }
}
