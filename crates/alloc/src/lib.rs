//! Datapath allocation for the multi-clock low-power synthesis system:
//! the paper's conventional baseline, split allocation (§4.1) and
//! integrated allocation (§4.2).
//!
//! All three strategies share the same machinery — an allocation
//! [`Problem`] derived from a scheduled DFG, the left-edge register
//! allocator, greedy ALU merging, and a datapath composer — and differ in:
//!
//! | strategy | clocks | transfers (§4.2 step 1) | lifetime view |
//! |---|---|---|---|
//! | [`Strategy::Conventional`] | 1 | – | global |
//! | [`Strategy::Split`] | n | no | partition-local (conservative) |
//! | [`Strategy::Integrated`] | n | yes (optional) | global |
//!
//! # Example: integrated allocation of HAL under two clocks
//!
//! ```
//! use mc_alloc::{allocate, AllocOptions, Strategy};
//! use mc_clocks::ClockScheme;
//! use mc_dfg::benchmarks;
//! use mc_tech::MemKind;
//!
//! # fn main() -> Result<(), mc_alloc::AllocError> {
//! let bm = benchmarks::hal();
//! let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(2).expect("ok"))
//!     .with_mem_kind(MemKind::Latch);
//! let dp = allocate(&bm.dfg, &bm.schedule, &opts)?;
//! assert!(dp.netlist.stats().mem_cells > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod alu_merge;
mod compose;
pub mod leftedge;
mod problem;
mod registers;

pub use alu_merge::{merge_alus, AluGroup};
pub use compose::compose;
pub use problem::{POp, POperand, PVar, PVarSource, Problem};
pub use registers::{allocate_registers, LifetimeView, RegGroup};

use std::fmt;

use mc_clocks::ClockScheme;
use mc_dfg::{Dfg, Schedule};
use mc_rtl::{Netlist, NetlistError};
use mc_tech::{MemKind, TechLibrary};

/// The allocation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Conventional single-clock allocation (the SYNTEST-style baseline of
    /// the paper's first two table rows). Requires a single-clock scheme.
    Conventional,
    /// Split allocation (§4.1): partition the schedule, allocate each
    /// partition independently with partition-local lifetimes, then the
    /// clean-up interconnects partitions (performed by the shared
    /// composer).
    Split,
    /// Integrated allocation (§4.2): partition-aware allocation with
    /// global lifetimes and optional transfer variables.
    Integrated,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Conventional => write!(f, "conventional"),
            Strategy::Split => write!(f, "split"),
            Strategy::Integrated => write!(f, "integrated"),
        }
    }
}

/// Errors from [`allocate`].
#[derive(Debug, Clone, PartialEq)]
pub enum AllocError {
    /// [`Strategy::Conventional`] was requested with a multi-clock scheme.
    ConventionalNeedsSingleClock(u32),
    /// The composed netlist failed validation — an allocator bug.
    Netlist(NetlistError),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::ConventionalNeedsSingleClock(n) => {
                write!(f, "conventional allocation requires 1 clock, got {n}")
            }
            AllocError::Netlist(e) => write!(f, "composed netlist invalid: {e}"),
        }
    }
}

impl std::error::Error for AllocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AllocError::Netlist(e) => Some(e),
            AllocError::ConventionalNeedsSingleClock(_) => None,
        }
    }
}

#[doc(hidden)]
impl From<NetlistError> for AllocError {
    fn from(e: NetlistError) -> Self {
        AllocError::Netlist(e)
    }
}

/// Options controlling [`allocate`].
#[derive(Debug, Clone)]
pub struct AllocOptions {
    strategy: Strategy,
    scheme: ClockScheme,
    mem_kind: MemKind,
    insert_transfers: bool,
    tech: TechLibrary,
}

impl AllocOptions {
    /// Options for `strategy` under `scheme`, with the strategy's natural
    /// defaults: DFF memories for conventional allocation, latches for the
    /// multi-clock strategies; transfers on for integrated allocation.
    #[must_use]
    pub fn new(strategy: Strategy, scheme: ClockScheme) -> Self {
        let mem_kind = match strategy {
            Strategy::Conventional => MemKind::Dff,
            Strategy::Split | Strategy::Integrated => MemKind::Latch,
        };
        AllocOptions {
            strategy,
            scheme,
            mem_kind,
            insert_transfers: strategy == Strategy::Integrated,
            tech: TechLibrary::vsc450(),
        }
    }

    /// Overrides the memory-element kind (e.g. DFFs for a latch-vs-DFF
    /// ablation).
    #[must_use]
    pub fn with_mem_kind(mut self, kind: MemKind) -> Self {
        self.mem_kind = kind;
        self
    }

    /// Enables or disables transfer-variable insertion (integrated
    /// allocation only; ignored otherwise).
    #[must_use]
    pub fn with_transfers(mut self, on: bool) -> Self {
        self.insert_transfers = on;
        self
    }

    /// Uses a specific technology library for merge cost decisions.
    #[must_use]
    pub fn with_tech(mut self, tech: TechLibrary) -> Self {
        self.tech = tech;
        self
    }

    /// The configured strategy.
    #[must_use]
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The configured clock scheme.
    #[must_use]
    pub fn scheme(&self) -> ClockScheme {
        self.scheme
    }

    /// The configured memory kind.
    #[must_use]
    pub fn mem_kind(&self) -> MemKind {
        self.mem_kind
    }
}

/// A synthesised datapath: the netlist plus the allocation artifacts it
/// was composed from (useful for reports and the paper's figures).
#[derive(Debug, Clone)]
pub struct Datapath {
    /// The validated structural netlist.
    pub netlist: Netlist,
    /// The allocation problem (variables, partitions, transfers).
    pub problem: Problem,
    /// The register binding.
    pub regs: Vec<RegGroup>,
    /// The ALU binding.
    pub alus: Vec<AluGroup>,
    /// The memory-element kind used.
    pub mem_kind: MemKind,
    /// The strategy that produced this datapath.
    pub strategy: Strategy,
}

impl Datapath {
    /// Operand reads that cross partitions in the final binding (each one
    /// costs combinational power in the reading partition).
    #[must_use]
    pub fn cross_partition_reads(&self) -> usize {
        self.problem.cross_partition_reads()
    }
}

/// Allocates a datapath for `dfg` under `schedule` with the given options.
///
/// # Errors
///
/// Returns [`AllocError::ConventionalNeedsSingleClock`] when the
/// conventional strategy is paired with a multi-clock scheme, or
/// [`AllocError::Netlist`] if composition produces an invalid netlist
/// (which indicates an internal bug).
pub fn allocate(
    dfg: &Dfg,
    schedule: &Schedule,
    options: &AllocOptions,
) -> Result<Datapath, AllocError> {
    let n = options.scheme.num_clocks();
    if options.strategy == Strategy::Conventional && n != 1 {
        return Err(AllocError::ConventionalNeedsSingleClock(n));
    }
    let transfers = options.strategy == Strategy::Integrated && options.insert_transfers;
    let problem = Problem::build(dfg, schedule, options.scheme, transfers);
    let view = match options.strategy {
        Strategy::Split => LifetimeView::SplitLocal,
        Strategy::Conventional | Strategy::Integrated => LifetimeView::Global,
    };
    let regs = allocate_registers(&problem, options.mem_kind, view);
    let alus = merge_alus(&problem, &options.tech, dfg.width());
    let name = format!("{}_{}_{}clk", dfg.name(), options.strategy, n);
    let netlist = compose(&name, &problem, &regs, &alus, dfg.width())?;
    Ok(Datapath {
        netlist,
        problem,
        regs,
        alus,
        mem_kind: options.mem_kind,
        strategy: options.strategy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_dfg::benchmarks;

    #[test]
    fn conventional_rejects_multiclock() {
        let bm = benchmarks::facet();
        let opts = AllocOptions::new(Strategy::Conventional, ClockScheme::new(2).unwrap());
        assert!(matches!(
            allocate(&bm.dfg, &bm.schedule, &opts).unwrap_err(),
            AllocError::ConventionalNeedsSingleClock(2)
        ));
    }

    #[test]
    fn all_strategies_allocate_all_benchmarks() {
        for bm in benchmarks::all_benchmarks() {
            let conv = AllocOptions::new(Strategy::Conventional, ClockScheme::single());
            assert!(
                allocate(&bm.dfg, &bm.schedule, &conv).is_ok(),
                "{}",
                bm.name()
            );
            for n in [1u32, 2, 3] {
                for strategy in [Strategy::Split, Strategy::Integrated] {
                    let opts = AllocOptions::new(strategy, ClockScheme::new(n).unwrap());
                    let dp = allocate(&bm.dfg, &bm.schedule, &opts)
                        .unwrap_or_else(|e| panic!("{} {strategy} n={n}: {e}", bm.name()));
                    assert!(dp.netlist.stats().mem_cells > 0);
                }
            }
        }
    }

    #[test]
    fn defaults_follow_strategy() {
        let conv = AllocOptions::new(Strategy::Conventional, ClockScheme::single());
        assert_eq!(conv.mem_kind(), MemKind::Dff);
        let integ = AllocOptions::new(Strategy::Integrated, ClockScheme::new(2).unwrap());
        assert_eq!(integ.mem_kind(), MemKind::Latch);
    }

    #[test]
    fn integrated_transfers_reduce_cross_partition_reads() {
        let bm = benchmarks::bandpass();
        let scheme = ClockScheme::new(2).unwrap();
        let with = allocate(
            &bm.dfg,
            &bm.schedule,
            &AllocOptions::new(Strategy::Integrated, scheme),
        )
        .unwrap();
        let without = allocate(
            &bm.dfg,
            &bm.schedule,
            &AllocOptions::new(Strategy::Integrated, scheme).with_transfers(false),
        )
        .unwrap();
        assert!(
            with.cross_partition_reads() <= without.cross_partition_reads(),
            "transfers must not increase cross-partition reads"
        );
    }

    #[test]
    fn split_uses_at_least_as_many_mems_as_integrated() {
        let bm = benchmarks::hal();
        let scheme = ClockScheme::new(2).unwrap();
        let split = allocate(
            &bm.dfg,
            &bm.schedule,
            &AllocOptions::new(Strategy::Split, scheme),
        )
        .unwrap();
        let integ = allocate(
            &bm.dfg,
            &bm.schedule,
            &AllocOptions::new(Strategy::Integrated, scheme).with_transfers(false),
        )
        .unwrap();
        assert!(split.netlist.stats().mem_cells >= integ.netlist.stats().mem_cells);
    }

    #[test]
    fn netlist_names_encode_configuration() {
        let bm = benchmarks::facet();
        let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(3).unwrap());
        let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap();
        assert_eq!(dp.netlist.name(), "facet_integrated_3clk");
    }
}
