//! Register/latch allocation over an allocation problem — §4.2 step 2.
//!
//! Variables are merged into memory elements with the left-edge algorithm,
//! one run per clock partition ("only variables which are placed in the
//! same partition may be merged"). Primary inputs always receive dedicated
//! elements: all inputs are (re)loaded simultaneously at the computation
//! boundary, so no two can share, and sharing with internal variables
//! would race the boundary load.

use mc_clocks::PhaseId;
use mc_tech::MemKind;

use crate::leftedge::{left_edge, Interval};
use crate::problem::{PVarSource, Problem};

/// A group of allocation variables bound to one memory element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegGroup {
    /// Indices into [`Problem::vars`], in write-step order.
    pub pvars: Vec<usize>,
    /// The clock partition of the element.
    pub phase: PhaseId,
    /// Latch or DFF.
    pub kind: MemKind,
}

/// How lifetimes are viewed during register allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifetimeView {
    /// Global lifetimes (the integrated allocator, §4.2).
    Global,
    /// Partition-local lifetimes (the split allocator, §4.1): a variable
    /// read outside its own partition is treated as a partition output and
    /// conservatively persists to the period end, exactly as a partition
    /// primary output would before the clean-up phase.
    SplitLocal,
}

/// Allocates memory elements of `kind` for every allocation variable.
///
/// Returns one [`RegGroup`] per element. Dead variables (never read,
/// non-output) still get storage — the datapath writes them — but they
/// merge aggressively since their span is zero.
#[must_use]
pub fn allocate_registers(problem: &Problem, kind: MemKind, view: LifetimeView) -> Vec<RegGroup> {
    let mut groups = Vec::new();
    // Dedicated elements for primary inputs, in variable order. An input
    // that is still being read during the boundary step would race its
    // own reload edge if stored in a transparent latch (the environment
    // rewrites it at that very edge), so such inputs are hardened to
    // edge-triggered registers regardless of the requested kind.
    for i in problem.input_vars() {
        let boundary_read = problem.vars[i].death >= problem.period;
        let input_kind = if boundary_read { MemKind::Dff } else { kind };
        groups.push(RegGroup {
            pvars: vec![i],
            phase: problem.vars[i].phase,
            kind: input_kind,
        });
    }
    for phase in problem.scheme.phases() {
        let members: Vec<usize> = (0..problem.vars.len())
            .filter(|&i| {
                problem.vars[i].phase == phase
                    && !matches!(problem.vars[i].source, PVarSource::PrimaryInput(_))
            })
            .collect();
        let intervals: Vec<Interval> = members
            .iter()
            .map(|&i| {
                let v = &problem.vars[i];
                let death = match view {
                    LifetimeView::Global => v.death,
                    LifetimeView::SplitLocal => {
                        if read_outside_phase(problem, i) || v.is_output {
                            // Conservative partition-output persistence;
                            // one past the period so outputs are never
                            // clobbered by a boundary-step write.
                            problem.period + 1
                        } else {
                            v.death
                        }
                    }
                };
                Interval {
                    id: i,
                    write_step: v.write_step,
                    death,
                }
            })
            .collect();
        for group in left_edge(&intervals, kind) {
            let mut pvars = group;
            pvars.sort_by_key(|&i| problem.vars[i].write_step);
            groups.push(RegGroup { pvars, phase, kind });
        }
    }
    groups
}

/// Whether variable `v` is read by an operation outside its own partition
/// (transfer captures count as reads in the capturing partition).
fn read_outside_phase(problem: &Problem, v: usize) -> bool {
    let phase = problem.vars[v].phase;
    let op_read = problem.ops.iter().any(|op| {
        op.phase != phase
            && [op.lhs, op.rhs]
                .iter()
                .any(|o| matches!(o, crate::problem::POperand::Var(x) if *x == v))
    });
    let transfer_read = problem
        .vars
        .iter()
        .any(|t| matches!(t.source, PVarSource::Transfer(src) if src == v) && t.phase != phase);
    op_read || transfer_read
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_clocks::ClockScheme;
    use mc_dfg::{benchmarks, DfgBuilder, Op, Schedule};

    fn problem(n: u32) -> Problem {
        let bm = benchmarks::hal();
        Problem::build(&bm.dfg, &bm.schedule, ClockScheme::new(n).unwrap(), false)
    }

    #[test]
    fn every_var_is_stored_exactly_once() {
        for n in [1u32, 2, 3] {
            let p = problem(n);
            let groups = allocate_registers(&p, MemKind::Latch, LifetimeView::Global);
            let mut seen: Vec<usize> = groups.iter().flat_map(|g| g.pvars.clone()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..p.vars.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn inputs_get_dedicated_elements() {
        let p = problem(2);
        let groups = allocate_registers(&p, MemKind::Latch, LifetimeView::Global);
        for i in p.input_vars() {
            let g = groups.iter().find(|g| g.pvars.contains(&i)).unwrap();
            assert_eq!(g.pvars.len(), 1, "input {i} must not share");
        }
    }

    #[test]
    fn groups_respect_partitions() {
        let p = problem(3);
        let groups = allocate_registers(&p, MemKind::Latch, LifetimeView::Global);
        for g in &groups {
            for &i in &g.pvars {
                assert_eq!(p.vars[i].phase, g.phase);
            }
        }
    }

    #[test]
    fn dff_view_merges_at_least_as_well_as_latch() {
        let p = problem(1);
        let latches = allocate_registers(&p, MemKind::Latch, LifetimeView::Global).len();
        let dffs = allocate_registers(&p, MemKind::Dff, LifetimeView::Global).len();
        assert!(dffs <= latches);
    }

    #[test]
    fn split_view_is_no_better_than_global() {
        for n in [2u32, 3] {
            let p = problem(n);
            let global = allocate_registers(&p, MemKind::Latch, LifetimeView::Global).len();
            let split = allocate_registers(&p, MemKind::Latch, LifetimeView::SplitLocal).len();
            assert!(split >= global, "n={n}: split {split} < global {global}");
        }
    }

    #[test]
    fn cross_partition_reader_detection() {
        let mut b = DfgBuilder::new("x", 4);
        let a = b.input("a");
        let s = b.op_named("s", Op::Add, a, a); // @1, phase 1
        let d = b.op_named("d", Op::Sub, s, a); // @2, phase 2 reads s
        b.mark_output(d);
        let g = b.finish().unwrap();
        let sched = Schedule::new(&g, vec![1, 2], 2).unwrap();
        let p = Problem::build(&g, &sched, ClockScheme::new(2).unwrap(), false);
        let s_idx = g.var_by_name("s").unwrap().index();
        assert!(read_outside_phase(&p, s_idx));
        let d_idx = g.var_by_name("d").unwrap().index();
        assert!(!read_outside_phase(&p, d_idx));
    }

    #[test]
    fn single_clock_latch_count_matches_left_edge_bound() {
        // With one clock all non-input vars go through a single left-edge
        // pass; group count must not exceed variable count and must cover
        // all of them.
        let p = problem(1);
        let groups = allocate_registers(&p, MemKind::Dff, LifetimeView::Global);
        let inputs = p.input_vars().count();
        assert!(groups.len() >= inputs);
        assert!(groups.len() <= p.vars.len());
    }
}
