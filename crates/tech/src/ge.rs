//! Gate-equivalent (GE) structural model of datapath cells.
//!
//! Component areas and internal capacitances are derived from gate counts
//! of textbook implementations (ripple adders, array multipliers, restoring
//! array dividers, barrel shifters), which fixes the *relative* costs that
//! the paper's conclusions rest on: multiplier ≫ divider ≫ adder ≫ logic,
//! and multi-function ALUs synthesising worse than a plain `(+-)` unit
//! (the paper's observation about COMPASS in §5.2).

use mc_dfg::{FunctionSet, Op};

/// Gate equivalents of a single-function combinational unit of `width`
/// bits.
#[must_use]
pub fn op_gate_equivalents(op: Op, width: u8) -> f64 {
    let w = f64::from(width);
    match op {
        // Ripple-carry adder: ~8 gates per full-adder bit slice.
        Op::Add | Op::Sub => 8.0 * w,
        // Magnitude comparator: subtractor slice without sum outputs.
        Op::Gt | Op::Lt => 6.0 * w,
        Op::And | Op::Or => 1.5 * w,
        Op::Xor => 2.5 * w,
        // Barrel shifter: log2(w) mux stages of w bits.
        Op::Shl | Op::Shr => 3.0 * w * f64::from(width.next_power_of_two().trailing_zeros().max(1)),
        // Array multiplier: w^2 AND terms plus carry-save rows.
        Op::Mul => 6.0 * w * w,
        // Restoring array divider: w^2 controlled subtract-restore cells.
        Op::Div => 9.0 * w * w,
    }
}

/// Gate equivalents of a (possibly multi-function) ALU.
///
/// Sharing model:
/// * `{Add, Sub, Gt, Lt}` share one adder core — each additional member of
///   the group costs only an input-conditioning slice. This is why `(+-)`
///   units "reduce very well" in synthesis (paper §5.2).
/// * Logic, shift, multiply and divide functions are disjoint blocks.
/// * Every extra function beyond the first adds result-mux/decode
///   overhead, and ALUs mixing beyond the adder group carry a synthesis
///   penalty (COMPASS "does not reduce logic as well for most
///   multifunction ALUs").
#[must_use]
pub fn alu_gate_equivalents(fs: FunctionSet, width: u8) -> f64 {
    let w = f64::from(width);
    let arith = fs.intersection(FunctionSet::from_ops([Op::Add, Op::Sub, Op::Gt, Op::Lt]));
    let mut ge = 0.0;
    if !arith.is_empty() {
        // One shared core at the cost of the widest member, plus a thin
        // conditioning slice per extra shared function.
        let core = arith
            .iter()
            .map(|op| op_gate_equivalents(op, width))
            .fold(0.0, f64::max);
        ge += core + 1.2 * w * (arith.len() as f64 - 1.0);
    }
    for op in fs.iter() {
        if !arith.contains(op) {
            ge += op_gate_equivalents(op, width);
        }
    }
    let nf = fs.len() as f64;
    if fs.len() > 1 {
        // Result mux + function decode.
        ge += 1.5 * w * (nf - 1.0);
        // Synthesis penalty for heterogeneous multi-function ALUs; pure
        // adder-group combinations ((+-), (+<), …) are exempt.
        let adder_group = FunctionSet::from_ops([Op::Add, Op::Sub, Op::Gt, Op::Lt]);
        if !fs.is_subset(adder_group) {
            ge *= 1.08_f64.powf(nf - 1.0);
        }
    }
    ge
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_dominates_adder() {
        let mul = op_gate_equivalents(Op::Mul, 4);
        let add = op_gate_equivalents(Op::Add, 4);
        assert!(mul > 2.0 * add, "mul {mul} vs add {add}");
    }

    #[test]
    fn divider_exceeds_multiplier() {
        assert!(op_gate_equivalents(Op::Div, 4) > op_gate_equivalents(Op::Mul, 4));
    }

    #[test]
    fn expensive_ops_scale_quadratically() {
        let m4 = op_gate_equivalents(Op::Mul, 4);
        let m8 = op_gate_equivalents(Op::Mul, 8);
        assert!((m8 / m4 - 4.0).abs() < 1e-9);
        let a4 = op_gate_equivalents(Op::Add, 4);
        let a8 = op_gate_equivalents(Op::Add, 8);
        assert!((a8 / a4 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn add_sub_alu_is_barely_bigger_than_adder() {
        let add = alu_gate_equivalents(FunctionSet::single(Op::Add), 4);
        let addsub = alu_gate_equivalents(FunctionSet::from_ops([Op::Add, Op::Sub]), 4);
        assert!(addsub < 1.5 * add, "(+-) must share the adder core");
        assert!(addsub > add, "extra function is not free");
    }

    #[test]
    fn heterogeneous_alu_pays_penalty() {
        // (*+) must cost more than * and + cores plus plain mux overhead.
        let w = 4u8;
        let mul = op_gate_equivalents(Op::Mul, w);
        let add = op_gate_equivalents(Op::Add, w);
        let combo = alu_gate_equivalents(FunctionSet::from_ops([Op::Mul, Op::Add]), w);
        assert!(combo > mul + add, "combo {combo} vs parts {}", mul + add);
    }

    #[test]
    fn empty_function_set_is_zero() {
        assert_eq!(alu_gate_equivalents(FunctionSet::new(), 4), 0.0);
    }

    #[test]
    fn single_function_alu_matches_op_cost() {
        for op in mc_dfg::ALL_OPS {
            let a = alu_gate_equivalents(FunctionSet::single(op), 4);
            let b = op_gate_equivalents(op, 4);
            assert!((a - b).abs() < 1e-9, "{op}");
        }
    }

    #[test]
    fn monotone_in_function_count() {
        let small = alu_gate_equivalents(FunctionSet::from_ops([Op::Add]), 4);
        let mid = alu_gate_equivalents(FunctionSet::from_ops([Op::Add, Op::And]), 4);
        let big = alu_gate_equivalents(FunctionSet::from_ops([Op::Add, Op::And, Op::Or]), 4);
        assert!(small < mid && mid < big);
    }
}
