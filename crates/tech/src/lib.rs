//! Calibrated technology library for power/area estimation, standing in
//! for the paper's 0.8 µm CMOS "VSC450 Portable Library" \[18\].
//!
//! The paper estimates power by counting transitions per circuit node and
//! applying `P = f·C_L·V²` with `V = 4.65 V`; area is layout area in λ².
//! This crate provides the `C_L` and λ² figures: cell capacitances and
//! areas derived from a gate-equivalent structural model ([`ge`]) scaled
//! by calibrated per-gate constants ([`TechParams`]).
//!
//! **Calibration** (see `DESIGN.md` §6): absolute constants are chosen so
//! that the four benchmark datapaths land in the paper's numeric range
//! (units of mW at 20 MHz and a few Mλ²). The paper's *conclusions* depend
//! only on relative costs — latch < DFF, logic < adder < multiplier,
//! clock-edge cost per memory element — which come from cell structure,
//! not from the calibration constants.
//!
//! # Examples
//!
//! ```
//! use mc_tech::{TechLibrary, MemKind};
//! use mc_dfg::{FunctionSet, Op};
//!
//! let lib = TechLibrary::vsc450();
//! let addsub = FunctionSet::from_ops([Op::Add, Op::Sub]);
//! assert!(lib.alu_area(addsub, 4) > 0.0);
//! // A DFF costs about twice a latch in clock load — the paper's reason
//! // for preferring latches in the multi-clock scheme.
//! let latch = lib.mem_clock_cap(MemKind::Latch, 4);
//! let dff = lib.mem_clock_cap(MemKind::Dff, 4);
//! assert!(dff > 1.8 * latch);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ge;

use mc_dfg::FunctionSet;

/// The kind of memory element used for a register-file cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Level-sensitive transparent latch. Usable only when READs and
    /// WRITEs never overlap — which the multi-clock scheme guarantees.
    Latch,
    /// Edge-triggered master–slave D flip-flop (two latches): roughly
    /// twice the clock load and ~1.8× the area of a latch.
    Dff,
}

/// Raw calibration constants of the library. All capacitances in pF, all
/// areas in λ² (λ = 0.4 µm for the 0.8 µm process).
#[derive(Debug, Clone, PartialEq)]
pub struct TechParams {
    /// Area of one gate equivalent (λ²).
    pub ge_area: f64,
    /// Average switched internal capacitance per gate equivalent (pF).
    pub ge_cap: f64,
    /// Input (port) capacitance per bit of a combinational block (pF).
    pub port_cap_per_bit: f64,
    /// Base wire capacitance per bit of a net (pF).
    pub wire_cap_per_bit: f64,
    /// Extra wire capacitance per bit per fanout branch (pF).
    pub wire_cap_per_fanout: f64,
    /// Latch: area per bit (λ²).
    pub latch_area_per_bit: f64,
    /// Latch: clock-input capacitance per bit, charged once per pulse (pF).
    pub latch_clock_cap_per_bit: f64,
    /// Latch: internal storage capacitance switched per written bit flip
    /// (pF).
    pub latch_store_cap_per_bit: f64,
    /// DFF: area per bit (λ²).
    pub dff_area_per_bit: f64,
    /// DFF: clock-input capacitance per bit (master + slave) (pF).
    pub dff_clock_cap_per_bit: f64,
    /// DFF: internal storage capacitance per written bit flip (pF).
    pub dff_store_cap_per_bit: f64,
    /// Area of one 2:1 mux bit slice (λ²).
    pub mux2_area_per_bit: f64,
    /// Internal capacitance switched per toggled mux output bit, per tree
    /// level (pF).
    pub mux_cap_per_bit_level: f64,
    /// Controller: area per (state × control-bit) product term (λ²).
    pub ctrl_area_per_term: f64,
    /// Controller: capacitance switched per control-bit toggle (pF).
    pub ctrl_cap_per_toggle: f64,
    /// Controller: clock capacitance of the state register per pulse (pF).
    pub ctrl_clock_cap: f64,
    /// Layout overhead factor applied to summed cell area (routing,
    /// placement white space, power rails).
    pub layout_overhead: f64,
    /// Static (leakage) power per Mλ² of layout area (µW). Tiny for a
    /// 0.8 µm process — the paper's §1 notes dynamic switching dominates —
    /// but modelled so the area cost of extra clocks carries its honest
    /// static price.
    pub leakage_uw_per_mlambda2: f64,
    /// Supply voltage (V). The paper uses 4.65 V for all experiments.
    pub supply_voltage: f64,
    /// System clock frequency `f` (MHz) at which power is reported.
    pub clock_mhz: f64,
}

impl TechParams {
    /// The calibrated default parameter set (see crate docs).
    #[must_use]
    pub fn vsc450() -> Self {
        TechParams {
            ge_area: 1450.0,
            ge_cap: 0.020,
            port_cap_per_bit: 0.05,
            wire_cap_per_bit: 0.13,
            wire_cap_per_fanout: 0.035,
            latch_area_per_bit: 2300.0,
            latch_clock_cap_per_bit: 0.036,
            latch_store_cap_per_bit: 0.063,
            dff_area_per_bit: 4100.0,
            dff_clock_cap_per_bit: 0.08,
            dff_store_cap_per_bit: 0.126,
            mux2_area_per_bit: 700.0,
            mux_cap_per_bit_level: 0.042,
            ctrl_area_per_term: 130.0,
            ctrl_cap_per_toggle: 0.042,
            ctrl_clock_cap: 0.168,
            layout_overhead: 3.4,
            leakage_uw_per_mlambda2: 12.0,
            supply_voltage: 4.65,
            clock_mhz: 50.0,
        }
    }
}

impl Default for TechParams {
    fn default() -> Self {
        Self::vsc450()
    }
}

/// The technology library: all per-component area and capacitance queries
/// used by the simulator and the power estimator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TechLibrary {
    params: TechParams,
}

impl TechLibrary {
    /// The calibrated 0.8 µm-style default library.
    #[must_use]
    pub fn vsc450() -> Self {
        TechLibrary {
            params: TechParams::vsc450(),
        }
    }

    /// A library with explicit parameters (for sensitivity studies).
    #[must_use]
    pub fn with_params(params: TechParams) -> Self {
        TechLibrary { params }
    }

    /// The raw parameters.
    #[must_use]
    pub fn params(&self) -> &TechParams {
        &self.params
    }

    /// A copy of this library operated at a different supply voltage.
    ///
    /// Capacitances are physical and stay put; dynamic power scales as
    /// `V²` through the energy formulas, and gate delays grow as the
    /// classic alpha-power law `V / (V - V_t)²` (normalised to this
    /// library's voltage) — exposed via [`TechLibrary::delay_derating`]
    /// for the timing analyser.
    ///
    /// # Panics
    ///
    /// Panics unless `0.5 < volts` and `volts` is above the threshold
    /// margin (1.0 V).
    #[must_use]
    pub fn at_voltage(&self, volts: f64) -> Self {
        assert!(volts > 1.0, "supply must stay above the threshold margin");
        let mut params = self.params.clone();
        params.supply_voltage = volts;
        TechLibrary { params }
    }

    /// Multiplicative gate-delay factor of this library relative to the
    /// reference 4.65 V operating point: `d(V) ∝ V / (V − V_t)²` with
    /// `V_t = 0.8 V` (the 0.8 µm-era threshold).
    #[must_use]
    pub fn delay_derating(&self) -> f64 {
        const VT: f64 = 0.8;
        const VREF: f64 = 4.65;
        let d = |v: f64| v / ((v - VT) * (v - VT));
        d(self.params.supply_voltage) / d(VREF)
    }

    /// Supply voltage in volts (4.65 V in all paper experiments).
    #[must_use]
    pub fn supply_voltage(&self) -> f64 {
        self.params.supply_voltage
    }

    /// System clock frequency in MHz.
    #[must_use]
    pub fn clock_mhz(&self) -> f64 {
        self.params.clock_mhz
    }

    // ----- combinational units ------------------------------------------

    /// Cell area of an ALU implementing `fs` at `width` bits (λ², before
    /// layout overhead).
    #[must_use]
    pub fn alu_area(&self, fs: FunctionSet, width: u8) -> f64 {
        ge::alu_gate_equivalents(fs, width) * self.params.ge_area
    }

    /// Total internal capacitance of an ALU implementing `fs` (pF). The
    /// simulator scales this by the fraction of input bits that toggled:
    /// stable inputs ⇒ zero combinational power, the paper's requirement
    /// (b) in §3.2.
    #[must_use]
    pub fn alu_internal_cap(&self, fs: FunctionSet, width: u8) -> f64 {
        ge::alu_gate_equivalents(fs, width) * self.params.ge_cap
    }

    /// Input capacitance of one ALU data port bit (pF).
    #[must_use]
    pub fn alu_port_cap_per_bit(&self) -> f64 {
        self.params.port_cap_per_bit
    }

    // ----- memory elements ----------------------------------------------

    /// Cell area of a `width`-bit memory element (λ²).
    #[must_use]
    pub fn mem_area(&self, kind: MemKind, width: u8) -> f64 {
        let per_bit = match kind {
            MemKind::Latch => self.params.latch_area_per_bit,
            MemKind::Dff => self.params.dff_area_per_bit,
        };
        per_bit * f64::from(width)
    }

    /// Clock-input capacitance charged by one clock pulse into a
    /// `width`-bit memory element (pF). Gating or phase clocks save
    /// exactly these pulses.
    #[must_use]
    pub fn mem_clock_cap(&self, kind: MemKind, width: u8) -> f64 {
        let per_bit = match kind {
            MemKind::Latch => self.params.latch_clock_cap_per_bit,
            MemKind::Dff => self.params.dff_clock_cap_per_bit,
        };
        per_bit * f64::from(width)
    }

    /// Internal storage capacitance switched per written bit that flips
    /// (pF).
    #[must_use]
    pub fn mem_store_cap_per_bit(&self, kind: MemKind) -> f64 {
        match kind {
            MemKind::Latch => self.params.latch_store_cap_per_bit,
            MemKind::Dff => self.params.dff_store_cap_per_bit,
        }
    }

    /// Data-input capacitance per bit of a memory element (pF).
    #[must_use]
    pub fn mem_input_cap_per_bit(&self) -> f64 {
        self.params.port_cap_per_bit
    }

    // ----- muxes ----------------------------------------------------------

    /// Cell area of a `k`-input mux of `width` bits (λ²), built as a tree
    /// of `k-1` two-input mux slices.
    #[must_use]
    pub fn mux_area(&self, inputs: usize, width: u8) -> f64 {
        if inputs <= 1 {
            return 0.0;
        }
        (inputs as f64 - 1.0) * self.params.mux2_area_per_bit * f64::from(width)
    }

    /// Internal capacitance switched per toggled mux output bit (pF):
    /// proportional to the tree depth `ceil(log2 k)`.
    #[must_use]
    pub fn mux_internal_cap_per_bit(&self, inputs: usize) -> f64 {
        if inputs <= 1 {
            return 0.0;
        }
        let levels = (inputs as f64).log2().ceil().max(1.0);
        self.params.mux_cap_per_bit_level * levels
    }

    /// Input capacitance per bit of one mux data port (pF).
    #[must_use]
    pub fn mux_input_cap_per_bit(&self) -> f64 {
        self.params.port_cap_per_bit * 0.6
    }

    // ----- nets -----------------------------------------------------------

    /// Load capacitance of one bit of a net with `fanout` receiving ports
    /// (pF): wire plus a routing allowance per branch. Receiver input
    /// capacitance is added separately by the power model from the port
    /// queries above.
    #[must_use]
    pub fn wire_cap_per_bit(&self, fanout: usize) -> f64 {
        self.params.wire_cap_per_bit + self.params.wire_cap_per_fanout * fanout as f64
    }

    // ----- controller -----------------------------------------------------

    /// Area of a controller with `states` states driving `control_bits`
    /// control points (λ²): a one-hot state register plus a PLA-style
    /// decode plane.
    #[must_use]
    pub fn controller_area(&self, states: u32, control_bits: usize) -> f64 {
        let reg = f64::from(states) * self.params.dff_area_per_bit;
        let plane = f64::from(states) * control_bits as f64 * self.params.ctrl_area_per_term;
        reg + plane
    }

    /// Capacitance switched per control-bit toggle (pF).
    #[must_use]
    pub fn controller_cap_per_toggle(&self) -> f64 {
        self.params.ctrl_cap_per_toggle
    }

    /// Clock capacitance of the controller state register per pulse (pF).
    #[must_use]
    pub fn controller_clock_cap(&self) -> f64 {
        self.params.ctrl_clock_cap
    }

    // ----- clock generation ---------------------------------------------

    /// Area of the non-overlapping phase generator for `n` clocks (λ²): a
    /// one-hot ring counter of `n` flip-flops plus non-overlap gating and
    /// a buffer per phase line. A single-clock design needs none.
    #[must_use]
    pub fn clock_generator_area(&self, n: u32) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        f64::from(n) * (self.params.dff_area_per_bit + 3.0 * self.params.ge_area)
    }

    /// Capacitance switched by the phase generator in one system-clock
    /// period (pF): two ring-counter bits toggle per step (the moving
    /// one-hot token), plus one phase trunk pulsing. Zero for a single
    /// clock (the plain clock tree is charged at the memory elements).
    #[must_use]
    pub fn clock_generator_cap_per_step(&self, n: u32) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let counter = 2.0 * (self.params.dff_clock_cap_per_bit + self.params.dff_store_cap_per_bit);
        let trunk = self.params.wire_cap_per_bit + 0.02 * f64::from(n);
        counter + trunk
    }

    // ----- delays -----------------------------------------------------------

    /// Propagation delay of an ALU implementing `fs` at `width` bits (ns):
    /// the slowest member function plus a decode allowance for
    /// multi-function units.
    #[must_use]
    pub fn alu_delay_ns(&self, fs: FunctionSet, width: u8) -> f64 {
        let w = f64::from(width);
        let op_delay = |op: mc_dfg::Op| -> f64 {
            use mc_dfg::Op;
            match op {
                // Ripple carry: one full-adder per bit.
                Op::Add | Op::Sub => 0.25 * w + 1.0,
                Op::Gt | Op::Lt => 0.25 * w + 0.8,
                Op::And | Op::Or | Op::Xor => 0.8,
                Op::Shl | Op::Shr => {
                    0.4 * f64::from(width.next_power_of_two().trailing_zeros().max(1)) + 0.8
                }
                // Array multiplier: carry propagates along the diagonal.
                Op::Mul => 0.5 * w + 2.0,
                // Restoring divider: full ripple per row.
                Op::Div => 0.9 * w + 3.0,
            }
        };
        let worst = fs.iter().map(op_delay).fold(0.0, f64::max);
        let decode = if fs.len() > 1 { 0.3 } else { 0.0 };
        worst + decode
    }

    /// Propagation delay of a `k`-input mux (ns).
    #[must_use]
    pub fn mux_delay_ns(&self, inputs: usize) -> f64 {
        if inputs <= 1 {
            0.0
        } else {
            0.45 * (inputs as f64).log2().ceil().max(1.0)
        }
    }

    /// Clock-to-output delay of a memory element (ns).
    #[must_use]
    pub fn mem_clk_to_q_ns(&self, kind: MemKind) -> f64 {
        match kind {
            MemKind::Latch => 0.6,
            MemKind::Dff => 0.9,
        }
    }

    /// Data setup time of a memory element before the capturing edge (ns).
    #[must_use]
    pub fn mem_setup_ns(&self, _kind: MemKind) -> f64 {
        0.5
    }

    /// Interconnect delay of a net with `fanout` receivers (ns).
    #[must_use]
    pub fn wire_delay_ns(&self, fanout: usize) -> f64 {
        0.12 + 0.05 * fanout as f64
    }

    // ----- totals -----------------------------------------------------------

    /// Applies the layout overhead factor to a summed cell area (λ²).
    #[must_use]
    pub fn layout_area(&self, cell_area: f64) -> f64 {
        cell_area * self.params.layout_overhead
    }

    /// Energy (pJ) of one full swing of `cap` pF at the supply voltage:
    /// `C·V²` (charge + discharge). One *toggle* (single edge) is half of
    /// this.
    #[must_use]
    pub fn full_swing_energy(&self, cap_pf: f64) -> f64 {
        cap_pf * self.params.supply_voltage * self.params.supply_voltage
    }

    /// Energy (pJ) of a single edge on `cap` pF: `C·V²/2`.
    #[must_use]
    pub fn toggle_energy(&self, cap_pf: f64) -> f64 {
        0.5 * self.full_swing_energy(cap_pf)
    }

    /// Static (leakage) power of `area` λ² of layout (mW), scaled by the
    /// square of the supply relative to the calibration voltage.
    #[must_use]
    pub fn static_power_mw(&self, area_lambda2: f64) -> f64 {
        let vref = 4.65;
        let vscale = (self.params.supply_voltage / vref).powi(2);
        self.params.leakage_uw_per_mlambda2 * (area_lambda2 / 1e6) * vscale / 1000.0
    }

    /// Converts an average energy per control step (pJ/step) into power
    /// (mW) at the library clock frequency: each control step lasts one
    /// system clock period `1/f`.
    #[must_use]
    pub fn power_mw(&self, energy_pj_per_step: f64) -> f64 {
        // pJ/step × steps/s = pJ/s; f in MHz ⇒ pJ × 1e6 / s = µW ⇒ /1000 mW.
        energy_pj_per_step * self.params.clock_mhz / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_dfg::Op;

    #[test]
    fn dff_is_heavier_than_latch() {
        let lib = TechLibrary::vsc450();
        assert!(lib.mem_area(MemKind::Dff, 4) > 1.5 * lib.mem_area(MemKind::Latch, 4));
        assert!(lib.mem_clock_cap(MemKind::Dff, 4) > 1.8 * lib.mem_clock_cap(MemKind::Latch, 4));
        assert!(
            lib.mem_store_cap_per_bit(MemKind::Dff) > lib.mem_store_cap_per_bit(MemKind::Latch)
        );
    }

    #[test]
    fn mux_area_grows_with_inputs_and_width() {
        let lib = TechLibrary::vsc450();
        assert_eq!(lib.mux_area(1, 4), 0.0);
        assert!(lib.mux_area(2, 4) > 0.0);
        assert!(lib.mux_area(4, 4) > lib.mux_area(2, 4));
        assert!(lib.mux_area(2, 8) > lib.mux_area(2, 4));
    }

    #[test]
    fn mux_internal_cap_tracks_tree_depth() {
        let lib = TechLibrary::vsc450();
        assert_eq!(lib.mux_internal_cap_per_bit(1), 0.0);
        let c2 = lib.mux_internal_cap_per_bit(2);
        let c8 = lib.mux_internal_cap_per_bit(8);
        assert!((c8 / c2 - 3.0).abs() < 1e-9, "log2(8)=3 levels");
    }

    #[test]
    fn wire_cap_increases_with_fanout() {
        let lib = TechLibrary::vsc450();
        assert!(lib.wire_cap_per_bit(3) > lib.wire_cap_per_bit(1));
    }

    #[test]
    fn energy_identities() {
        let lib = TechLibrary::vsc450();
        let c = 0.5;
        assert!((lib.full_swing_energy(c) - 2.0 * lib.toggle_energy(c)).abs() < 1e-12);
        // C·V² with V = 4.65: 0.5 pF ⇒ 10.81 pJ.
        assert!((lib.full_swing_energy(c) - 0.5 * 4.65 * 4.65).abs() < 1e-9);
    }

    #[test]
    fn power_conversion_is_linear_in_frequency() {
        let mut p = TechParams::vsc450();
        p.clock_mhz = 10.0;
        let lib10 = TechLibrary::with_params(p.clone());
        p.clock_mhz = 20.0;
        let lib20 = TechLibrary::with_params(p);
        assert!((lib20.power_mw(100.0) - 2.0 * lib10.power_mw(100.0)).abs() < 1e-12);
        // 100 pJ/step at 20 MHz = 100 pJ × 2e7 /s = 2 mW.
        assert!((lib20.power_mw(100.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn controller_area_scales_with_states_and_bits() {
        let lib = TechLibrary::vsc450();
        assert!(lib.controller_area(8, 20) > lib.controller_area(4, 20));
        assert!(lib.controller_area(4, 40) > lib.controller_area(4, 20));
    }

    #[test]
    fn alu_area_ranking_matches_structure() {
        let lib = TechLibrary::vsc450();
        let add = lib.alu_area(FunctionSet::single(Op::Add), 4);
        let mul = lib.alu_area(FunctionSet::single(Op::Mul), 4);
        let div = lib.alu_area(FunctionSet::single(Op::Div), 4);
        assert!(add < mul && mul < div);
    }

    #[test]
    fn layout_overhead_is_multiplicative() {
        let lib = TechLibrary::vsc450();
        let factor = lib.params().layout_overhead;
        assert!((lib.layout_area(1000.0) - 1000.0 * factor).abs() < 1e-9);
        assert!(factor > 1.0, "layout overhead must inflate cell area");
    }

    #[test]
    fn default_matches_vsc450() {
        assert_eq!(TechLibrary::default(), TechLibrary::vsc450());
    }

    #[test]
    fn voltage_scaling_scales_energy_quadratically() {
        let lib5 = TechLibrary::vsc450().at_voltage(5.0);
        let lib33 = TechLibrary::vsc450().at_voltage(3.3);
        let ratio = lib33.full_swing_energy(1.0) / lib5.full_swing_energy(1.0);
        assert!((ratio - (3.3f64 / 5.0).powi(2)).abs() < 1e-12);
        // The paper's reference [2]: 3.3 V vs 5 V saves ~56 % dynamic power.
        assert!((1.0 - ratio - 0.5644).abs() < 0.01);
    }

    #[test]
    fn lower_voltage_means_slower_gates() {
        let nominal = TechLibrary::vsc450();
        assert!((nominal.delay_derating() - 1.0).abs() < 1e-12);
        let low = nominal.at_voltage(3.3);
        assert!(low.delay_derating() > 1.2, "{}", low.delay_derating());
        let high = nominal.at_voltage(5.0);
        assert!(high.delay_derating() < 1.0);
    }

    #[test]
    #[should_panic(expected = "threshold margin")]
    fn sub_threshold_voltage_panics() {
        let _ = TechLibrary::vsc450().at_voltage(0.9);
    }

    #[test]
    fn clock_generator_costs_nothing_for_single_clock() {
        let lib = TechLibrary::vsc450();
        assert_eq!(lib.clock_generator_area(1), 0.0);
        assert_eq!(lib.clock_generator_cap_per_step(1), 0.0);
        assert!(lib.clock_generator_area(3) > lib.clock_generator_area(2));
        assert!(lib.clock_generator_cap_per_step(4) > lib.clock_generator_cap_per_step(2));
    }

    #[test]
    fn delay_ranking_matches_structure() {
        let lib = TechLibrary::vsc450();
        let d = |op| lib.alu_delay_ns(FunctionSet::single(op), 4);
        assert!(d(Op::And) < d(Op::Add));
        assert!(d(Op::Add) < d(Op::Mul));
        assert!(d(Op::Mul) < d(Op::Div));
        // Multi-function decode costs a little extra.
        let addsub = lib.alu_delay_ns(FunctionSet::from_ops([Op::Add, Op::Sub]), 4);
        assert!(addsub > d(Op::Add));
    }

    #[test]
    fn delays_grow_with_width() {
        let lib = TechLibrary::vsc450();
        let fs = FunctionSet::single(Op::Mul);
        assert!(lib.alu_delay_ns(fs, 16) > lib.alu_delay_ns(fs, 4));
    }

    #[test]
    fn mux_delay_tracks_depth() {
        let lib = TechLibrary::vsc450();
        assert_eq!(lib.mux_delay_ns(1), 0.0);
        assert!(lib.mux_delay_ns(8) > lib.mux_delay_ns(2));
    }

    #[test]
    fn mem_timing_constants() {
        let lib = TechLibrary::vsc450();
        assert!(lib.mem_clk_to_q_ns(MemKind::Dff) > lib.mem_clk_to_q_ns(MemKind::Latch));
        assert!(lib.mem_setup_ns(MemKind::Latch) > 0.0);
        assert!(lib.wire_delay_ns(4) > lib.wire_delay_ns(0));
    }
}
