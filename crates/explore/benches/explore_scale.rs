//! Explorer-at-scale benchmark: stream a 10⁵+-point configuration
//! lattice (the `--scale` preset) through the incremental engine on one
//! paper benchmark, cold and warm, and emit `BENCH_explore_scale.json`.
//!
//! Three things are asserted before any number is written:
//!
//! * the frontier of the cold pass contains the paper's best multi-clock
//!   row — scale does not lose the paper's own result;
//! * the warm pass (same persistent cache directory) performs **zero**
//!   flow evaluations and emits byte-identical deterministic JSON;
//! * an interrupted run resumed from its checkpoint is byte-identical to
//!   the straight-through cold pass.
//!
//! Run with `cargo bench -p mc-explore --bench explore_scale`. The JSON
//! lands at `$MC_EXPLORE_SCALE_OUT` (default `BENCH_explore_scale.json`
//! in the working directory). `MC_BENCH_ITERS` scales both the point
//! budget (12 000 × iters) and the simulation depth (3 × iters), so the
//! CI smoke run (`MC_BENCH_ITERS=2`) stays quick while the default run
//! covers the full ≥10⁵-point lattice.

use std::io::Write as _;
use std::time::Instant;

use mc_bench::harness::{iterations, JsonObj};
use mc_core::{experiment, DesignStyle};
use mc_dfg::benchmarks;
use mc_explore::{ExploreSpace, Explorer, SchedulerChoice};

fn main() {
    let iters = iterations();
    let computations = iters * 3;
    let budget = iters * 12_000;
    let bm = benchmarks::facet();

    let scratch = std::env::temp_dir().join(format!("mcpm-explore-scale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let cache_dir = scratch.join("cache");
    let ckpt = scratch.join("scale.ckpt");

    let lattice = ExploreSpace::scale().generator();
    assert!(
        lattice.len() >= 100_000,
        "scale lattice must span >=100k points, got {}",
        lattice.len()
    );
    let take = budget.min(lattice.len());

    let base = || {
        Explorer::new()
            .with_space(ExploreSpace::scale())
            .with_computations(computations)
            .with_budget(budget)
            .with_cache_dir(&cache_dir)
    };

    // Cold: every point pays dedup/memo/flow in earnest; the disk cache
    // starts empty.
    let t = Instant::now();
    let cold = base().run(&bm).expect("cold scale run");
    let cold_wall = t.elapsed();
    assert_eq!(cold.evaluated, take);
    assert!(cold.flow_evals > 0, "cold run must do real work");

    // The exploration generalises the paper's table — it must not lose
    // the table's own best multi-clock configuration.
    let table = experiment::paper_table(&bm, computations, 42).expect("paper table");
    let best = table
        .rows
        .iter()
        .filter(|r| matches!(r.style, DesignStyle::MultiClock(n) if n >= 2))
        .min_by(|a, b| a.report.power.total_mw.total_cmp(&b.report.power.total_mw))
        .expect("paper table has multi-clock rows")
        .style;
    assert!(
        cold.frontier()
            .into_iter()
            .any(|r| r.point.style == best && r.point.scheduler == SchedulerChoice::Reference),
        "paper-best {} missing from the scale frontier",
        best.label()
    );

    // Warm: identical run against the populated cache — zero flow
    // evaluations, byte-identical report.
    let t = Instant::now();
    let warm = base().run(&bm).expect("warm scale run");
    let warm_wall = t.elapsed();
    assert_eq!(warm.flow_evals, 0, "warm run must re-evaluate nothing");
    assert_eq!(
        warm.disk_hits + warm.dedup_served,
        warm.evaluated as u64,
        "every warm point must come from disk or dedup"
    );
    assert_eq!(
        cold.to_json(),
        warm.to_json(),
        "warm report must be byte-identical"
    );

    // Interrupt/resume smoke: stop halfway, resume to the full budget,
    // byte-compare against the straight-through run.
    let half = (take / 2).max(5);
    base()
        .with_budget(half)
        .with_checkpoint(&ckpt)
        .run(&bm)
        .expect("interrupted run");
    let t = Instant::now();
    let resumed = base()
        .with_checkpoint(&ckpt)
        .with_resume(true)
        .run(&bm)
        .expect("resumed run");
    let resume_wall = t.elapsed();
    assert_eq!(
        cold.to_json(),
        resumed.to_json(),
        "resumed report must match the straight-through run"
    );

    let _ = std::fs::remove_dir_all(&scratch);

    let per_min = |points: usize, wall: std::time::Duration| {
        points as f64 / (wall.as_secs_f64() / 60.0).max(1e-9)
    };
    let cold_ppm = per_min(cold.evaluated, cold_wall);
    let warm_ppm = per_min(warm.evaluated, warm_wall);
    let speedup = cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-9);
    println!(
        "explore_scale: {} points  cold {:.2?} ({:.0} pts/min)  warm {:.2?} ({:.0} pts/min, \
         {speedup:.1}x)  resume {:.2?}  frontier {}  dedup {}  flow evals {}",
        cold.evaluated,
        cold_wall,
        cold_ppm,
        warm_wall,
        warm_ppm,
        resume_wall,
        cold.results.len(),
        cold.dedup_served,
        cold.flow_evals
    );

    let json = JsonObj::new()
        .str("bench", "explore_scale")
        .str("benchmark", "facet")
        .num("iterations", iters)
        .num("computations", computations)
        .num("lattice_points", lattice.len())
        .num("evaluated", cold.evaluated)
        .num("frontier", cold.results.len())
        .num("dedup_served", cold.dedup_served)
        .num("flow_evals_cold", cold.flow_evals)
        .num("flow_evals_warm", warm.flow_evals)
        .num("cold_ms", cold_wall.as_secs_f64() * 1e3)
        .num("warm_ms", warm_wall.as_secs_f64() * 1e3)
        .num("resume_ms", resume_wall.as_secs_f64() * 1e3)
        .num("points_per_min_cold", cold_ppm)
        .num("points_per_min_warm", warm_ppm)
        .num("cold_over_warm_speedup", speedup)
        .bool("warm_bytes_identical", true)
        .bool("resume_bytes_identical", true)
        .finish();
    let out_path = std::env::var("MC_EXPLORE_SCALE_OUT")
        .unwrap_or_else(|_| "BENCH_explore_scale.json".to_string());
    let mut file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    file.write_all(json.as_bytes()).expect("write bench json");
    file.write_all(b"\n").expect("write bench json");
    println!("wrote {out_path}");
}
