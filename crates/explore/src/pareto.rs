//! Multi-objective dominance and Pareto-frontier extraction.
//!
//! All three objectives are minimised. A point *dominates* another when
//! it is no worse in every objective and strictly better in at least one;
//! the frontier is the set of non-dominated points. Ties (bit-identical
//! objective vectors) are all kept — pruning one of two equal points
//! would make the frontier depend on enumeration order.

/// The minimised objective vector of one evaluated design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Average power (mW).
    pub power_mw: f64,
    /// Layout area (λ²).
    pub area_lambda2: f64,
    /// Latency of one computation (ns): schedule length × the effective
    /// system-clock period (the target period, or the critical path when
    /// timing is violated).
    pub latency_ns: f64,
}

impl Objectives {
    /// Whether `self` Pareto-dominates `other` (minimisation).
    #[must_use]
    pub fn dominates(&self, other: &Objectives) -> bool {
        let no_worse = self.power_mw <= other.power_mw
            && self.area_lambda2 <= other.area_lambda2
            && self.latency_ns <= other.latency_ns;
        let better = self.power_mw < other.power_mw
            || self.area_lambda2 < other.area_lambda2
            || self.latency_ns < other.latency_ns;
        no_worse && better
    }
}

/// Marks the Pareto-optimal points of `objectives`: `mask[i]` is `true`
/// iff no other point dominates point `i`. O(n²), which is ample for
/// configuration lattices of tens to hundreds of points.
#[must_use]
pub fn pareto_mask(objectives: &[Objectives]) -> Vec<bool> {
    objectives
        .iter()
        .map(|a| !objectives.iter().any(|b| b.dominates(a)))
        .collect()
}

/// A streaming Pareto frontier: points are offered one at a time and the
/// frontier is maintained *on arrival*, so memory stays bounded by the
/// frontier itself rather than by the number of points seen. The final
/// set equals `pareto_mask` run over the whole stream (dominance is
/// transitive, so any point evicted early would also have been evicted at
/// the end), and ties are preserved with the same order-independence
/// contract: a bit-identical objective vector is never treated as
/// dominating its twin.
///
/// Entries keep arrival order, which makes the frontier deterministic for
/// a deterministic stream — the explorer feeds points in lattice-index
/// order regardless of how many threads evaluated them.
#[derive(Debug, Clone)]
pub struct StreamingFrontier<T> {
    entries: Vec<(Objectives, T)>,
    dominated: u64,
}

impl<T> Default for StreamingFrontier<T> {
    fn default() -> Self {
        StreamingFrontier::new()
    }
}

impl<T> StreamingFrontier<T> {
    /// An empty frontier.
    #[must_use]
    pub fn new() -> StreamingFrontier<T> {
        StreamingFrontier {
            entries: Vec::new(),
            dominated: 0,
        }
    }

    /// Offers one point to the frontier. Returns the points *leaving* the
    /// frontier because of this offer: the candidate itself when an
    /// incumbent dominates it, or every incumbent the accepted candidate
    /// dominates (arrival order preserved among them). The caller can
    /// stream the leavers to a spill file or drop them; either way they
    /// are counted in [`Self::dominated`].
    pub fn offer(&mut self, objectives: Objectives, payload: T) -> Vec<(Objectives, T)> {
        if self.entries.iter().any(|(o, _)| o.dominates(&objectives)) {
            self.dominated += 1;
            return vec![(objectives, payload)];
        }
        let mut evicted = Vec::new();
        let mut keep = Vec::with_capacity(self.entries.len() + 1);
        for entry in self.entries.drain(..) {
            if objectives.dominates(&entry.0) {
                evicted.push(entry);
            } else {
                keep.push(entry);
            }
        }
        keep.push((objectives, payload));
        self.entries = keep;
        self.dominated += evicted.len() as u64;
        evicted
    }

    /// Counts a point that never reached `offer` (e.g. served dominated
    /// from a checkpoint's counters) so totals stay honest across resume.
    pub fn add_dominated(&mut self, n: u64) {
        self.dominated += n;
    }

    /// Number of points currently on the frontier.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the frontier is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Points dominated (rejected or evicted) so far.
    #[must_use]
    pub fn dominated(&self) -> u64 {
        self.dominated
    }

    /// The current frontier in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &(Objectives, T)> {
        self.entries.iter()
    }

    /// Consumes the frontier, yielding its entries in arrival order.
    #[must_use]
    pub fn into_entries(self) -> Vec<(Objectives, T)> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(p: f64, a: f64, l: f64) -> Objectives {
        Objectives {
            power_mw: p,
            area_lambda2: a,
            latency_ns: l,
        }
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        assert!(o(1.0, 1.0, 1.0).dominates(&o(2.0, 1.0, 1.0)));
        assert!(o(1.0, 1.0, 1.0).dominates(&o(2.0, 2.0, 2.0)));
        assert!(!o(1.0, 1.0, 1.0).dominates(&o(1.0, 1.0, 1.0)), "ties");
        assert!(!o(1.0, 2.0, 1.0).dominates(&o(2.0, 1.0, 1.0)), "trade-off");
        assert!(!o(2.0, 1.0, 1.0).dominates(&o(1.0, 2.0, 1.0)));
    }

    #[test]
    fn frontier_of_a_staircase_is_the_staircase() {
        // Power/area trade-off staircase plus two dominated points.
        let objs = [
            o(1.0, 9.0, 5.0),
            o(2.0, 7.0, 5.0),
            o(4.0, 4.0, 5.0),
            o(4.5, 4.5, 5.0), // dominated by the previous point
            o(9.0, 1.0, 5.0),
            o(9.0, 9.0, 9.0), // dominated by everything
        ];
        assert_eq!(pareto_mask(&objs), [true, true, true, false, true, false]);
    }

    #[test]
    fn identical_points_are_both_kept() {
        let objs = [o(1.0, 1.0, 1.0), o(1.0, 1.0, 1.0), o(2.0, 2.0, 2.0)];
        assert_eq!(pareto_mask(&objs), [true, true, false]);
    }

    #[test]
    fn mask_is_permutation_invariant() {
        let objs = [o(3.0, 1.0, 2.0), o(1.0, 3.0, 2.0), o(2.0, 2.0, 3.0)];
        let mut rev = objs;
        rev.reverse();
        let mask = pareto_mask(&objs);
        let mut mask_rev = pareto_mask(&rev);
        mask_rev.reverse();
        assert_eq!(mask, mask_rev);
    }

    #[test]
    fn empty_and_singleton_frontiers() {
        assert!(pareto_mask(&[]).is_empty());
        assert_eq!(pareto_mask(&[o(5.0, 5.0, 5.0)]), [true]);
    }

    #[test]
    fn third_objective_rescues_otherwise_dominated_points() {
        // Worse power and area, but strictly better latency: kept.
        let objs = [o(1.0, 1.0, 9.0), o(5.0, 5.0, 1.0)];
        assert_eq!(pareto_mask(&objs), [true, true]);
    }

    /// Streams `objs` through a frontier and returns the surviving
    /// original indexes plus the dominated count.
    fn stream(objs: &[Objectives]) -> (Vec<usize>, u64) {
        let mut f = StreamingFrontier::new();
        for (i, &obj) in objs.iter().enumerate() {
            let _ = f.offer(obj, i);
        }
        let dominated = f.dominated();
        let mut idx: Vec<usize> = f.into_entries().into_iter().map(|(_, i)| i).collect();
        idx.sort_unstable();
        (idx, dominated)
    }

    #[test]
    fn streaming_frontier_matches_batch_pareto_mask() {
        let cases: Vec<Vec<Objectives>> = vec![
            vec![],
            vec![o(5.0, 5.0, 5.0)],
            vec![
                o(1.0, 9.0, 5.0),
                o(2.0, 7.0, 5.0),
                o(4.0, 4.0, 5.0),
                o(4.5, 4.5, 5.0),
                o(9.0, 1.0, 5.0),
                o(9.0, 9.0, 9.0),
            ],
            vec![o(1.0, 1.0, 1.0), o(1.0, 1.0, 1.0), o(2.0, 2.0, 2.0)],
            vec![o(1.0, 1.0, 9.0), o(5.0, 5.0, 1.0)],
            // Late arrival that sweeps out several incumbents at once.
            vec![
                o(5.0, 5.0, 5.0),
                o(4.0, 6.0, 5.0),
                o(6.0, 4.0, 5.0),
                o(1.0, 1.0, 1.0),
            ],
        ];
        for objs in &cases {
            let mask = pareto_mask(objs);
            let expected: Vec<usize> = (0..objs.len()).filter(|&i| mask[i]).collect();
            let (got, dominated) = stream(objs);
            assert_eq!(got, expected, "stream vs batch on {objs:?}");
            assert_eq!(dominated, (objs.len() - expected.len()) as u64);
        }
    }

    #[test]
    fn streaming_frontier_matches_batch_on_a_pseudorandom_stream() {
        // A fixed LCG keeps the case deterministic without any clock
        // access; 200 points exercise every evict/reject path.
        let mut state: u64 = 0x2545_f491_4f6c_dd1d;
        let mut objs = Vec::new();
        for _ in 0..200 {
            let mut next = || {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                f64::from(u32::try_from(state >> 36).unwrap() % 16)
            };
            objs.push(o(next(), next(), next()));
        }
        let mask = pareto_mask(&objs);
        let expected: Vec<usize> = (0..objs.len()).filter(|&i| mask[i]).collect();
        let (got, dominated) = stream(&objs);
        assert_eq!(got, expected);
        assert_eq!(dominated, (objs.len() - expected.len()) as u64);
    }

    #[test]
    fn offer_reports_the_leavers() {
        let mut f = StreamingFrontier::new();
        assert!(f.offer(o(4.0, 6.0, 5.0), "a").is_empty());
        assert!(f.offer(o(6.0, 4.0, 5.0), "b").is_empty());
        // A dominated candidate comes straight back.
        let out = f.offer(o(9.0, 9.0, 9.0), "c");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, "c");
        // A sweeping candidate evicts both incumbents, arrival order kept.
        let out = f.offer(o(1.0, 1.0, 1.0), "d");
        assert_eq!(out.iter().map(|(_, p)| *p).collect::<Vec<_>>(), ["a", "b"]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.dominated(), 3);
        // Ties with the survivor are kept, not rejected.
        assert!(f.offer(o(1.0, 1.0, 1.0), "e").is_empty());
        assert_eq!(f.len(), 2);
    }
}
