//! Multi-objective dominance and Pareto-frontier extraction.
//!
//! All three objectives are minimised. A point *dominates* another when
//! it is no worse in every objective and strictly better in at least one;
//! the frontier is the set of non-dominated points. Ties (bit-identical
//! objective vectors) are all kept — pruning one of two equal points
//! would make the frontier depend on enumeration order.

/// The minimised objective vector of one evaluated design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Average power (mW).
    pub power_mw: f64,
    /// Layout area (λ²).
    pub area_lambda2: f64,
    /// Latency of one computation (ns): schedule length × the effective
    /// system-clock period (the target period, or the critical path when
    /// timing is violated).
    pub latency_ns: f64,
}

impl Objectives {
    /// Whether `self` Pareto-dominates `other` (minimisation).
    #[must_use]
    pub fn dominates(&self, other: &Objectives) -> bool {
        let no_worse = self.power_mw <= other.power_mw
            && self.area_lambda2 <= other.area_lambda2
            && self.latency_ns <= other.latency_ns;
        let better = self.power_mw < other.power_mw
            || self.area_lambda2 < other.area_lambda2
            || self.latency_ns < other.latency_ns;
        no_worse && better
    }
}

/// Marks the Pareto-optimal points of `objectives`: `mask[i]` is `true`
/// iff no other point dominates point `i`. O(n²), which is ample for
/// configuration lattices of tens to hundreds of points.
#[must_use]
pub fn pareto_mask(objectives: &[Objectives]) -> Vec<bool> {
    objectives
        .iter()
        .map(|a| !objectives.iter().any(|b| b.dominates(a)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(p: f64, a: f64, l: f64) -> Objectives {
        Objectives {
            power_mw: p,
            area_lambda2: a,
            latency_ns: l,
        }
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        assert!(o(1.0, 1.0, 1.0).dominates(&o(2.0, 1.0, 1.0)));
        assert!(o(1.0, 1.0, 1.0).dominates(&o(2.0, 2.0, 2.0)));
        assert!(!o(1.0, 1.0, 1.0).dominates(&o(1.0, 1.0, 1.0)), "ties");
        assert!(!o(1.0, 2.0, 1.0).dominates(&o(2.0, 1.0, 1.0)), "trade-off");
        assert!(!o(2.0, 1.0, 1.0).dominates(&o(1.0, 2.0, 1.0)));
    }

    #[test]
    fn frontier_of_a_staircase_is_the_staircase() {
        // Power/area trade-off staircase plus two dominated points.
        let objs = [
            o(1.0, 9.0, 5.0),
            o(2.0, 7.0, 5.0),
            o(4.0, 4.0, 5.0),
            o(4.5, 4.5, 5.0), // dominated by the previous point
            o(9.0, 1.0, 5.0),
            o(9.0, 9.0, 9.0), // dominated by everything
        ];
        assert_eq!(pareto_mask(&objs), [true, true, true, false, true, false]);
    }

    #[test]
    fn identical_points_are_both_kept() {
        let objs = [o(1.0, 1.0, 1.0), o(1.0, 1.0, 1.0), o(2.0, 2.0, 2.0)];
        assert_eq!(pareto_mask(&objs), [true, true, false]);
    }

    #[test]
    fn mask_is_permutation_invariant() {
        let objs = [o(3.0, 1.0, 2.0), o(1.0, 3.0, 2.0), o(2.0, 2.0, 3.0)];
        let mut rev = objs;
        rev.reverse();
        let mask = pareto_mask(&objs);
        let mut mask_rev = pareto_mask(&rev);
        mask_rev.reverse();
        assert_eq!(mask, mask_rev);
    }

    #[test]
    fn empty_and_singleton_frontiers() {
        assert!(pareto_mask(&[]).is_empty());
        assert_eq!(pareto_mask(&[o(5.0, 5.0, 5.0)]), [true]);
    }

    #[test]
    fn third_objective_rescues_otherwise_dominated_points() {
        // Worse power and area, but strictly better latency: kept.
        let objs = [o(1.0, 1.0, 9.0), o(5.0, 5.0, 1.0)];
        assert_eq!(pareto_mask(&objs), [true, true]);
    }
}
