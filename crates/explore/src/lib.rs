//! Streaming multi-objective design-space exploration for the
//! multi-clock power-management scheme.
//!
//! The paper evaluates five hand-picked configurations per benchmark.
//! This crate spans the *full* configuration lattice those five are
//! drawn from — clock count × allocation strategy × memory-element kind ×
//! data-dependent gating × scheduler × equivalence-checked datapath
//! rewrite ([`mc_core::RewriteChoice`]) × supply voltage × stimulus
//! scenario — as a lazy indexable generator ([`ExploreSpace::generator`],
//! 10⁵+ points under [`ExploreSpace::scale`]), evaluates points in
//! streamed chunks through the [`mc_core::Flow`] pass pipeline, and
//! maintains the Pareto frontier over (power, area, latency) *on
//! arrival* ([`StreamingFrontier`]) in memory bounded by the frontier
//! itself.
//!
//! Four properties are guaranteed:
//!
//! * **Determinism.** Same benchmark, space, seed and computation count ⇒
//!   bit-identical frontier and JSON, whether evaluation runs
//!   sequentially or on the work-stealing pool, at any thread count,
//!   cold or warm, straight through or interrupted and resumed.
//! * **Budgets and deadlines degrade gracefully.** The lattice is
//!   enumerated best-first with the five paper-table anchor rows
//!   leading, so any budget still evaluates the paper's own
//!   configurations; a deadline stops after the chunk in flight with an
//!   honest evaluated/skipped/remaining account and (optionally) a
//!   checkpoint to resume from.
//! * **Work is never repeated.** Structurally equivalent lattice points
//!   are served by dedup, repeat points by the in-memory memo, and —
//!   with [`Explorer::with_cache_dir`] — points from any previous run by
//!   the persistent cross-run cache ([`mc_core::cache::DiskCache`]): a
//!   warm re-run performs zero flow evaluations.
//! * **The paper's result is recoverable.** The frontier of every
//!   bundled benchmark contains the paper's best multi-clock row — the
//!   exploration generalises the tables, it does not contradict them.
//!
//! # Examples
//!
//! ```
//! use mc_explore::Explorer;
//! use mc_dfg::benchmarks;
//!
//! # fn main() -> Result<(), mc_explore::ExploreError> {
//! let report = Explorer::new()
//!     .with_computations(24)
//!     .with_budget(6)
//!     .run(&benchmarks::hal())?;
//! assert!(!report.frontier().is_empty());
//! println!("{}", report.render_ranked());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod explorer;
pub mod pareto;
pub mod persist;
pub mod pool;
pub mod report;
pub mod space;

pub use explorer::{ExploreError, Explorer};
pub use mc_core::RewriteChoice;
pub use pareto::{pareto_mask, Objectives, StreamingFrontier};
pub use persist::{Checkpoint, CheckpointError, PointRecord};
pub use report::{ExploreReport, PointResult};
pub use space::{
    DesignPoint, ExploreSpace, FlowSpec, GatingVariant, LatticeGen, SchedulerChoice, NOMINAL_VOLTS,
};
