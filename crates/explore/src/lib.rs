//! Parallel multi-objective design-space exploration for the multi-clock
//! power-management scheme.
//!
//! The paper evaluates five hand-picked configurations per benchmark.
//! This crate enumerates the *full* configuration lattice those five are
//! drawn from — clock count × allocation strategy × memory-element kind ×
//! gating × scheduler × supply voltage — evaluates every point through
//! the [`mc_core::Flow`] pass pipeline (sharing its content-keyed
//! artifact cache), and extracts the Pareto frontier over (power, area,
//! latency).
//!
//! Three properties are guaranteed:
//!
//! * **Determinism.** Same benchmark, space, seed and computation count ⇒
//!   bit-identical frontier and JSON, whether evaluation runs
//!   sequentially or on the work-stealing pool, at any thread count.
//! * **Budgets degrade gracefully.** The lattice is enumerated
//!   best-first with the five paper-table anchor rows leading, so any
//!   budget still evaluates the paper's own configurations and simply
//!   stops after the cap.
//! * **The paper's result is recoverable.** The frontier of every
//!   bundled benchmark contains the paper's best multi-clock row — the
//!   exploration generalises the tables, it does not contradict them.
//!
//! # Examples
//!
//! ```
//! use mc_explore::Explorer;
//! use mc_dfg::benchmarks;
//!
//! # fn main() -> Result<(), mc_core::SynthesisError> {
//! let report = Explorer::new()
//!     .with_computations(24)
//!     .with_budget(6)
//!     .run(&benchmarks::hal())?;
//! assert!(!report.frontier().is_empty());
//! println!("{}", report.render_ranked());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod explorer;
pub mod pareto;
pub mod pool;
pub mod report;
pub mod space;

pub use explorer::Explorer;
pub use pareto::{pareto_mask, Objectives};
pub use report::{ExploreReport, PointResult};
pub use space::{DesignPoint, ExploreSpace, FlowSpec, Lattice, SchedulerChoice, NOMINAL_VOLTS};
