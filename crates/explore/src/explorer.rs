//! The exploration driver: enumerate, evaluate (optionally in parallel),
//! prune, report.

use mc_core::flow::CacheStats;
use mc_core::sim::BatchBackend;
use mc_core::{Flow, SynthesisError};
use mc_dfg::benchmarks::Benchmark;

use crate::pareto::{pareto_mask, Objectives};
use crate::pool::{default_threads, run_indexed};
use crate::report::{ExploreReport, PointResult};
use crate::space::{anchor_styles, ExploreSpace};

/// Configures and runs a design-space exploration.
///
/// Determinism contract: for a fixed (benchmark, space, seed,
/// computations), the evaluated numbers, the frontier, and
/// [`ExploreReport::to_json`] are bit-identical across runs, across
/// thread counts, and between parallel and sequential evaluation. Every
/// lattice point is evaluated by an independently seeded simulation, the
/// work-stealing pool keys results by task index, and dominance pruning
/// is order-insensitive, so scheduling can only change *when* a number is
/// computed, never *what* it is.
#[derive(Debug, Clone)]
pub struct Explorer {
    space: ExploreSpace,
    budget: Option<usize>,
    computations: usize,
    seed: u64,
    power_seeds: usize,
    batch: usize,
    backend: BatchBackend,
    threads: usize,
    parallel: bool,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            space: ExploreSpace::default(),
            budget: None,
            computations: 200,
            seed: 42,
            power_seeds: 1,
            batch: Flow::DEFAULT_BATCH,
            backend: BatchBackend::default(),
            threads: default_threads(),
            parallel: true,
        }
    }
}

impl Explorer {
    /// An explorer over the default space.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the lattice specification.
    #[must_use]
    pub fn with_space(mut self, space: ExploreSpace) -> Self {
        self.space = space;
        self
    }

    /// Caps the number of evaluated points. The cap is floored at the
    /// five paper-table anchors, which the best-first enumeration places
    /// first — a budgeted run always covers the paper's own rows and
    /// stops gracefully after the cap.
    #[must_use]
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the random computations per simulation (default 200).
    #[must_use]
    pub fn with_computations(mut self, computations: usize) -> Self {
        self.computations = computations.max(1);
        self
    }

    /// Sets the stimulus seed (default 42).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the stimulus seeds per power estimate (default 1). With more
    /// than one seed, every point is priced as a Monte-Carlo mean through
    /// the batched multi-lane kernel and the report carries per-point
    /// 95 % confidence bounds.
    #[must_use]
    pub fn with_power_seeds(mut self, power_seeds: usize) -> Self {
        self.power_seeds = power_seeds.max(1);
        self
    }

    /// Sets the lane width of the batched kernel (default
    /// [`Flow::DEFAULT_BATCH`]; throughput only, never results).
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Selects the multi-seed simulation kernel (default batched;
    /// throughput only — every backend prices points bit-identically).
    #[must_use]
    pub fn with_batch_backend(mut self, backend: BatchBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the worker count for parallel evaluation.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables the thread pool (sequential when disabled;
    /// results are identical either way).
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Explores `bm`: enumerates the lattice, evaluates up to the budget
    /// through shared-cache flows, and extracts the Pareto frontier over
    /// (power, area, latency).
    ///
    /// Latency is `steps × max(critical_path, target_period)` — a design
    /// never runs faster than the system clock it is specified against,
    /// so stretched (phase-affine) schedules pay their extra steps and a
    /// timing-violating design pays its slow critical path.
    ///
    /// # Errors
    ///
    /// Returns the first failing point's [`SynthesisError`] (in lattice
    /// order).
    pub fn run(&self, bm: &Benchmark) -> Result<ExploreReport, SynthesisError> {
        let _span = mc_trace::span("explore.run");
        let lattice = self.space.enumerate();
        let floor = anchor_styles().len();
        let take = self
            .budget
            .map_or(lattice.points.len(), |b| b.max(floor))
            .min(lattice.points.len());
        let points = &lattice.points[..take];
        let flows: Vec<Flow> = lattice
            .flows
            .iter()
            .map(|spec| {
                spec.build(bm, self.computations, self.seed)
                    .with_power_seeds(self.power_seeds)
                    .with_batch(self.batch)
                    .with_batch_backend(self.backend)
            })
            .collect();
        let threads = if self.parallel { self.threads } else { 1 };
        let evals = run_indexed(points.len(), threads, self.seed, |i| {
            let p = &points[i];
            flows[p.flow].evaluate_instrumented(p.style)
        });
        let mut results = Vec::with_capacity(points.len());
        for (p, eval) in points.iter().zip(evals) {
            let e = eval?;
            let flow = &flows[p.flow];
            let steps = flow.schedule().length();
            let target_period_ns = 1000.0 / flow.tech().clock_mhz();
            let period_ns = e.report.timing.critical_path_ns.max(target_period_ns);
            results.push(PointResult {
                point: *p,
                objectives: Objectives {
                    power_mw: e.report.power.total_mw,
                    area_lambda2: e.report.area.total_lambda2,
                    latency_ns: f64::from(steps) * period_ns,
                },
                steps,
                meets_target: e.report.timing.meets_target,
                on_frontier: false,
                power_ci: e.report.power_ci,
                metrics: e.metrics,
            });
        }
        let objectives: Vec<Objectives> = results.iter().map(|r| r.objectives).collect();
        let pareto_span = mc_trace::span("explore.pareto");
        for (r, on) in results.iter_mut().zip(pareto_mask(&objectives)) {
            r.on_frontier = on;
        }
        if mc_trace::enabled() {
            let frontier = results.iter().filter(|r| r.on_frontier).count() as u64;
            mc_trace::count("pareto.frontier", frontier);
            mc_trace::count("pareto.pruned", results.len() as u64 - frontier);
        }
        drop(pareto_span);
        let cache = flows.iter().map(Flow::cache_stats).fold(
            CacheStats {
                hits: 0,
                misses: 0,
                datapaths: 0,
                reports: 0,
            },
            |acc, s| CacheStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
                datapaths: acc.datapaths + s.datapaths,
                reports: acc.reports + s.reports,
            },
        );
        Ok(ExploreReport {
            benchmark: bm.dfg.name().to_owned(),
            seed: self.seed,
            computations: self.computations,
            lattice_points: lattice.points.len(),
            skipped: lattice.points.len() - take,
            results,
            cache,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_dfg::benchmarks;

    fn tiny() -> Explorer {
        Explorer::new().with_computations(24)
    }

    #[test]
    fn budget_floors_at_the_anchor_rows() {
        let report = tiny().with_budget(2).run(&benchmarks::hal()).unwrap();
        assert_eq!(report.results.len(), 5, "floor = 5 anchors");
        assert!(report.skipped > 0);
        let labels: Vec<String> = report.results.iter().map(|r| r.point.label()).collect();
        assert!(labels[0].contains("Non-Gated"), "{labels:?}");
        assert!(labels[4].contains("3 Clocks"), "{labels:?}");
    }

    #[test]
    fn unbudgeted_run_covers_the_whole_lattice() {
        let space = ExploreSpace {
            n_max: 2,
            voltages: vec![crate::space::NOMINAL_VOLTS],
            stretches: vec![],
        };
        let report = tiny()
            .with_space(space.clone())
            .run(&benchmarks::facet())
            .unwrap();
        assert_eq!(report.results.len(), space.enumerate().points.len());
        assert_eq!(report.skipped, 0);
        assert!(!report.frontier().is_empty());
    }

    #[test]
    fn stretched_schedules_pay_latency() {
        let report = tiny()
            .with_budget(usize::MAX)
            .run(&benchmarks::hal())
            .unwrap();
        let reference_steps = benchmarks::hal().schedule.length();
        for r in &report.results {
            match r.point.scheduler {
                crate::space::SchedulerChoice::Reference => {
                    assert_eq!(r.steps, reference_steps);
                }
                crate::space::SchedulerChoice::PhaseAffine { .. } => {
                    assert!(r.steps >= reference_steps);
                }
            }
            assert!(r.objectives.latency_ns >= f64::from(r.steps) * 20.0 - 1e-9);
        }
    }

    #[test]
    fn frontier_is_nonempty_and_nondominated() {
        let report = tiny().with_budget(12).run(&benchmarks::facet()).unwrap();
        let frontier = report.frontier();
        assert!(!frontier.is_empty());
        for a in &frontier {
            for b in &report.results {
                assert!(
                    !b.objectives.dominates(&a.objectives),
                    "{} dominates frontier point {}",
                    b.point.label(),
                    a.point.label()
                );
            }
        }
    }

    #[test]
    fn flow_groups_share_the_artifact_cache() {
        let report = tiny()
            .with_budget(usize::MAX)
            .run(&benchmarks::hal())
            .unwrap();
        // The gated conventional row reuses the non-gated allocation, so
        // at least one evaluation must have been cache-served.
        assert!(report.cache.hits > 0, "cache: {}", report.cache);
    }
}
