//! The exploration driver: stream the lattice in chunks, dedup and serve
//! from the caches, evaluate what remains (optionally in parallel),
//! maintain the Pareto frontier on arrival, checkpoint, report.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use mc_core::cache::{fnv1a, DiskCache};
use mc_core::flow::{CacheStats, PassMetrics};
use mc_core::passes::Behavior;
use mc_core::sim::BatchBackend;
use mc_core::{verify_rewrite, Flow, RewriteChoice, RewriteError, RewriteOptions, SynthesisError};
use mc_dfg::benchmarks::Benchmark;

use crate::pareto::{Objectives, StreamingFrontier};
use crate::persist::{Checkpoint, CheckpointError, PointRecord};
use crate::pool::{default_threads, run_indexed};
use crate::report::{ExploreReport, PointResult};
use crate::space::{anchor_styles, DesignPoint, ExploreSpace, SchedulerChoice};

/// Why an exploration could not complete.
#[derive(Debug)]
pub enum ExploreError {
    /// A lattice point failed to synthesise.
    Synthesis(SynthesisError),
    /// A datapath rewrite of the space failed its equivalence check (or
    /// could not be synthesised/simulated for checking). The explorer
    /// refuses to score any point of an unverified rewrite.
    Rewrite {
        /// The rewrite choice that failed verification.
        choice: RewriteChoice,
        /// The underlying verification error.
        source: RewriteError,
    },
    /// The checkpoint file could not be loaded or saved.
    Checkpoint(CheckpointError),
    /// An explorer-owned file (spill stream, cache root) failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Synthesis(e) => write!(f, "{e}"),
            ExploreError::Rewrite { choice, source } => {
                write!(f, "rewrite `{choice}` failed verification: {source}")
            }
            ExploreError::Checkpoint(e) => write!(f, "{e}"),
            ExploreError::Io { path, source } => {
                write!(f, "i/o error at {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ExploreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExploreError::Synthesis(e) => Some(e),
            ExploreError::Rewrite { source, .. } => Some(source),
            ExploreError::Checkpoint(e) => Some(e),
            ExploreError::Io { source, .. } => Some(source),
        }
    }
}

impl From<SynthesisError> for ExploreError {
    fn from(e: SynthesisError) -> Self {
        ExploreError::Synthesis(e)
    }
}

impl From<CheckpointError> for ExploreError {
    fn from(e: CheckpointError) -> Self {
        ExploreError::Checkpoint(e)
    }
}

/// Configures and runs a design-space exploration.
///
/// The engine is *streaming*: lattice points are decoded on demand from
/// the [`crate::space::LatticeGen`] index space, evaluated in fixed-size
/// chunks, and
/// folded into a [`StreamingFrontier`] as they arrive — the full point
/// list is never materialised, so a 10⁵–10⁶-point lattice runs in memory
/// bounded by the chunk size plus the frontier. Four layers keep
/// re-evaluation out of the hot path, checked in order per point:
/// structural dedup (same canonical key at a lower index), the in-memory
/// record memo, the optional persistent [`DiskCache`]
/// ([`Explorer::with_cache_dir`]), and finally a real flow evaluation.
///
/// Determinism contract: for a fixed (benchmark, space, seed,
/// computations, power seeds), the consumed counters, the frontier, and
/// [`ExploreReport::to_json`] are bit-identical across runs, across
/// thread counts, between parallel and sequential evaluation, between
/// cold and warm caches, and across an interrupt/resume boundary. Every
/// point's stimulus is independently seeded, the work-stealing pool keys
/// results by task index, chunks are merged sequentially in lattice
/// order, and cached records store objective floats as exact bit
/// patterns — so scheduling and cache warmth can only change *when* a
/// number is computed, never *what* it is.
#[derive(Debug, Clone)]
pub struct Explorer {
    space: ExploreSpace,
    budget: Option<usize>,
    computations: usize,
    seed: u64,
    power_seeds: usize,
    batch: usize,
    backend: BatchBackend,
    threads: usize,
    parallel: bool,
    chunk: usize,
    cache_dir: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    resume: bool,
    deadline: Option<Duration>,
    spill: Option<PathBuf>,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            space: ExploreSpace::default(),
            budget: None,
            computations: 200,
            seed: 42,
            power_seeds: 1,
            batch: Flow::DEFAULT_BATCH,
            backend: BatchBackend::default(),
            threads: default_threads(),
            parallel: true,
            chunk: 2048,
            cache_dir: None,
            checkpoint: None,
            checkpoint_every: 4096,
            resume: false,
            deadline: None,
            spill: None,
        }
    }
}

impl Explorer {
    /// An explorer over the default space.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the lattice specification.
    #[must_use]
    pub fn with_space(mut self, space: ExploreSpace) -> Self {
        self.space = space;
        self
    }

    /// Caps the number of consumed points. The cap is floored at the
    /// five paper-table anchors, which the best-first enumeration places
    /// first — a budgeted run always covers the paper's own rows and
    /// stops gracefully after the cap.
    #[must_use]
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the random computations per simulation (default 200).
    #[must_use]
    pub fn with_computations(mut self, computations: usize) -> Self {
        self.computations = computations.max(1);
        self
    }

    /// Sets the stimulus seed (default 42).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the stimulus seeds per power estimate (default 1). With more
    /// than one seed, every point is priced as a Monte-Carlo mean through
    /// the batched multi-lane kernel and the report carries per-point
    /// 95 % confidence bounds.
    #[must_use]
    pub fn with_power_seeds(mut self, power_seeds: usize) -> Self {
        self.power_seeds = power_seeds.max(1);
        self
    }

    /// Sets the lane width of the batched kernel (default
    /// [`Flow::DEFAULT_BATCH`]; throughput only, never results).
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Selects the multi-seed simulation kernel (default batched;
    /// throughput only — every backend prices points bit-identically).
    #[must_use]
    pub fn with_batch_backend(mut self, backend: BatchBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the worker count for parallel evaluation.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables the thread pool (sequential when disabled;
    /// results are identical either way).
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Sets the streaming chunk size (default 2048; throughput and
    /// checkpoint granularity only, never results).
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Routes per-point records through a persistent cross-run
    /// [`DiskCache`] rooted at `dir` — a warm re-run over the same
    /// configuration performs zero flow evaluations.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Writes a versioned checkpoint (frontier + cursor + counters) to
    /// `path` every [`Self::with_checkpoint_every`] consumed points and
    /// when the run stops (budget, deadline or completion).
    #[must_use]
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Sets the checkpoint cadence in consumed points (default 4096).
    #[must_use]
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every.max(1);
        self
    }

    /// Resumes from the checkpoint file (if it exists) instead of
    /// starting at lattice index 0. Requires [`Self::with_checkpoint`];
    /// a missing file is a fresh start, a checkpoint from a different
    /// configuration is a typed error.
    #[must_use]
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Stops gracefully (checkpointing if configured) once `ms`
    /// milliseconds of wall clock have elapsed, after finishing the
    /// chunk in flight. At least one chunk is always processed, so a
    /// resumed run makes progress no matter how tight the deadline.
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Duration::from_millis(ms));
        self
    }

    /// Appends dominated points, as they leave the frontier, to a spill
    /// file (`point=<index> <record>` lines) instead of discarding them.
    #[must_use]
    pub fn with_spill(mut self, path: impl Into<PathBuf>) -> Self {
        self.spill = Some(path.into());
        self
    }

    /// FNV-1a fingerprint of the benchmark's content: name, canonical
    /// DSL rendering, and the reference schedule assignment. Together
    /// with the scheduler fields of a point's canonical key this pins
    /// the exact behaviour the point evaluates (the phase-affine
    /// scheduler is a deterministic function of these inputs).
    fn content_fingerprint(bm: &Benchmark) -> u64 {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{}", bm.dfg.name());
        let _ = writeln!(s, "{}", mc_dfg::parse::to_dsl(&bm.dfg));
        for t in 1..=bm.schedule.length() {
            let _ = writeln!(s, "step{t}={:?}", bm.schedule.nodes_at_step(t));
        }
        fnv1a(s.as_bytes())
    }

    /// Fingerprint of everything that determines the result stream —
    /// the space dimensions, design content, seed and Monte-Carlo depth.
    /// Budget and deadline are excluded by design: they bound *how far*
    /// a run gets, not what any point evaluates to, so an interrupted
    /// run resumes toward the full lattice.
    fn config_fingerprint(&self, content: u64) -> u64 {
        use std::fmt::Write as _;
        let mut s = format!("mcpm-explore config v2\ncontent={content:016x}\n");
        let _ = writeln!(s, "n_max={}", self.space.n_max);
        let volts: Vec<String> = self
            .space
            .voltages
            .iter()
            .map(|v| format!("{:016x}", v.to_bits()))
            .collect();
        let _ = writeln!(s, "voltages={}", volts.join(","));
        let stretches: Vec<String> = self.space.stretches.iter().map(u32::to_string).collect();
        let _ = writeln!(s, "stretches={}", stretches.join(","));
        let gating: Vec<&str> = self.space.gating.iter().map(|g| g.label()).collect();
        let _ = writeln!(s, "gating={}", gating.join(","));
        let rewrites: Vec<&str> = self.space.rewrites.iter().map(|r| r.label()).collect();
        let _ = writeln!(s, "rewrites={}", rewrites.join(","));
        let _ = writeln!(s, "scenarios={}", self.space.scenarios);
        let _ = writeln!(s, "seed={}", self.seed);
        let _ = writeln!(s, "computations={}", self.computations);
        let _ = writeln!(s, "power_seeds={}", self.power_seeds);
        fnv1a(s.as_bytes())
    }

    /// The point's full canonical text — the structural dedup identity
    /// and the persistent cache's stored-and-verified key.
    fn point_canonical(&self, p: &DesignPoint, content: u64) -> String {
        p.canonical(content, self.computations, self.seed, self.power_seeds)
    }

    fn point_key(&self, p: &DesignPoint, content: u64) -> u64 {
        fnv1a(self.point_canonical(p, content).as_bytes())
    }

    /// Prepares the rewrite axis for one run: applies every choice of
    /// the space to the benchmark's reference behaviour once, verifies
    /// each choice that actually changed the behaviour against the
    /// original (bit-identical outputs over the Monte-Carlo seed
    /// schedule), and returns the fold table mapping each raw choice to
    /// `(dfg_changed, schedule_changed)`. A choice that leaves the DFG
    /// untouched and either keeps the schedule or runs under the
    /// phase-affine scheduler (which regenerates the schedule anyway) is
    /// *effectively* baseline; [`fold_rewrite`] canonicalises such
    /// points so structural dedup serves them from their baseline twin.
    fn verify_rewrites(
        &self,
        bm: &Benchmark,
    ) -> Result<HashMap<RewriteChoice, (bool, bool)>, ExploreError> {
        let base = Behavior::for_benchmark(bm);
        let mut info: HashMap<RewriteChoice, (bool, bool)> = HashMap::new();
        info.insert(RewriteChoice::Baseline, (false, false));
        for &choice in &self.space.rewrites {
            if info.contains_key(&choice) {
                continue;
            }
            let rewritten = choice.apply(&base);
            let dfg_changed = rewritten.dfg != base.dfg;
            let schedule_changed = rewritten.schedule != base.schedule;
            if dfg_changed || schedule_changed {
                let opts = RewriteOptions {
                    computations: self.computations,
                    seeds: mc_core::power::derive_seeds(self.seed, 3),
                };
                verify_rewrite(&base, &rewritten, &opts)
                    .map_err(|source| ExploreError::Rewrite { choice, source })?;
            }
            info.insert(choice, (dfg_changed, schedule_changed));
        }
        Ok(info)
    }

    /// Explores `bm`: streams the lattice (budget- and deadline-bounded)
    /// through dedup, memo, persistent cache and flow evaluation, and
    /// maintains the Pareto frontier over (power, area, latency) on
    /// arrival.
    ///
    /// Latency is `steps × max(critical_path, target_period)` — a design
    /// never runs faster than the system clock it is specified against,
    /// so stretched (phase-affine) schedules pay their extra steps and a
    /// timing-violating design pays its slow critical path.
    ///
    /// # Errors
    ///
    /// [`ExploreError::Synthesis`] for the first failing point (in
    /// lattice order), [`ExploreError::Checkpoint`] for corrupt or
    /// mismatched checkpoints, [`ExploreError::Io`] for spill-file
    /// or cache-root failures.
    pub fn run(&self, bm: &Benchmark) -> Result<ExploreReport, ExploreError> {
        let _span = mc_trace::span("explore.run");
        let started = Instant::now();
        let gen = self.space.generator();
        let total = gen.len();
        let floor = anchor_styles().len().min(total);
        let take = self.budget.map_or(total, |b| b.max(floor)).min(total);
        let content = Self::content_fingerprint(bm);
        let config = self.config_fingerprint(content);
        let rewrite_info = self.verify_rewrites(bm)?;
        let mut rewrites_folded = 0u64;

        let disk = match &self.cache_dir {
            Some(dir) => Some(DiskCache::open(dir).map_err(|source| ExploreError::Io {
                path: dir.clone(),
                source,
            })?),
            None => None,
        };

        // Restore (or start fresh): the frontier, the lattice cursor and
        // the structural-dedup state. The seen-set is rebuilt by scanning
        // the keys of every already-consumed index — dedup is defined
        // purely structurally ("key already seen at a lower index"), so a
        // resumed run counts exactly what the straight-through run did.
        let mut frontier: StreamingFrontier<(usize, PointResult)> = StreamingFrontier::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut dedup_served: u64 = 0;
        let mut cursor = 0usize;
        if self.resume {
            if let Some(path) = &self.checkpoint {
                if let Some(ck) = Checkpoint::load(path, config)? {
                    cursor = ck.cursor.min(total);
                    for i in 0..cursor {
                        let (p, folded) = fold_rewrite(gen.point_at(i), &rewrite_info);
                        if folded {
                            rewrites_folded += 1;
                        }
                        if !seen.insert(self.point_key(&p, content)) {
                            dedup_served += 1;
                        }
                    }
                    for (index, record) in ck.frontier {
                        let (p, _) =
                            fold_rewrite(gen.point_at(index.min(total - 1)), &rewrite_info);
                        let result = point_result(p, &record);
                        let evicted = frontier.offer(record.objectives, (index, result));
                        debug_assert!(evicted.is_empty(), "checkpoint frontier not nondominated");
                    }
                    frontier.add_dominated(cursor as u64 - frontier.len() as u64);
                }
            }
        }

        let mut memo: HashMap<u64, PointRecord> = HashMap::new();
        let mut flows: HashMap<(u64, u32, u64, u32, u64), Flow> = HashMap::new();
        let mut cache = CacheStats {
            hits: 0,
            misses: 0,
            datapaths: 0,
            reports: 0,
        };
        let mut flow_evals = 0usize;
        let mut disk_hits = 0u64;
        let mut disk_misses = 0u64;
        let mut disk_puts = 0u64;
        let mut spill_file = None;
        let mut since_checkpoint = 0usize;
        let mut chunks_this_run = 0usize;
        let threads = if self.parallel { self.threads } else { 1 };

        while cursor < take {
            let end = (cursor + self.chunk).min(take);

            // Pre-pass, sequential in lattice order: classify every index
            // as served (dedup/memo/disk) or needing a flow evaluation.
            enum Slot {
                Have(PointRecord),
                Twin(u64),
                Eval(usize),
            }
            let mut slots: Vec<(DesignPoint, u64, String, Slot)> = Vec::with_capacity(end - cursor);
            let mut evals: Vec<(DesignPoint, u64)> = Vec::new();
            let mut pending: HashSet<u64> = HashSet::new();
            for i in cursor..end {
                let (p, folded) = fold_rewrite(gen.point_at(i), &rewrite_info);
                if folded {
                    rewrites_folded += 1;
                }
                let canonical = self.point_canonical(&p, content);
                let key = fnv1a(canonical.as_bytes());
                if !seen.insert(key) {
                    dedup_served += 1;
                }
                let slot = if let Some(r) = memo.get(&key) {
                    Slot::Have(r.clone())
                } else if pending.contains(&key) {
                    Slot::Twin(key)
                } else if let Some(r) = disk
                    .as_ref()
                    .and_then(|d| d.get(&canonical))
                    .as_deref()
                    .and_then(PointRecord::from_cache_body)
                {
                    disk_hits += 1;
                    memo.insert(key, r.clone());
                    Slot::Have(r)
                } else {
                    if disk.is_some() {
                        disk_misses += 1;
                    }
                    pending.insert(key);
                    evals.push((p, key));
                    Slot::Eval(evals.len() - 1)
                };
                slots.push((p, key, canonical, slot));
            }

            // Materialise the flows the chunk's evaluations need (one per
            // scheduler × voltage × scenario group, shared artifact
            // cache within the group), then evaluate in parallel. Results
            // are keyed by task index, so scheduling never reorders them.
            for (p, _) in &evals {
                let spec = p.flow_spec();
                flows.entry(spec.key()).or_insert_with(|| {
                    spec.build(bm, self.computations, self.seed)
                        .with_power_seeds(self.power_seeds)
                        .with_batch(self.batch)
                        .with_batch_backend(self.backend)
                });
            }
            let mut records: Vec<Option<(PointRecord, Vec<PassMetrics>)>> =
                Vec::with_capacity(evals.len());
            {
                let eval_flows: Vec<&Flow> = evals
                    .iter()
                    .map(|(p, _)| &flows[&p.flow_spec().key()])
                    .collect();
                let outcomes = run_indexed(evals.len(), threads, self.seed, |j| {
                    eval_flows[j].evaluate_instrumented(evals[j].0.style)
                });
                for (j, outcome) in outcomes.into_iter().enumerate() {
                    let e = outcome?;
                    let flow = eval_flows[j];
                    let steps = flow.schedule().length();
                    let target_period_ns = 1000.0 / flow.tech().clock_mhz();
                    let period_ns = e.report.timing.critical_path_ns.max(target_period_ns);
                    let record = PointRecord {
                        objectives: Objectives {
                            power_mw: e.report.power.total_mw,
                            area_lambda2: e.report.area.total_lambda2,
                            latency_ns: f64::from(steps) * period_ns,
                        },
                        steps,
                        meets_target: e.report.timing.meets_target,
                        power_ci: e.report.power_ci,
                    };
                    records.push(Some((record, e.metrics)));
                }
            }
            flow_evals += evals.len();

            // Merge, sequential in lattice order: resolve each point's
            // record (evaluation, memo, or in-chunk twin), fill the
            // caches, and offer the point to the streaming frontier.
            for (i, (p, key, canonical, slot)) in (cursor..end).zip(slots) {
                let (record, metrics) = match slot {
                    Slot::Have(r) => (r, Vec::new()),
                    Slot::Twin(key) => (memo[&key].clone(), Vec::new()),
                    Slot::Eval(j) => {
                        let (record, metrics) =
                            records[j].take().expect("evaluation consumed twice");
                        memo.insert(key, record.clone());
                        if let Some(d) = &disk {
                            // Best-effort: a failed put only costs a
                            // recomputation next run.
                            if d.put(&canonical, &record.to_cache_body()).is_ok() {
                                disk_puts += 1;
                            }
                        }
                        (record, metrics)
                    }
                };
                let mut result = point_result(p, &record);
                result.metrics = metrics;
                for (obj, (idx, leaver)) in frontier.offer(record.objectives, (i, result)) {
                    if let Some(path) = &self.spill {
                        let file = match &mut spill_file {
                            Some(f) => f,
                            None => spill_file.insert(
                                OpenOptions::new()
                                    .create(true)
                                    .append(true)
                                    .open(path)
                                    .map_err(|source| ExploreError::Io {
                                        path: path.clone(),
                                        source,
                                    })?,
                            ),
                        };
                        let record = PointRecord {
                            objectives: obj,
                            steps: leaver.steps,
                            meets_target: leaver.meets_target,
                            power_ci: leaver.power_ci,
                        };
                        writeln!(file, "point={idx} {}", record.to_line()).map_err(|source| {
                            ExploreError::Io {
                                path: path.clone(),
                                source,
                            }
                        })?;
                    }
                }
            }
            since_checkpoint += end - cursor;
            cursor = end;
            chunks_this_run += 1;

            // Flow hygiene: artifact caches accumulate datapaths and
            // reports; fold their counters and drop them once the group
            // table grows past a bound, keeping memory flat at scale.
            if flows.len() > 32 {
                for f in flows.values() {
                    cache = add_stats(cache, f.cache_stats());
                }
                flows.clear();
            }

            if self.checkpoint.is_some() && since_checkpoint >= self.checkpoint_every {
                self.save_checkpoint(config, cursor, dedup_served, &frontier)?;
                since_checkpoint = 0;
            }
            if chunks_this_run > 0
                && self
                    .deadline
                    .is_some_and(|d| started.elapsed() >= d && cursor < take)
            {
                break;
            }
        }

        if self.checkpoint.is_some() {
            self.save_checkpoint(config, cursor, dedup_served, &frontier)?;
        }
        for f in flows.values() {
            cache = add_stats(cache, f.cache_stats());
        }
        let dominated = frontier.dominated();
        if mc_trace::enabled() {
            mc_trace::count("pareto.frontier", frontier.len() as u64);
            mc_trace::count("pareto.pruned", dominated);
            mc_trace::count("explore.dedup_served", dedup_served);
            mc_trace::count("explore.rewrites_folded", rewrites_folded);
            mc_trace::count(
                "explore.rewrites_active",
                rewrite_info.values().filter(|&&(d, s)| d || s).count() as u64,
            );
            mc_trace::count_runtime("explore.flow_evals", flow_evals as u64);
            if disk.is_some() {
                mc_trace::count_runtime("explore.cache.disk_hits", disk_hits);
                mc_trace::count_runtime("explore.cache.disk_misses", disk_misses);
                mc_trace::count_runtime("explore.cache.disk_puts", disk_puts);
            }
        }
        let results: Vec<PointResult> = frontier
            .into_entries()
            .into_iter()
            .map(|(_, (_, r))| r)
            .collect();
        Ok(ExploreReport {
            benchmark: bm.dfg.name().to_owned(),
            seed: self.seed,
            computations: self.computations,
            lattice_points: total,
            evaluated: cursor,
            skipped: total - take,
            remaining: take - cursor,
            dedup_served,
            dominated,
            flow_evals,
            disk_hits,
            disk_misses,
            disk_puts,
            results,
            cache,
        })
    }

    fn save_checkpoint(
        &self,
        config: u64,
        cursor: usize,
        dedup_served: u64,
        frontier: &StreamingFrontier<(usize, PointResult)>,
    ) -> Result<(), ExploreError> {
        let Some(path) = &self.checkpoint else {
            return Ok(());
        };
        let ck = Checkpoint {
            config,
            cursor,
            dedup_served,
            frontier: frontier
                .iter()
                .map(|(obj, (index, r))| {
                    (
                        *index,
                        PointRecord {
                            objectives: *obj,
                            steps: r.steps,
                            meets_target: r.meets_target,
                            power_ci: r.power_ci,
                        },
                    )
                })
                .collect(),
        };
        Ok(ck.save(path)?)
    }
}

/// Canonicalises a point's rewrite choice against the per-run fold
/// table: a choice that left the DFG untouched and either left the
/// schedule untouched or runs under the phase-affine scheduler (which
/// regenerates the schedule from the DFG anyway) *is* the baseline
/// point, and folding it makes the canonical texts coincide so dedup
/// and both caches serve it for free. Returns the folded point and
/// whether folding changed it.
fn fold_rewrite(
    mut p: DesignPoint,
    info: &HashMap<RewriteChoice, (bool, bool)>,
) -> (DesignPoint, bool) {
    let (dfg_changed, schedule_changed) = info[&p.rewrite];
    let schedule_matters = schedule_changed && matches!(p.scheduler, SchedulerChoice::Reference);
    if p.rewrite != RewriteChoice::Baseline && !dfg_changed && !schedule_matters {
        p.rewrite = RewriteChoice::Baseline;
        return (p, true);
    }
    (p, false)
}

/// Reconstructs the reportable result of a point from its record.
fn point_result(point: DesignPoint, record: &PointRecord) -> PointResult {
    PointResult {
        point,
        objectives: record.objectives,
        steps: record.steps,
        meets_target: record.meets_target,
        on_frontier: true,
        power_ci: record.power_ci,
        metrics: Vec::new(),
    }
}

/// Folds two flow cache-counter snapshots.
fn add_stats(a: CacheStats, b: CacheStats) -> CacheStats {
    CacheStats {
        hits: a.hits + b.hits,
        misses: a.misses + b.misses,
        datapaths: a.datapaths + b.datapaths,
        reports: a.reports + b.reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{GatingVariant, SchedulerChoice, NOMINAL_VOLTS};
    use mc_dfg::benchmarks;

    fn tiny() -> Explorer {
        Explorer::new().with_computations(24)
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mc-explorer-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn budget_floors_at_the_anchor_rows() {
        let report = tiny().with_budget(2).run(&benchmarks::hal()).unwrap();
        assert_eq!(report.evaluated, 5, "floor = 5 anchors");
        assert!(report.skipped > 0);
        assert_eq!(report.remaining, 0);
        // All five anchors were consumed; the frontier keeps the
        // nondominated subset and the counters account for the rest.
        assert_eq!(
            report.results.len() + report.dominated as usize,
            report.evaluated
        );
    }

    #[test]
    fn unbudgeted_run_covers_the_whole_lattice() {
        let space = ExploreSpace {
            n_max: 2,
            voltages: vec![NOMINAL_VOLTS],
            stretches: vec![],
            ..ExploreSpace::default()
        };
        let total = space.generator().len();
        let report = tiny().with_space(space).run(&benchmarks::facet()).unwrap();
        assert_eq!(report.evaluated, total);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.remaining, 0);
        assert!(!report.frontier().is_empty());
    }

    #[test]
    fn stretched_schedules_pay_latency() {
        let report = tiny()
            .with_budget(usize::MAX)
            .run(&benchmarks::hal())
            .unwrap();
        let reference_steps = benchmarks::hal().schedule.length();
        for r in &report.results {
            match r.point.scheduler {
                SchedulerChoice::Reference => assert_eq!(r.steps, reference_steps),
                SchedulerChoice::PhaseAffine { .. } => assert!(r.steps >= reference_steps),
            }
            assert!(r.objectives.latency_ns >= f64::from(r.steps) * 20.0 - 1e-9);
        }
    }

    #[test]
    fn frontier_is_mutually_nondominated() {
        let report = tiny().with_budget(12).run(&benchmarks::facet()).unwrap();
        let frontier = report.frontier();
        assert!(!frontier.is_empty());
        for a in &frontier {
            for b in &frontier {
                assert!(
                    !b.objectives.dominates(&a.objectives),
                    "{} dominates frontier point {}",
                    b.point.label(),
                    a.point.label()
                );
            }
        }
    }

    #[test]
    fn flow_groups_share_the_artifact_cache() {
        let report = tiny()
            .with_budget(usize::MAX)
            .run(&benchmarks::hal())
            .unwrap();
        // The gated conventional row reuses the non-gated allocation, so
        // at least one evaluation must have been cache-served.
        assert!(report.cache.hits > 0, "cache: {}", report.cache);
    }

    #[test]
    fn gating_replicas_are_served_by_structural_dedup() {
        let space = ExploreSpace {
            n_max: 1,
            voltages: vec![NOMINAL_VOLTS],
            stretches: vec![],
            gating: GatingVariant::ALL.to_vec(),
            ..ExploreSpace::default()
        };
        let report = tiny().with_space(space).run(&benchmarks::hal()).unwrap();
        // The free-running variant of the non-gated row (among others)
        // folds onto an already-seen point.
        assert!(report.dedup_served > 0, "dedup: {}", report.dedup_served);
        assert_eq!(
            report.flow_evals + report.dedup_served as usize,
            report.evaluated
        );
    }

    #[test]
    fn rewrite_axis_dedups_inert_choices_and_resumes_identically() {
        let sp = || ExploreSpace {
            n_max: 1,
            voltages: vec![NOMINAL_VOLTS],
            stretches: vec![],
            rewrites: RewriteChoice::ALL.to_vec(),
            ..ExploreSpace::default()
        };
        let bm = benchmarks::hal();
        let straight = tiny().with_space(sp()).run(&bm).unwrap();
        // Strength never fires on hal (its only constants are 3), so its
        // replica of every point folds to the baseline twin.
        assert!(straight.dedup_served > 0, "inert rewrites must fold");
        assert_eq!(
            straight.flow_evals + straight.dedup_served as usize,
            straight.evaluated
        );
        // Rewritten points on the frontier keep their choice visible.
        assert!(straight
            .results
            .iter()
            .all(|r| r.point.rewrite != RewriteChoice::Strength));
        // Interrupt/resume across the rewrite axis is bit-identical.
        let ck = temp_path("rw-ck");
        let _ = std::fs::remove_file(&ck);
        let partial = tiny()
            .with_space(sp())
            .with_budget(8)
            .with_checkpoint(&ck)
            .run(&bm)
            .unwrap();
        assert_eq!(partial.evaluated, 8);
        let resumed = tiny()
            .with_space(sp())
            .with_checkpoint(&ck)
            .with_resume(true)
            .run(&bm)
            .unwrap();
        assert_eq!(resumed.to_json(), straight.to_json());
        let _ = std::fs::remove_file(&ck);
    }

    #[test]
    fn warm_disk_cache_serves_every_point_without_flow_evals() {
        let dir = temp_path("warmdir");
        let _ = std::fs::remove_dir_all(&dir);
        let run = || {
            tiny()
                .with_budget(9)
                .with_cache_dir(&dir)
                .run(&benchmarks::facet())
                .unwrap()
        };
        let cold = run();
        assert!(cold.flow_evals > 0);
        assert!(cold.disk_puts > 0);
        let warm = run();
        assert_eq!(warm.flow_evals, 0, "warm run must not re-evaluate");
        assert_eq!(warm.disk_hits as usize + warm.dedup_served as usize, {
            warm.evaluated
        });
        // Warmth must never change results.
        assert_eq!(cold.to_json(), warm.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_runs_resume_to_the_identical_report() {
        let straight = tiny().with_budget(12).run(&benchmarks::facet()).unwrap();
        let ck = temp_path("resume-ck");
        let _ = std::fs::remove_file(&ck);
        // Interrupt: a smaller budget plays the role of a cut-off run.
        let partial = tiny()
            .with_budget(7)
            .with_checkpoint(&ck)
            .run(&benchmarks::facet())
            .unwrap();
        assert_eq!(partial.evaluated, 7);
        // Resume toward the same 12-point budget, across thread shapes.
        for threads in [1, 4] {
            let resumed = tiny()
                .with_budget(12)
                .with_checkpoint(&ck)
                .with_resume(true)
                .with_threads(threads)
                .run(&benchmarks::facet())
                .unwrap();
            assert_eq!(resumed.evaluated, 12);
            assert_eq!(
                resumed.to_json(),
                straight.to_json(),
                "resume at {threads} threads must be byte-identical"
            );
        }
        let _ = std::fs::remove_file(&ck);
    }

    #[test]
    fn resuming_a_completed_run_reevaluates_nothing() {
        let ck = temp_path("complete-ck");
        let _ = std::fs::remove_file(&ck);
        let first = tiny()
            .with_budget(8)
            .with_checkpoint(&ck)
            .run(&benchmarks::hal())
            .unwrap();
        let again = tiny()
            .with_budget(8)
            .with_checkpoint(&ck)
            .with_resume(true)
            .run(&benchmarks::hal())
            .unwrap();
        assert_eq!(again.flow_evals, 0);
        assert_eq!(again.to_json(), first.to_json());
        let _ = std::fs::remove_file(&ck);
    }

    #[test]
    fn checkpoint_from_another_config_is_a_typed_error() {
        let ck = temp_path("mismatch-ck");
        let _ = std::fs::remove_file(&ck);
        tiny()
            .with_budget(5)
            .with_checkpoint(&ck)
            .run(&benchmarks::hal())
            .unwrap();
        let err = tiny()
            .with_seed(43) // different config fingerprint
            .with_budget(5)
            .with_checkpoint(&ck)
            .with_resume(true)
            .run(&benchmarks::hal())
            .unwrap_err();
        assert!(matches!(
            err,
            ExploreError::Checkpoint(CheckpointError::ConfigMismatch { .. })
        ));
        // Corruption likewise surfaces typed, never a panic.
        std::fs::write(&ck, "definitely not a checkpoint").unwrap();
        let err = tiny()
            .with_budget(5)
            .with_checkpoint(&ck)
            .with_resume(true)
            .run(&benchmarks::hal())
            .unwrap_err();
        assert!(matches!(
            err,
            ExploreError::Checkpoint(CheckpointError::Corrupt { .. })
        ));
        let _ = std::fs::remove_file(&ck);
    }

    #[test]
    fn deadline_stops_gracefully_but_always_makes_progress() {
        // A 0 ms deadline still processes one chunk per invocation.
        let report = tiny()
            .with_budget(20)
            .with_chunk(6)
            .with_deadline_ms(0)
            .run(&benchmarks::hal())
            .unwrap();
        assert_eq!(report.evaluated, 6, "exactly the first chunk");
        assert_eq!(report.remaining, 14);
        assert!(report.lattice_points > 20);
    }

    #[test]
    fn spill_stream_accounts_for_every_dominated_point() {
        let spill = temp_path("spill");
        let _ = std::fs::remove_file(&spill);
        let report = tiny()
            .with_budget(12)
            .with_spill(&spill)
            .run(&benchmarks::hal())
            .unwrap();
        let lines = std::fs::read_to_string(&spill).unwrap();
        let spilled = lines.lines().count() as u64;
        assert_eq!(spilled, report.dominated);
        for line in lines.lines() {
            let rest = line.strip_prefix("point=").unwrap();
            let (_, record) = rest.split_once(' ').unwrap();
            assert!(PointRecord::from_line(record).is_some(), "bad line {line}");
        }
        let _ = std::fs::remove_file(&spill);
    }

    #[test]
    fn chunk_size_never_changes_results() {
        let base = tiny().with_budget(14).run(&benchmarks::facet()).unwrap();
        for chunk in [1, 3, 1024] {
            let other = tiny()
                .with_budget(14)
                .with_chunk(chunk)
                .run(&benchmarks::facet())
                .unwrap();
            assert_eq!(other.to_json(), base.to_json(), "chunk={chunk}");
        }
    }
}
