//! The explorer's typed result: every evaluated point with its objective
//! vector, the Pareto frontier, and renderers for terminal tables and
//! JSON.
//!
//! JSON emission follows the bench-harness conventions
//! ([`mc_bench::harness::JsonObj`]): hand-rolled, dependency-free, with
//! `f64` rendered through `Display` (shortest round-trip, deterministic
//! across platforms and runs). [`ExploreReport::to_json`] deliberately
//! excludes wall-clock durations and cache counters — both vary run to
//! run under parallel evaluation — so same-seed runs emit bit-identical
//! documents; [`ExploreReport::to_json_with_timings`] adds them back for
//! human inspection and bench artifacts.

use std::fmt::Write as _;
use std::time::Duration;

use mc_bench::harness::{json_array, JsonObj};
use mc_core::flow::{CacheStats, PassMetrics};
use mc_power::PowerCi;

use crate::pareto::Objectives;
use crate::space::DesignPoint;

/// One fully evaluated lattice point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The configuration that was evaluated.
    pub point: DesignPoint,
    /// Its minimised objective vector.
    pub objectives: Objectives,
    /// Schedule length in control steps (affine schedules stretch it).
    pub steps: u32,
    /// Whether static timing meets the library's target frequency.
    pub meets_target: bool,
    /// Whether the point survived dominance pruning.
    pub on_frontier: bool,
    /// Monte-Carlo confidence bounds on the power objective, present
    /// when the explorer ran more than one stimulus seed per point
    /// ([`Explorer::with_power_seeds`](crate::Explorer::with_power_seeds));
    /// `power_ci.mean_mw` equals [`Objectives::power_mw`].
    pub power_ci: Option<PowerCi>,
    /// Per-pass instrumentation of this evaluation (timings vary run to
    /// run; excluded from deterministic JSON).
    pub metrics: Vec<PassMetrics>,
}

impl PointResult {
    /// Wall-clock spent across this point's recorded passes.
    #[must_use]
    pub fn eval_duration(&self) -> Duration {
        self.metrics.iter().map(|m| m.duration).sum()
    }

    /// How many of this point's passes were served from the flow cache.
    #[must_use]
    pub fn cache_served(&self) -> usize {
        self.metrics.iter().filter(|m| m.cache_hit).count()
    }

    fn json_obj(&self) -> JsonObj {
        let mut obj = JsonObj::new()
            .str("style", &self.point.style.label())
            .str("scheduler", &self.point.scheduler.label())
            .num("volts", self.point.volts)
            .num("power_mw", self.objectives.power_mw);
        if let Some(ci) = &self.power_ci {
            obj = obj
                .num("power_std_mw", ci.std_mw)
                .num("power_ci95_mw", ci.ci95_mw)
                .num("power_seeds", ci.seeds);
        }
        obj.num("area_lambda2", self.objectives.area_lambda2)
            .num("latency_ns", self.objectives.latency_ns)
            .num("steps", self.steps)
            .bool("meets_target", self.meets_target)
            .bool("on_frontier", self.on_frontier)
    }
}

/// The result of one exploration run over one benchmark.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// The benchmark name.
    pub benchmark: String,
    /// Stimulus seed every evaluation was keyed with.
    pub seed: u64,
    /// Random computations per simulation.
    pub computations: usize,
    /// Size of the full enumerated lattice (before the budget cut).
    pub lattice_points: usize,
    /// Lattice points skipped because the evaluation budget ran out.
    pub skipped: usize,
    /// Every evaluated point, in lattice (best-first) order.
    pub results: Vec<PointResult>,
    /// Aggregate artifact-cache counters summed over all flow groups.
    pub cache: CacheStats,
}

impl ExploreReport {
    /// The Pareto-optimal points, in lattice order.
    #[must_use]
    pub fn frontier(&self) -> Vec<&PointResult> {
        self.results.iter().filter(|r| r.on_frontier).collect()
    }

    /// The lowest-power frontier point, if any point was evaluated.
    #[must_use]
    pub fn best_power(&self) -> Option<&PointResult> {
        self.frontier().into_iter().min_by(|a, b| {
            a.objectives
                .power_mw
                .total_cmp(&b.objectives.power_mw)
                .then_with(|| a.point.label().cmp(&b.point.label()))
        })
    }

    /// Renders the ranked frontier table: Pareto points first (by rising
    /// power), then dominated points, each row showing the objective
    /// vector and configuration.
    #[must_use]
    pub fn render_ranked(&self) -> String {
        let mut rows: Vec<&PointResult> = self.results.iter().collect();
        rows.sort_by(|a, b| {
            b.on_frontier.cmp(&a.on_frontier).then_with(|| {
                a.objectives
                    .power_mw
                    .total_cmp(&b.objectives.power_mw)
                    .then_with(|| a.point.label().cmp(&b.point.label()))
            })
        });
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Design-space exploration: {} ({} points evaluated, {} skipped, frontier {})",
            self.benchmark,
            self.results.len(),
            self.skipped,
            self.frontier().len()
        );
        let _ = writeln!(
            s,
            "{:>4}  {:>9}  {:>10}  {:>10}  {:>5}  {:>4}  configuration",
            "rank", "power mW", "area λ²", "lat. ns", "steps", "time"
        );
        for (rank, r) in rows.iter().enumerate() {
            let _ = writeln!(
                s,
                "{:>4}  {:>9.3} {:>10.0}  {:>10.1}  {:>5}  {:>4}  {} {}",
                rank + 1,
                r.objectives.power_mw,
                r.objectives.area_lambda2,
                r.objectives.latency_ns,
                r.steps,
                if r.meets_target { "ok" } else { "VIOL" },
                if r.on_frontier { "*" } else { " " },
                r.point.label()
            );
        }
        let _ = writeln!(s, "(* = Pareto-optimal; timing target = library clock)");
        s
    }

    /// Renders the per-point evaluation timings and the aggregate cache
    /// counters (the nondeterministic half the JSON leaves out).
    #[must_use]
    pub fn render_timings(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Evaluation timings: {}", self.benchmark);
        for r in &self.results {
            let _ = writeln!(
                s,
                "  {:>9.1?}  {:>2} cache-served  {}",
                r.eval_duration(),
                r.cache_served(),
                r.point.label()
            );
        }
        let _ = writeln!(s, "cache: {}", self.cache);
        s
    }

    fn json_header(&self) -> JsonObj {
        JsonObj::new()
            .str("benchmark", &self.benchmark)
            .num("seed", self.seed)
            .num("computations", self.computations)
            .num("lattice_points", self.lattice_points)
            .num("evaluated", self.results.len())
            .num("skipped", self.skipped)
            .num("frontier", self.frontier().len())
    }

    /// Deterministic JSON: identical bytes for identical (benchmark,
    /// space, seed, computations) regardless of thread count or run.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.json_header()
            .raw(
                "points",
                &json_array(self.results.iter().map(|r| r.json_obj().finish())),
            )
            .finish()
    }

    /// JSON with per-point wall-clock and cache counters appended — for
    /// bench artifacts, *not* for determinism comparison.
    #[must_use]
    pub fn to_json_with_timings(&self) -> String {
        self.json_header()
            .raw(
                "points",
                &json_array(self.results.iter().map(|r| {
                    r.json_obj()
                        .num(
                            "eval_ms",
                            format_args!("{:.3}", r.eval_duration().as_secs_f64() * 1e3),
                        )
                        .num("cache_served", r.cache_served())
                        .finish()
                })),
            )
            .num("cache_hits", self.cache.hits)
            .num("cache_misses", self.cache.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SchedulerChoice;
    use mc_core::DesignStyle;

    fn result(power: f64, frontier: bool) -> PointResult {
        PointResult {
            point: DesignPoint {
                style: DesignStyle::MultiClock(2),
                scheduler: SchedulerChoice::Reference,
                volts: 4.65,
                flow: 0,
            },
            objectives: Objectives {
                power_mw: power,
                area_lambda2: 1000.0,
                latency_ns: 160.0,
            },
            steps: 8,
            meets_target: true,
            on_frontier: frontier,
            power_ci: None,
            metrics: Vec::new(),
        }
    }

    fn report() -> ExploreReport {
        ExploreReport {
            benchmark: "hal".to_owned(),
            seed: 42,
            computations: 50,
            lattice_points: 3,
            skipped: 1,
            results: vec![result(1.5, true), result(2.5, false)],
            cache: CacheStats {
                hits: 3,
                misses: 7,
                datapaths: 2,
                reports: 2,
            },
        }
    }

    #[test]
    fn frontier_and_best_power_filter_correctly() {
        let r = report();
        assert_eq!(r.frontier().len(), 1);
        assert_eq!(r.best_power().unwrap().objectives.power_mw, 1.5);
    }

    #[test]
    fn ranked_table_marks_frontier_points() {
        let table = report().render_ranked();
        assert!(table.contains("frontier 1"));
        assert!(table.contains("* 2 Clocks"));
        assert!(table.contains("1 skipped"));
    }

    #[test]
    fn json_is_structured_and_excludes_timings() {
        let json = report().to_json();
        assert!(json.contains("\"benchmark\":\"hal\""));
        assert!(json.contains("\"power_mw\":1.5"));
        assert!(json.contains("\"on_frontier\":true"));
        assert!(!json.contains("eval_ms"));
        assert!(!json.contains("cache"));
        // Single-seed points carry no Monte-Carlo fields.
        assert!(!json.contains("power_ci95_mw"));
    }

    #[test]
    fn monte_carlo_points_emit_confidence_fields() {
        let mut r = report();
        r.results[0].power_ci = Some(PowerCi {
            mean_mw: 1.5,
            std_mw: 0.2,
            ci95_mw: 0.1,
            seeds: 8,
        });
        let json = r.to_json();
        assert!(json.contains("\"power_ci95_mw\":0.1"));
        assert!(json.contains("\"power_std_mw\":0.2"));
        assert!(json.contains("\"power_seeds\":8"));
    }

    #[test]
    fn timed_json_adds_wallclock_and_cache_fields() {
        let json = report().to_json_with_timings();
        assert!(json.contains("\"eval_ms\":"));
        assert!(json.contains("\"cache_hits\":3"));
        assert!(json.contains("\"cache_misses\":7"));
    }
}
