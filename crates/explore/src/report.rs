//! The explorer's typed result: the streamed Pareto frontier with full
//! consumption accounting, and renderers for terminal tables and JSON.
//!
//! The streaming engine never retains dominated points (they can be
//! spilled to a side file instead), so [`ExploreReport::results`] holds
//! *the frontier only*, in arrival (lattice) order, while the counters
//! account for every consumed point: `evaluated = results.len() +
//! dominated`, and `flow_evals + dedup_served + disk-served` explains
//! how each of them was priced.
//!
//! JSON emission follows the bench-harness conventions
//! ([`mc_bench::harness::JsonObj`]): hand-rolled, dependency-free, with
//! `f64` rendered through `Display` (shortest round-trip, deterministic
//! across platforms and runs). [`ExploreReport::to_json`] deliberately
//! excludes wall-clock durations and every cache counter — they vary
//! with scheduling and cache warmth — so same-seed runs emit
//! bit-identical documents whether cold, warm, or resumed;
//! [`ExploreReport::to_json_with_timings`] adds them back for human
//! inspection and bench artifacts.

use std::fmt::Write as _;
use std::time::Duration;

use mc_bench::harness::{json_array, JsonObj};
use mc_core::flow::{CacheStats, PassMetrics};
use mc_power::PowerCi;

use crate::pareto::Objectives;
use crate::space::DesignPoint;

/// One frontier lattice point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The configuration that was evaluated.
    pub point: DesignPoint,
    /// Its minimised objective vector.
    pub objectives: Objectives,
    /// Schedule length in control steps (affine schedules stretch it).
    pub steps: u32,
    /// Whether static timing meets the library's target frequency.
    pub meets_target: bool,
    /// Whether the point survived dominance pruning (always `true` for
    /// points retained in [`ExploreReport::results`]; kept so JSON
    /// consumers see an explicit verdict per row).
    pub on_frontier: bool,
    /// Monte-Carlo confidence bounds on the power objective, present
    /// when the explorer ran more than one stimulus seed per point
    /// ([`Explorer::with_power_seeds`](crate::Explorer::with_power_seeds));
    /// `power_ci.mean_mw` equals [`Objectives::power_mw`].
    pub power_ci: Option<PowerCi>,
    /// Per-pass instrumentation of this evaluation. Empty when the point
    /// was served from dedup, the record memo, the persistent cache or a
    /// resumed checkpoint (timings vary run to run; excluded from
    /// deterministic JSON).
    pub metrics: Vec<PassMetrics>,
}

impl PointResult {
    /// Wall-clock spent across this point's recorded passes.
    #[must_use]
    pub fn eval_duration(&self) -> Duration {
        self.metrics.iter().map(|m| m.duration).sum()
    }

    /// How many of this point's passes were served from the flow cache.
    #[must_use]
    pub fn cache_served(&self) -> usize {
        self.metrics.iter().filter(|m| m.cache_hit).count()
    }

    fn json_obj(&self) -> JsonObj {
        let mut obj = JsonObj::new()
            .str("style", &self.point.style.label())
            .str("scheduler", &self.point.scheduler.label())
            .str("rewrite", self.point.rewrite.label())
            .num("volts", self.point.volts)
            .num("scenario", self.point.scenario)
            .num("power_mw", self.objectives.power_mw);
        if let Some(ci) = &self.power_ci {
            obj = obj
                .num("power_std_mw", ci.std_mw)
                .num("power_ci95_mw", ci.ci95_mw)
                .num("power_seeds", ci.seeds);
        }
        obj.num("area_lambda2", self.objectives.area_lambda2)
            .num("latency_ns", self.objectives.latency_ns)
            .num("steps", self.steps)
            .bool("meets_target", self.meets_target)
            .bool("on_frontier", self.on_frontier)
    }
}

/// The result of one exploration run over one benchmark.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// The benchmark name.
    pub benchmark: String,
    /// Stimulus seed every evaluation was keyed with.
    pub seed: u64,
    /// Random computations per simulation.
    pub computations: usize,
    /// Size of the full lattice (before any budget or deadline cut).
    pub lattice_points: usize,
    /// Lattice points consumed (served or evaluated), cumulative across
    /// resumed runs.
    pub evaluated: usize,
    /// Lattice points outside the evaluation budget.
    pub skipped: usize,
    /// In-budget points not reached before the deadline (resume picks
    /// them up).
    pub remaining: usize,
    /// Consumed points served because a structurally equivalent point
    /// occurred earlier in the lattice (deterministic).
    pub dedup_served: u64,
    /// Consumed points pruned by dominance and not retained (spilled if
    /// a spill file was configured); `evaluated = results.len() +
    /// dominated`.
    pub dominated: u64,
    /// Full flow evaluations this run actually performed (varies with
    /// cache warmth; 0 for a fully warm or fully resumed run).
    pub flow_evals: usize,
    /// Persistent-cache lookups served from disk this run.
    pub disk_hits: u64,
    /// Persistent-cache lookups that missed this run.
    pub disk_misses: u64,
    /// Records written to the persistent cache this run.
    pub disk_puts: u64,
    /// The Pareto frontier, in arrival (lattice) order.
    pub results: Vec<PointResult>,
    /// Aggregate in-memory artifact-cache counters summed over all flow
    /// groups this run.
    pub cache: CacheStats,
}

impl ExploreReport {
    /// The Pareto-optimal points, in lattice order.
    #[must_use]
    pub fn frontier(&self) -> Vec<&PointResult> {
        self.results.iter().filter(|r| r.on_frontier).collect()
    }

    /// The lowest-power frontier point, if any point was consumed.
    #[must_use]
    pub fn best_power(&self) -> Option<&PointResult> {
        self.frontier().into_iter().min_by(|a, b| {
            a.objectives
                .power_mw
                .total_cmp(&b.objectives.power_mw)
                .then_with(|| a.point.label().cmp(&b.point.label()))
        })
    }

    /// Renders the frontier table by rising power, with the consumption
    /// accounting in the header and footer.
    #[must_use]
    pub fn render_ranked(&self) -> String {
        let mut rows: Vec<&PointResult> = self.results.iter().collect();
        rows.sort_by(|a, b| {
            a.objectives
                .power_mw
                .total_cmp(&b.objectives.power_mw)
                .then_with(|| a.point.label().cmp(&b.point.label()))
        });
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Design-space exploration: {} ({} points evaluated, {} skipped, frontier {})",
            self.benchmark,
            self.evaluated,
            self.skipped,
            self.frontier().len()
        );
        let _ = writeln!(
            s,
            "{:>4}  {:>9}  {:>10}  {:>10}  {:>5}  {:>4}  configuration",
            "rank", "power mW", "area λ²", "lat. ns", "steps", "time"
        );
        for (rank, r) in rows.iter().enumerate() {
            let _ = writeln!(
                s,
                "{:>4}  {:>9.3} {:>10.0}  {:>10.1}  {:>5}  {:>4}  {} {}",
                rank + 1,
                r.objectives.power_mw,
                r.objectives.area_lambda2,
                r.objectives.latency_ns,
                r.steps,
                if r.meets_target { "ok" } else { "VIOL" },
                if r.on_frontier { "*" } else { " " },
                r.point.label()
            );
        }
        let _ = writeln!(
            s,
            "({} dominated points not retained, {} served by dedup{})",
            self.dominated,
            self.dedup_served,
            if self.remaining > 0 {
                format!(
                    ", {} in-budget points remaining — resume to continue",
                    self.remaining
                )
            } else {
                String::new()
            }
        );
        let _ = writeln!(s, "(* = Pareto-optimal; timing target = library clock)");
        s
    }

    /// Renders the per-point evaluation timings and the aggregate cache
    /// counters (the nondeterministic half the JSON leaves out).
    #[must_use]
    pub fn render_timings(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Evaluation timings: {}", self.benchmark);
        for r in &self.results {
            let _ = writeln!(
                s,
                "  {:>9.1?}  {:>2} cache-served  {}",
                r.eval_duration(),
                r.cache_served(),
                r.point.label()
            );
        }
        let _ = writeln!(
            s,
            "flow evals: {}  cache: {}  disk: {} hits / {} misses / {} puts",
            self.flow_evals, self.cache, self.disk_hits, self.disk_misses, self.disk_puts
        );
        s
    }

    fn json_header(&self) -> JsonObj {
        JsonObj::new()
            .str("benchmark", &self.benchmark)
            .num("seed", self.seed)
            .num("computations", self.computations)
            .num("lattice_points", self.lattice_points)
            .num("evaluated", self.evaluated)
            .num("skipped", self.skipped)
            .num("remaining", self.remaining)
            .num("dedup_served", self.dedup_served)
            .num("dominated", self.dominated)
            .num("frontier", self.frontier().len())
    }

    /// Deterministic JSON: identical bytes for identical (benchmark,
    /// space, seed, computations) regardless of thread count, cache
    /// warmth, interrupt/resume history, or run.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.json_header()
            .raw(
                "points",
                &json_array(self.results.iter().map(|r| r.json_obj().finish())),
            )
            .finish()
    }

    /// JSON with per-point wall-clock and every cache counter appended —
    /// for bench artifacts, *not* for determinism comparison.
    #[must_use]
    pub fn to_json_with_timings(&self) -> String {
        self.json_header()
            .raw(
                "points",
                &json_array(self.results.iter().map(|r| {
                    r.json_obj()
                        .num(
                            "eval_ms",
                            format_args!("{:.3}", r.eval_duration().as_secs_f64() * 1e3),
                        )
                        .num("cache_served", r.cache_served())
                        .finish()
                })),
            )
            .num("flow_evals", self.flow_evals)
            .num("cache_hits", self.cache.hits)
            .num("cache_misses", self.cache.misses)
            .num("disk_hits", self.disk_hits)
            .num("disk_misses", self.disk_misses)
            .num("disk_puts", self.disk_puts)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SchedulerChoice;
    use mc_core::{DesignStyle, RewriteChoice};

    fn result(power: f64) -> PointResult {
        PointResult {
            point: DesignPoint {
                style: DesignStyle::MultiClock(2),
                scheduler: SchedulerChoice::Reference,
                volts: 4.65,
                scenario: 0,
                rewrite: RewriteChoice::Baseline,
            },
            objectives: Objectives {
                power_mw: power,
                area_lambda2: 1000.0 - power, // trade-off keeps both on the frontier
                latency_ns: 160.0,
            },
            steps: 8,
            meets_target: true,
            on_frontier: true,
            power_ci: None,
            metrics: Vec::new(),
        }
    }

    fn report() -> ExploreReport {
        ExploreReport {
            benchmark: "hal".to_owned(),
            seed: 42,
            computations: 50,
            lattice_points: 5,
            evaluated: 4,
            skipped: 1,
            remaining: 0,
            dedup_served: 1,
            dominated: 2,
            flow_evals: 3,
            disk_hits: 0,
            disk_misses: 0,
            disk_puts: 0,
            results: vec![result(1.5), result(2.5)],
            cache: CacheStats {
                hits: 3,
                misses: 7,
                datapaths: 2,
                reports: 2,
            },
        }
    }

    #[test]
    fn frontier_and_best_power_filter_correctly() {
        let r = report();
        assert_eq!(r.frontier().len(), 2);
        assert_eq!(r.best_power().unwrap().objectives.power_mw, 1.5);
    }

    #[test]
    fn ranked_table_accounts_for_every_consumed_point() {
        let table = report().render_ranked();
        assert!(table.contains("frontier 2"));
        assert!(table.contains("* 2 Clocks"));
        assert!(table.contains("1 skipped"));
        assert!(table.contains("4 points evaluated"));
        assert!(table.contains("2 dominated points not retained"));
        assert!(table.contains("1 served by dedup"));
        assert!(table.contains("Pareto-optimal"));
    }

    #[test]
    fn interrupted_reports_point_at_resume() {
        let mut r = report();
        r.remaining = 7;
        assert!(r.render_ranked().contains("7 in-budget points remaining"));
    }

    #[test]
    fn json_is_structured_and_excludes_timings() {
        let json = report().to_json();
        assert!(json.contains("\"benchmark\":\"hal\""));
        assert!(json.contains("\"power_mw\":1.5"));
        assert!(json.contains("\"on_frontier\":true"));
        assert!(json.contains("\"evaluated\":4"));
        assert!(json.contains("\"remaining\":0"));
        assert!(json.contains("\"dedup_served\":1"));
        assert!(json.contains("\"dominated\":2"));
        assert!(json.contains("\"scenario\":0"));
        assert!(json.contains("\"rewrite\":\"baseline\""));
        assert!(!json.contains("eval_ms"));
        assert!(!json.contains("cache"));
        assert!(!json.contains("disk"));
        assert!(!json.contains("flow_evals"));
        // Single-seed points carry no Monte-Carlo fields.
        assert!(!json.contains("power_ci95_mw"));
    }

    #[test]
    fn monte_carlo_points_emit_confidence_fields() {
        let mut r = report();
        r.results[0].power_ci = Some(PowerCi {
            mean_mw: 1.5,
            std_mw: 0.2,
            ci95_mw: 0.1,
            seeds: 8,
        });
        let json = r.to_json();
        assert!(json.contains("\"power_ci95_mw\":0.1"));
        assert!(json.contains("\"power_std_mw\":0.2"));
        assert!(json.contains("\"power_seeds\":8"));
    }

    #[test]
    fn timed_json_adds_wallclock_and_cache_fields() {
        let json = report().to_json_with_timings();
        assert!(json.contains("\"eval_ms\":"));
        assert!(json.contains("\"flow_evals\":3"));
        assert!(json.contains("\"cache_hits\":3"));
        assert!(json.contains("\"cache_misses\":7"));
        assert!(json.contains("\"disk_hits\":0"));
    }
}
