//! Persistence for the streaming explorer: the per-point evaluation
//! record that flows through the cross-run [`mc_core::cache::DiskCache`],
//! and the checkpoint file that lets an interrupted run resume exactly
//! where it stopped.
//!
//! Both formats are versioned plain text. Every `f64` is stored as the
//! hexadecimal of its IEEE-754 bits, so a value round-trips *exactly* —
//! a warm run served entirely from disk must render byte-identical JSON
//! to the cold run that populated it, and a decimal rendering would lose
//! that. Checkpoints are written to a temp file and renamed into place
//! (the same publish discipline as the disk cache), and a corrupt or
//! truncated checkpoint surfaces as a typed [`CheckpointError`] — never
//! a panic, and never a silently wrong resume.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use mc_power::PowerCi;

use crate::pareto::Objectives;

/// Schema version of both the point-record body and the checkpoint file.
pub const PERSIST_VERSION: u32 = 1;

/// The magic line prefixing a point record stored in the disk cache.
fn record_magic() -> String {
    format!("mcpm-explore point v{PERSIST_VERSION}")
}

/// The magic line prefixing a checkpoint file.
fn checkpoint_magic() -> String {
    format!("mcpm-explore checkpoint v{PERSIST_VERSION}")
}

/// Everything the explorer needs to reconstruct an evaluated point
/// without re-running the flow: the objective vector, the schedule
/// length, the timing verdict and the Monte-Carlo confidence interval
/// (when the run carried one).
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// The minimised objective vector.
    pub objectives: Objectives,
    /// Schedule length in control steps.
    pub steps: u32,
    /// Whether the critical path met the library clock target.
    pub meets_target: bool,
    /// Monte-Carlo power confidence interval, if seeds > 1 were run.
    pub power_ci: Option<PowerCi>,
}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn unhex(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

impl PointRecord {
    /// Encodes the record as one line of `key=value` fields (floats as
    /// exact bit patterns).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "power={} area={} latency={} steps={} meets={}",
            hex(self.objectives.power_mw),
            hex(self.objectives.area_lambda2),
            hex(self.objectives.latency_ns),
            self.steps,
            u8::from(self.meets_target),
        );
        if let Some(ci) = &self.power_ci {
            line.push_str(&format!(
                " ci_mean={} ci_std={} ci95={} ci_seeds={}",
                hex(ci.mean_mw),
                hex(ci.std_mw),
                hex(ci.ci95_mw),
                ci.seeds
            ));
        }
        line
    }

    /// Decodes a record line; `None` on any malformed field.
    #[must_use]
    pub fn from_line(line: &str) -> Option<PointRecord> {
        let mut power = None;
        let mut area = None;
        let mut latency = None;
        let mut steps = None;
        let mut meets = None;
        let mut ci_mean = None;
        let mut ci_std = None;
        let mut ci95 = None;
        let mut ci_seeds = None;
        for field in line.split_ascii_whitespace() {
            let (k, v) = field.split_once('=')?;
            match k {
                "power" => power = Some(unhex(v)?),
                "area" => area = Some(unhex(v)?),
                "latency" => latency = Some(unhex(v)?),
                "steps" => steps = Some(v.parse::<u32>().ok()?),
                "meets" => meets = Some(v == "1"),
                "ci_mean" => ci_mean = Some(unhex(v)?),
                "ci_std" => ci_std = Some(unhex(v)?),
                "ci95" => ci95 = Some(unhex(v)?),
                "ci_seeds" => ci_seeds = Some(v.parse::<usize>().ok()?),
                _ => return None,
            }
        }
        let power_ci = match (ci_mean, ci_std, ci95, ci_seeds) {
            (Some(mean_mw), Some(std_mw), Some(ci95_mw), Some(seeds)) => Some(PowerCi {
                mean_mw,
                std_mw,
                ci95_mw,
                seeds,
            }),
            (None, None, None, None) => None,
            _ => return None,
        };
        Some(PointRecord {
            objectives: Objectives {
                power_mw: power?,
                area_lambda2: area?,
                latency_ns: latency?,
            },
            steps: steps?,
            meets_target: meets?,
            power_ci,
        })
    }

    /// Encodes the record as a disk-cache entry body (magic line + record
    /// line).
    #[must_use]
    pub fn to_cache_body(&self) -> String {
        format!("{}\n{}\n", record_magic(), self.to_line())
    }

    /// Decodes a disk-cache entry body; `None` when the magic or record
    /// is from another schema or malformed (the caller treats it as a
    /// miss and recomputes).
    #[must_use]
    pub fn from_cache_body(body: &str) -> Option<PointRecord> {
        let (magic, rest) = body.split_once('\n')?;
        if magic != record_magic() {
            return None;
        }
        PointRecord::from_line(rest.trim_end_matches('\n'))
    }
}

/// Why a checkpoint could not be loaded.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io {
        /// The checkpoint path.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The file exists but is truncated, garbled, or from another schema
    /// version.
    Corrupt {
        /// The checkpoint path.
        path: PathBuf,
        /// What failed to parse.
        reason: String,
    },
    /// The checkpoint was written by a run with a different configuration
    /// (different space, benchmark, seed or Monte-Carlo depth), so its
    /// cursor and frontier are meaningless here.
    ConfigMismatch {
        /// The checkpoint path.
        path: PathBuf,
        /// The fingerprint stored in the file.
        found: u64,
        /// The fingerprint of the current run.
        expected: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "checkpoint i/o error at {}: {source}", path.display())
            }
            CheckpointError::Corrupt { path, reason } => {
                write!(f, "corrupt checkpoint at {}: {reason}", path.display())
            }
            CheckpointError::ConfigMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "checkpoint at {} belongs to another run (config {found:016x}, this run is {expected:016x})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A saved explorer position: how far the lattice cursor advanced, the
/// frontier at that cursor, and the deterministic counters needed to
/// resume with honest totals. The frontier entries are mutually
/// nondominated, so re-offering them in stored order reconstructs the
/// exact streaming state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of everything that determines results (space,
    /// design content, seed, computations, power seeds). Budget and
    /// deadline are deliberately excluded: a budget-interrupted run may
    /// resume toward the full lattice.
    pub config: u64,
    /// Lattice indexes `0..cursor` have been consumed.
    pub cursor: usize,
    /// Deterministic dedup counter at the cursor.
    pub dedup_served: u64,
    /// Frontier entries as (lattice index, record), arrival order.
    pub frontier: Vec<(usize, PointRecord)>,
}

impl Checkpoint {
    /// Serialises the checkpoint.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "{}\nconfig={:016x}\ncursor={}\ndedup={}\nfrontier={}\n",
            checkpoint_magic(),
            self.config,
            self.cursor,
            self.dedup_served,
            self.frontier.len()
        );
        for (index, record) in &self.frontier {
            out.push_str(&format!("point={index} {}\n", record.to_line()));
        }
        out
    }

    /// Writes the checkpoint atomically and durably: the text goes to a
    /// temp file, is fsynced, and is renamed into place, so a crash
    /// mid-write leaves the previous checkpoint intact and a crash just
    /// after the rename can't publish an unsynced torso. A failed write
    /// or rename removes the temp file before returning.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let io_err = |source| CheckpointError::Io {
            path: path.to_path_buf(),
            source,
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(io_err)?;
            }
        }
        let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
        let write_synced = || -> io::Result<()> {
            let mut file = fs::File::create(&tmp)?;
            io::Write::write_all(&mut file, self.to_text().as_bytes())?;
            file.sync_all()
        };
        if let Err(source) = write_synced() {
            let _ = fs::remove_file(&tmp);
            return Err(io_err(source));
        }
        fs::rename(&tmp, path).map_err(|source| {
            let _ = fs::remove_file(&tmp);
            io_err(source)
        })
    }

    /// Loads a checkpoint, validating schema and configuration.
    /// `Ok(None)` means the file does not exist — a fresh start, so
    /// `--resume` is idempotent in scripts.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] for truncated/garbled/stale files,
    /// [`CheckpointError::ConfigMismatch`] when the file belongs to a
    /// different run configuration, [`CheckpointError::Io`] for other
    /// read failures.
    pub fn load(path: &Path, expected_config: u64) -> Result<Option<Checkpoint>, CheckpointError> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(source) => {
                return Err(CheckpointError::Io {
                    path: path.to_path_buf(),
                    source,
                })
            }
        };
        let corrupt = |reason: &str| CheckpointError::Corrupt {
            path: path.to_path_buf(),
            reason: reason.to_owned(),
        };
        let mut lines = text.lines();
        if lines.next() != Some(checkpoint_magic().as_str()) {
            return Err(corrupt("bad or missing magic line"));
        }
        let mut field = |prefix: &str| -> Result<String, CheckpointError> {
            lines
                .next()
                .and_then(|l| l.strip_prefix(prefix))
                .map(str::to_owned)
                .ok_or_else(|| corrupt(&format!("missing {prefix} field")))
        };
        let config = u64::from_str_radix(&field("config=")?, 16)
            .map_err(|_| corrupt("unparsable config fingerprint"))?;
        if config != expected_config {
            return Err(CheckpointError::ConfigMismatch {
                path: path.to_path_buf(),
                found: config,
                expected: expected_config,
            });
        }
        let cursor: usize = field("cursor=")?
            .parse()
            .map_err(|_| corrupt("unparsable cursor"))?;
        let dedup_served: u64 = field("dedup=")?
            .parse()
            .map_err(|_| corrupt("unparsable dedup counter"))?;
        let count: usize = field("frontier=")?
            .parse()
            .map_err(|_| corrupt("unparsable frontier count"))?;
        let mut frontier = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines.next().ok_or_else(|| corrupt("truncated frontier"))?;
            let rest = line
                .strip_prefix("point=")
                .ok_or_else(|| corrupt("malformed frontier line"))?;
            let (index, record) = rest
                .split_once(' ')
                .ok_or_else(|| corrupt("malformed frontier line"))?;
            let index: usize = index
                .parse()
                .map_err(|_| corrupt("unparsable frontier index"))?;
            let record = PointRecord::from_line(record)
                .ok_or_else(|| corrupt("unparsable frontier record"))?;
            if index >= cursor {
                return Err(corrupt("frontier index beyond cursor"));
            }
            frontier.push((index, record));
        }
        if lines.next().is_some() {
            return Err(corrupt("trailing data after frontier"));
        }
        Ok(Some(Checkpoint {
            config,
            cursor,
            dedup_served,
            frontier,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(p: f64, ci: bool) -> PointRecord {
        PointRecord {
            objectives: Objectives {
                power_mw: p,
                area_lambda2: p * 1000.0 + 0.125,
                latency_ns: 400.0 / p,
            },
            steps: 8,
            meets_target: p < 5.0,
            power_ci: ci.then_some(PowerCi {
                mean_mw: p,
                std_mw: 0.031_25,
                ci95_mw: 0.062_5,
                seeds: 16,
            }),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mc-ckpt-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn point_records_round_trip_exactly_including_awkward_floats() {
        // Values with no finite decimal rendering must survive bit-exact.
        for p in [1.0 / 3.0, 7.3e-3, f64::MIN_POSITIVE, 123_456.789_012_345] {
            for ci in [false, true] {
                let r = record(p, ci);
                assert_eq!(PointRecord::from_line(&r.to_line()), Some(r.clone()));
                assert_eq!(PointRecord::from_cache_body(&r.to_cache_body()), Some(r));
            }
        }
    }

    #[test]
    fn malformed_record_lines_parse_to_none() {
        assert_eq!(PointRecord::from_line(""), None);
        assert_eq!(PointRecord::from_line("power=zz area=0 latency=0"), None);
        assert_eq!(PointRecord::from_line("unknown=1"), None);
        // Partial CI fields are rejected, not half-filled.
        let full = record(2.0, true).to_line();
        let partial = full.replace(" ci_seeds=16", "");
        assert_eq!(PointRecord::from_line(&partial), None);
        // Wrong magic in a cache body is a miss.
        assert_eq!(
            PointRecord::from_cache_body("mcpm-explore point v999\npower=0\n"),
            None
        );
    }

    #[test]
    fn checkpoints_round_trip_through_disk() {
        let path = temp_path("roundtrip");
        let ck = Checkpoint {
            config: 0xdead_beef_0123_4567,
            cursor: 420,
            dedup_served: 17,
            frontier: vec![(0, record(1.5, false)), (37, record(0.25, true))],
        };
        ck.save(&path).unwrap();
        let loaded = Checkpoint::load(&path, ck.config).unwrap().unwrap();
        assert_eq!(loaded, ck);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_checkpoint_is_a_fresh_start_not_an_error() {
        let path = temp_path("missing");
        let _ = fs::remove_file(&path);
        assert!(Checkpoint::load(&path, 1).unwrap().is_none());
    }

    #[test]
    fn truncated_and_garbled_checkpoints_are_typed_errors_not_panics() {
        let path = temp_path("corrupt");
        let ck = Checkpoint {
            config: 9,
            cursor: 10,
            dedup_served: 0,
            frontier: vec![(3, record(1.0, true))],
        };
        // Truncation mid-frontier.
        let full = ck.to_text();
        fs::write(&path, &full[..full.len() - 20]).unwrap();
        assert!(matches!(
            Checkpoint::load(&path, 9),
            Err(CheckpointError::Corrupt { .. })
        ));
        // Pure garbage.
        fs::write(&path, "not a checkpoint at all\n").unwrap();
        assert!(matches!(
            Checkpoint::load(&path, 9),
            Err(CheckpointError::Corrupt { .. })
        ));
        // Stale schema version.
        let stale = full.replacen(
            &format!("checkpoint v{PERSIST_VERSION}"),
            &format!("checkpoint v{}", PERSIST_VERSION + 1),
            1,
        );
        fs::write(&path, stale).unwrap();
        assert!(matches!(
            Checkpoint::load(&path, 9),
            Err(CheckpointError::Corrupt { .. })
        ));
        // Frontier index beyond the cursor is inconsistent.
        let bad = ck.to_text().replace("point=3", "point=10");
        fs::write(&path, bad).unwrap();
        assert!(matches!(
            Checkpoint::load(&path, 9),
            Err(CheckpointError::Corrupt { .. })
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn config_mismatch_is_reported_with_both_fingerprints() {
        let path = temp_path("mismatch");
        Checkpoint {
            config: 5,
            cursor: 0,
            dedup_served: 0,
            frontier: vec![],
        }
        .save(&path)
        .unwrap();
        match Checkpoint::load(&path, 6) {
            Err(CheckpointError::ConfigMismatch {
                found, expected, ..
            }) => {
                assert_eq!(found, 5);
                assert_eq!(expected, 6);
            }
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn save_is_atomic_no_tmp_litter() {
        let path = temp_path("atomic");
        let ck = Checkpoint {
            config: 1,
            cursor: 2,
            dedup_served: 0,
            frontier: vec![],
        };
        ck.save(&path).unwrap();
        ck.save(&path).unwrap(); // overwrite in place
        let dir = path.parent().unwrap();
        let litter = fs::read_dir(dir)
            .unwrap()
            .flatten()
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(&*path.file_stem().unwrap().to_string_lossy())
                    && e.path()
                        .extension()
                        .is_some_and(|x| x.to_string_lossy().starts_with("tmp-"))
            })
            .count();
        assert_eq!(litter, 0);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn failed_save_is_a_typed_error_and_leaves_no_tmp_litter() {
        // A directory squatting on the checkpoint path makes the final
        // rename fail after the temp file is written and fsynced; the
        // failure must surface as Io and the temp file must be cleaned up.
        let path = temp_path("renamefail");
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).unwrap();
        let ck = Checkpoint {
            config: 1,
            cursor: 0,
            dedup_served: 0,
            frontier: vec![],
        };
        assert!(matches!(ck.save(&path), Err(CheckpointError::Io { .. })));
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let litter = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .flatten()
            .filter(|e| {
                e.file_name().to_string_lossy().starts_with(&stem)
                    && e.path()
                        .extension()
                        .is_some_and(|x| x.to_string_lossy().starts_with("tmp-"))
            })
            .count();
        assert_eq!(litter, 0, "failed rename must remove its temp file");
        let _ = fs::remove_dir_all(&path);
    }
}
