//! The configuration lattice: every design decision the paper leaves to
//! the engineer, described as an *indexable generator* rather than a
//! materialised list.
//!
//! A [`DesignPoint`] fixes the clock count `n`, the allocation strategy
//! (conventional ± gating, split, integrated), the memory-element kind
//! (latch vs. DFF), the scheduler (the benchmark's reference schedule or
//! the phase-affine scheduler), the supply voltage, a data-dependent
//! gating variant and a stimulus-distribution scenario. [`ExploreSpace`]
//! compiles to a [`LatticeGen`] whose `point_at(i)` decodes any lattice
//! index on demand — the explorer streams through hundreds of thousands
//! of points without ever holding them in memory. The order is
//! deterministic *best-first*: the five paper-table anchor rows come
//! first (so any budget ≥ 5 still evaluates the paper's own
//! configurations), then the remaining nominal-voltage points from most
//! to least promising under the paper's findings, then the
//! voltage-scaled replicas, then the gating-variant and scenario
//! replicas of the whole sweep.

use mc_alloc::Strategy;
use mc_core::passes::Behavior;
use mc_core::{DesignStyle, Flow, RewriteChoice};
use mc_dfg::benchmarks::Benchmark;
use mc_prng::SplitMix64;
use mc_rtl::{ControlPolicy, PowerMode};
use mc_tech::{MemKind, TechLibrary};

/// The nominal supply voltage of the bundled technology library (V).
pub const NOMINAL_VOLTS: f64 = 4.65;

/// Which scheduler produced the behaviour a point is evaluated on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerChoice {
    /// The benchmark's reference schedule — the paper's input.
    Reference,
    /// The phase-affine scheduler
    /// ([`mc_dfg::scheduler::phase_affine`]), which trades up to
    /// `stretch` extra control steps for phase-aligned operations
    /// (latency for power).
    PhaseAffine {
        /// Extra control steps the affine schedule may add.
        stretch: u32,
    },
}

impl SchedulerChoice {
    /// Short label used in tables and JSON (`reference` / `affine+s`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SchedulerChoice::Reference => "reference".to_owned(),
            SchedulerChoice::PhaseAffine { stretch } => format!("affine+{stretch}"),
        }
    }
}

/// A data-dependent gating variant: an override of the operating
/// [`PowerMode`] applied on top of a style's own mode, spanning the
/// clock-gating / operand-isolation / control-policy axes that
/// data-dependent power-gating work (arXiv 1806.02271) explores on RTL
/// datapaths. [`GatingVariant::Baseline`] keeps the style's native mode,
/// so the default space reproduces the paper rows exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GatingVariant {
    /// The style's own power mode (the paper's operating points).
    Baseline,
    /// Activity-gated memory clocks only: a memory element is clocked
    /// only in steps where its load enable is asserted; control lines
    /// hold.
    DataGated,
    /// Gated memory clocks plus ALU operand isolation, held control
    /// lines — the full data-dependent gating stack.
    Isolated,
    /// Gated clocks and operand isolation with zeroed control lines
    /// (the conventional gated baseline's policy).
    IsolatedZero,
    /// Everything off: free-running clocks, no isolation, zeroed control
    /// lines — the non-gated reference for the gating ablation.
    FreeRunning,
}

impl GatingVariant {
    /// Every variant, in enumeration (most- to least-promising) order.
    pub const ALL: [GatingVariant; 5] = [
        GatingVariant::Baseline,
        GatingVariant::DataGated,
        GatingVariant::Isolated,
        GatingVariant::IsolatedZero,
        GatingVariant::FreeRunning,
    ];

    /// The first `n` variants of [`Self::ALL`] (clamped to 1..=5) — how
    /// the CLI/API `gating=N` knob selects the variant prefix.
    #[must_use]
    pub fn first_n(n: usize) -> Vec<GatingVariant> {
        Self::ALL[..n.clamp(1, Self::ALL.len())].to_vec()
    }

    /// Short label used in docs and error messages.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            GatingVariant::Baseline => "baseline",
            GatingVariant::DataGated => "data-gated",
            GatingVariant::Isolated => "isolated",
            GatingVariant::IsolatedZero => "isolated-zero",
            GatingVariant::FreeRunning => "free-running",
        }
    }

    /// The power-mode override, `None` for the baseline.
    fn mode(self) -> Option<PowerMode> {
        match self {
            GatingVariant::Baseline => None,
            GatingVariant::DataGated => Some(PowerMode {
                gated_mem_clocks: true,
                operand_isolation: false,
                control_policy: ControlPolicy::Hold,
            }),
            GatingVariant::Isolated => Some(PowerMode {
                gated_mem_clocks: true,
                operand_isolation: true,
                control_policy: ControlPolicy::Hold,
            }),
            GatingVariant::IsolatedZero => Some(PowerMode::gated()),
            GatingVariant::FreeRunning => Some(PowerMode::non_gated()),
        }
    }

    /// Applies the variant to a style. When the override equals the
    /// style's own mode the style is returned unchanged, so equivalent
    /// points keep their canonical form (and the explorer's structural
    /// dedup serves them from one evaluation).
    #[must_use]
    pub fn apply(self, style: DesignStyle) -> DesignStyle {
        let Some(mode) = self.mode() else {
            return style;
        };
        if style.power_mode() == mode {
            return style;
        }
        DesignStyle::Custom {
            strategy: style.strategy(),
            clocks: style.clocks(),
            mem_kind: style.mem_kind(),
            transfers: style.transfers(),
            mode,
        }
    }
}

/// The stimulus seed a scenario evaluates under: scenario 0 is the base
/// seed itself (so single-scenario spaces reproduce historical numbers
/// bit for bit), every further scenario a SplitMix64-derived stream.
#[must_use]
pub fn scenario_seed(seed: u64, scenario: u32) -> u64 {
    if scenario == 0 {
        seed
    } else {
        SplitMix64::new(seed ^ (0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(u64::from(scenario))))
            .next_u64()
    }
}

/// Everything one flow group shares: the scheduler that produced the
/// behaviour (plus the clock count the affine scheduler aligned to), the
/// supply voltage and the stimulus scenario. All points of a group
/// evaluate through one shared [`Flow`], so they share its content-keyed
/// artifact cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// The scheduler.
    pub scheduler: SchedulerChoice,
    /// The clock count the affine scheduler aligned to (0 for the
    /// reference schedule, which is clock-independent).
    pub affine_clocks: u32,
    /// Supply voltage (V).
    pub volts: f64,
    /// Stimulus-distribution scenario (0 = the base seed).
    pub scenario: u32,
    /// The datapath rewrite applied before scheduling.
    pub rewrite: RewriteChoice,
}

impl FlowSpec {
    /// A stable, hashable key for this spec (voltage by exact bits).
    #[must_use]
    pub fn key(&self) -> (u64, u32, u64, u32, u64) {
        let sched = match self.scheduler {
            SchedulerChoice::Reference => 0,
            SchedulerChoice::PhaseAffine { stretch } => 1 + u64::from(stretch),
        };
        let rewrite = RewriteChoice::ALL
            .iter()
            .position(|&c| c == self.rewrite)
            .expect("rewrite choice is in ALL") as u64;
        (
            sched,
            self.affine_clocks,
            self.volts.to_bits(),
            self.scenario,
            rewrite,
        )
    }

    /// Materialises the flow for `bm` under this spec; `seed` is the
    /// explorer's base seed (the scenario derives its own stream from
    /// it). The rewrite is applied to the benchmark's reference
    /// behaviour first; the phase-affine scheduler then reschedules the
    /// *rewritten* graph (so schedule-only rewrites are no-ops under it,
    /// which the explorer folds onto the baseline twin).
    #[must_use]
    pub fn build(&self, bm: &Benchmark, computations: usize, seed: u64) -> Flow {
        let rewritten = self.rewrite.apply_to_benchmark(bm);
        let behavior = match self.scheduler {
            SchedulerChoice::Reference => rewritten,
            SchedulerChoice::PhaseAffine { stretch } => {
                let schedule =
                    mc_dfg::scheduler::phase_affine(&rewritten.dfg, self.affine_clocks, stretch);
                Behavior::new(rewritten.dfg, schedule)
            }
        };
        Flow::from_behavior(behavior)
            .with_computations(computations)
            .with_seed(scenario_seed(seed, self.scenario))
            .with_tech(TechLibrary::vsc450().at_voltage(self.volts))
    }
}

/// One candidate configuration of the lattice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// The design style (strategy, clocks, memory kind, power mode).
    pub style: DesignStyle,
    /// The scheduler the behaviour was scheduled with.
    pub scheduler: SchedulerChoice,
    /// Supply voltage (V).
    pub volts: f64,
    /// Stimulus-distribution scenario (0 = the base seed).
    pub scenario: u32,
    /// The datapath rewrite the behaviour was transformed with
    /// ([`RewriteChoice::Baseline`] = the bundled behaviour untouched).
    pub rewrite: RewriteChoice,
}

impl DesignPoint {
    /// Human-readable point label: style, scheduler, voltage and (when
    /// not at their defaults) the scenario index and rewrite choice.
    #[must_use]
    pub fn label(&self) -> String {
        let mut label = format!(
            "{} [{}, {:.2} V",
            self.style.label(),
            self.scheduler.label(),
            self.volts
        );
        if self.scenario != 0 {
            label.push_str(&format!(", s{}", self.scenario));
        }
        if self.rewrite != RewriteChoice::Baseline {
            label.push_str(&format!(", rw:{}", self.rewrite.label()));
        }
        label.push(']');
        label
    }

    /// The flow group this point evaluates through.
    #[must_use]
    pub fn flow_spec(&self) -> FlowSpec {
        let affine_clocks = match self.scheduler {
            SchedulerChoice::Reference => 0,
            SchedulerChoice::PhaseAffine { .. } => self.style.clocks(),
        };
        FlowSpec {
            scheduler: self.scheduler,
            affine_clocks,
            volts: self.volts,
            scenario: self.scenario,
            rewrite: self.rewrite,
        }
    }

    /// The versioned canonical description of everything that determines
    /// this point's evaluated numbers: the design content fingerprint,
    /// the full style tuple, the scheduler, the rewrite choice, the
    /// exact voltage bits, the derived stimulus seed and the Monte-Carlo
    /// depth. Structurally equivalent points (a named paper row and the
    /// `Custom` tuple it folds to, two gating variants that resolve to
    /// the same mode, or a rewrite the explorer folded to baseline
    /// because it left the behaviour unchanged)
    /// render identically, which is what makes the FNV-1a hash of this
    /// string both the explorer's dedup key and its persistent
    /// [`mc_core::cache::DiskCache`] key. Bit-identity knobs (threads,
    /// batch width, kernel backend) deliberately never appear.
    #[must_use]
    pub fn canonical(
        &self,
        content_fp: u64,
        computations: usize,
        seed: u64,
        power_seeds: usize,
    ) -> String {
        let mode = self.style.power_mode();
        format!(
            "mcpm-explore point v2\n\
             design={content_fp:016x}\n\
             strategy={:?}\n\
             clocks={}\n\
             mem={:?}\n\
             transfers={}\n\
             gated={} iso={} ctl={:?}\n\
             scheduler={}\n\
             affine_clocks={}\n\
             rewrite={}\n\
             volts={:016x}\n\
             seed={}\n\
             computations={computations}\n\
             power_seeds={power_seeds}\n",
            self.style.strategy(),
            self.style.clocks(),
            self.style.mem_kind(),
            self.style.transfers(),
            mode.gated_mem_clocks,
            mode.operand_isolation,
            mode.control_policy,
            self.scheduler.label(),
            self.flow_spec().affine_clocks,
            self.rewrite.label(),
            self.volts.to_bits(),
            scenario_seed(seed, self.scenario),
        )
    }
}

/// The lattice configuration: which dimensions to span.
#[derive(Debug, Clone)]
pub struct ExploreSpace {
    /// Largest clock count to consider (the five anchor rows always
    /// include 1–3 clocks regardless).
    pub n_max: u32,
    /// Supply voltages to span; the first entry is treated as nominal and
    /// hosts the anchor rows.
    pub voltages: Vec<f64>,
    /// Stretch values for the phase-affine scheduler (empty disables the
    /// scheduler dimension).
    pub stretches: Vec<u32>,
    /// Data-dependent gating variants to replicate the sweep under
    /// (default `[Baseline]` — the styles' own modes only).
    pub gating: Vec<GatingVariant>,
    /// Equivalence-checked datapath rewrites to replicate the sweep under
    /// (default `[Baseline]` — the bundled behaviours untouched).
    pub rewrites: Vec<RewriteChoice>,
    /// Stimulus-distribution scenarios per configuration (default 1;
    /// scenario 0 always uses the base seed).
    pub scenarios: u32,
}

impl Default for ExploreSpace {
    fn default() -> Self {
        ExploreSpace {
            n_max: 4,
            voltages: vec![NOMINAL_VOLTS, 3.3],
            stretches: vec![2],
            gating: vec![GatingVariant::Baseline],
            rewrites: vec![RewriteChoice::Baseline],
            scenarios: 1,
        }
    }
}

/// The five paper-table anchor styles, always enumerated first.
#[must_use]
pub fn anchor_styles() -> [DesignStyle; 5] {
    DesignStyle::paper_rows()
}

impl ExploreSpace {
    /// The large-scale preset of ROADMAP item 5: clock counts to 8, the
    /// full 2.5–5.0 V grid in 0.05 V steps (nominal first), four affine
    /// stretches, every gating variant and eight stimulus scenarios —
    /// a lattice of well over 10⁵ points per benchmark.
    #[must_use]
    pub fn scale() -> ExploreSpace {
        // Build the grid in integer millivolts so every voltage is the
        // correctly rounded f64 of an exact decimal; 4.65 V is on-grid
        // and is hoisted first as the nominal anchor host.
        let mut voltages = vec![NOMINAL_VOLTS];
        for mv in (2500..=5000).step_by(50) {
            let v = f64::from(mv) / 1000.0;
            if v != NOMINAL_VOLTS {
                voltages.push(v);
            }
        }
        ExploreSpace {
            n_max: 8,
            voltages,
            stretches: vec![1, 2, 3, 4],
            gating: GatingVariant::ALL.to_vec(),
            rewrites: RewriteChoice::ALL.to_vec(),
            scenarios: 8,
        }
    }

    /// A custom integrated/split style (integrated + latch folds back to
    /// the canonical [`DesignStyle::MultiClock`] so anchor rows and cache
    /// keys coincide).
    fn custom(strategy: Strategy, clocks: u32, mem_kind: MemKind) -> DesignStyle {
        if strategy == Strategy::Integrated && mem_kind == MemKind::Latch {
            return DesignStyle::MultiClock(clocks);
        }
        DesignStyle::Custom {
            strategy,
            clocks,
            mem_kind,
            transfers: strategy == Strategy::Integrated,
            mode: PowerMode::multiclock(),
        }
    }

    /// Compiles the space into its indexable lazy generator.
    ///
    /// The generator materialises only the per-voltage block of (style,
    /// scheduler) pairs — a few dozen entries — never the full cross
    /// product with voltages, gating variants and scenarios, so the
    /// lattice can hold 10⁵–10⁶ points in O(block) memory.
    #[must_use]
    pub fn generator(&self) -> LatticeGen {
        let mut block: Vec<(DesignStyle, SchedulerChoice)> = Vec::new();
        // Anchors: the five paper-table rows.
        for style in anchor_styles() {
            block.push((style, SchedulerChoice::Reference));
        }
        // Deeper multi-clock latch designs beyond the paper's n = 3.
        for n in 4..=self.n_max {
            block.push((DesignStyle::MultiClock(n), SchedulerChoice::Reference));
        }
        // Integrated allocation with DFFs (the latch-vs-register
        // ablation, §5.2).
        for n in 1..=self.n_max {
            block.push((
                Self::custom(Strategy::Integrated, n, MemKind::Dff),
                SchedulerChoice::Reference,
            ));
        }
        // Split allocation (§4.1), both memory kinds.
        for n in 2..=self.n_max {
            for mem in [MemKind::Latch, MemKind::Dff] {
                block.push((
                    Self::custom(Strategy::Split, n, mem),
                    SchedulerChoice::Reference,
                ));
            }
        }
        // Phase-affine schedules: latency-for-power trades.
        for &stretch in &self.stretches {
            for n in 2..=self.n_max {
                block.push((
                    DesignStyle::MultiClock(n),
                    SchedulerChoice::PhaseAffine { stretch },
                ));
            }
        }
        LatticeGen {
            block,
            voltages: self.voltages.clone(),
            gating: if self.gating.is_empty() {
                vec![GatingVariant::Baseline]
            } else {
                self.gating.clone()
            },
            rewrites: if self.rewrites.is_empty() {
                vec![RewriteChoice::Baseline]
            } else {
                self.rewrites.clone()
            },
            scenarios: self.scenarios.max(1),
        }
    }
}

/// The compiled lazy lattice: any index decodes to its point on demand.
///
/// Index layout, outermost to innermost: scenario → gating variant →
/// rewrite → voltage → block entry. Index 0..4 are therefore always the
/// five paper anchors at scenario 0, baseline gating, baseline rewrite,
/// nominal voltage — the same best-first contract the materialised
/// enumeration used to give.
#[derive(Debug, Clone)]
pub struct LatticeGen {
    block: Vec<(DesignStyle, SchedulerChoice)>,
    voltages: Vec<f64>,
    gating: Vec<GatingVariant>,
    rewrites: Vec<RewriteChoice>,
    scenarios: u32,
}

impl LatticeGen {
    /// Total number of lattice points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.block.len()
            * self.voltages.len()
            * self.gating.len()
            * self.rewrites.len()
            * self.scenarios as usize
    }

    /// Whether the lattice is empty (no voltages, or an empty block).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes lattice index `i` into its design point.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    #[must_use]
    pub fn point_at(&self, i: usize) -> DesignPoint {
        assert!(i < self.len(), "lattice index {i} out of {}", self.len());
        let b = i % self.block.len();
        let rest = i / self.block.len();
        let v = rest % self.voltages.len();
        let rest = rest / self.voltages.len();
        let r = rest % self.rewrites.len();
        let rest = rest / self.rewrites.len();
        let g = rest % self.gating.len();
        let s = rest / self.gating.len();
        let (style, scheduler) = self.block[b];
        DesignPoint {
            style: self.gating[g].apply(style),
            scheduler,
            volts: self.voltages[v],
            scenario: u32::try_from(s).expect("scenario count fits u32"),
            rewrite: self.rewrites[r],
        }
    }

    /// Iterates every point in index order (lazy; nothing is collected).
    pub fn iter(&self) -> impl Iterator<Item = DesignPoint> + '_ {
        (0..self.len()).map(|i| self.point_at(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_lead_the_enumeration() {
        let gen = ExploreSpace::default().generator();
        let head: Vec<DesignStyle> = (0..5).map(|i| gen.point_at(i).style).collect();
        assert_eq!(head, anchor_styles());
        for i in 0..5 {
            let p = gen.point_at(i);
            assert_eq!(p.scheduler, SchedulerChoice::Reference);
            assert_eq!(p.volts, NOMINAL_VOLTS);
            assert_eq!(p.scenario, 0);
        }
    }

    #[test]
    fn enumeration_is_deterministic_and_duplicate_free() {
        let a = ExploreSpace::default().generator();
        let b = ExploreSpace::default().generator();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
        let mut labels: Vec<String> = a.iter().map(|p| p.label()).collect();
        labels.sort();
        let before = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), before, "duplicate lattice points");
    }

    #[test]
    fn lattice_spans_every_dimension() {
        let space = ExploreSpace {
            gating: GatingVariant::ALL.to_vec(),
            rewrites: RewriteChoice::ALL.to_vec(),
            scenarios: 2,
            ..ExploreSpace::default()
        };
        let gen = space.generator();
        let points: Vec<DesignPoint> = gen.iter().collect();
        assert!(points.iter().any(|p| p.rewrite == RewriteChoice::Strength));
        assert!(points.iter().any(|p| p.rewrite == RewriteChoice::Balance));
        assert!(points.iter().any(|p| p.style.mem_kind() == MemKind::Dff));
        assert!(points
            .iter()
            .any(|p| p.style.strategy() == mc_alloc::Strategy::Split));
        assert!(points
            .iter()
            .any(|p| matches!(p.scheduler, SchedulerChoice::PhaseAffine { .. })));
        assert!(points.iter().any(|p| p.volts < NOMINAL_VOLTS));
        assert!(points.iter().any(|p| p.style.clocks() == 4));
        assert!(points.iter().any(|p| p.scenario == 1));
        assert!(points
            .iter()
            .any(|p| p.style.power_mode().gated_mem_clocks
                && !p.style.power_mode().operand_isolation));
        // Integrated+latch folds to the canonical MultiClock variant.
        assert!(points.iter().all(
            |p| !matches!(p.style, DesignStyle::Custom { mem_kind, strategy, mode, .. }
                if mem_kind == MemKind::Latch
                    && strategy == mc_alloc::Strategy::Integrated
                    && mode == PowerMode::multiclock())
        ));
    }

    #[test]
    fn flow_specs_group_by_scheduler_voltage_and_scenario() {
        let gen = ExploreSpace::default().generator();
        let mut keys: Vec<(u64, u32, u64, u32, u64)> =
            gen.iter().map(|p| p.flow_spec().key()).collect();
        keys.sort_unstable();
        keys.dedup();
        // 2 voltages × (1 reference + 3 affine clock counts) = 8 groups.
        assert_eq!(keys.len(), 8);
        for p in gen.iter() {
            let spec = p.flow_spec();
            assert_eq!(spec.volts, p.volts);
            assert_eq!(spec.scheduler, p.scheduler);
            assert_eq!(spec.scenario, p.scenario);
        }
    }

    #[test]
    fn gating_variants_fold_back_to_equivalent_named_styles() {
        // The non-gated conventional row under the free-running variant
        // *is* the non-gated row; dedup later serves it for free.
        let s = GatingVariant::FreeRunning.apply(DesignStyle::ConventionalNonGated);
        assert_eq!(s, DesignStyle::ConventionalNonGated);
        let s = GatingVariant::IsolatedZero.apply(DesignStyle::ConventionalGated);
        assert_eq!(s, DesignStyle::ConventionalGated);
        // A genuinely new mode becomes a Custom tuple with the same
        // structural axes.
        let s = GatingVariant::DataGated.apply(DesignStyle::MultiClock(3));
        assert_eq!(s.clocks(), 3);
        assert_eq!(s.mem_kind(), MemKind::Latch);
        assert!(s.power_mode().gated_mem_clocks);
        assert!(!s.power_mode().operand_isolation);
    }

    #[test]
    fn canonical_keys_coincide_exactly_for_structural_twins() {
        let named = DesignPoint {
            style: DesignStyle::ConventionalNonGated,
            scheduler: SchedulerChoice::Reference,
            volts: NOMINAL_VOLTS,
            scenario: 0,
            rewrite: RewriteChoice::Baseline,
        };
        let folded = DesignPoint {
            style: GatingVariant::FreeRunning.apply(DesignStyle::ConventionalNonGated),
            ..named
        };
        assert_eq!(
            named.canonical(7, 60, 42, 1),
            folded.canonical(7, 60, 42, 1)
        );
        // Any knob that changes results changes the key.
        assert_ne!(named.canonical(7, 60, 42, 1), named.canonical(8, 60, 42, 1));
        assert_ne!(named.canonical(7, 60, 42, 1), named.canonical(7, 61, 42, 1));
        assert_ne!(named.canonical(7, 60, 42, 1), named.canonical(7, 60, 43, 1));
        assert_ne!(named.canonical(7, 60, 42, 1), named.canonical(7, 60, 42, 2));
        // The rewrite choice is part of the key and of the label.
        let rewritten = DesignPoint {
            rewrite: RewriteChoice::Balance,
            ..named
        };
        assert_ne!(
            named.canonical(7, 60, 42, 1),
            rewritten.canonical(7, 60, 42, 1)
        );
        assert!(rewritten
            .canonical(7, 60, 42, 1)
            .contains("rewrite=balance"));
        assert!(named.canonical(7, 60, 42, 1).contains("rewrite=baseline"));
        assert!(rewritten.label().contains("rw:balance"));
        assert!(!named.label().contains("rw:"));
    }

    #[test]
    fn scenario_seeds_are_distinct_streams_anchored_at_the_base_seed() {
        assert_eq!(scenario_seed(42, 0), 42);
        let mut seen: Vec<u64> = (0..8).map(|s| scenario_seed(42, s)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8, "scenario seeds must not collide");
        assert_ne!(scenario_seed(42, 1), scenario_seed(43, 1));
    }

    #[test]
    fn scale_preset_exceeds_a_hundred_thousand_points() {
        let gen = ExploreSpace::scale().generator();
        assert!(gen.len() >= 100_000, "scale lattice = {}", gen.len());
        // Still anchored: the first five points are the paper rows at
        // nominal voltage, baseline gating, scenario 0.
        let head: Vec<DesignStyle> = (0..5).map(|i| gen.point_at(i).style).collect();
        assert_eq!(head, anchor_styles());
        assert_eq!(gen.point_at(0).volts, NOMINAL_VOLTS);
        // The voltage grid is the exact decimal grid.
        let space = ExploreSpace::scale();
        assert_eq!(space.voltages.len(), 51);
        assert!(space.voltages.contains(&2.5));
        assert!(space.voltages.contains(&5.0));
    }
}
