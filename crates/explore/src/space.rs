//! The configuration lattice: every design decision the paper leaves to
//! the engineer, enumerated as explicit candidate points.
//!
//! A [`DesignPoint`] fixes the clock count `n`, the allocation strategy
//! (conventional ± gating, split, integrated), the memory-element kind
//! (latch vs. DFF), the scheduler (the benchmark's reference schedule or
//! the phase-affine scheduler) and the supply voltage. [`ExploreSpace`]
//! enumerates the full lattice in a deterministic *best-first* order: the
//! five paper-table anchor rows come first (so any budget ≥ 5 still
//! evaluates the paper's own configurations), then the remaining
//! nominal-voltage points from most to least promising under the paper's
//! findings, then the voltage-scaled replicas.

use mc_alloc::Strategy;
use mc_core::passes::Behavior;
use mc_core::{DesignStyle, Flow};
use mc_dfg::benchmarks::Benchmark;
use mc_rtl::PowerMode;
use mc_tech::{MemKind, TechLibrary};

/// The nominal supply voltage of the bundled technology library (V).
pub const NOMINAL_VOLTS: f64 = 4.65;

/// Which scheduler produced the behaviour a point is evaluated on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerChoice {
    /// The benchmark's reference schedule — the paper's input.
    Reference,
    /// The phase-affine scheduler
    /// ([`mc_dfg::scheduler::phase_affine`]), which trades up to
    /// `stretch` extra control steps for phase-aligned operations
    /// (latency for power).
    PhaseAffine {
        /// Extra control steps the affine schedule may add.
        stretch: u32,
    },
}

impl SchedulerChoice {
    /// Short label used in tables and JSON (`reference` / `affine+s`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SchedulerChoice::Reference => "reference".to_owned(),
            SchedulerChoice::PhaseAffine { stretch } => format!("affine+{stretch}"),
        }
    }
}

/// Everything one flow group shares: the scheduler that produced the
/// behaviour (plus the clock count the affine scheduler aligned to) and
/// the supply voltage. All points of a group evaluate through one shared
/// [`Flow`], so they share its content-keyed artifact cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// The scheduler.
    pub scheduler: SchedulerChoice,
    /// The clock count the affine scheduler aligned to (0 for the
    /// reference schedule, which is clock-independent).
    pub affine_clocks: u32,
    /// Supply voltage (V).
    pub volts: f64,
}

impl FlowSpec {
    /// Materialises the flow for `bm` under this spec.
    #[must_use]
    pub fn build(&self, bm: &Benchmark, computations: usize, seed: u64) -> Flow {
        let behavior = match self.scheduler {
            SchedulerChoice::Reference => Behavior::for_benchmark(bm),
            SchedulerChoice::PhaseAffine { stretch } => Behavior::new(
                bm.dfg.clone(),
                mc_dfg::scheduler::phase_affine(&bm.dfg, self.affine_clocks, stretch),
            ),
        };
        Flow::from_behavior(behavior)
            .with_computations(computations)
            .with_seed(seed)
            .with_tech(TechLibrary::vsc450().at_voltage(self.volts))
    }
}

/// One candidate configuration of the lattice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// The design style (strategy, clocks, memory kind, power mode).
    pub style: DesignStyle,
    /// The scheduler the behaviour was scheduled with.
    pub scheduler: SchedulerChoice,
    /// Supply voltage (V).
    pub volts: f64,
    /// Index into the lattice's flow-group table.
    pub flow: usize,
}

impl DesignPoint {
    /// Human-readable point label: style, scheduler, voltage.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{} [{}, {:.2} V]",
            self.style.label(),
            self.scheduler.label(),
            self.volts
        )
    }
}

/// The enumerated lattice: the flow groups plus the candidate points in
/// best-first order (every point's `flow` indexes into `flows`).
#[derive(Debug, Clone)]
pub struct Lattice {
    /// The distinct (scheduler, voltage) flow groups.
    pub flows: Vec<FlowSpec>,
    /// The candidate points, best-first.
    pub points: Vec<DesignPoint>,
}

/// The lattice configuration: which dimensions to span.
#[derive(Debug, Clone)]
pub struct ExploreSpace {
    /// Largest clock count to consider (the five anchor rows always
    /// include 1–3 clocks regardless).
    pub n_max: u32,
    /// Supply voltages to span; the first entry is treated as nominal and
    /// hosts the anchor rows.
    pub voltages: Vec<f64>,
    /// Stretch values for the phase-affine scheduler (empty disables the
    /// scheduler dimension).
    pub stretches: Vec<u32>,
}

impl Default for ExploreSpace {
    fn default() -> Self {
        ExploreSpace {
            n_max: 4,
            voltages: vec![NOMINAL_VOLTS, 3.3],
            stretches: vec![2],
        }
    }
}

/// The five paper-table anchor styles, always enumerated first.
#[must_use]
pub fn anchor_styles() -> [DesignStyle; 5] {
    DesignStyle::paper_rows()
}

impl ExploreSpace {
    /// A custom integrated/split style (integrated + latch folds back to
    /// the canonical [`DesignStyle::MultiClock`] so anchor rows and cache
    /// keys coincide).
    fn custom(strategy: Strategy, clocks: u32, mem_kind: MemKind) -> DesignStyle {
        if strategy == Strategy::Integrated && mem_kind == MemKind::Latch {
            return DesignStyle::MultiClock(clocks);
        }
        DesignStyle::Custom {
            strategy,
            clocks,
            mem_kind,
            transfers: strategy == Strategy::Integrated,
            mode: PowerMode::multiclock(),
        }
    }

    /// Enumerates the full lattice in deterministic best-first order.
    ///
    /// Order per voltage (nominal first): the five anchor rows, deeper
    /// multi-clock latch designs (`n = 4..=n_max`), integrated-DFF
    /// ablation points, split-allocation points, then phase-affine
    /// schedules. Voltage-scaled replicas follow the nominal block in
    /// `voltages` order.
    #[must_use]
    pub fn enumerate(&self) -> Lattice {
        let mut flows: Vec<FlowSpec> = Vec::new();
        let mut points: Vec<DesignPoint> = Vec::new();
        let flow_index = |flows: &mut Vec<FlowSpec>, spec: FlowSpec| -> usize {
            match flows.iter().position(|f| *f == spec) {
                Some(i) => i,
                None => {
                    flows.push(spec);
                    flows.len() - 1
                }
            }
        };
        for &volts in &self.voltages {
            let reference = FlowSpec {
                scheduler: SchedulerChoice::Reference,
                affine_clocks: 0,
                volts,
            };
            let ref_flow = flow_index(&mut flows, reference);
            let push_ref = |points: &mut Vec<DesignPoint>, style: DesignStyle| {
                points.push(DesignPoint {
                    style,
                    scheduler: SchedulerChoice::Reference,
                    volts,
                    flow: ref_flow,
                });
            };
            // Anchors: the five paper-table rows.
            for style in anchor_styles() {
                push_ref(&mut points, style);
            }
            // Deeper multi-clock latch designs beyond the paper's n = 3.
            for n in 4..=self.n_max {
                push_ref(&mut points, DesignStyle::MultiClock(n));
            }
            // Integrated allocation with DFFs (the latch-vs-register
            // ablation, §5.2).
            for n in 1..=self.n_max {
                push_ref(
                    &mut points,
                    Self::custom(Strategy::Integrated, n, MemKind::Dff),
                );
            }
            // Split allocation (§4.1), both memory kinds.
            for n in 2..=self.n_max {
                for mem in [MemKind::Latch, MemKind::Dff] {
                    push_ref(&mut points, Self::custom(Strategy::Split, n, mem));
                }
            }
            // Phase-affine schedules: latency-for-power trades.
            for &stretch in &self.stretches {
                for n in 2..=self.n_max {
                    let spec = FlowSpec {
                        scheduler: SchedulerChoice::PhaseAffine { stretch },
                        affine_clocks: n,
                        volts,
                    };
                    let flow = flow_index(&mut flows, spec);
                    points.push(DesignPoint {
                        style: DesignStyle::MultiClock(n),
                        scheduler: SchedulerChoice::PhaseAffine { stretch },
                        volts,
                        flow,
                    });
                }
            }
        }
        Lattice { flows, points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_lead_the_enumeration() {
        let lattice = ExploreSpace::default().enumerate();
        let head: Vec<DesignStyle> = lattice.points[..5].iter().map(|p| p.style).collect();
        assert_eq!(head, anchor_styles());
        assert!(lattice.points[..5]
            .iter()
            .all(|p| p.scheduler == SchedulerChoice::Reference && p.volts == NOMINAL_VOLTS));
    }

    #[test]
    fn enumeration_is_deterministic_and_duplicate_free() {
        let a = ExploreSpace::default().enumerate();
        let b = ExploreSpace::default().enumerate();
        assert_eq!(a.points.len(), b.points.len());
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x, y);
        }
        let mut labels: Vec<String> = a.points.iter().map(DesignPoint::label).collect();
        labels.sort();
        let before = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), before, "duplicate lattice points");
    }

    #[test]
    fn lattice_spans_every_dimension() {
        let lattice = ExploreSpace::default().enumerate();
        let points = &lattice.points;
        assert!(points.iter().any(|p| p.style.mem_kind() == MemKind::Dff));
        assert!(points
            .iter()
            .any(|p| p.style.strategy() == mc_alloc::Strategy::Split));
        assert!(points
            .iter()
            .any(|p| matches!(p.scheduler, SchedulerChoice::PhaseAffine { .. })));
        assert!(points.iter().any(|p| p.volts < NOMINAL_VOLTS));
        assert!(points.iter().any(|p| p.style.clocks() == 4));
        // Integrated+latch folds to the canonical MultiClock variant.
        assert!(points.iter().all(
            |p| !matches!(p.style, DesignStyle::Custom { mem_kind, strategy, .. }
                if mem_kind == MemKind::Latch && strategy == mc_alloc::Strategy::Integrated)
        ));
    }

    #[test]
    fn flow_groups_are_shared_per_scheduler_and_voltage() {
        let lattice = ExploreSpace::default().enumerate();
        // 2 voltages × (1 reference + 3 affine clock counts) = 8 groups.
        assert_eq!(lattice.flows.len(), 8);
        for p in &lattice.points {
            let spec = lattice.flows[p.flow];
            assert_eq!(spec.volts, p.volts);
            assert_eq!(spec.scheduler, p.scheduler);
        }
    }
}
