//! A deterministic work-stealing scoped-thread pool.
//!
//! Tasks are identified by index into a fixed, deterministically ordered
//! task list. Each worker owns a deque seeded round-robin; it pops its
//! own work from the front and, when empty, steals from the *back* of a
//! victim chosen by its private [`Xoshiro256`] stream (seeded from the
//! run seed and the worker id). Results are written into slots keyed by
//! task index, so the output vector — and anything computed from it — is
//! bit-identical regardless of which worker ran which task, how many
//! workers ran, or how the OS scheduled them: `run_indexed(n, k, seed,
//! f)` equals `(0..n).map(f)` for every `k`. The stealing only perturbs
//! *wall-clock*, never *values*, because every task is a pure function of
//! its index.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use mc_prng::{SplitMix64, Xoshiro256};

/// The default worker count: the machine's available parallelism, capped
/// at 8 (the lattice sizes here saturate well before that).
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(8)
}

/// Runs `f(0..tasks)` on up to `threads` scoped worker threads with
/// work-stealing, returning the results in task order. Deterministic: the
/// returned vector is identical to the sequential `(0..tasks).map(f)`.
///
/// # Panics
///
/// Propagates a panic from `f` when the scope joins.
pub fn run_indexed<T, F>(tasks: usize, threads: usize, seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, tasks.max(1));
    if threads <= 1 {
        return (0..tasks)
            .map(|i| {
                let _span = mc_trace::span("pool.task");
                mc_trace::count("pool.tasks", 1);
                f(i)
            })
            .collect();
    }
    // Round-robin initial distribution: worker w owns tasks w, w+k, ...
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((w..tasks).step_by(threads).collect()))
        .collect();
    let results: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let completed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..threads {
            let (queues, results, completed, f) = (&queues, &results, &completed, &f);
            scope.spawn(move || {
                let mut rng =
                    Xoshiro256::seed_from_u64(SplitMix64::new(seed ^ (w as u64 + 1)).next_u64());
                loop {
                    // Own queue first, front-out (cache-friendly order)...
                    let mut task = queues[w].lock().expect("queue lock").pop_front();
                    // ...then steal from the back of random victims.
                    if task.is_none() {
                        for _ in 0..threads * 2 {
                            let victim = rng.below(threads as u64) as usize;
                            if victim == w {
                                continue;
                            }
                            task = queues[victim].lock().expect("queue lock").pop_back();
                            if task.is_some() {
                                // Scheduling-dependent by nature: which
                                // worker drains first varies run to run.
                                mc_trace::count_runtime("pool.steals", 1);
                                break;
                            }
                        }
                    }
                    match task {
                        Some(i) => {
                            let _span = mc_trace::span("pool.task");
                            mc_trace::count("pool.tasks", 1);
                            let out = f(i);
                            *results[i].lock().expect("result lock") = Some(out);
                            completed.fetch_add(1, Ordering::SeqCst);
                        }
                        None => {
                            if completed.load(Ordering::SeqCst) >= tasks {
                                break;
                            }
                            // Stragglers still running elsewhere; the pool
                            // is for coarse tasks, so a yield is cheap.
                            std::thread::yield_now();
                        }
                    }
                }
                // Must be explicit: the scope counts this worker as done
                // when the closure returns, before thread-local
                // destructors run, so a take() after the scope joins
                // would race the automatic flush-on-exit.
                mc_trace::flush();
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result lock")
                .expect("every task ran exactly once")
        })
        .collect()
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent bounded worker pool over the same scoped-thread
/// discipline as [`run_indexed`], for long-lived consumers (the `mcpm
/// serve` connection handlers) that submit work one job at a time instead
/// of as a fixed task list.
///
/// Jobs drain from one shared queue into `threads` workers; dropping (or
/// [`WorkerPool::join`]ing) the pool closes the queue, lets every already
/// submitted job finish, and joins the workers — a graceful drain, never
/// an abort. Each job runs under the usual `pool.task` span and
/// `pool.tasks` counter, and workers flush their trace buffers before
/// exiting (the same hand-off contract `run_indexed` documents). A
/// panicking job is caught and discarded so one bad request cannot shrink
/// the pool.
pub struct WorkerPool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (floored at 1) draining a shared queue.
    #[must_use]
    pub fn new(threads: usize) -> WorkerPool {
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads.max(1))
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || {
                    loop {
                        // Hold the lock only for the dequeue, not the job.
                        let job = receiver.lock().expect("pool queue lock").recv();
                        match job {
                            Ok(job) => {
                                let _span = mc_trace::span("pool.task");
                                mc_trace::count("pool.tasks", 1);
                                // A panic must not kill the worker: the
                                // pool outlives any single job.
                                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            }
                            Err(_) => break, // queue closed: drain complete
                        }
                    }
                    mc_trace::flush();
                })
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Queues a job; some worker runs it as soon as one is free. Returns
    /// `false` if the pool is already shutting down.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.sender {
            Some(tx) => tx.send(Box::new(job)).is_ok(),
            None => false,
        }
    }

    /// Closes the queue, waits for every submitted job to finish, and
    /// joins the workers.
    pub fn join(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.sender.take(); // closes the channel once all clones drop
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn matches_sequential_for_every_thread_count() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(13);
        let expected: Vec<u64> = (0..97).map(f).collect();
        for threads in [1, 2, 3, 4, 7, 16] {
            assert_eq!(run_indexed(97, threads, 42, f), expected, "k={threads}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let _ = run_indexed(64, 4, 7, |i| counts[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "task {i}");
        }
    }

    #[test]
    fn stealing_keeps_results_in_task_order_under_skew() {
        // Front-load one worker's queue with slow tasks so others steal.
        let f = |i: usize| {
            if i.is_multiple_of(4) {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 3 + 1
        };
        let expected: Vec<usize> = (0..32).map(f).collect();
        assert_eq!(run_indexed(32, 4, 1, f), expected);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(run_indexed(0, 4, 0, |i| i).is_empty());
        assert_eq!(run_indexed(1, 8, 0, |i| i + 10), vec![10]);
        assert_eq!(run_indexed(3, 200, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn default_threads_is_sane() {
        let t = default_threads();
        assert!((1..=8).contains(&t));
    }

    #[test]
    fn worker_pool_runs_every_submitted_job() {
        let pool = WorkerPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let done = Arc::clone(&done);
            assert!(pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn worker_pool_survives_panicking_job() {
        let pool = WorkerPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        pool.submit(|| panic!("bad job"));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn worker_pool_drop_drains_queue() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            for _ in 0..16 {
                let done = Arc::clone(&done);
                pool.submit(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // Drop must wait for all 16, not abort mid-queue.
        assert_eq!(done.load(Ordering::SeqCst), 16);
    }
}
