//! In-process proof, through the trace machinery, that a warm explorer
//! re-run against the persistent cross-run cache performs zero pipeline
//! work: `flow.runs` stays at exactly 0 while every point is served from
//! the disk store or structural dedup.
//!
//! This lives in its own test binary on purpose — `mc_trace` counters
//! are process-global, and any other test recording spans in parallel
//! would pollute the totals asserted here.

use mc_dfg::benchmarks;
use mc_explore::Explorer;

#[test]
fn warm_rerun_records_zero_flow_runs() {
    let cache_dir =
        std::env::temp_dir().join(format!("mc-explore-test-{}-warm-trace", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let bm = benchmarks::hal();
    let explorer = || {
        Explorer::new()
            .with_computations(30)
            .with_budget(8)
            .with_cache_dir(&cache_dir)
    };

    // Cold pass populates the store; its counters are drained and
    // discarded so the warm assertions below are exact.
    let cold = explorer().run(&bm).expect("cold run");
    assert!(cold.flow_evals > 0);
    mc_trace::enable();
    let _ = mc_trace::take();

    let warm = explorer().run(&bm).expect("warm run");

    mc_trace::disable();
    let trace = mc_trace::take();
    let _ = std::fs::remove_dir_all(&cache_dir);
    let counter = |name: &str| trace.runtime_counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("flow.runs"), 0, "{:?}", trace.runtime_counters);
    assert_eq!(counter("explore.flow_evals"), 0);
    assert_eq!(
        counter("explore.cache.disk_hits") + warm.dedup_served,
        warm.evaluated as u64
    );
    assert_eq!(cold.to_json(), warm.to_json());
}
