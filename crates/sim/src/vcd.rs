//! VCD (Value Change Dump) export of simulation traces, so synthesised
//! designs can be inspected in any standard waveform viewer (GTKWave,
//! Surfer, …).
//!
//! The dump models one control step as one timescale unit and emits every
//! net of the design as a `wire` of the datapath width, grouped under a
//! module scope named after the design.

use std::fmt::Write as _;

use mc_rtl::Netlist;

use crate::engine::SimResult;

/// Identifier characters permitted by the VCD grammar (printable ASCII).
const ID_CHARS: &[u8] = b"!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~";

/// Encodes a dense index as a short VCD identifier.
fn vcd_id(mut i: usize) -> String {
    let base = ID_CHARS.len();
    let mut s = String::new();
    loop {
        s.push(ID_CHARS[i % base] as char);
        i /= base;
        if i == 0 {
            break;
        }
    }
    s
}

/// Renders a simulation trace as VCD text.
///
/// `result` must have been produced with tracing enabled
/// ([`SimConfig::with_trace`](crate::SimConfig::with_trace)); each trace
/// row becomes one timestep.
///
/// # Errors
///
/// Returns a descriptive message if the result carries no trace.
pub fn to_vcd(netlist: &Netlist, result: &SimResult) -> Result<String, NoTrace> {
    let trace = result.trace.as_ref().ok_or(NoTrace)?;
    let width = netlist.width();
    let mut s = String::new();
    let _ = writeln!(s, "$date multiclock simulation $end");
    let _ = writeln!(s, "$version multiclock mc-sim $end");
    let _ = writeln!(s, "$timescale 1 ns $end");
    let _ = writeln!(s, "$scope module {} $end", sanitize(netlist.name()));
    for n in netlist.net_ids() {
        let _ = writeln!(
            s,
            "$var wire {width} {} {} $end",
            vcd_id(n.index()),
            sanitize(netlist.net_name(n))
        );
    }
    let _ = writeln!(s, "$upscope $end");
    let _ = writeln!(s, "$enddefinitions $end");

    let mut prev: Option<&Vec<u64>> = None;
    for (t, row) in trace.iter().enumerate() {
        let _ = writeln!(s, "#{t}");
        if t == 0 {
            let _ = writeln!(s, "$dumpvars");
        }
        for n in netlist.net_ids() {
            let v = row[n.index()];
            let changed = prev.is_none_or(|p| p[n.index()] != v);
            if changed {
                let _ = writeln!(s, "b{:0w$b} {}", v, vcd_id(n.index()), w = width as usize);
            }
        }
        if t == 0 {
            let _ = writeln!(s, "$end");
        }
        prev = Some(row);
    }
    let _ = writeln!(s, "#{}", trace.len());
    Ok(s)
}

/// VCD identifiers and reference names must not contain whitespace.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

/// Error returned when VCD export is asked for an untraced simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoTrace;

impl std::fmt::Display for NoTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation was run without tracing; enable SimConfig::with_trace"
        )
    }
}

impl std::error::Error for NoTrace {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use mc_alloc::{allocate, AllocOptions, Strategy};
    use mc_clocks::ClockScheme;
    use mc_dfg::benchmarks;
    use mc_rtl::PowerMode;

    fn traced() -> (Netlist, SimResult) {
        let bm = benchmarks::motivating();
        let dp = allocate(
            &bm.dfg,
            &bm.schedule,
            &AllocOptions::new(Strategy::Integrated, ClockScheme::new(2).unwrap()),
        )
        .unwrap();
        let cfg = SimConfig::new(PowerMode::multiclock(), 2, 7).with_trace();
        let res = simulate(&dp.netlist, &cfg);
        (dp.netlist, res)
    }

    #[test]
    fn vcd_contains_header_and_all_nets() {
        let (nl, res) = traced();
        let vcd = to_vcd(&nl, &res).unwrap();
        assert!(vcd.starts_with("$date"));
        assert!(vcd.contains("$enddefinitions $end"));
        for n in nl.net_ids() {
            assert!(vcd.contains(nl.net_name(n)), "{} missing", nl.net_name(n));
        }
    }

    #[test]
    fn vcd_has_one_timestamp_per_step_plus_final() {
        let (nl, res) = traced();
        let vcd = to_vcd(&nl, &res).unwrap();
        let stamps = vcd.lines().filter(|l| l.starts_with('#')).count();
        assert_eq!(stamps as u64, res.activity.steps + 1);
    }

    #[test]
    fn vcd_values_have_datapath_width() {
        let (nl, res) = traced();
        let vcd = to_vcd(&nl, &res).unwrap();
        let val_line = vcd
            .lines()
            .find(|l| l.starts_with('b'))
            .expect("dump contains values");
        let bits = val_line[1..].split(' ').next().unwrap();
        assert_eq!(bits.len(), nl.width() as usize);
    }

    #[test]
    fn untraced_simulation_is_rejected() {
        let bm = benchmarks::motivating();
        let dp = allocate(
            &bm.dfg,
            &bm.schedule,
            &AllocOptions::new(Strategy::Integrated, ClockScheme::new(2).unwrap()),
        )
        .unwrap();
        let res = simulate(&dp.netlist, &SimConfig::new(PowerMode::multiclock(), 2, 7));
        assert_eq!(to_vcd(&dp.netlist, &res), Err(NoTrace));
    }

    #[test]
    fn vcd_ids_are_unique_and_printable() {
        let ids: Vec<String> = (0..500).map(vcd_id).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        for id in ids {
            assert!(id.bytes().all(|b| (33..=126).contains(&b)));
        }
    }
}
