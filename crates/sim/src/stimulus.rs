//! Input-stimulus models. The paper evaluates with uniform random vectors
//! ("a large number of random inputs"); real signal-processing inputs are
//! *correlated* (small sample-to-sample deltas), which lowers switching
//! activity everywhere. These generators make that sensitivity measurable.

use std::collections::BTreeMap;

use mc_prng::Xoshiro256;

use mc_rtl::Netlist;

/// How input vectors evolve from one computation to the next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stimulus {
    /// Independent uniform values every computation — the paper's setup
    /// and the default everywhere else in this workspace.
    UniformRandom,
    /// A random walk: each input moves by a uniformly chosen step in
    /// `-delta..=delta` from its previous value (wrapping in the datapath
    /// width). Models correlated sampled signals.
    RandomWalk {
        /// Maximum per-computation change.
        delta: u64,
    },
    /// The same vector every computation (idle-channel behaviour).
    Constant,
}

/// Flat stimulus storage: one contiguous `Vec<u64>` holding every input
/// value of every computation, with no per-step map allocation.
///
/// `values[c * names.len() + i]` is the value of primary input `i` — in
/// [`Netlist::inputs`] port order — for computation `c`. This is the
/// lane-friendly layout the batched kernel binds directly; the map API
/// ([`Stimulus::vectors`]) is a thin wrapper that materialises
/// `BTreeMap`s from these rows on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatStimulus {
    /// Primary-input names, in netlist port order.
    pub names: Vec<String>,
    /// `computations × names.len()` values, row per computation.
    pub values: Vec<u64>,
}

impl FlatStimulus {
    /// Number of generated computations.
    #[must_use]
    pub fn computations(&self) -> usize {
        if self.names.is_empty() {
            0
        } else {
            self.values.len() / self.names.len()
        }
    }

    /// The input row of computation `c`, in port order.
    #[must_use]
    pub fn row(&self, c: usize) -> &[u64] {
        let n = self.names.len();
        &self.values[c * n..(c + 1) * n]
    }

    /// Materialises the name-keyed vectors (one map per computation).
    #[must_use]
    pub fn to_vectors(&self) -> Vec<BTreeMap<String, u64>> {
        (0..self.computations())
            .map(|c| {
                self.names
                    .iter()
                    .zip(self.row(c))
                    .map(|(n, &v)| (n.clone(), v))
                    .collect()
            })
            .collect()
    }
}

impl Stimulus {
    /// Generates `computations` input rows for `netlist`'s primary
    /// inputs, deterministically from `seed`, into flat storage.
    ///
    /// Draw order matches the historical map-based generator exactly —
    /// initial values in port order, per-computation updates in sorted
    /// name order — so [`Stimulus::vectors`] (the wrapper over this) is
    /// bit-identical to its pre-flat implementation.
    #[must_use]
    pub fn flat_vectors(&self, netlist: &Netlist, computations: usize, seed: u64) -> FlatStimulus {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mask = (1u64 << netlist.width()) - 1;
        let names: Vec<String> = netlist.inputs().iter().map(|(n, _)| n.clone()).collect();
        let n = names.len();
        // The map generator updated values in BTreeMap (sorted-name)
        // order; replay that order against the port-order storage.
        let mut sorted: Vec<usize> = (0..n).collect();
        sorted.sort_by(|&a, &b| names[a].cmp(&names[b]));

        let mut values = Vec::with_capacity(computations * n);
        if computations == 0 {
            return FlatStimulus { names, values };
        }
        for _ in 0..n {
            values.push(rng.next_u64() & mask);
        }
        for c in 1..computations {
            let (prev, row) = {
                values.extend_from_within((c - 1) * n..c * n);
                values.split_at_mut(c * n)
            };
            let prev = &prev[(c - 1) * n..];
            match *self {
                Stimulus::UniformRandom => {
                    for &i in &sorted {
                        row[i] = rng.next_u64() & mask;
                    }
                }
                Stimulus::RandomWalk { delta } => {
                    let d = delta.min(mask);
                    for &i in &sorted {
                        let step = rng.range_inclusive(0, 2 * d) as i64 - d as i64;
                        row[i] = (prev[i].wrapping_add(step as u64)) & mask;
                    }
                }
                Stimulus::Constant => {}
            }
        }
        FlatStimulus { names, values }
    }

    /// Generates `computations` input vectors for `netlist`'s primary
    /// inputs, deterministically from `seed`. Thin map-keyed wrapper over
    /// [`Stimulus::flat_vectors`].
    #[must_use]
    pub fn vectors(
        &self,
        netlist: &Netlist,
        computations: usize,
        seed: u64,
    ) -> Vec<BTreeMap<String, u64>> {
        self.flat_vectors(netlist, computations, seed).to_vectors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_with_inputs;
    use mc_alloc::{allocate, AllocOptions, Strategy};
    use mc_clocks::ClockScheme;
    use mc_dfg::benchmarks;
    use mc_rtl::PowerMode;

    fn netlist() -> Netlist {
        let bm = benchmarks::biquad();
        allocate(
            &bm.dfg,
            &bm.schedule,
            &AllocOptions::new(Strategy::Integrated, ClockScheme::new(2).unwrap()),
        )
        .unwrap()
        .netlist
    }

    /// The pre-flat map-based generator, kept verbatim as the reference:
    /// the flat path must reproduce its RNG draw order bit-for-bit.
    fn legacy_vectors(
        stim: &Stimulus,
        netlist: &Netlist,
        computations: usize,
        seed: u64,
    ) -> Vec<BTreeMap<String, u64>> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mask = (1u64 << netlist.width()) - 1;
        let names: Vec<String> = netlist.inputs().iter().map(|(n, _)| n.clone()).collect();
        let mut current: BTreeMap<String, u64> = names
            .iter()
            .map(|n| (n.clone(), rng.next_u64() & mask))
            .collect();
        let mut out = Vec::with_capacity(computations);
        for c in 0..computations {
            if c > 0 {
                match *stim {
                    Stimulus::UniformRandom => {
                        for v in current.values_mut() {
                            *v = rng.next_u64() & mask;
                        }
                    }
                    Stimulus::RandomWalk { delta } => {
                        let d = delta.min(mask);
                        for v in current.values_mut() {
                            let step = rng.range_inclusive(0, 2 * d) as i64 - d as i64;
                            *v = (v.wrapping_add(step as u64)) & mask;
                        }
                    }
                    Stimulus::Constant => {}
                }
            }
            out.push(current.clone());
        }
        out
    }

    #[test]
    fn flat_path_matches_the_legacy_map_generator() {
        let nl = netlist();
        for stim in [
            Stimulus::UniformRandom,
            Stimulus::RandomWalk { delta: 3 },
            Stimulus::Constant,
        ] {
            for computations in [0usize, 1, 2, 17] {
                assert_eq!(
                    stim.vectors(&nl, computations, 42),
                    legacy_vectors(&stim, &nl, computations, 42),
                    "{stim:?} x{computations}"
                );
            }
        }
    }

    #[test]
    fn flat_rows_index_in_port_order() {
        let nl = netlist();
        let flat = Stimulus::UniformRandom.flat_vectors(&nl, 6, 5);
        assert_eq!(flat.computations(), 6);
        assert_eq!(flat.names.len(), nl.inputs().len());
        let maps = flat.to_vectors();
        for (c, map) in maps.iter().enumerate() {
            for (i, name) in flat.names.iter().enumerate() {
                assert_eq!(flat.row(c)[i], map[name]);
            }
        }
    }

    #[test]
    fn vectors_are_deterministic_and_complete() {
        let nl = netlist();
        let a = Stimulus::UniformRandom.vectors(&nl, 10, 7);
        let b = Stimulus::UniformRandom.vectors(&nl, 10, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        for v in &a {
            assert_eq!(v.len(), nl.inputs().len());
        }
    }

    #[test]
    fn constant_stimulus_never_changes() {
        let nl = netlist();
        let v = Stimulus::Constant.vectors(&nl, 5, 3);
        for w in &v[1..] {
            assert_eq!(*w, v[0]);
        }
    }

    #[test]
    fn random_walk_steps_are_bounded() {
        let nl = netlist();
        let mask = (1u64 << nl.width()) - 1;
        let delta = 2u64;
        let v = Stimulus::RandomWalk { delta }.vectors(&nl, 50, 9);
        for w in v.windows(2) {
            for (name, &val) in &w[1] {
                let prev = w[0][name];
                // Wrapping distance on the ring of size mask+1.
                let diff = val.wrapping_sub(prev) & mask;
                let dist = diff.min((mask + 1) - diff);
                assert!(dist <= delta, "{name}: {prev} -> {val}");
            }
        }
    }

    #[test]
    fn correlated_inputs_switch_less_than_random() {
        let nl = netlist();
        let random = Stimulus::UniformRandom.vectors(&nl, 200, 11);
        let walk = Stimulus::RandomWalk { delta: 1 }.vectors(&nl, 200, 11);
        let r = simulate_with_inputs(&nl, PowerMode::multiclock(), &random, false);
        let w = simulate_with_inputs(&nl, PowerMode::multiclock(), &walk, false);
        assert!(
            w.activity.total_net_toggles() < r.activity.total_net_toggles(),
            "walk {} vs random {}",
            w.activity.total_net_toggles(),
            r.activity.total_net_toggles()
        );
    }
}
