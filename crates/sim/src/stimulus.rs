//! Input-stimulus models. The paper evaluates with uniform random vectors
//! ("a large number of random inputs"); real signal-processing inputs are
//! *correlated* (small sample-to-sample deltas), which lowers switching
//! activity everywhere. These generators make that sensitivity measurable.

use std::collections::BTreeMap;

use mc_prng::Xoshiro256;

use mc_rtl::Netlist;

/// How input vectors evolve from one computation to the next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stimulus {
    /// Independent uniform values every computation — the paper's setup
    /// and the default everywhere else in this workspace.
    UniformRandom,
    /// A random walk: each input moves by a uniformly chosen step in
    /// `-delta..=delta` from its previous value (wrapping in the datapath
    /// width). Models correlated sampled signals.
    RandomWalk {
        /// Maximum per-computation change.
        delta: u64,
    },
    /// The same vector every computation (idle-channel behaviour).
    Constant,
}

impl Stimulus {
    /// Generates `computations` input vectors for `netlist`'s primary
    /// inputs, deterministically from `seed`.
    #[must_use]
    pub fn vectors(
        &self,
        netlist: &Netlist,
        computations: usize,
        seed: u64,
    ) -> Vec<BTreeMap<String, u64>> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mask = (1u64 << netlist.width()) - 1;
        let names: Vec<String> = netlist.inputs().iter().map(|(n, _)| n.clone()).collect();
        let mut current: BTreeMap<String, u64> = names
            .iter()
            .map(|n| (n.clone(), rng.next_u64() & mask))
            .collect();
        let mut out = Vec::with_capacity(computations);
        for c in 0..computations {
            if c > 0 {
                match *self {
                    Stimulus::UniformRandom => {
                        for v in current.values_mut() {
                            *v = rng.next_u64() & mask;
                        }
                    }
                    Stimulus::RandomWalk { delta } => {
                        let d = delta.min(mask);
                        for v in current.values_mut() {
                            let step = rng.range_inclusive(0, 2 * d) as i64 - d as i64;
                            *v = (v.wrapping_add(step as u64)) & mask;
                        }
                    }
                    Stimulus::Constant => {}
                }
            }
            out.push(current.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_with_inputs;
    use mc_alloc::{allocate, AllocOptions, Strategy};
    use mc_clocks::ClockScheme;
    use mc_dfg::benchmarks;
    use mc_rtl::PowerMode;

    fn netlist() -> Netlist {
        let bm = benchmarks::biquad();
        allocate(
            &bm.dfg,
            &bm.schedule,
            &AllocOptions::new(Strategy::Integrated, ClockScheme::new(2).unwrap()),
        )
        .unwrap()
        .netlist
    }

    #[test]
    fn vectors_are_deterministic_and_complete() {
        let nl = netlist();
        let a = Stimulus::UniformRandom.vectors(&nl, 10, 7);
        let b = Stimulus::UniformRandom.vectors(&nl, 10, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        for v in &a {
            assert_eq!(v.len(), nl.inputs().len());
        }
    }

    #[test]
    fn constant_stimulus_never_changes() {
        let nl = netlist();
        let v = Stimulus::Constant.vectors(&nl, 5, 3);
        for w in &v[1..] {
            assert_eq!(*w, v[0]);
        }
    }

    #[test]
    fn random_walk_steps_are_bounded() {
        let nl = netlist();
        let mask = (1u64 << nl.width()) - 1;
        let delta = 2u64;
        let v = Stimulus::RandomWalk { delta }.vectors(&nl, 50, 9);
        for w in v.windows(2) {
            for (name, &val) in &w[1] {
                let prev = w[0][name];
                // Wrapping distance on the ring of size mask+1.
                let diff = val.wrapping_sub(prev) & mask;
                let dist = diff.min((mask + 1) - diff);
                assert!(dist <= delta, "{name}: {prev} -> {val}");
            }
        }
    }

    #[test]
    fn correlated_inputs_switch_less_than_random() {
        let nl = netlist();
        let random = Stimulus::UniformRandom.vectors(&nl, 200, 11);
        let walk = Stimulus::RandomWalk { delta: 1 }.vectors(&nl, 200, 11);
        let r = simulate_with_inputs(&nl, PowerMode::multiclock(), &random, false);
        let w = simulate_with_inputs(&nl, PowerMode::multiclock(), &walk, false);
        assert!(
            w.activity.total_net_toggles() < r.activity.total_net_toggles(),
            "walk {} vs random {}",
            w.activity.total_net_toggles(),
            r.activity.total_net_toggles()
        );
    }
}
