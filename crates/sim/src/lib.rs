//! Phase-accurate RTL netlist simulation with transition counting — the
//! stand-in for the paper's COMPASS simulator "power option" (§5.1).
//!
//! The simulator executes a synthesised [`Netlist`](mc_rtl::Netlist) over
//! random (or explicit) input vectors, running computations back-to-back,
//! and counts every event the power model prices: bit flips per net, input
//! activity per ALU, clock pulses and stored-bit flips per memory element,
//! and control-line toggles. All randomness is seeded; identical
//! configurations produce identical results.
//!
//! # Example: simulate an allocated benchmark
//!
//! ```
//! use mc_alloc::{allocate, AllocOptions, Strategy};
//! use mc_clocks::ClockScheme;
//! use mc_dfg::benchmarks;
//! use mc_rtl::PowerMode;
//! use mc_sim::{simulate, verify_equivalence, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bm = benchmarks::hal();
//! let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(2)?);
//! let dp = allocate(&bm.dfg, &bm.schedule, &opts)?;
//!
//! // The netlist computes exactly what the behaviour computes…
//! verify_equivalence(&bm.dfg, &dp.netlist, PowerMode::multiclock(), 50, 7)?;
//!
//! // …and a longer run yields the switching activity for power analysis.
//! let result = simulate(&dp.netlist, &SimConfig::new(PowerMode::multiclock(), 200, 7));
//! assert!(result.activity.total_net_toggles() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod activity;
mod batched;
mod bitsliced;
mod compiled;
mod engine;
mod equivalence;
pub mod stimulus;
pub mod vcd;

pub use activity::{Activity, StepActivity};
pub use batched::{simulate_seeds, BatchedProgram, MAX_LANES};
pub use bitsliced::{
    simulate_seeds_bitsliced, BatchBackend, BitslicedProgram, SeedKernel, BITSLICE_LANES,
};
pub use compiled::CompiledNetlist;
pub use engine::{
    simulate, simulate_with_config, simulate_with_inputs, try_simulate_with_inputs, SimBackend,
    SimConfig, SimError, SimResult,
};
pub use equivalence::{verify_equivalence, Mismatch};
pub use stimulus::{FlatStimulus, Stimulus};

#[cfg(test)]
mod tests {
    use super::*;
    use mc_alloc::{allocate, AllocOptions, Strategy};
    use mc_clocks::ClockScheme;
    use mc_dfg::benchmarks;
    use mc_rtl::PowerMode;

    fn datapath(n: u32, strategy: Strategy) -> (mc_dfg::Dfg, mc_rtl::Netlist) {
        let bm = benchmarks::hal();
        let scheme = ClockScheme::new(n).unwrap();
        let opts = AllocOptions::new(strategy, scheme);
        let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap();
        (bm.dfg, dp.netlist)
    }

    #[test]
    fn hal_integrated_is_functionally_correct_for_all_clock_counts() {
        for n in [1u32, 2, 3] {
            let (dfg, nl) = datapath(n, Strategy::Integrated);
            verify_equivalence(&dfg, &nl, PowerMode::multiclock(), 30, 11)
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn hal_split_is_functionally_correct() {
        for n in [2u32, 3] {
            let (dfg, nl) = datapath(n, Strategy::Split);
            verify_equivalence(&dfg, &nl, PowerMode::multiclock(), 30, 13)
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn conventional_is_correct_under_every_power_mode() {
        let bm = benchmarks::hal();
        let opts = AllocOptions::new(Strategy::Conventional, ClockScheme::single());
        let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap();
        for mode in [
            PowerMode::non_gated(),
            PowerMode::gated(),
            PowerMode::multiclock(),
        ] {
            verify_equivalence(&bm.dfg, &dp.netlist, mode, 30, 17)
                .unwrap_or_else(|e| panic!("{mode}: {e}"));
        }
    }

    #[test]
    fn every_benchmark_and_strategy_is_equivalent() {
        for bm in benchmarks::all_benchmarks() {
            let conv = AllocOptions::new(Strategy::Conventional, ClockScheme::single());
            let dp = allocate(&bm.dfg, &bm.schedule, &conv).unwrap();
            verify_equivalence(&bm.dfg, &dp.netlist, PowerMode::gated(), 10, 3)
                .unwrap_or_else(|e| panic!("{} conventional: {e}", bm.name()));
            for n in [2u32, 3] {
                for strategy in [Strategy::Split, Strategy::Integrated] {
                    let opts = AllocOptions::new(strategy, ClockScheme::new(n).unwrap());
                    let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap();
                    verify_equivalence(&bm.dfg, &dp.netlist, PowerMode::multiclock(), 10, 3)
                        .unwrap_or_else(|e| panic!("{} {strategy} n={n}: {e}", bm.name()));
                }
            }
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let (_, nl) = datapath(2, Strategy::Integrated);
        let cfg = SimConfig::new(PowerMode::multiclock(), 50, 99);
        let a = simulate(&nl, &cfg);
        let b = simulate(&nl, &cfg);
        assert_eq!(a.activity, b.activity);
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn gating_reduces_clock_pulses() {
        let (_, nl) = datapath(1, Strategy::Conventional);
        let ungated = simulate(&nl, &SimConfig::new(PowerMode::non_gated(), 100, 5));
        let gated = simulate(&nl, &SimConfig::new(PowerMode::gated(), 100, 5));
        assert!(
            gated.activity.total_clock_pulses() < ungated.activity.total_clock_pulses(),
            "gated {} vs ungated {}",
            gated.activity.total_clock_pulses(),
            ungated.activity.total_clock_pulses()
        );
        // Function is unaffected by gating.
        assert_eq!(gated.outputs, ungated.outputs);
    }

    #[test]
    fn phase_clocks_divide_pulses_by_n() {
        // Under the multiclock scheme (no gating), a mem in partition k
        // sees exactly steps-owned-by-k pulses.
        let (_, nl) = datapath(2, Strategy::Integrated);
        let res = simulate(&nl, &SimConfig::new(PowerMode::multiclock(), 40, 5));
        let steps = res.activity.steps;
        for mem in nl.mems() {
            let pulses = res.activity.clock_pulses[mem.index()];
            assert_eq!(
                pulses,
                steps / 2,
                "mem {mem} saw {pulses} pulses over {steps} steps"
            );
        }
    }

    #[test]
    fn single_clock_non_gated_pulses_every_step() {
        let (_, nl) = datapath(1, Strategy::Conventional);
        let res = simulate(&nl, &SimConfig::new(PowerMode::non_gated(), 25, 5));
        for mem in nl.mems() {
            assert_eq!(res.activity.clock_pulses[mem.index()], res.activity.steps);
        }
    }

    #[test]
    fn operand_isolation_reduces_alu_activity() {
        let (_, nl) = datapath(1, Strategy::Conventional);
        let without = simulate(&nl, &SimConfig::new(PowerMode::non_gated(), 150, 5));
        let with = simulate(&nl, &SimConfig::new(PowerMode::gated(), 150, 5));
        let sum = |a: &Activity| a.input_toggles.iter().sum::<u64>();
        assert!(
            sum(&with.activity) <= sum(&without.activity),
            "isolation must not increase ALU input activity"
        );
        assert_eq!(with.outputs, without.outputs, "isolation is transparent");
    }

    #[test]
    fn gating_composes_with_phase_clocks() {
        // Gating a multiclock design (not a paper configuration, but legal)
        // reduces pulses below the phase-only count and keeps function.
        let (dfg, nl) = datapath(2, Strategy::Integrated);
        let phase_only = simulate(&nl, &SimConfig::new(PowerMode::multiclock(), 60, 5));
        let both = {
            let mode = mc_rtl::PowerMode {
                gated_mem_clocks: true,
                operand_isolation: false,
                control_policy: mc_rtl::ControlPolicy::Hold,
            };
            verify_equivalence(&dfg, &nl, mode, 20, 5).expect("still correct");
            simulate(&nl, &SimConfig::new(mode, 60, 5))
        };
        assert!(both.activity.total_clock_pulses() < phase_only.activity.total_clock_pulses());
        assert_eq!(both.outputs, phase_only.outputs);
    }

    #[test]
    fn wide_datapath_simulation_masks_correctly() {
        let bm = benchmarks::hal_w(32);
        let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(2).unwrap());
        let dp = allocate(&bm.dfg, &bm.schedule, &opts).unwrap();
        let res = simulate(&dp.netlist, &SimConfig::new(PowerMode::multiclock(), 20, 9));
        let mask = (1u64 << 32) - 1;
        for out in &res.outputs {
            for v in out.values() {
                assert!(*v <= mask);
            }
        }
        verify_equivalence(&bm.dfg, &dp.netlist, PowerMode::multiclock(), 10, 9).unwrap();
    }

    #[test]
    fn profile_and_trace_can_be_collected_together() {
        let (_, nl) = datapath(2, Strategy::Integrated);
        let cfg = SimConfig::new(PowerMode::multiclock(), 5, 1)
            .with_trace()
            .with_profile();
        let res = simulate(&nl, &cfg);
        let trace = res.trace.expect("trace");
        let steps = res.activity.per_step.as_ref().expect("profile");
        assert_eq!(trace.len(), steps.len());
        // Per-step net toggles must sum to the aggregate counter.
        let total: u64 = steps.iter().map(|s| s.net_toggles).sum();
        assert_eq!(total, res.activity.total_net_toggles());
    }

    #[test]
    fn explicit_vectors_override_randomness() {
        let (_, nl) = datapath(1, Strategy::Conventional);
        let vec: std::collections::BTreeMap<String, u64> =
            nl.inputs().iter().map(|(n, _)| (n.clone(), 1u64)).collect();
        let a = simulate_with_inputs(&nl, PowerMode::gated(), std::slice::from_ref(&vec), false);
        let b = simulate_with_inputs(&nl, PowerMode::gated(), std::slice::from_ref(&vec), false);
        assert_eq!(a.outputs, b.outputs);
        // Input vectors are no longer cloned into the result by default…
        assert!(a.inputs.is_empty());
        // …but an opt-in keeps them, round-tripped through the binding.
        let cfg = SimConfig::new(PowerMode::gated(), 1, 0).with_inputs_kept();
        let kept = simulate_with_config(&nl, std::slice::from_ref(&vec), &cfg).unwrap();
        assert_eq!(kept.inputs, vec![vec]);
    }

    #[test]
    fn missing_input_is_a_typed_error() {
        let (_, nl) = datapath(1, Strategy::Conventional);
        let empty = std::collections::BTreeMap::new();
        let err = try_simulate_with_inputs(&nl, PowerMode::gated(), &[empty], false)
            .expect_err("vector lacks every input");
        let SimError::MissingInput { computation, .. } = &err;
        assert_eq!(*computation, 0);
        assert!(err.to_string().contains("no value for primary input"));
    }

    #[test]
    fn trace_has_one_row_per_step() {
        let (_, nl) = datapath(2, Strategy::Integrated);
        let cfg = SimConfig::new(PowerMode::multiclock(), 3, 1).with_trace();
        let res = simulate(&nl, &cfg);
        let tr = res.trace.expect("trace requested");
        assert_eq!(tr.len() as u64, res.activity.steps);
        assert_eq!(tr[0].len(), nl.num_nets());
    }

    #[test]
    fn constant_inputs_yield_periodic_behaviour() {
        // Feeding the same vector every computation: outputs repeat, and
        // the per-computation toggle rate settles to a constant (shared
        // registers still legitimately toggle between the variables they
        // host within each period).
        let (_, nl) = datapath(2, Strategy::Integrated);
        let vec: std::collections::BTreeMap<String, u64> =
            nl.inputs().iter().map(|(n, _)| (n.clone(), 9u64)).collect();
        let res = simulate_with_inputs(&nl, PowerMode::multiclock(), &vec![vec.clone(); 12], false);
        for out in &res.outputs[1..] {
            assert_eq!(*out, res.outputs[0]);
        }
        let long = {
            let vecs = vec![vec; 24];
            simulate_with_inputs(&nl, PowerMode::multiclock(), &vecs, false)
        };
        // Steady-state rate: doubling the run roughly doubles the toggles
        // (within the one-time startup transient).
        let short_t = res.activity.total_net_toggles() as f64;
        let long_t = long.activity.total_net_toggles() as f64;
        assert!(
            long_t <= 2.0 * short_t + 1e-9,
            "long {long_t} vs short {short_t}"
        );
        assert!(long_t >= 1.5 * short_t, "long {long_t} vs short {short_t}");
    }
}
