//! Functional-equivalence checking: the synthesised datapath must compute
//! exactly what the behavioural DFG computes, for every allocator, clock
//! count and power mode. This is the core correctness oracle of the test
//! suite.

use std::collections::BTreeMap;
use std::fmt;

use mc_prng::Xoshiro256;

use mc_dfg::Dfg;
use mc_rtl::{Netlist, PowerMode};

use crate::engine::simulate_with_inputs;

/// A functional mismatch between the netlist and the behavioural DFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Which computation diverged (0-based).
    pub computation: usize,
    /// The output variable.
    pub output: String,
    /// Value from direct DFG evaluation.
    pub expected: u64,
    /// Value observed at the netlist's output.
    pub actual: u64,
    /// The input vector that exposed the divergence.
    pub inputs: BTreeMap<String, u64>,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "computation {}: output `{}` = {} but DFG says {} (inputs {:?})",
            self.computation, self.output, self.actual, self.expected, self.inputs
        )
    }
}

impl std::error::Error for Mismatch {}

/// Simulates `netlist` for `computations` random input vectors (seeded)
/// and checks every primary output against direct evaluation of `dfg`.
///
/// # Errors
///
/// Returns the first [`Mismatch`] found.
pub fn verify_equivalence(
    dfg: &Dfg,
    netlist: &Netlist,
    mode: PowerMode,
    computations: usize,
    seed: u64,
) -> Result<(), Box<Mismatch>> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mask = (1u64 << dfg.width()) - 1;
    let vectors: Vec<BTreeMap<String, u64>> = (0..computations)
        .map(|_| {
            netlist
                .inputs()
                .iter()
                .map(|(name, _)| (name.clone(), rng.next_u64() & mask))
                .collect()
        })
        .collect();
    let result = simulate_with_inputs(netlist, mode, &vectors, false);
    for (c, vec) in vectors.iter().enumerate() {
        let named: BTreeMap<&str, u64> = vec.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let reference = dfg
            .evaluate_named(&named)
            .expect("netlist inputs cover the DFG inputs");
        for (name, _) in netlist.outputs() {
            let expected = reference[name];
            let actual = result.outputs[c][name];
            if expected != actual {
                return Err(Box::new(Mismatch {
                    computation: c,
                    output: name.clone(),
                    expected,
                    actual,
                    inputs: vec.clone(),
                }));
            }
        }
    }
    Ok(())
}
