//! Switching-activity counters collected during simulation.
//!
//! The power estimator multiplies these event counts by the technology
//! library's capacitances — the same transition-counting procedure the
//! paper used via the COMPASS simulator's "power option".

/// Raw switching activity of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Activity {
    /// Total control steps simulated.
    pub steps: u64,
    /// Completed computations of the behaviour.
    pub computations: u64,
    /// Bit flips observed on each net (indexed by net index).
    pub net_toggles: Vec<u64>,
    /// Toggled input bits seen by each component's data ports (indexed by
    /// component index; meaningful for ALUs, which burn internal power
    /// proportional to input activity). A function-select change counts as
    /// a full-width toggle since it reshapes the whole datapath cell.
    pub input_toggles: Vec<u64>,
    /// Clock pulses delivered to each memory element (indexed by component
    /// index). Phase clocks and gating reduce exactly this count.
    pub clock_pulses: Vec<u64>,
    /// Stored-bit flips per memory element (indexed by component index).
    pub store_toggles: Vec<u64>,
    /// Control-line bit toggles leaving the controller.
    pub control_toggles: u64,
    /// Clock pulses into the controller state register (one per step).
    pub controller_pulses: u64,
    /// Per-step aggregate counters, collected when profiling is enabled
    /// in [`SimConfig`](crate::SimConfig). Used for power-over-time
    /// profiles that visualise the phase activity pattern.
    pub per_step: Option<Vec<StepActivity>>,
}

/// Aggregate switching counters of a single control step (profiling).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepActivity {
    /// Bit flips across all nets this step.
    pub net_toggles: u64,
    /// ALU input-bit activity this step.
    pub input_toggles: u64,
    /// Memory clock pulses this step.
    pub clock_pulses: u64,
    /// Stored-bit flips this step.
    pub store_toggles: u64,
    /// Control-line toggles this step.
    pub control_toggles: u64,
}

impl Activity {
    /// Zeroed counters for a design with `nets` nets and `comps`
    /// components.
    #[must_use]
    pub fn new(nets: usize, comps: usize) -> Self {
        Activity {
            steps: 0,
            computations: 0,
            net_toggles: vec![0; nets],
            input_toggles: vec![0; comps],
            clock_pulses: vec![0; comps],
            store_toggles: vec![0; comps],
            control_toggles: 0,
            controller_pulses: 0,
            per_step: None,
        }
    }

    /// Total bit flips across all nets.
    #[must_use]
    pub fn total_net_toggles(&self) -> u64 {
        self.net_toggles.iter().sum()
    }

    /// Total clock pulses across all memory elements.
    #[must_use]
    pub fn total_clock_pulses(&self) -> u64 {
        self.clock_pulses.iter().sum()
    }

    /// Average net toggles per control step (the per-node transition
    /// frequency of the paper's `P = f·C·V²`).
    #[must_use]
    pub fn toggles_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.total_net_toggles() as f64 / self.steps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let a = Activity::new(3, 2);
        assert_eq!(a.total_net_toggles(), 0);
        assert_eq!(a.total_clock_pulses(), 0);
        assert_eq!(a.toggles_per_step(), 0.0);
        assert_eq!(a.net_toggles.len(), 3);
        assert_eq!(a.clock_pulses.len(), 2);
    }

    #[test]
    fn aggregates_sum_counters() {
        let mut a = Activity::new(2, 2);
        a.net_toggles[0] = 3;
        a.net_toggles[1] = 4;
        a.clock_pulses[1] = 5;
        a.steps = 7;
        assert_eq!(a.total_net_toggles(), 7);
        assert_eq!(a.total_clock_pulses(), 5);
        assert!((a.toggles_per_step() - 1.0).abs() < 1e-12);
    }
}
