//! The compiled simulation kernel: a one-time lowering of a [`Netlist`]
//! into a dense, index-addressed program.
//!
//! The interpreter in [`engine`](crate::engine) resolves `BTreeMap`-keyed
//! control words, policy fallbacks and component dispatch on every step.
//! All of that work is a pure function of the step-in-period and the
//! control history — never of the data — so the kernel does it once, at
//! compile time:
//!
//! - **Levelized instruction stream.** The topological combinational order
//!   is flattened into a flat `Vec<Instr>` of `Copy` (mux with its select
//!   resolved to a constant source net) and `Alu` instructions carrying
//!   flat operand/output net indices, the concrete [`Op`] to apply and the
//!   precomputed function-select toggle contribution.
//! - **Periodic control precomputation.** The controller word of step `t`
//!   repeats with the schedule period, and under latched control lines
//!   ([`ControlPolicy::Hold`]) the *effective* control values become
//!   periodic after one warm-up period. The compiler replays the control
//!   automaton through the reset preload and two periods, emitting a
//!   *cold* step program per step of the first period (computation 0) and
//!   a *warm* program for every later period — each with its
//!   control-toggle count folded into a single precomputed integer.
//! - **Slot indexing.** Port bindings, memory activation lists
//!   (clock-pulse and capture lists filtered by phase and load enable) and
//!   ALU history live in dense arrays indexed by component position; the
//!   step loop performs no map lookups and no heap allocation (the capture
//!   buffer is reused, and per-step profiles are derived from running
//!   totals instead of re-summing counters).
//!
//! The kernel is differentially tested to be **bit-identical** to the
//! interpreter — same activity counters, outputs, traces and per-step
//! profiles — on every built-in benchmark, power mode, clock count and
//! seed (see `tests/sim_backend.rs`).

use std::collections::BTreeMap;

use mc_dfg::{FunctionSet, Op};
use mc_rtl::{ComponentKind, ControlPolicy, Netlist, PowerMode};

use crate::activity::{Activity, StepActivity};
use crate::engine::{bits_for, width_mask, BoundInputs, SimResult};

/// One lowered combinational evaluation.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Instr {
    /// A mux whose select resolved to a constant this step: copy net
    /// `src` to net `dst`.
    Copy { src: u32, dst: u32 },
    /// An ALU evaluation: apply `op` to nets `a` and `b`, write net
    /// `dst`, account operand toggles against history slot `comp` plus
    /// the precomputed function-select contribution `fn_delta`.
    Alu {
        comp: u32,
        a: u32,
        b: u32,
        dst: u32,
        op: Op,
        fn_delta: u64,
    },
    /// An ALU frozen by operand isolation: recompute `op` over the frozen
    /// operands in slot `comp` and write net `dst`. Contributes no input
    /// activity and leaves the history untouched.
    AluFrozen { comp: u32, dst: u32, op: Op },
}

/// One precomputed memory capture: store net `input` into element `comp`
/// and forward it to net `out`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Capture {
    pub(crate) comp: u32,
    pub(crate) input: u32,
    pub(crate) out: u32,
}

/// Everything one step of the period needs, fully resolved.
#[derive(Debug, Clone, Default)]
pub(crate) struct StepProgram {
    /// Control-line toggles this step contributes (precomputed from the
    /// control replay).
    pub(crate) control_toggles: u64,
    /// The specialized combinational evaluation.
    pub(crate) instrs: Vec<Instr>,
    /// Memory elements receiving a clock pulse this step (component
    /// indices, id order).
    pub(crate) pulses: Vec<u32>,
    /// Memory elements capturing their data input this step (id order).
    pub(crate) captures: Vec<Capture>,
}

/// Replayed control state: the dense mirror of the interpreter's
/// `prev_sel` / `prev_fn` / `prev_load` maps (absent ⇒ 0 / false).
struct ControlReplay {
    sel: Vec<usize>,
    fnx: Vec<usize>,
    load: Vec<bool>,
}

/// A [`Netlist`] lowered for dense index-addressed execution.
///
/// Compile once with [`CompiledNetlist::compile`], then run any number of
/// stimuli through it. Selected by [`SimBackend::Compiled`]
/// (the default), with the interpreter kept as the reference
/// implementation.
///
/// [`SimBackend::Compiled`]: crate::SimBackend::Compiled
#[derive(Debug)]
pub struct CompiledNetlist<'a> {
    pub(crate) netlist: &'a Netlist,
    pub(crate) mask: u64,
    pub(crate) width: u8,
    pub(crate) period: u32,
    pub(crate) num_comps: usize,
    /// Net values at power-up (constants resolved).
    pub(crate) init_nets: Vec<u64>,
    /// Output net of each primary-input port, in [`Netlist::inputs`]
    /// order.
    pub(crate) input_nets: Vec<u32>,
    /// Silent settle evaluated during the reset preload.
    pub(crate) preload_instrs: Vec<Instr>,
    /// Memories preloaded at reset: every element the boundary word
    /// loads, with *no* phase filter (the reset loads them all at once).
    pub(crate) preload_captures: Vec<Capture>,
    /// Step programs of the first period (index `t - 1`).
    pub(crate) cold: Vec<StepProgram>,
    /// Step programs of every later period.
    pub(crate) warm: Vec<StepProgram>,
    /// Largest capture list across all step programs (capture-buffer
    /// capacity).
    pub(crate) max_captures: usize,
}

impl<'a> CompiledNetlist<'a> {
    /// Lowers `netlist` under `mode` into a compiled program.
    #[must_use]
    pub fn compile(netlist: &'a Netlist, mode: PowerMode) -> Self {
        let nc = netlist.num_components();
        let mask = width_mask(netlist.width());
        let period = netlist.controller().len();

        let mut init_nets = vec![0u64; netlist.num_nets()];
        for c in netlist.component_ids() {
            if let ComponentKind::Const { value } = netlist.component(c).kind() {
                init_nets[netlist.component(c).output().index()] = value & mask;
            }
        }
        let input_nets = netlist
            .inputs()
            .iter()
            .map(|(_, c)| netlist.component(*c).output().index() as u32)
            .collect();

        // Replay the control automaton exactly as the interpreter's
        // state maps evolve: reset preload, then two periods. Effective
        // controls depend only on the step and this history — never on
        // data — so the first period (cold) and the steady state (warm,
        // identical from the second period on) can be fully specialized.
        let mut replay = ControlReplay {
            sel: vec![0; nc],
            fnx: vec![0; nc],
            load: vec![false; nc],
        };
        // Reset preload: seed mux selects from the boundary word.
        for (&c, &s) in &netlist.controller().word(period).mux_sel {
            replay.sel[c.index()] = s;
        }
        // ALU function history (`AluState::prev_fn`) is control-driven
        // too; replayed alongside so frozen ops and function-select
        // deltas resolve at compile time. The silent preload settle does
        // not touch it.
        let mut fn_state = vec![0usize; nc];
        let preload_instrs = lower_silent_settle(netlist, &replay);
        let boundary_word = netlist.controller().word(period);
        let preload_captures = netlist
            .mems()
            .filter(|m| boundary_word.mem_load.contains(m))
            .map(|m| capture_of(netlist, m.comp()))
            .collect();

        let cold: Vec<StepProgram> = (1..=period)
            .map(|t| lower_step(netlist, mode, t, &mut replay, &mut fn_state))
            .collect();
        let warm: Vec<StepProgram> = (1..=period)
            .map(|t| lower_step(netlist, mode, t, &mut replay, &mut fn_state))
            .collect();
        let max_captures = cold
            .iter()
            .chain(&warm)
            .map(|p| p.captures.len())
            .max()
            .unwrap_or(0);

        CompiledNetlist {
            netlist,
            mask,
            width: netlist.width(),
            period,
            num_comps: nc,
            init_nets,
            input_nets,
            preload_instrs,
            preload_captures,
            cold,
            warm,
            max_captures,
        }
    }

    /// How many instructions one sweep of `computations` computations
    /// executes: the silent reset preload, one cold period, and
    /// `computations - 1` warm periods. Analytic — the per-step
    /// instruction streams are fixed at compile time — so tracing can
    /// report it without touching the hot loop.
    pub(crate) fn instructions_executed(&self, computations: usize) -> u64 {
        if computations == 0 {
            return 0;
        }
        let step_sum =
            |steps: &[StepProgram]| -> u64 { steps.iter().map(|p| p.instrs.len() as u64).sum() };
        self.preload_instrs.len() as u64
            + step_sum(&self.cold)
            + step_sum(&self.warm) * (computations as u64 - 1)
    }

    /// Simulates explicit input vectors through the compiled program —
    /// the compile-once-run-many entry point. Bit-identical to the
    /// interpreter over the same vectors.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`](crate::SimError) if a vector lacks a primary
    /// input.
    pub fn simulate(
        &self,
        vectors: &[BTreeMap<String, u64>],
        collect_trace: bool,
        collect_profile: bool,
    ) -> Result<SimResult, crate::engine::SimError> {
        let bound = BoundInputs::bind(self.netlist, vectors)?;
        Ok(self.run(&bound, collect_trace, collect_profile))
    }

    /// Executes the compiled program over bound inputs. Bit-identical to
    /// the interpreter's `Engine::run`.
    pub(crate) fn run(
        &self,
        bound: &BoundInputs,
        collect_trace: bool,
        collect_profile: bool,
    ) -> SimResult {
        let nl = self.netlist;
        let ni = self.input_nets.len();
        let computations = bound.computations;
        let mut outputs = Vec::with_capacity(computations);
        let mut trace = if collect_trace {
            Some(Vec::new())
        } else {
            None
        };

        let mut st = Runner {
            nets: self.init_nets.clone(),
            stored: vec![0; self.num_comps],
            alu_a: vec![0; self.num_comps],
            alu_b: vec![0; self.num_comps],
            activity: Activity::new(nl.num_nets(), self.num_comps),
            mask: self.mask,
            width: self.width,
            net_total: 0,
            input_total: 0,
            clock_total: 0,
            store_total: 0,
        };
        if collect_profile {
            st.activity.per_step = Some(Vec::new());
        }
        let mut capture_buf: Vec<u64> = Vec::with_capacity(self.max_captures);
        let mut prev = StepActivity::default();

        // Reset preload (silent: no activity counted).
        if computations > 0 {
            for (i, &net) in self.input_nets.iter().enumerate() {
                st.nets[net as usize] = bound.flat[i];
            }
            for instr in &self.preload_instrs {
                match *instr {
                    Instr::Copy { src, dst } => st.nets[dst as usize] = st.nets[src as usize],
                    Instr::Alu { a, b, dst, op, .. } => {
                        st.nets[dst as usize] =
                            op.apply(st.nets[a as usize], st.nets[b as usize], self.width);
                    }
                    Instr::AluFrozen { .. } => {
                        unreachable!("preload settle has no frozen ALUs")
                    }
                }
            }
            for cap in &self.preload_captures {
                let v = st.nets[cap.input as usize];
                st.stored[cap.comp as usize] = v;
                st.nets[cap.out as usize] = v;
            }
        }

        for c in 0..computations {
            let programs = if c == 0 { &self.cold } else { &self.warm };
            for t in 1..=self.period {
                let program = &programs[(t - 1) as usize];
                // 1. Drive ports at the boundary step.
                if t == self.period && c + 1 < computations {
                    let base = (c + 1) * ni;
                    for (i, &net) in self.input_nets.iter().enumerate() {
                        st.set_net(net, bound.flat[base + i]);
                    }
                }
                // 2. Effective controls: precomputed.
                st.activity.control_toggles += program.control_toggles;
                // 3. Combinational evaluation.
                for instr in &program.instrs {
                    st.exec(*instr);
                }
                // 4. Clock edges and captures (two-phase commit through
                // the reusable buffer).
                for &m in &program.pulses {
                    st.activity.clock_pulses[m as usize] += 1;
                }
                st.clock_total += program.pulses.len() as u64;
                capture_buf.clear();
                capture_buf.extend(
                    program
                        .captures
                        .iter()
                        .map(|cap| st.nets[cap.input as usize]),
                );
                for (cap, &v) in program.captures.iter().zip(&capture_buf) {
                    let old = st.stored[cap.comp as usize];
                    if old != v {
                        let flips = (old ^ v).count_ones() as u64;
                        st.activity.store_toggles[cap.comp as usize] += flips;
                        st.store_total += flips;
                        st.stored[cap.comp as usize] = v;
                    }
                    st.set_net(cap.out, v);
                }
                st.activity.controller_pulses += 1;
                st.activity.steps += 1;
                if let Some(tr) = trace.as_mut() {
                    tr.push(st.nets.clone());
                }
                if let Some(per_step) = st.activity.per_step.as_mut() {
                    let now = StepActivity {
                        net_toggles: st.net_total,
                        input_toggles: st.input_total,
                        clock_pulses: st.clock_total,
                        store_toggles: st.store_total,
                        control_toggles: st.activity.control_toggles,
                    };
                    per_step.push(StepActivity {
                        net_toggles: now.net_toggles - prev.net_toggles,
                        input_toggles: now.input_toggles - prev.input_toggles,
                        clock_pulses: now.clock_pulses - prev.clock_pulses,
                        store_toggles: now.store_toggles - prev.store_toggles,
                        control_toggles: now.control_toggles - prev.control_toggles,
                    });
                    prev = now;
                }
            }
            let out: BTreeMap<String, u64> = nl
                .outputs()
                .iter()
                .map(|(name, net)| (name.clone(), st.nets[net.index()]))
                .collect();
            outputs.push(out);
            st.activity.computations += 1;
        }

        if mc_trace::enabled() {
            // The instruction total is analytic (the per-step streams are
            // precomputed), so the hot loop pays nothing for it.
            mc_trace::count("sim.runs", 1);
            mc_trace::count("sim.steps", st.activity.steps);
            mc_trace::count("sim.instructions", self.instructions_executed(computations));
            mc_trace::count(
                "sim.toggles",
                st.net_total + st.input_total + st.store_total + st.activity.control_toggles,
            );
            mc_trace::count("sim.clock_pulses", st.clock_total);
        }

        SimResult {
            activity: st.activity,
            inputs: Vec::new(),
            outputs,
            trace,
        }
    }
}

/// Mutable execution state of one run.
struct Runner {
    nets: Vec<u64>,
    stored: Vec<u64>,
    /// Frozen/previous ALU operands, indexed by component.
    alu_a: Vec<u64>,
    alu_b: Vec<u64>,
    activity: Activity,
    mask: u64,
    width: u8,
    /// Running totals feeding O(1) per-step profile deltas.
    net_total: u64,
    input_total: u64,
    clock_total: u64,
    store_total: u64,
}

impl Runner {
    #[inline]
    fn set_net(&mut self, net: u32, value: u64) {
        let value = value & self.mask;
        let old = self.nets[net as usize];
        if old != value {
            let flips = (old ^ value).count_ones() as u64;
            self.activity.net_toggles[net as usize] += flips;
            self.net_total += flips;
            self.nets[net as usize] = value;
        }
    }

    #[inline]
    fn exec(&mut self, instr: Instr) {
        match instr {
            Instr::Copy { src, dst } => {
                let v = self.nets[src as usize];
                self.set_net(dst, v);
            }
            Instr::Alu {
                comp,
                a,
                b,
                dst,
                op,
                fn_delta,
            } => {
                let a_val = self.nets[a as usize];
                let b_val = self.nets[b as usize];
                let slot = comp as usize;
                let toggled = (self.alu_a[slot] ^ a_val).count_ones() as u64
                    + (self.alu_b[slot] ^ b_val).count_ones() as u64
                    + fn_delta;
                self.activity.input_toggles[slot] += toggled;
                self.input_total += toggled;
                self.alu_a[slot] = a_val;
                self.alu_b[slot] = b_val;
                let out = op.apply(a_val, b_val, self.width);
                self.set_net(dst, out);
            }
            Instr::AluFrozen { comp, dst, op } => {
                let slot = comp as usize;
                let out = op.apply(self.alu_a[slot], self.alu_b[slot], self.width);
                self.set_net(dst, out);
            }
        }
    }
}

/// The capture triple of memory element `m`.
fn capture_of(netlist: &Netlist, m: mc_rtl::CompId) -> Capture {
    let comp = netlist.component(m);
    let input = match comp.kind() {
        ComponentKind::Mem { input, .. } => *input,
        _ => unreachable!("mems() yields memories"),
    };
    Capture {
        comp: m.index() as u32,
        input: input.index() as u32,
        out: comp.output().index() as u32,
    }
}

/// The operation an ALU executes for function index `f` — the
/// interpreter's `fs.iter().nth(f)` with first-function fallback.
fn op_at(fs: FunctionSet, f: usize) -> Op {
    fs.iter()
        .nth(f)
        .unwrap_or_else(|| fs.iter().next().expect("ALUs have at least one function"))
}

/// Lowers the reset preload's silent combinational settle against the
/// preload control state (mux selects seeded from the boundary word, ALU
/// functions at their defaults).
fn lower_silent_settle(netlist: &Netlist, replay: &ControlReplay) -> Vec<Instr> {
    netlist
        .combinational_order()
        .iter()
        .map(|&c| {
            let comp = netlist.component(c);
            match comp.kind() {
                ComponentKind::Mux { inputs } => {
                    let s = replay.sel[c.index()].min(inputs.len() - 1);
                    Instr::Copy {
                        src: inputs[s].index() as u32,
                        dst: comp.output().index() as u32,
                    }
                }
                ComponentKind::Alu { fs, a, b } => Instr::Alu {
                    comp: c.index() as u32,
                    a: a.index() as u32,
                    b: b.index() as u32,
                    dst: comp.output().index() as u32,
                    op: op_at(*fs, replay.fnx[c.index()]),
                    fn_delta: 0,
                },
                _ => unreachable!("combinational order holds only muxes and ALUs"),
            }
        })
        .collect()
}

/// Advances the control replay through step `t` and lowers the step into
/// its program: effective control values resolve mux selects and ALU
/// functions to constants, control toggles fold into one integer, and the
/// phase/load filters materialize the pulse and capture lists.
fn lower_step(
    netlist: &Netlist,
    mode: PowerMode,
    t: u32,
    replay: &mut ControlReplay,
    fn_state: &mut [usize],
) -> StepProgram {
    let word = netlist.controller().word(t);
    let policy = mode.control_policy;
    let mut program = StepProgram::default();

    // Mirror of the interpreter's `effective_controls`: every component,
    // id order, toggles counted against the previous effective values.
    let nc = netlist.num_components();
    let mut active = vec![false; nc];
    for (i, comp) in netlist.components().iter().enumerate() {
        let c = mc_rtl::CompId::from_index(i);
        match comp.kind() {
            ComponentKind::Mux { inputs } => {
                let eff = match word.sel_of(c) {
                    Some(s) => s,
                    None => match policy {
                        ControlPolicy::Hold => replay.sel[i],
                        ControlPolicy::Zero => 0,
                    },
                };
                let prev = replay.sel[i];
                replay.sel[i] = eff;
                let bits = bits_for(inputs.len());
                program.control_toggles +=
                    ((prev ^ eff) as u64 & ((1u64 << bits) - 1)).count_ones() as u64;
            }
            ComponentKind::Alu { fs, .. } => {
                let explicit = word.fn_of(c);
                let eff = match explicit {
                    Some(op) => fs
                        .iter()
                        .position(|o| o == op)
                        .expect("op validated in set"),
                    None => match policy {
                        ControlPolicy::Hold => replay.fnx[i],
                        ControlPolicy::Zero => 0,
                    },
                };
                let prev = replay.fnx[i];
                replay.fnx[i] = eff;
                let bits = bits_for(fs.len());
                program.control_toggles +=
                    ((prev ^ eff) as u64 & ((1u64 << bits) - 1)).count_ones() as u64;
                active[i] = explicit.is_some();
            }
            ComponentKind::Mem { .. } => {
                let eff = word.loads(c);
                if replay.load[i] != eff {
                    program.control_toggles += 1;
                }
                replay.load[i] = eff;
            }
            ComponentKind::Const { .. } | ComponentKind::Input => {}
        }
    }

    // Specialize the combinational evaluation.
    for &c in netlist.combinational_order() {
        let i = c.index();
        let comp = netlist.component(c);
        match comp.kind() {
            ComponentKind::Mux { inputs } => {
                let s = replay.sel[i].min(inputs.len() - 1);
                program.instrs.push(Instr::Copy {
                    src: inputs[s].index() as u32,
                    dst: comp.output().index() as u32,
                });
            }
            ComponentKind::Alu { fs, a, b } => {
                if mode.operand_isolation && !active[i] {
                    // Frozen: operands and function hold, so the function
                    // index is the replayed history value.
                    program.instrs.push(Instr::AluFrozen {
                        comp: i as u32,
                        dst: comp.output().index() as u32,
                        op: op_at(*fs, fn_state[i]),
                    });
                } else {
                    let f = replay.fnx[i];
                    let fn_delta = if fn_state[i] != f {
                        u64::from(netlist.width())
                    } else {
                        0
                    };
                    fn_state[i] = f;
                    program.instrs.push(Instr::Alu {
                        comp: i as u32,
                        a: a.index() as u32,
                        b: b.index() as u32,
                        dst: comp.output().index() as u32,
                        op: op_at(*fs, f),
                        fn_delta,
                    });
                }
            }
            _ => unreachable!("combinational order holds only muxes and ALUs"),
        }
    }

    // Clock pulses and captures: phase-owned steps only; gated clocks
    // additionally require the load enable.
    for m in netlist.mems().map(mc_rtl::MemId::comp) {
        let comp = netlist.component(m);
        let phase = comp.mem_phase().expect("mems have phases");
        if !netlist.scheme().is_active(phase, t) {
            continue;
        }
        let loading = replay.load[m.index()];
        if !mode.gated_mem_clocks || loading {
            program.pulses.push(m.index() as u32);
        }
        if loading {
            program.captures.push(capture_of(netlist, m));
        }
    }
    program
}
