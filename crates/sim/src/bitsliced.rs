//! The bit-sliced simulation kernel: 64 Monte-Carlo seeds per machine
//! word.
//!
//! The batched kernel ([`BatchedProgram`]) stores one `u64` per
//! *(net, lane)*, so a 4-bit datapath wastes 60 of every 64 bits. The
//! bit-sliced kernel transposes that layout: state is one `u64` per
//! *(net, bit-position)* — a **bit plane** — whose lane-`l` bit is bit
//! `j` of net `net` in seed population member `l`:
//!
//! ```text
//! batched       nets[net * lanes + lane]     (lane-major words)
//! bit-sliced    planes[net * width + bit]    (bit planes, 64 seeds/word)
//!
//!                  net 0                       net 1
//!        ┌───────┬───────┬───────┐   ┌───────┬───────┬───────┐
//!        │ bit 0 │ bit 1 │ bit 2 │   │ bit 0 │ bit 1 │ bit 2 │ …
//!        │ 64 seeds per plane    │   │ 64 seeds per plane    │
//!        └───────┴───────┴───────┘   └───────┴───────┴───────┘
//! ```
//!
//! The compiled instruction stream is **re-lowered once** into plane
//! form ([`PInstr`]): mux copies and logic ops become `width` whole-
//! population bitwise ops, `Add`/`Sub` become width-bounded branchless
//! ripple-carry/borrow chains, comparisons take the borrow-out of a
//! subtraction, and `Mul` runs a shift-add over conditional partial
//! products. Operations without a cheap boolean form (`Div`, the
//! data-dependent shifts) fall back to an explicit
//! transpose-execute-transpose per instruction, so correctness never
//! depends on op coverage.
//!
//! **Change-driven evaluation.** The controller re-issues every mux and
//! ALU evaluation on every step, but datapath values change only when a
//! port is driven or a register captures — about once per period. The
//! runner therefore keeps a generation stamp per net (the tick of its
//! last committed change) and, per destination net, the tick and
//! configuration id of the instruction that last wrote it. An
//! instruction whose configuration is unchanged and whose source
//! generations are all at or before its last execution is skipped
//! outright: re-executing it would diff identical values and count
//! nothing. Skips are exact, never approximate — toggle accounting is
//! difference-based, so only a *false* skip could diverge, and the
//! generation conditions rule those out. ALU function-select toggles
//! are control-driven compile-time constants per step, so they are
//! hoisted out of the instruction stream entirely and accumulated
//! analytically.
//!
//! **Toggle accounting.** The power model needs per-*(entity, seed)*
//! toggle counts, so each committed row folds its difference planes
//! into a branchless **column sum** (a few planes of carry-save
//! counts), which then lands in the entity's carry-save **vertical
//! counter** bank — planes where plane `j` holds bit `j` of each
//! lane's count — with a single multi-bit add. Per-lane counts are
//! read back once at the end of the sweep.
//!
//! **Stimulus.** A seed population draws its stimulus through 64
//! interleaved xoshiro256** streams ([`Xoshiro256x64`]) — each stream
//! bit-identical to the scalar generator for that seed — and
//! transposes each 64-draw row straight into bit planes with an 8×8
//! bit-matrix multiply-gather. The flat per-seed buffers of the scalar
//! path are never materialised.
//!
//! **Width monomorphization.** The sweep is compiled per datapath
//! width (1–64 in powers of two, with a dynamic fallback), so the
//! per-plane loops fully unroll at the paper benchmarks' 4-bit width.
//!
//! **Tail mask.** A partial population (`seeds.len() < 64`) leaves the
//! dead lanes' stimulus planes zero and simply never extracts them:
//! lanes are bitwise-independent, so the live lanes are bit-identical
//! to a full population's.
//!
//! **Determinism contract.** Seed `k` of a bit-sliced run is
//! bit-identical to a scalar [`simulate`](crate::simulate) run with
//! seed `seeds[k]` — activity counters, per-step profiles and outputs —
//! enforced differentially by `tests/sim_bitsliced.rs` across every
//! benchmark, mode, clock count and population size. Traces are not
//! collected (as in batched mode, the scalar path covers VCD export).

use std::collections::BTreeMap;
use std::fmt;

use mc_dfg::Op;
use mc_prng::{Xoshiro256x64, XOSHIRO_STREAMS};
use mc_rtl::{Netlist, PowerMode};

use crate::activity::{Activity, StepActivity};
use crate::batched::BatchedProgram;
use crate::compiled::{Capture, CompiledNetlist, Instr, StepProgram};
use crate::engine::{width_mask, BoundInputs, SimError, SimResult};

/// The fixed population width of the bit-sliced kernel: one seed per
/// bit of a `u64` plane.
pub const BITSLICE_LANES: usize = 64;

const _: () = assert!(BITSLICE_LANES == XOSHIRO_STREAMS);

/// Configuration-id namespace tag for live ALU instructions (low bits
/// carry the op); see [`PInstr`].
const ALU_CFG: u32 = 0x8000_0000;
/// Configuration-id namespace tag for frozen ALU instructions.
const FROZEN_CFG: u32 = 0xC000_0000;
/// "Never written by an instruction" — forces the first execution.
const NO_CFG: u32 = u32::MAX;

/// Per-net skip-check metadata, packed so one load pulls a destination
/// net's whole redundancy evidence into a single cache line: the tick of
/// its last committed change (`gen`), the tick its writing instruction
/// last executed (`seen`), and the route id of that writer (`cfg`,
/// [`NO_CFG`] until the first execution). Ticks are `u32` — the runner
/// asserts the tick clock fits before a run starts.
#[derive(Clone, Copy)]
struct NetMeta {
    gen: u32,
    seen: u32,
    cfg: u32,
}

/// A compiled op re-lowered to plane form. Everything with a cheap
/// boolean circuit gets a dedicated variant; the rest carries the
/// original [`Op`] through the transpose fallback.
#[derive(Debug, Clone, Copy)]
enum PlaneOp {
    And,
    Or,
    Xor,
    Add,
    Sub,
    Gt,
    Lt,
    Mul,
    /// Transpose-execute-transpose fallback: gather the 64 lane values,
    /// apply the scalar [`Op`], scatter the results back into planes.
    Fallback(Op),
}

impl PlaneOp {
    fn lower(op: Op) -> PlaneOp {
        match op {
            Op::And => PlaneOp::And,
            Op::Or => PlaneOp::Or,
            Op::Xor => PlaneOp::Xor,
            Op::Add => PlaneOp::Add,
            Op::Sub => PlaneOp::Sub,
            Op::Gt => PlaneOp::Gt,
            Op::Lt => PlaneOp::Lt,
            Op::Mul => PlaneOp::Mul,
            Op::Div | Op::Shl | Op::Shr => PlaneOp::Fallback(op),
        }
    }

    fn is_fallback(self) -> bool {
        matches!(self, PlaneOp::Fallback(_))
    }

    /// Plane operations this op's boolean form executes at width `w` —
    /// the deterministic cost model behind `sim.bitslice.plane_ops`
    /// (word-level bitwise ops of the lowered program, not cycles —
    /// change-driven skipping does not alter it): `2w` for logic, `6w`
    /// for the ripple chains, `3w` for borrow-out comparisons, `3w²`
    /// for shift-add multiply and `2w` for a fallback's transposes.
    fn plane_cost(self, w: u64) -> u64 {
        match self {
            PlaneOp::And | PlaneOp::Or | PlaneOp::Xor => 2 * w,
            PlaneOp::Add | PlaneOp::Sub => 6 * w,
            PlaneOp::Gt | PlaneOp::Lt => 3 * w,
            PlaneOp::Mul => 3 * w * w,
            PlaneOp::Fallback(_) => 2 * w,
        }
    }
}

/// One instruction of the re-lowered plane program — the bit-plane twin
/// of [`Instr`], with the op pre-classified and a precomputed
/// configuration id for change-driven skipping.
///
/// The configuration id identifies *what would be computed* into the
/// destination net: a copy's id is its source net, a live ALU's is
/// [`ALU_CFG`] tagged with the op, a frozen ALU's [`FROZEN_CFG`]
/// likewise. Ids from the three namespaces never collide (net indices
/// stay below the tag bits), so a destination re-targeted by a
/// different mux route, function select or freeze transition always
/// mismatches and re-executes.
#[derive(Debug, Clone, Copy)]
enum PInstr {
    Copy {
        src: u32,
        dst: u32,
    },
    Alu {
        comp: u32,
        a: u32,
        b: u32,
        dst: u32,
        kind: PlaneOp,
        cfg: u32,
    },
    AluFrozen {
        comp: u32,
        dst: u32,
        kind: PlaneOp,
        cfg: u32,
    },
}

/// One step's re-lowered instruction stream plus its analytic cost and
/// function-select totals (pulse/capture lists stay on the underlying
/// [`CompiledNetlist`] step programs).
#[derive(Debug, Default)]
struct PStep {
    instrs: Vec<PInstr>,
    /// Plane operations per execution of this step (cost model, see
    /// [`PlaneOp::plane_cost`]).
    plane_ops: u64,
    /// Fallback instructions per execution of this step.
    fallbacks: u64,
    /// Function-select toggles this step adds across all ALUs —
    /// control-driven and lane-uniform, so a compile-time constant.
    fn_step_total: u64,
}

fn lower_instrs(instrs: &[Instr], w: u64) -> PStep {
    let mut step = PStep::default();
    for instr in instrs {
        let pi = match *instr {
            Instr::Copy { src, dst } => PInstr::Copy { src, dst },
            Instr::Alu {
                comp,
                a,
                b,
                dst,
                op,
                fn_delta,
            } => {
                step.fn_step_total += fn_delta;
                PInstr::Alu {
                    comp,
                    a,
                    b,
                    dst,
                    kind: PlaneOp::lower(op),
                    cfg: ALU_CFG | op as u32,
                }
            }
            Instr::AluFrozen { comp, dst, op } => PInstr::AluFrozen {
                comp,
                dst,
                kind: PlaneOp::lower(op),
                cfg: FROZEN_CFG | op as u32,
            },
        };
        let (cost, fallback) = match pi {
            // A copy is one gather + one counted commit.
            PInstr::Copy { .. } => (2 * w, false),
            // A live ALU additionally diffs and refreshes both operand
            // history banks (4w planes).
            PInstr::Alu { kind, .. } => (kind.plane_cost(w) + 5 * w, kind.is_fallback()),
            PInstr::AluFrozen { kind, .. } => (kind.plane_cost(w) + w, kind.is_fallback()),
        };
        step.plane_ops += cost;
        step.fallbacks += u64::from(fallback);
        step.instrs.push(pi);
    }
    step
}

/// Per-component function-select toggle totals of one pass over
/// `steps` — the analytic accumulation that replaces per-execution
/// `fn_delta` adds in the hot loop.
fn fn_sums(steps: &[StepProgram], nc: usize) -> Vec<u64> {
    let mut sums = vec![0u64; nc];
    for s in steps {
        for i in &s.instrs {
            if let Instr::Alu { comp, fn_delta, .. } = *i {
                sums[comp as usize] += fn_delta;
            }
        }
    }
    sums
}

/// A compiled program re-lowered to bit-plane form: the bit-sliced
/// execution mode.
///
/// Compile once with [`BitslicedProgram::compile`], then run any number
/// of seed populations through [`BitslicedProgram::run_seeds`]. Each
/// population of up to [`BITSLICE_LANES`] seeds shares one sweep over
/// the plane program.
#[derive(Debug)]
pub struct BitslicedProgram<'a> {
    program: CompiledNetlist<'a>,
    preload: PStep,
    cold: Vec<PStep>,
    warm: Vec<PStep>,
    /// Per-component function-select toggles of the cold period.
    cold_fn: Vec<u64>,
    /// Per-component function-select toggles of one warm period.
    warm_fn: Vec<u64>,
    /// `(component, output net)` of every capturing register. A
    /// register's output net is written only by its captures, so its
    /// net toggles equal its stored-bit toggles — the runner counts
    /// them once (in the store bank) and extraction reads them back
    /// for both categories.
    cap_nets: Vec<(u32, u32)>,
    /// Per cold step: does any capture read another capture's output
    /// net (a register-to-register chain)? Only then do captures need
    /// the two-phase gather buffer.
    cold_chained: Vec<bool>,
    /// Per warm step: same chain flag.
    warm_chained: Vec<bool>,
}

/// Whether any capture of `caps` reads a net that another capture of
/// the same step writes — the shift-register hazard that forces the
/// two-phase capture commit.
fn caps_chained(caps: &[Capture]) -> bool {
    caps.iter().any(|c| caps.iter().any(|c2| c2.out == c.input))
}

impl<'a> BitslicedProgram<'a> {
    /// Lowers `netlist` under `mode` and re-lowers the instruction
    /// stream into plane form.
    #[must_use]
    pub fn compile(netlist: &'a Netlist, mode: PowerMode) -> Self {
        let program = CompiledNetlist::compile(netlist, mode);
        let w = u64::from(program.width);
        let preload = lower_instrs(&program.preload_instrs, w);
        let cold = program
            .cold
            .iter()
            .map(|s| lower_instrs(&s.instrs, w))
            .collect();
        let warm = program
            .warm
            .iter()
            .map(|s| lower_instrs(&s.instrs, w))
            .collect();
        let cold_fn = fn_sums(&program.cold, program.num_comps);
        let warm_fn = fn_sums(&program.warm, program.num_comps);
        let mut cap_nets: Vec<(u32, u32)> = Vec::new();
        for step in program.cold.iter().chain(&program.warm) {
            for cap in &step.captures {
                if !cap_nets.iter().any(|&(c, _)| c == cap.comp) {
                    cap_nets.push((cap.comp, cap.out));
                }
            }
        }
        let cold_chained = program
            .cold
            .iter()
            .map(|s| caps_chained(&s.captures))
            .collect();
        let warm_chained = program
            .warm
            .iter()
            .map(|s| caps_chained(&s.captures))
            .collect();
        BitslicedProgram {
            program,
            preload,
            cold,
            warm,
            cold_fn,
            warm_fn,
            cap_nets,
            cold_chained,
            warm_chained,
        }
    }

    /// The population width: always [`BITSLICE_LANES`].
    #[must_use]
    pub fn lanes(&self) -> usize {
        BITSLICE_LANES
    }

    /// Analytic plane-op total of one sweep (preload + cold period +
    /// `computations - 1` warm periods), mirroring the scalar kernel's
    /// analytic instruction count.
    fn plane_ops_executed(&self, computations: usize) -> u64 {
        if computations == 0 {
            return 0;
        }
        let sum = |steps: &[PStep]| -> u64 { steps.iter().map(|s| s.plane_ops).sum() };
        self.preload.plane_ops + sum(&self.cold) + sum(&self.warm) * (computations as u64 - 1)
    }

    /// Analytic fallback-instruction total of one sweep.
    fn fallbacks_executed(&self, computations: usize) -> u64 {
        if computations == 0 {
            return 0;
        }
        let sum = |steps: &[PStep]| -> u64 { steps.iter().map(|s| s.fallbacks).sum() };
        self.preload.fallbacks + sum(&self.cold) + sum(&self.warm) * (computations as u64 - 1)
    }

    /// Per-component function-select totals of a full sweep: the cold
    /// period once, then `computations - 1` warm periods.
    fn fn_totals(&self, computations: usize) -> Vec<u64> {
        if computations == 0 {
            return vec![0; self.program.num_comps];
        }
        self.cold_fn
            .iter()
            .zip(&self.warm_fn)
            .map(|(&c, &wm)| c + wm * (computations as u64 - 1))
            .collect()
    }

    /// Simulates `computations` random computations for every seed in
    /// `seeds`, in populations of up to [`BITSLICE_LANES`] seeds per
    /// sweep. `results[k]` is bit-identical to a scalar run with seed
    /// `seeds[k]`.
    #[must_use]
    pub fn run_seeds(
        &self,
        computations: usize,
        seeds: &[u64],
        collect_profile: bool,
    ) -> Vec<SimResult> {
        seeds
            .chunks(BITSLICE_LANES)
            .flat_map(|chunk| {
                let stim = self.stim_planes(computations, chunk);
                self.run_stim(computations, &stim, chunk.len(), collect_profile, true)
            })
            .collect()
    }

    /// Like [`BitslicedProgram::run_seeds`] but skips the
    /// per-computation output maps and returns only each seed's
    /// [`Activity`] — the form Monte-Carlo power estimation consumes.
    #[must_use]
    pub fn run_seeds_activity(
        &self,
        computations: usize,
        seeds: &[u64],
        collect_profile: bool,
    ) -> Vec<Activity> {
        seeds
            .chunks(BITSLICE_LANES)
            .flat_map(|chunk| {
                let stim = self.stim_planes(computations, chunk);
                self.run_stim(computations, &stim, chunk.len(), collect_profile, false)
            })
            .map(|r| r.activity)
            .collect()
    }

    /// Simulates one explicit input-vector stream per population member
    /// (all streams the same length), in populations of up to
    /// [`BITSLICE_LANES`] members per sweep. `results[k]` is
    /// bit-identical to a scalar
    /// [`simulate_with_inputs`](crate::simulate_with_inputs) run over
    /// `vectors[k]`. This is the retrofit verifier's entry point, where
    /// the stimulus is drawn once and replayed against two designs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if a vector lacks a primary input.
    pub fn run_vectors(
        &self,
        vectors: &[Vec<BTreeMap<String, u64>>],
        collect_profile: bool,
    ) -> Result<Vec<SimResult>, SimError> {
        let computations = vectors.first().map_or(0, Vec::len);
        debug_assert!(
            vectors.iter().all(|v| v.len() == computations),
            "population members must share one computation count"
        );
        let mut results = Vec::with_capacity(vectors.len());
        for chunk in vectors.chunks(BITSLICE_LANES) {
            let flats = chunk
                .iter()
                .map(|v| Ok(BoundInputs::bind(self.program.netlist, v)?.flat))
                .collect::<Result<Vec<_>, SimError>>()?;
            let stim = self.flats_to_stim(computations, &flats);
            results.extend(self.run_stim(computations, &stim, flats.len(), collect_profile, true));
        }
        Ok(results)
    }

    /// Draws one population's stimulus directly into plane form:
    /// `stim[(c*ni + i)*w + j]` is the plane of bit `j` of input `i` at
    /// computation `c`. Stream `l` is bit-identical to the scalar
    /// generator seeded with `chunk[l]`, drawn through 64 interleaved
    /// xoshiro streams and transposed with an 8×8 bit-matrix
    /// multiply-gather — the per-seed flat buffers of the scalar path
    /// never exist. Dead lanes (`chunk.len() < 64`) stay zero: the tail
    /// mask.
    fn stim_planes(&self, computations: usize, chunk: &[u64]) -> Vec<u64> {
        let p = &self.program;
        let w = p.width as usize;
        let ni = p.input_nets.len();
        let live = chunk.len();
        debug_assert!((1..=BITSLICE_LANES).contains(&live));
        let mask = width_mask(p.width);
        let mut seeds = [0u64; XOSHIRO_STREAMS];
        seeds[..live].copy_from_slice(chunk);
        let mut rng = Xoshiro256x64::seed_from_u64s(&seeds);
        let mut draws = [0u64; XOSHIRO_STREAMS];
        let mut stim = vec![0u64; computations * ni * w];
        if w <= 8 {
            // Multiply-gather transpose: per 8-lane byte group, bit `j`
            // of each byte is gathered into one output byte by the
            // classic `(x & 0x0101…) * 0x0102_0408_1020_4080 >> 56`
            // bit-matrix trick (all partial products land on distinct
            // bit positions, so no carries interfere).
            let mut bytes = [0u8; BITSLICE_LANES];
            for k in 0..computations * ni {
                rng.next_u64s(&mut draws);
                // Fixed 64-wide pack (vectorizes as mask-and-truncate);
                // dead lanes are re-zeroed to keep the tail mask.
                for (byte, &dv) in bytes.iter_mut().zip(&draws) {
                    *byte = (dv & mask) as u8;
                }
                if live < BITSLICE_LANES {
                    bytes[live..].fill(0);
                }
                let base = k * w;
                for (g, group) in bytes.chunks_exact(8).enumerate() {
                    let word = u64::from_le_bytes(group.try_into().expect("8-byte group"));
                    if word == 0 {
                        continue;
                    }
                    for (j, plane) in stim[base..base + w].iter_mut().enumerate() {
                        let bits = ((word >> j) & 0x0101_0101_0101_0101)
                            .wrapping_mul(0x0102_0408_1020_4080)
                            >> 56;
                        *plane |= bits << (8 * g);
                    }
                }
            }
        } else {
            for k in 0..computations * ni {
                rng.next_u64s(&mut draws);
                let base = k * w;
                for (l, &dv) in draws[..live].iter().enumerate() {
                    let v = dv & mask;
                    for (j, plane) in stim[base..base + w].iter_mut().enumerate() {
                        *plane |= ((v >> j) & 1) << l;
                    }
                }
            }
        }
        stim
    }

    /// Transposes pre-bound flat stimulus streams (one per member) into
    /// the same plane layout as [`BitslicedProgram::stim_planes`].
    fn flats_to_stim(&self, computations: usize, flats: &[Vec<u64>]) -> Vec<u64> {
        let w = self.program.width as usize;
        let ni = self.program.input_nets.len();
        debug_assert!((1..=BITSLICE_LANES).contains(&flats.len()));
        let mut stim = vec![0u64; computations * ni * w];
        for (l, flat) in flats.iter().enumerate() {
            for (k, &v) in flat.iter().enumerate() {
                let base = k * w;
                for (j, plane) in stim[base..base + w].iter_mut().enumerate() {
                    *plane |= ((v >> j) & 1) << l;
                }
            }
        }
        stim
    }

    /// Runs one population over pre-transposed stimulus planes,
    /// dispatching to a width-monomorphized sweep so the per-plane
    /// loops unroll (`0` is the dynamic-width fallback).
    fn run_stim(
        &self,
        computations: usize,
        stim: &[u64],
        live: usize,
        collect_profile: bool,
        collect_outputs: bool,
    ) -> Vec<SimResult> {
        macro_rules! dispatch {
            ($($w:literal),*) => {
                match self.program.width {
                    $($w => self.run_stim_impl::<$w>(
                        computations, stim, live, collect_profile, collect_outputs,
                    ),)*
                    _ => self.run_stim_impl::<0>(
                        computations, stim, live, collect_profile, collect_outputs,
                    ),
                }
            };
        }
        dispatch!(1, 2, 4, 8, 16, 32, 64)
    }

    fn run_stim_impl<const W: usize>(
        &self,
        computations: usize,
        stim: &[u64],
        live: usize,
        collect_profile: bool,
        collect_outputs: bool,
    ) -> Vec<SimResult> {
        let p = &self.program;
        let nl = p.netlist;
        debug_assert!((1..=BITSLICE_LANES).contains(&live));
        let w = if W == 0 { p.width as usize } else { W };
        debug_assert_eq!(w, p.width as usize);
        let ni = p.input_nets.len();
        let n_nets = nl.num_nets();
        let nc = p.num_comps;

        // The write-order clock advances twice per controller step; a
        // `u32` clock keeps the packed per-net metadata to one cache
        // line for several nets. Guard the (absurdly distant) overflow
        // loudly rather than let skip evidence silently wrap.
        assert!(
            computations as u64 * u64::from(p.period) * 2 < u64::from(u32::MAX),
            "bit-sliced run exceeds the u32 tick clock"
        );
        let mut st = Runner::new(p, collect_profile);

        let mut per_step: Option<Vec<Vec<StepActivity>>> = if collect_profile {
            Some(vec![Vec::new(); live])
        } else {
            None
        };
        let mut prev = vec![StepActivity::default(); live];
        let mut outputs: Vec<Vec<BTreeMap<String, u64>>> =
            vec![Vec::with_capacity(computations); live];
        let mut lane_vals = [0u64; BITSLICE_LANES];

        // Reset preload (silent: no activity counted, no generation
        // stamps — every instruction's first counted execution is
        // forced by its `NO_CFG` destination).
        if computations > 0 {
            for (i, &net) in p.input_nets.iter().enumerate() {
                let base = net as usize * w;
                st.planes[base..base + w].copy_from_slice(&stim[i * w..(i + 1) * w]);
            }
            for pi in &self.preload.instrs {
                st.exec_silent::<W>(pi);
            }
            for cap in &p.preload_captures {
                let s = cap.input as usize * w;
                let d = cap.comp as usize * w;
                st.stored[d..d + w].copy_from_slice(&st.planes[s..s + w]);
                st.planes.copy_within(s..s + w, cap.out as usize * w);
            }
        }

        for c in 0..computations {
            let (programs, psteps, chained) = if c == 0 {
                (&p.cold, &self.cold, &self.cold_chained)
            } else {
                (&p.warm, &self.warm, &self.warm_chained)
            };
            for t in 1..=p.period {
                let program = &programs[(t - 1) as usize];
                let pstep = &psteps[(t - 1) as usize];
                // Combinational phase: drives and instructions share
                // one tick; captures commit on the next, so a skip
                // decision always sees a strict global write order.
                st.tick += 1;
                // 1. Drive ports at the boundary step (counted).
                if t == p.period && c + 1 < computations {
                    let base = ((c + 1) * ni) * w;
                    for (i, &net) in p.input_nets.iter().enumerate() {
                        st.commit_row::<W>(net, &stim[base + i * w..base + (i + 1) * w]);
                    }
                }
                // 2. Effective controls and function selects:
                // precomputed, lane-independent.
                st.control_toggles += program.control_toggles;
                st.fn_total += pstep.fn_step_total;
                // 3. Combinational evaluation, change-driven.
                for pi in &pstep.instrs {
                    st.exec::<W>(pi);
                }
                // 4. Clock edges (lane-independent) and captures
                // (two-phase commit through the reusable buffer).
                st.tick += 1;
                for &m in &program.pulses {
                    st.clock_pulses[m as usize] += 1;
                }
                st.clock_total += program.pulses.len() as u64;
                st.captures::<W>(&program.captures, chained[(t - 1) as usize]);
                st.controller_pulses += 1;
                st.steps += 1;
                if let Some(ps) = per_step.as_mut() {
                    for (l, (lane_steps, prev)) in ps.iter_mut().zip(&mut prev).enumerate() {
                        let now = st.running_profile(l);
                        lane_steps.push(StepActivity {
                            net_toggles: now.net_toggles - prev.net_toggles,
                            input_toggles: now.input_toggles - prev.input_toggles,
                            clock_pulses: now.clock_pulses - prev.clock_pulses,
                            store_toggles: now.store_toggles - prev.store_toggles,
                            control_toggles: now.control_toggles - prev.control_toggles,
                        });
                        *prev = now;
                    }
                }
            }
            if collect_outputs {
                for lane_outputs in &mut outputs {
                    lane_outputs.push(BTreeMap::new());
                }
                for (name, net) in nl.outputs() {
                    gather_lanes(
                        &st.planes[net.index() * w..(net.index() + 1) * w],
                        &mut lane_vals,
                    );
                    for (l, lane_outputs) in outputs.iter_mut().enumerate() {
                        let map = lane_outputs.last_mut().expect("pushed above");
                        map.insert(name.clone(), lane_vals[l]);
                    }
                }
            }
        }

        // Extract the live lanes: the vertical counters hand back each
        // seed's exact per-entity counts; function-select toggles come
        // from the analytic per-component totals; lane-independent
        // counters replicate verbatim. Dead lanes are never read —
        // that is the whole tail mask.
        let fn_comp = self.fn_totals(computations);
        let results: Vec<SimResult> = outputs
            .into_iter()
            .enumerate()
            .map(|(l, lane_outputs)| {
                let mut activity = Activity::new(n_nets, nc);
                activity.steps = st.steps;
                activity.computations = computations as u64;
                for (net, tog) in activity.net_toggles.iter_mut().enumerate() {
                    *tog = st.net_count.get(net, l);
                }
                for &(comp, out) in &self.cap_nets {
                    activity.net_toggles[out as usize] = st.store_count.get(comp as usize, l);
                }
                for (i, &fnc) in fn_comp.iter().enumerate().take(nc) {
                    activity.input_toggles[i] = st.input_count.get(i, l) + fnc;
                    activity.store_toggles[i] = st.store_count.get(i, l);
                    activity.clock_pulses[i] = st.clock_pulses[i];
                }
                activity.control_toggles = st.control_toggles;
                activity.controller_pulses = st.controller_pulses;
                if let Some(ps) = per_step.as_mut() {
                    activity.per_step = Some(std::mem::take(&mut ps[l]));
                }
                SimResult {
                    activity,
                    inputs: Vec::new(),
                    outputs: lane_outputs,
                    trace: None,
                }
            })
            .collect();

        if mc_trace::enabled() {
            mc_trace::count("sim.runs", live as u64);
            mc_trace::count(
                "sim.instructions",
                p.instructions_executed(computations) * live as u64,
            );
            mc_trace::count("sim.bitslice.planes", (n_nets * w) as u64);
            mc_trace::count(
                "sim.bitslice.plane_ops",
                self.plane_ops_executed(computations),
            );
            mc_trace::count(
                "sim.bitslice.popcounts",
                st.net_count.folds + st.input_count.folds + st.store_count.folds,
            );
            mc_trace::count(
                "sim.bitslice.fallback_transposes",
                3 * self.fallbacks_executed(computations),
            );
            for r in &results {
                let a = &r.activity;
                mc_trace::count("sim.steps", a.steps);
                mc_trace::count(
                    "sim.toggles",
                    a.net_toggles.iter().sum::<u64>()
                        + a.input_toggles.iter().sum::<u64>()
                        + a.store_toggles.iter().sum::<u64>()
                        + a.control_toggles,
                );
                mc_trace::count("sim.clock_pulses", a.total_clock_pulses());
            }
        }

        results
    }
}

/// Column-sum levels needed for up to `max_pushes` difference planes:
/// the bit width of `max_pushes` itself, so the top level never carries
/// out.
#[inline(always)]
const fn levels_for(max_pushes: usize) -> usize {
    (usize::BITS - max_pushes.leading_zeros()) as usize
}

/// Pushes one difference plane into a branchless carry-save column sum:
/// `sum[s]` holds bit `s` of each lane's running count. The ripple is
/// unconditional so it unrolls cleanly for constant `levels`.
#[inline(always)]
fn csum_push(sum: &mut [u64; 8], levels: usize, d: u64) {
    let mut c = d;
    for s in sum.iter_mut().take(levels) {
        let nc = *s & c;
        *s ^= c;
        c = nc;
    }
}

/// Bitwise full adder: `(sum, carry)` of three planes.
#[inline(always)]
fn fa(a: u64, b: u64, c: u64) -> (u64, u64) {
    let s = a ^ b;
    (s ^ c, (a & b) | (c & s))
}

/// Folds a whole batch of difference planes into a column sum at once.
/// The power-of-two batch sizes get a carry-save adder tree (11 plane
/// ops for four diffs, 34 for eight — versus ~`3·levels` per diff for
/// the serial [`csum_push`] ripple); odd sizes fall back to the ripple.
#[inline(always)]
fn fold_sum(levels: usize, diffs: &[u64], sum: &mut [u64; 8]) {
    match diffs.len() {
        1 => sum[0] = diffs[0],
        2 => {
            sum[0] = diffs[0] ^ diffs[1];
            sum[1] = diffs[0] & diffs[1];
        }
        4 => {
            let (s0, c0) = (diffs[0] ^ diffs[1], diffs[0] & diffs[1]);
            let (s1, c1) = (diffs[2] ^ diffs[3], diffs[2] & diffs[3]);
            sum[0] = s0 ^ s1;
            let (l1, l2) = fa(c0, c1, s0 & s1);
            sum[1] = l1;
            sum[2] = l2;
        }
        8 => {
            let mut lo = [0u64; 8];
            let mut hi = [0u64; 8];
            fold_sum(3, &diffs[..4], &mut lo);
            fold_sum(3, &diffs[4..], &mut hi);
            sum[0] = lo[0] ^ hi[0];
            let (l1, c1) = fa(lo[1], hi[1], lo[0] & hi[0]);
            let (l2, l3) = fa(lo[2], hi[2], c1);
            sum[1] = l1;
            sum[2] = l2;
            sum[3] = l3;
        }
        _ => {
            for &d in diffs {
                csum_push(sum, levels, d);
            }
        }
    }
}

/// Any-lane-changed plane of a column sum: a lane's count is nonzero
/// iff one of its sum bits is.
#[inline(always)]
fn or_levels(sum: &[u64]) -> u64 {
    sum.iter().fold(0, |acc, &s| acc | s)
}

/// Writes `vals` over `row`, folding the difference planes into `sum`;
/// returns the any-lane-changed plane. The shared core of every counted
/// commit.
#[inline(always)]
fn diff_rows(w: usize, levels: usize, row: &mut [u64], vals: &[u64], sum: &mut [u64; 8]) -> u64 {
    if w <= 8 {
        let mut diffs = [0u64; 8];
        for ((slot, &v), d) in row.iter_mut().zip(vals).zip(&mut diffs) {
            *d = *slot ^ v;
            *slot = v;
        }
        fold_sum(levels, &diffs[..w], sum);
    } else {
        for (slot, &v) in row.iter_mut().zip(vals) {
            let d = *slot ^ v;
            *slot = v;
            csum_push(sum, levels, d);
        }
    }
    or_levels(&sum[..levels])
}

/// Disjoint source/destination plane rows of one backing vector (a
/// plane-to-plane copy never self-targets).
#[inline(always)]
fn two_rows(planes: &mut [u64], src: usize, dst: usize, w: usize) -> (&[u64], &mut [u64]) {
    debug_assert!(src.abs_diff(dst) >= w, "rows overlap");
    if src < dst {
        let (lo, hi) = planes.split_at_mut(dst);
        (&lo[src..src + w], &mut hi[..w])
    } else {
        let (lo, hi) = planes.split_at_mut(src);
        (&hi[..w], &mut lo[dst..dst + w])
    }
}

/// Carry-save vertical counters: per entity, a bank of planes where
/// plane `j`'s lane-`l` bit is bit `j` of lane `l`'s count. Events
/// arrive as whole column sums ([`fold_sum`] batches) and land with a
/// single multi-bit carry-save add.
///
/// The bank is one growable tier per entity: `depth` contiguous planes
/// holding count bits `0..depth`. An add ripples the incoming sum planes
/// through the row and then chases the carry with an early exit — the
/// carry mask empties within a plane or two of the sum's top bit for
/// all but a vanishing fraction of adds, so the expected work per add is
/// `sum.len() + ~1` planes, all in one cache row. A carry out of the
/// whole row doubles the depth (rare enough to amortize to nothing).
#[derive(Debug)]
struct VerticalCounters {
    /// `entities × depth` planes; plane `k` of an entity is count bit `k`.
    planes: Vec<u64>,
    depth: usize,
    entities: usize,
    /// Column sums folded in (the `sim.bitslice.popcounts` counter:
    /// each fold deposits one batch of per-lane toggle counts).
    folds: u64,
}

impl VerticalCounters {
    /// Initial per-entity depth: counts to 65535 per (entity, lane)
    /// before the first growth, which covers typical Monte-Carlo sweeps
    /// outright, and every column sum the kernels fold (widths up to 64
    /// bits diff to at most 8 sum planes) lands without a width check.
    const INITIAL_DEPTH: usize = 16;

    fn new(entities: usize) -> Self {
        VerticalCounters {
            planes: vec![0; entities * Self::INITIAL_DEPTH],
            depth: Self::INITIAL_DEPTH,
            entities,
            folds: 0,
        }
    }

    /// Adds a column sum (per-lane counts, `sum[k]` = count bit `k`)
    /// into `entity`'s counters: a schoolbook carry-save add over the
    /// sum planes, then a carry chase that exits as soon as no lane
    /// still carries.
    #[inline]
    fn add_sum(&mut self, entity: usize, sum: &[u64]) {
        self.folds += 1;
        debug_assert!(sum.len() <= self.depth);
        let base = entity * self.depth;
        let row = &mut self.planes[base..base + self.depth];
        let (head, tail) = row.split_at_mut(sum.len());
        let mut carry = 0u64;
        for (plane, &s) in head.iter_mut().zip(sum) {
            let c = *plane;
            let t = c ^ s;
            *plane = t ^ carry;
            carry = (c & s) | (carry & t);
        }
        for plane in tail {
            if carry == 0 {
                return;
            }
            let prev = *plane;
            *plane = prev ^ carry;
            carry &= prev;
        }
        if carry != 0 {
            self.overflow(entity, carry);
        }
    }

    /// Doubles the depth and deposits a carry that rippled off the end
    /// of an entity's row. Past count bit 64 a lane's count would wrap
    /// `u64` — unreachable in practice — and the carry is dropped,
    /// matching the scalar kernel's release-mode wrap.
    #[cold]
    fn overflow(&mut self, entity: usize, carry: u64) {
        if self.depth >= u64::BITS as usize {
            return;
        }
        let old = self.depth;
        let depth = old * 2;
        let mut planes = vec![0u64; self.entities * depth];
        for e in 0..self.entities {
            planes[e * depth..e * depth + old]
                .copy_from_slice(&self.planes[e * old..(e + 1) * old]);
        }
        self.planes = planes;
        self.depth = depth;
        self.planes[entity * depth + old] = carry;
    }

    /// Lane `l`'s count for `entity`, folded from its row's planes.
    #[inline]
    fn get(&self, entity: usize, lane: usize) -> u64 {
        let base = entity * self.depth;
        self.planes[base..base + self.depth]
            .iter()
            .enumerate()
            .fold(0u64, |acc, (j, &plane)| acc | (((plane >> lane) & 1) << j))
    }
}

/// Step-scoped totals backing per-step profiles: one single-entity
/// vertical counter per data-dependent category. Only allocated when
/// profiling, so the activity-only hot path never pays for them.
#[derive(Debug)]
struct Totals {
    net: VerticalCounters,
    input: VerticalCounters,
    store: VerticalCounters,
}

/// Mutable plane-execution state of one population sweep.
struct Runner {
    w: usize,
    width: u8,
    planes: Vec<u64>,
    stored: Vec<u64>,
    hist_a: Vec<u64>,
    hist_b: Vec<u64>,
    /// Per-net packed skip-check metadata (change generation, last
    /// execution, route id).
    meta: Vec<NetMeta>,
    /// Tick at which each ALU's operand history last changed — the
    /// frozen-ALU skip condition.
    hist_gen: Vec<u32>,
    /// Tick of each register's last executed capture (0 = never).
    cseen: Vec<u32>,
    /// Input net of each register's last executed capture (`u32::MAX`
    /// = never) — a capture routed from a different net must not reuse
    /// the previous capture's skip evidence.
    cap_in: Vec<u32>,
    /// Global write-order clock: one tick per combinational phase, one
    /// per capture phase.
    tick: u32,
    net_count: VerticalCounters,
    input_count: VerticalCounters,
    store_count: VerticalCounters,
    /// Running function-select total across all ALUs (profile input
    /// category), advanced per step from the lowered constants.
    fn_total: u64,
    // Lane-independent counters, kept once and replicated.
    clock_pulses: Vec<u64>,
    clock_total: u64,
    control_toggles: u64,
    controller_pulses: u64,
    steps: u64,
    totals: Option<Totals>,
    capture_buf: Vec<u64>,
    /// Reusable ALU result row. Every [`compute_planes`] arm fully
    /// overwrites its `w` planes, so the buffer carries no state
    /// between executions — it only spares the hot loop a fresh
    /// zeroed stack array per execution.
    scratch: Vec<u64>,
}

impl Runner {
    fn new(p: &CompiledNetlist<'_>, collect_profile: bool) -> Self {
        let w = p.width as usize;
        let n_nets = p.netlist.num_nets();
        let nc = p.num_comps;
        let mut planes = vec![0u64; n_nets * w];
        // Broadcast the power-up values: every lane starts identically,
        // so an init bit becomes an all-ones plane.
        for (net, &v) in p.init_nets.iter().enumerate() {
            for (j, plane) in planes[net * w..(net + 1) * w].iter_mut().enumerate() {
                if (v >> j) & 1 == 1 {
                    *plane = u64::MAX;
                }
            }
        }
        Runner {
            w,
            width: p.width,
            planes,
            stored: vec![0; nc * w],
            hist_a: vec![0; nc * w],
            hist_b: vec![0; nc * w],
            meta: vec![
                NetMeta {
                    gen: 0,
                    seen: 0,
                    cfg: NO_CFG,
                };
                n_nets
            ],
            hist_gen: vec![0; nc],
            cseen: vec![0; nc],
            cap_in: vec![u32::MAX; nc],
            tick: 0,
            net_count: VerticalCounters::new(n_nets),
            input_count: VerticalCounters::new(nc),
            store_count: VerticalCounters::new(nc),
            fn_total: 0,
            clock_pulses: vec![0; nc],
            clock_total: 0,
            control_toggles: 0,
            controller_pulses: 0,
            steps: 0,
            totals: collect_profile.then(|| Totals {
                net: VerticalCounters::new(1),
                input: VerticalCounters::new(1),
                store: VerticalCounters::new(1),
            }),
            capture_buf: vec![0; p.max_captures * w],
            scratch: vec![0; w],
        }
    }

    /// Commits a result row to net `dst`'s planes: diffs every plane
    /// branchlessly into a column sum, folds a nonzero sum into the
    /// toggle counters with one add, and stamps the net's generation —
    /// the plane twin of the scalar kernel's `set_net` (planes are
    /// width-bounded, so masking is structural).
    #[inline]
    fn commit_row<const W: usize>(&mut self, dst: u32, vals: &[u64]) {
        let w = if W == 0 { self.w } else { W };
        let levels = levels_for(w);
        let base = dst as usize * w;
        let mut sum = [0u64; 8];
        let changed = diff_rows(w, levels, &mut self.planes[base..base + w], vals, &mut sum);
        if changed != 0 {
            self.net_count.add_sum(dst as usize, &sum[..levels]);
            if let Some(t) = &mut self.totals {
                t.net.add_sum(0, &sum[..levels]);
            }
            self.meta[dst as usize].gen = self.tick;
        }
    }

    /// Executes one counted plane instruction — or proves it redundant
    /// and skips it. The skip conditions are exact: configuration
    /// unchanged and every input generation at or before this
    /// destination's last execution (with the destination itself
    /// untouched since) means a re-execution would recompute the same
    /// value, diff all-zero planes and count nothing.
    #[inline]
    fn exec<const W: usize>(&mut self, pi: &PInstr) {
        let w = if W == 0 { self.w } else { W };
        match *pi {
            PInstr::Copy { src, dst } => {
                let (s, d) = (src as usize, dst as usize);
                let m = self.meta[d];
                if m.cfg == src && self.meta[s].gen <= m.seen && m.gen <= m.seen {
                    return;
                }
                let levels = levels_for(w);
                let mut sum = [0u64; 8];
                let (srow, drow) = two_rows(&mut self.planes, s * w, d * w, w);
                let changed = diff_rows(w, levels, drow, srow, &mut sum);
                if changed != 0 {
                    self.net_count.add_sum(d, &sum[..levels]);
                    if let Some(t) = &mut self.totals {
                        t.net.add_sum(0, &sum[..levels]);
                    }
                    self.meta[d].gen = self.tick;
                }
                self.meta[d].seen = self.tick;
                self.meta[d].cfg = src;
            }
            PInstr::Alu {
                comp,
                a,
                b,
                dst,
                kind,
                cfg,
            } => {
                let d = dst as usize;
                let (ai, bi) = (a as usize, b as usize);
                let m = self.meta[d];
                if m.cfg == cfg
                    && self.meta[ai].gen <= m.seen
                    && self.meta[bi].gen <= m.seen
                    && m.gen <= m.seen
                {
                    return;
                }
                let slot = comp as usize;
                let hb = slot * w;
                // Refresh both operand histories in place, folding
                // their diffs into one shared column sum — after the
                // refresh the history banks *are* the current
                // operands, so the compute reads them directly (no
                // scratch copies, no aliasing with the commit).
                let levels = levels_for(2 * w);
                let mut sum = [0u64; 8];
                if 2 * w <= 8 {
                    let mut diffs = [0u64; 8];
                    for j in 0..w {
                        let va = self.planes[ai * w + j];
                        let da = self.hist_a[hb + j] ^ va;
                        self.hist_a[hb + j] = va;
                        diffs[2 * j] = da;
                        let vb = self.planes[bi * w + j];
                        let db = self.hist_b[hb + j] ^ vb;
                        self.hist_b[hb + j] = vb;
                        diffs[2 * j + 1] = db;
                    }
                    fold_sum(levels, &diffs[..2 * w], &mut sum);
                } else {
                    for j in 0..w {
                        let va = self.planes[ai * w + j];
                        let da = self.hist_a[hb + j] ^ va;
                        self.hist_a[hb + j] = va;
                        csum_push(&mut sum, levels, da);
                        let vb = self.planes[bi * w + j];
                        let db = self.hist_b[hb + j] ^ vb;
                        self.hist_b[hb + j] = vb;
                        csum_push(&mut sum, levels, db);
                    }
                }
                let hchanged = or_levels(&sum[..levels]);
                if hchanged != 0 {
                    self.input_count.add_sum(slot, &sum[..levels]);
                    if let Some(t) = &mut self.totals {
                        t.input.add_sum(0, &sum[..levels]);
                    }
                    self.hist_gen[slot] = self.tick;
                }
                let mut out = std::mem::take(&mut self.scratch);
                compute_planes::<W>(
                    self.width,
                    kind,
                    &self.hist_a[hb..hb + w],
                    &self.hist_b[hb..hb + w],
                    &mut out,
                );
                self.commit_row::<W>(dst, &out);
                self.scratch = out;
                let m = &mut self.meta[d];
                m.seen = self.tick;
                m.cfg = cfg;
            }
            PInstr::AluFrozen {
                comp,
                dst,
                kind,
                cfg,
            } => {
                let d = dst as usize;
                let slot = comp as usize;
                let m = self.meta[d];
                if m.cfg == cfg && self.hist_gen[slot] <= m.seen && m.gen <= m.seen {
                    return;
                }
                let hb = slot * w;
                let mut out = std::mem::take(&mut self.scratch);
                compute_planes::<W>(
                    self.width,
                    kind,
                    &self.hist_a[hb..hb + w],
                    &self.hist_b[hb..hb + w],
                    &mut out,
                );
                self.commit_row::<W>(dst, &out);
                self.scratch = out;
                let m = &mut self.meta[d];
                m.seen = self.tick;
                m.cfg = cfg;
            }
        }
    }

    /// Executes one silent preload instruction: same dataflow, no
    /// activity counting, no history refresh, no generation stamps —
    /// exactly the scalar kernel's reset settle.
    fn exec_silent<const W: usize>(&mut self, pi: &PInstr) {
        let w = if W == 0 { self.w } else { W };
        match *pi {
            PInstr::Copy { src, dst } => {
                let s = src as usize * w;
                self.planes.copy_within(s..s + w, dst as usize * w);
            }
            PInstr::Alu {
                a, b, dst, kind, ..
            } => {
                let mut out = std::mem::take(&mut self.scratch);
                compute_planes::<W>(
                    self.width,
                    kind,
                    &self.planes[a as usize * w..a as usize * w + w],
                    &self.planes[b as usize * w..b as usize * w + w],
                    &mut out,
                );
                let d = dst as usize * w;
                self.planes[d..d + w].copy_from_slice(&out);
                self.scratch = out;
            }
            PInstr::AluFrozen { .. } => {
                unreachable!("preload settle has no frozen ALUs")
            }
        }
    }

    /// Memory captures: fold stored-bit toggles and commit the
    /// forwarded nets (at the capture-phase tick, so downstream skip
    /// decisions observe the register update).
    ///
    /// A register's output net is written by captures alone, so its
    /// planes always mirror the stored state — one difference pass
    /// serves both the stored-bit and the net toggle counters, and the
    /// toggles land once, in the store bank (extraction replays them
    /// onto the output net). Only a step whose captures chain — some
    /// register reading another's output — needs the two-phase gather
    /// buffer (`chained`); everywhere else captures read the input
    /// planes directly.
    fn captures<const W: usize>(&mut self, caps: &[Capture], chained: bool) {
        if caps.is_empty() {
            return;
        }
        let w = if W == 0 { self.w } else { W };
        if chained {
            for (k, cap) in caps.iter().enumerate() {
                let s = cap.input as usize * w;
                self.capture_buf[k * w..(k + 1) * w].copy_from_slice(&self.planes[s..s + w]);
            }
        }
        let levels = levels_for(w);
        for (k, cap) in caps.iter().enumerate() {
            let slot = cap.comp as usize;
            // A capture whose input net is unchanged since this
            // register's last capture of the *same* net re-stores the
            // held value: no stored-bit or output-net toggles, nothing
            // to count or write.
            if self.cap_in[slot] == cap.input
                && self.meta[cap.input as usize].gen <= self.cseen[slot]
            {
                continue;
            }
            self.cseen[slot] = self.tick;
            self.cap_in[slot] = cap.input;
            let cb = slot * w;
            let sb = cap.input as usize * w;
            let ob = cap.out as usize * w;
            debug_assert_eq!(
                self.stored[cb..cb + w],
                self.planes[ob..ob + w],
                "stored state mirrors the register's output net"
            );
            let mut sum = [0u64; 8];
            if w <= 8 {
                let mut diffs = [0u64; 8];
                for (j, diff) in diffs.iter_mut().enumerate().take(w) {
                    let v = if chained {
                        self.capture_buf[k * w + j]
                    } else {
                        self.planes[sb + j]
                    };
                    *diff = self.stored[cb + j] ^ v;
                    self.stored[cb + j] = v;
                    self.planes[ob + j] = v;
                }
                fold_sum(levels, &diffs[..w], &mut sum);
            } else {
                for j in 0..w {
                    let v = if chained {
                        self.capture_buf[k * w + j]
                    } else {
                        self.planes[sb + j]
                    };
                    let d = self.stored[cb + j] ^ v;
                    self.stored[cb + j] = v;
                    self.planes[ob + j] = v;
                    csum_push(&mut sum, levels, d);
                }
            }
            if or_levels(&sum[..levels]) != 0 {
                self.store_count.add_sum(slot, &sum[..levels]);
                if let Some(t) = &mut self.totals {
                    t.store.add_sum(0, &sum[..levels]);
                    t.net.add_sum(0, &sum[..levels]);
                }
                self.meta[cap.out as usize].gen = self.tick;
            }
        }
    }

    /// Lane `l`'s running totals (profile mode): the bit-sliced twin of
    /// the scalar kernel's running-total snapshot.
    fn running_profile(&self, lane: usize) -> StepActivity {
        let t = self.totals.as_ref().expect("profiling collects totals");
        StepActivity {
            net_toggles: t.net.get(0, lane),
            input_toggles: t.input.get(0, lane) + self.fn_total,
            clock_pulses: self.clock_total,
            store_toggles: t.store.get(0, lane),
            control_toggles: self.control_toggles,
        }
    }
}

/// Evaluates `kind` over the operand plane rows `a`/`b` into `out`
/// (only the first `w` planes are written).
#[inline]
fn compute_planes<const W: usize>(width: u8, kind: PlaneOp, a: &[u64], b: &[u64], out: &mut [u64]) {
    let w = if W == 0 { a.len() } else { W };
    debug_assert_eq!(out.len(), w);
    match kind {
        PlaneOp::And => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x & y;
            }
        }
        PlaneOp::Or => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x | y;
            }
        }
        PlaneOp::Xor => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x ^ y;
            }
        }
        PlaneOp::Add => {
            // Ripple carry: sum = a ^ b ^ c, c' = ab | c(a ^ b);
            // the carry out of the top plane drops (wrapping).
            let mut carry = 0u64;
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                let xy = x ^ y;
                *o = xy ^ carry;
                carry = (x & y) | (carry & xy);
            }
        }
        PlaneOp::Sub => {
            // Borrow chain: diff = a ^ b ^ brw,
            // brw' = !a·b | !(a ^ b)·brw (wrapping).
            let mut brw = 0u64;
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                let xy = x ^ y;
                *o = xy ^ brw;
                brw = (!x & y) | (!xy & brw);
            }
        }
        PlaneOp::Gt => {
            // a > b ⇔ borrow-out of b − a; result is the 0/1 plane.
            let mut brw = 0u64;
            for (&x, &y) in b[..w].iter().zip(a) {
                brw = (!x & y) | (!(x ^ y) & brw);
            }
            out.fill(0);
            out[0] = brw;
        }
        PlaneOp::Lt => {
            // a < b ⇔ borrow-out of a − b.
            let mut brw = 0u64;
            for (&x, &y) in a[..w].iter().zip(b) {
                brw = (!x & y) | (!(x ^ y) & brw);
            }
            out.fill(0);
            out[0] = brw;
        }
        PlaneOp::Mul => {
            // Shift-add: for each multiplier bit k, conditionally
            // ripple-add `a << k` wherever lane bit `b_k` is set.
            // Exactly `wrapping_mul` masked to the width.
            out.fill(0);
            for (k, &cond) in b[..w].iter().enumerate() {
                if cond == 0 {
                    continue;
                }
                let mut carry = 0u64;
                for j in k..w {
                    let addend = a[j - k] & cond;
                    let acc = out[j];
                    let ax = acc ^ addend;
                    out[j] = ax ^ carry;
                    carry = (acc & addend) | (carry & ax);
                }
            }
        }
        PlaneOp::Fallback(op) => {
            // Transpose-execute-transpose: gather the lane values,
            // apply the exact scalar op, scatter the results. Dead
            // lanes compute on zeros — harmless and never read.
            let mut va = [0u64; BITSLICE_LANES];
            let mut vb = [0u64; BITSLICE_LANES];
            gather_lanes(&a[..w], &mut va);
            gather_lanes(&b[..w], &mut vb);
            for (x, &y) in va.iter_mut().zip(vb.iter()) {
                *x = op.apply(*x, y, width);
            }
            scatter_lanes(&va, out);
        }
    }
}

/// Transposes plane rows back to lane values: `out[l]` gets bit `j`
/// from plane `j`'s lane-`l` bit.
#[inline]
fn gather_lanes(planes: &[u64], out: &mut [u64; BITSLICE_LANES]) {
    out.fill(0);
    for (j, &plane) in planes.iter().enumerate() {
        for (l, v) in out.iter_mut().enumerate() {
            *v |= ((plane >> l) & 1) << j;
        }
    }
}

/// Transposes lane values into plane rows: plane `j`'s lane-`l` bit is
/// bit `j` of `vals[l]`.
#[inline]
fn scatter_lanes(vals: &[u64; BITSLICE_LANES], planes: &mut [u64]) {
    for (j, plane) in planes.iter_mut().enumerate() {
        let mut p = 0u64;
        for (l, &v) in vals.iter().enumerate() {
            p |= ((v >> j) & 1) << l;
        }
        *plane = p;
    }
}

/// Convenience wrapper: compile + run the given seeds bit-sliced in one
/// call. `results[k]` is bit-identical to [`simulate`](crate::simulate)
/// with seed `seeds[k]`.
#[must_use]
pub fn simulate_seeds_bitsliced(
    netlist: &Netlist,
    mode: PowerMode,
    computations: usize,
    seeds: &[u64],
    collect_profile: bool,
) -> Vec<SimResult> {
    BitslicedProgram::compile(netlist, mode).run_seeds(computations, seeds, collect_profile)
}

/// Which multi-seed kernel executes a Monte-Carlo seed schedule.
///
/// Both backends are bit-identical per seed to the scalar compiled
/// kernel, so the choice is pure throughput: lane-major batching wins
/// on wide datapaths and small populations, bit-plane slicing wins on
/// narrow datapaths with many seeds (the paper's 4-bit benchmarks run
/// 64 seeds per word). Reports never encode the backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BatchBackend {
    /// Lane-major SoA batching ([`BatchedProgram`]), the default.
    #[default]
    Batched,
    /// Bit-plane packing ([`BitslicedProgram`]), 64 seeds per word.
    Bitsliced,
}

impl BatchBackend {
    /// Parses a CLI backend name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<BatchBackend> {
        match name {
            "batched" => Some(BatchBackend::Batched),
            "bitsliced" => Some(BatchBackend::Bitsliced),
            _ => None,
        }
    }
}

impl fmt::Display for BatchBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BatchBackend::Batched => "batched",
            BatchBackend::Bitsliced => "bitsliced",
        })
    }
}

/// A compiled multi-seed kernel behind the [`BatchBackend`] switch —
/// the one dispatch point every Monte-Carlo consumer (flow, explorer,
/// retrofit, adaptive estimator) compiles through.
// One instance exists per Monte-Carlo run and it lives on the stack of
// that run — the variant size gap never multiplies across a collection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum SeedKernel<'a> {
    /// The lane-major batched kernel at a configured lane width.
    Batched(BatchedProgram<'a>),
    /// The bit-sliced kernel (population width fixed at 64).
    Bitsliced(BitslicedProgram<'a>),
}

impl<'a> SeedKernel<'a> {
    /// Compiles `netlist` under `mode` for `backend`; `lanes` applies
    /// to the batched backend only (the bit-sliced population width is
    /// structural).
    #[must_use]
    pub fn compile(
        netlist: &'a Netlist,
        mode: PowerMode,
        backend: BatchBackend,
        lanes: usize,
    ) -> Self {
        match backend {
            BatchBackend::Batched => {
                SeedKernel::Batched(BatchedProgram::compile(netlist, mode, lanes))
            }
            BatchBackend::Bitsliced => {
                SeedKernel::Bitsliced(BitslicedProgram::compile(netlist, mode))
            }
        }
    }

    /// The backend this kernel was compiled for.
    #[must_use]
    pub fn backend(&self) -> BatchBackend {
        match self {
            SeedKernel::Batched(_) => BatchBackend::Batched,
            SeedKernel::Bitsliced(_) => BatchBackend::Bitsliced,
        }
    }

    /// Seeds evaluated per sweep (the chunk granularity of adaptive
    /// early stopping).
    #[must_use]
    pub fn lanes(&self) -> usize {
        match self {
            SeedKernel::Batched(p) => p.lanes(),
            SeedKernel::Bitsliced(p) => p.lanes(),
        }
    }

    /// Runs every seed; `results[k]` is bit-identical to a scalar run
    /// with seed `seeds[k]` on either backend.
    #[must_use]
    pub fn run_seeds(
        &self,
        computations: usize,
        seeds: &[u64],
        collect_profile: bool,
    ) -> Vec<SimResult> {
        match self {
            SeedKernel::Batched(p) => p.run_seeds(computations, seeds, collect_profile),
            SeedKernel::Bitsliced(p) => p.run_seeds(computations, seeds, collect_profile),
        }
    }

    /// Activity-only variant for the power path.
    #[must_use]
    pub fn run_seeds_activity(
        &self,
        computations: usize,
        seeds: &[u64],
        collect_profile: bool,
    ) -> Vec<Activity> {
        match self {
            SeedKernel::Batched(p) => p.run_seeds_activity(computations, seeds, collect_profile),
            SeedKernel::Bitsliced(p) => p.run_seeds_activity(computations, seeds, collect_profile),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use mc_alloc::{allocate, AllocOptions, Strategy};
    use mc_clocks::ClockScheme;
    use mc_dfg::benchmarks;

    fn hal(n: u32) -> Netlist {
        let bm = benchmarks::hal();
        let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(n).unwrap());
        allocate(&bm.dfg, &bm.schedule, &opts).unwrap().netlist
    }

    #[test]
    fn seeds_match_scalar_runs() {
        let nl = hal(3);
        let mode = PowerMode::multiclock();
        let seeds: Vec<u64> = (0..5).map(|k| 100 + k * 13).collect();
        let sliced = simulate_seeds_bitsliced(&nl, mode, 8, &seeds, true);
        assert_eq!(sliced.len(), seeds.len());
        for (k, &seed) in seeds.iter().enumerate() {
            let cfg = SimConfig::new(mode, 8, seed).with_profile();
            let scalar = simulate(&nl, &cfg);
            assert_eq!(sliced[k].activity, scalar.activity, "seed {seed}");
            assert_eq!(sliced[k].outputs, scalar.outputs, "seed {seed}");
        }
    }

    #[test]
    fn population_overflow_chunks_into_two_sweeps() {
        let nl = hal(2);
        let mode = PowerMode::gated();
        let seeds: Vec<u64> = (0..65).map(|k| 7 + k * 3).collect();
        let program = BitslicedProgram::compile(&nl, mode);
        let sliced = program.run_seeds(3, &seeds, false);
        let activities = program.run_seeds_activity(3, &seeds, false);
        assert_eq!(sliced.len(), 65);
        for (k, &seed) in seeds.iter().enumerate() {
            let scalar = simulate(&nl, &SimConfig::new(mode, 3, seed));
            assert_eq!(sliced[k].activity, scalar.activity, "seed {seed}");
            assert_eq!(sliced[k].outputs, scalar.outputs, "seed {seed}");
            assert_eq!(activities[k], scalar.activity, "activity path, seed {seed}");
        }
    }

    #[test]
    fn zero_computations_yield_empty_results() {
        let nl = hal(2);
        let res = simulate_seeds_bitsliced(&nl, PowerMode::multiclock(), 0, &[1, 2], false);
        assert_eq!(res.len(), 2);
        for r in &res {
            assert_eq!(r.activity.steps, 0);
            assert!(r.outputs.is_empty());
        }
    }

    #[test]
    fn explicit_vectors_match_scalar_simulation() {
        let nl = hal(3);
        let mode = PowerMode::non_gated();
        let vectors: Vec<Vec<BTreeMap<String, u64>>> = [11u64, 22, 33]
            .iter()
            .map(|&seed| {
                crate::stimulus::Stimulus::UniformRandom
                    .flat_vectors(&nl, 5, seed)
                    .to_vectors()
            })
            .collect();
        let program = BitslicedProgram::compile(&nl, mode);
        let sliced = program.run_vectors(&vectors, false).unwrap();
        for (k, vecs) in vectors.iter().enumerate() {
            let scalar = crate::try_simulate_with_inputs(&nl, mode, vecs, false).unwrap();
            assert_eq!(sliced[k].activity, scalar.activity, "member {k}");
            assert_eq!(sliced[k].outputs, scalar.outputs, "member {k}");
        }
    }

    #[test]
    fn seed_kernel_backends_agree() {
        let nl = hal(2);
        let mode = PowerMode::multiclock();
        let seeds = [5u64, 6, 7];
        let batched = SeedKernel::compile(&nl, mode, BatchBackend::Batched, 16);
        let sliced = SeedKernel::compile(&nl, mode, BatchBackend::Bitsliced, 16);
        assert_eq!(batched.backend(), BatchBackend::Batched);
        assert_eq!(sliced.backend(), BatchBackend::Bitsliced);
        assert_eq!(sliced.lanes(), BITSLICE_LANES);
        assert_eq!(
            batched.run_seeds_activity(6, &seeds, false),
            sliced.run_seeds_activity(6, &seeds, false)
        );
    }

    #[test]
    fn backend_names_round_trip() {
        for b in [BatchBackend::Batched, BatchBackend::Bitsliced] {
            assert_eq!(BatchBackend::from_name(&b.to_string()), Some(b));
        }
        assert_eq!(BatchBackend::from_name("warp"), None);
        assert_eq!(BatchBackend::default(), BatchBackend::Batched);
    }

    #[test]
    fn vertical_counters_grow_past_initial_depth() {
        let mut vc = VerticalCounters::new(2);
        let n = (1u64 << VerticalCounters::INITIAL_DEPTH) + 5;
        for _ in 0..n {
            vc.add_sum(1, &[u64::MAX]);
        }
        for lane in [0usize, 63] {
            assert_eq!(vc.get(1, lane), n);
            assert_eq!(vc.get(0, lane), 0);
        }
        assert_eq!(vc.folds, n);
    }

    #[test]
    fn column_sums_fold_batches_exactly() {
        let levels = levels_for(4);
        assert_eq!(levels, 3);
        let mut sum = [0u64; 8];
        // Lane 0 toggles in all four pushes, lane 1 in two, lane 2 in
        // none.
        csum_push(&mut sum, levels, 0b01);
        csum_push(&mut sum, levels, 0b11);
        csum_push(&mut sum, levels, 0b01);
        csum_push(&mut sum, levels, 0b11);
        let mut vc = VerticalCounters::new(1);
        vc.add_sum(0, &sum[..levels]);
        assert_eq!(vc.get(0, 0), 4);
        assert_eq!(vc.get(0, 1), 2);
        assert_eq!(vc.get(0, 2), 0);
    }
}
