//! The batched multi-lane simulation kernel: M independent stimulus
//! seeds per pass over one compiled instruction stream.
//!
//! The scalar kernel ([`CompiledNetlist`]) already removes per-step map
//! lookups, but every seed still re-walks the instruction stream alone:
//! instruction decode, control-word addition and the pulse/capture lists
//! are fetched once per *(step, seed)*. Monte-Carlo power estimation
//! wants tens of seeds per design point, so the batched kernel turns the
//! state vectors into lane-major structure-of-arrays storage —
//!
//! ```text
//! scalar            nets[net]
//! batched           nets[net * lanes + lane]
//!
//!        net 0              net 1              net 2
//!   ┌────┬────┬────┐  ┌────┬────┬────┐  ┌────┬────┬────┐
//!   │ l0 │ l1 │ l2 │  │ l0 │ l1 │ l2 │  │ l0 │ l1 │ l2 │ …
//!   └────┴────┴────┘  └────┴────┴────┘  └────┴────┴────┘
//! ```
//!
//! — and executes every instruction once per step over all lanes. Decode,
//! control words, pulse lists and capture lists are amortized `lanes`×,
//! and the inner lane loops are branchless (toggle counts come from
//! unconditional XOR/popcount, which is exact: equal values contribute
//! zero flips), so the compiler can vectorize them.
//!
//! **Lane determinism contract.** Lane `k` of a batched run is
//! bit-identical to a scalar [`simulate`](crate::simulate) run with seed
//! `seeds[k]`: same activity counters, same per-step profiles, same
//! outputs. Control toggles, controller pulses and memory clock pulses
//! are data-independent — identical across lanes — so the kernel counts
//! them once and replicates them into every lane's [`Activity`]; the
//! data-dependent counters (net, ALU-input and stored-bit toggles) live
//! in per-lane SoA arrays. The contract is enforced differentially by
//! `tests/sim_batched.rs` across every benchmark, mode, clock count and
//! lane width.
//!
//! Traces are not collected in batched mode (a per-lane full net trace
//! would defeat the point; the scalar path covers VCD export and
//! debugging).

use std::collections::BTreeMap;

use mc_dfg::Op;
use mc_rtl::{Netlist, PowerMode};

use crate::activity::{Activity, StepActivity};
use crate::compiled::{CompiledNetlist, Instr};
use crate::engine::{BoundInputs, SimResult};

/// Widest supported lane count. Wider batches stop paying off once the
/// SoA working set falls out of cache; requests beyond this are clamped.
pub const MAX_LANES: usize = 64;

/// A compiled program plus a lane width: the batched execution mode.
///
/// Compile once with [`BatchedProgram::compile`], then run any number of
/// seed batches through [`BatchedProgram::run_seeds`]. Each batch of up
/// to [`lanes`](BatchedProgram::lanes) seeds shares one sweep over the
/// instruction stream.
#[derive(Debug)]
pub struct BatchedProgram<'a> {
    program: CompiledNetlist<'a>,
    lanes: usize,
}

impl<'a> BatchedProgram<'a> {
    /// Lowers `netlist` under `mode` and fixes the lane width (clamped to
    /// `1..=`[`MAX_LANES`]).
    #[must_use]
    pub fn compile(netlist: &'a Netlist, mode: PowerMode, lanes: usize) -> Self {
        BatchedProgram {
            program: CompiledNetlist::compile(netlist, mode),
            lanes: lanes.clamp(1, MAX_LANES),
        }
    }

    /// The configured lane width.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Simulates `computations` random computations for every seed in
    /// `seeds`, batching them [`lanes`](BatchedProgram::lanes) at a time
    /// (a final partial batch runs at its own width). `results[k]` is
    /// bit-identical to a scalar run with seed `seeds[k]`.
    #[must_use]
    pub fn run_seeds(
        &self,
        computations: usize,
        seeds: &[u64],
        collect_profile: bool,
    ) -> Vec<SimResult> {
        seeds
            .chunks(self.lanes)
            .flat_map(|chunk| self.run_batch(computations, chunk, collect_profile, true))
            .collect()
    }

    /// Like [`BatchedProgram::run_seeds`] but skips the per-computation
    /// output maps and returns only each lane's [`Activity`] — the form
    /// Monte-Carlo power estimation consumes. Building a
    /// `BTreeMap<String, u64>` per (computation, lane) costs more than a
    /// quarter of a batched run on the paper workloads, and the power
    /// model never reads it; the activity counters are still
    /// bit-identical to scalar runs with the same seeds.
    #[must_use]
    pub fn run_seeds_activity(
        &self,
        computations: usize,
        seeds: &[u64],
        collect_profile: bool,
    ) -> Vec<Activity> {
        seeds
            .chunks(self.lanes)
            .flat_map(|chunk| self.run_batch(computations, chunk, collect_profile, false))
            .map(|r| r.activity)
            .collect()
    }

    /// Runs one batch of `seeds.len() <= lanes` seeds through a single
    /// sweep.
    ///
    /// Dispatches to a monomorphized kernel for the next power-of-two
    /// lane width: with the width a compile-time constant every row loop
    /// has a known trip count, so LLVM unrolls and vectorizes them —
    /// with a runtime width the same loops run a generic scalar path and
    /// the batch amortization is lost in slicing overhead. Partial
    /// batches are padded with copies of the last seed (lanes are
    /// independent, so padding changes nothing) and truncated after.
    fn run_batch(
        &self,
        computations: usize,
        seeds: &[u64],
        collect_profile: bool,
        collect_outputs: bool,
    ) -> Vec<SimResult> {
        let wanted = seeds.len();
        debug_assert!((1..=MAX_LANES).contains(&wanted));
        let mut padded = Vec::new();
        macro_rules! dispatch {
            ($($w:literal),+) => {
                $(if wanted <= $w {
                    let seeds = if wanted == $w {
                        seeds
                    } else {
                        padded.extend_from_slice(seeds);
                        padded.resize($w, *seeds.last().expect("non-empty batch"));
                        &padded
                    };
                    let mut results =
                        self.run_batch_impl::<$w>(computations, seeds, collect_profile, collect_outputs);
                    results.truncate(wanted);
                    self.trace_batch(computations, wanted, $w, &results);
                    return results;
                })+
                unreachable!("lane width exceeds MAX_LANES")
            };
        }
        dispatch!(1, 2, 4, 8, 16, 32, 64);
    }

    /// Records tracing counters for one dispatched batch. The kernel sweep
    /// decodes each instruction once for all lanes, so the executed total
    /// is the scalar analytic count times the *active* lane count —
    /// padded lanes are truncated away and do not count as work, keeping
    /// `sim.instructions` independent of the configured batch width.
    fn trace_batch(&self, computations: usize, wanted: usize, width: usize, results: &[SimResult]) {
        if !mc_trace::enabled() {
            return;
        }
        mc_trace::count("sim.runs", wanted as u64);
        mc_trace::count(
            "sim.instructions",
            self.program.instructions_executed(computations) * wanted as u64,
        );
        mc_trace::count("sim.lanes.active", wanted as u64);
        mc_trace::count("sim.lanes.padded", (width - wanted) as u64);
        for r in results {
            let a = &r.activity;
            mc_trace::count("sim.steps", a.steps);
            mc_trace::count(
                "sim.toggles",
                a.net_toggles.iter().sum::<u64>()
                    + a.input_toggles.iter().sum::<u64>()
                    + a.store_toggles.iter().sum::<u64>()
                    + a.control_toggles,
            );
            mc_trace::count("sim.clock_pulses", a.total_clock_pulses());
        }
    }

    /// The monomorphized batch kernel: exactly `L` lanes, `L` a
    /// compile-time constant so every row loop unrolls.
    fn run_batch_impl<const L: usize>(
        &self,
        computations: usize,
        seeds: &[u64],
        collect_profile: bool,
        collect_outputs: bool,
    ) -> Vec<SimResult> {
        let p = &self.program;
        let nl = p.netlist;
        debug_assert_eq!(seeds.len(), L);
        let lanes = L;
        let ni = p.input_nets.len();
        let n_nets = nl.num_nets();
        let nc = p.num_comps;
        let width = p.width;
        let mask = p.mask;

        // Per-lane flat stimulus streams: flats[l][c * ni + i] is lane
        // l's value for input i of computation c — the same masked stream
        // BoundInputs::random draws for a scalar run with seeds[l]. The
        // streams stay lane-flat and rows are gathered on the fly at the
        // (rare) input-drive steps: transposing them into one lane-major
        // buffer up front would scatter half a million stores across
        // cache lines and cost more than the whole instruction sweep.
        let flats: Vec<Vec<u64>> = seeds
            .iter()
            .map(|&seed| BoundInputs::random(nl, computations, seed).flat)
            .collect();

        // Lane-major state and data-dependent counters.
        let mut nets = vec![0u64; n_nets * lanes];
        for (i, &v) in p.init_nets.iter().enumerate() {
            nets[i * lanes..(i + 1) * lanes].fill(v);
        }
        let mut stored = vec![0u64; nc * lanes];
        let mut alu_a = vec![0u64; nc * lanes];
        let mut alu_b = vec![0u64; nc * lanes];
        let mut net_toggles = vec![0u64; n_nets * lanes];
        let mut input_toggles = vec![0u64; nc * lanes];
        let mut store_toggles = vec![0u64; nc * lanes];
        // Per-lane running totals feeding O(1) per-step profile deltas.
        let mut net_total = vec![0u64; lanes];
        let mut input_total = vec![0u64; lanes];
        let mut store_total = vec![0u64; lanes];
        // Data-independent counters: identical in every lane, kept once.
        let mut clock_pulses = vec![0u64; nc];
        let mut clock_total = 0u64;
        let mut control_toggles = 0u64;
        let mut controller_pulses = 0u64;
        let mut steps = 0u64;

        let mut per_step: Option<Vec<Vec<StepActivity>>> = if collect_profile {
            Some(vec![Vec::new(); lanes])
        } else {
            None
        };
        let mut prev = vec![StepActivity::default(); lanes];

        // Reusable lane rows: operand gathers, the ALU result row and the
        // two-phase capture buffer.
        let mut row_a = vec![0u64; lanes];
        let mut row_b = vec![0u64; lanes];
        let mut capture_buf = vec![0u64; p.max_captures * lanes];
        let mut outputs: Vec<Vec<BTreeMap<String, u64>>> =
            vec![Vec::with_capacity(computations); lanes];

        // Reset preload (silent: no activity counted).
        if computations > 0 {
            for (i, &net) in p.input_nets.iter().enumerate() {
                let base = net as usize * lanes;
                for (slot, f) in nets[base..base + lanes].iter_mut().zip(&flats) {
                    *slot = f[i];
                }
            }
            for instr in &p.preload_instrs {
                match *instr {
                    Instr::Copy { src, dst } => {
                        let s = src as usize * lanes;
                        nets.copy_within(s..s + lanes, dst as usize * lanes);
                    }
                    Instr::Alu { a, b, dst, op, .. } => {
                        let sa = a as usize * lanes;
                        let sb = b as usize * lanes;
                        let d = dst as usize * lanes;
                        row_a.copy_from_slice(&nets[sa..sa + lanes]);
                        row_b.copy_from_slice(&nets[sb..sb + lanes]);
                        apply_row(op, width, &row_a, &row_b, &mut nets[d..d + lanes]);
                    }
                    Instr::AluFrozen { .. } => {
                        unreachable!("preload settle has no frozen ALUs")
                    }
                }
            }
            for cap in &p.preload_captures {
                let s = cap.input as usize * lanes;
                let c = cap.comp as usize * lanes;
                stored[c..c + lanes].copy_from_slice(&nets[s..s + lanes]);
                nets.copy_within(s..s + lanes, cap.out as usize * lanes);
            }
        }

        for c in 0..computations {
            let programs = if c == 0 { &p.cold } else { &p.warm };
            for t in 1..=p.period {
                let program = &programs[(t - 1) as usize];
                // 1. Drive ports at the boundary step (counted).
                if t == p.period && c + 1 < computations {
                    let base = (c + 1) * ni;
                    for (i, &net) in p.input_nets.iter().enumerate() {
                        for (slot, f) in row_a.iter_mut().zip(&flats) {
                            *slot = f[base + i];
                        }
                        set_net_row(
                            &mut nets,
                            &mut net_toggles,
                            &mut net_total,
                            net,
                            lanes,
                            &row_a,
                            mask,
                        );
                    }
                }
                // 2. Effective controls: precomputed, lane-independent.
                control_toggles += program.control_toggles;
                // 3. Combinational evaluation, one decode per batch.
                for instr in &program.instrs {
                    match *instr {
                        Instr::Copy { src, dst } => {
                            copy_row::<L>(
                                &mut nets,
                                &mut net_toggles,
                                &mut net_total,
                                src,
                                dst,
                                mask,
                            );
                        }
                        Instr::Alu {
                            comp,
                            a,
                            b,
                            dst,
                            op,
                            fn_delta,
                        } => {
                            let slot = comp as usize * L;
                            alu_row::<L>(
                                op,
                                width,
                                mask,
                                fn_delta,
                                &mut nets,
                                &mut net_toggles,
                                a,
                                b,
                                dst,
                                AluRows {
                                    hist_a: &mut alu_a[slot..slot + L],
                                    hist_b: &mut alu_b[slot..slot + L],
                                    input_toggles: &mut input_toggles[slot..slot + L],
                                    input_total: &mut input_total,
                                    net_total: &mut net_total,
                                },
                            );
                        }
                        Instr::AluFrozen { comp, dst, op } => {
                            let slot = comp as usize * L;
                            frozen_row::<L>(
                                op,
                                width,
                                mask,
                                &alu_a[slot..slot + L],
                                &alu_b[slot..slot + L],
                                &mut nets,
                                &mut net_toggles,
                                &mut net_total,
                                dst,
                            );
                        }
                    }
                }
                // 4. Clock edges (lane-independent) and captures
                // (two-phase commit through the reusable buffer, all
                // lanes gathered before any write).
                for &m in &program.pulses {
                    clock_pulses[m as usize] += 1;
                }
                clock_total += program.pulses.len() as u64;
                for (k, cap) in program.captures.iter().enumerate() {
                    let s = cap.input as usize * lanes;
                    capture_buf[k * lanes..(k + 1) * lanes].copy_from_slice(&nets[s..s + lanes]);
                }
                for (k, cap) in program.captures.iter().enumerate() {
                    let vals = &capture_buf[k * L..(k + 1) * L];
                    let slot = cap.comp as usize * L;
                    capture_row::<L>(
                        vals,
                        &mut stored[slot..slot + L],
                        &mut store_toggles[slot..slot + L],
                        &mut store_total,
                        &mut nets,
                        &mut net_toggles,
                        &mut net_total,
                        cap.out,
                        mask,
                    );
                }
                controller_pulses += 1;
                steps += 1;
                if let Some(ps) = per_step.as_mut() {
                    for l in 0..lanes {
                        let now = StepActivity {
                            net_toggles: net_total[l],
                            input_toggles: input_total[l],
                            clock_pulses: clock_total,
                            store_toggles: store_total[l],
                            control_toggles,
                        };
                        ps[l].push(StepActivity {
                            net_toggles: now.net_toggles - prev[l].net_toggles,
                            input_toggles: now.input_toggles - prev[l].input_toggles,
                            clock_pulses: now.clock_pulses - prev[l].clock_pulses,
                            store_toggles: now.store_toggles - prev[l].store_toggles,
                            control_toggles: now.control_toggles - prev[l].control_toggles,
                        });
                        prev[l] = now;
                    }
                }
            }
            if collect_outputs {
                for (l, lane_outputs) in outputs.iter_mut().enumerate() {
                    let out: BTreeMap<String, u64> = nl
                        .outputs()
                        .iter()
                        .map(|(name, net)| (name.clone(), nets[net.index() * lanes + l]))
                        .collect();
                    lane_outputs.push(out);
                }
            }
        }

        // Scatter the SoA counters into one per-lane Activity each;
        // lane-independent counters replicate verbatim.
        outputs
            .into_iter()
            .enumerate()
            .map(|(l, lane_outputs)| {
                let mut activity = Activity::new(n_nets, nc);
                activity.steps = steps;
                activity.computations = computations as u64;
                for (i, tog) in activity.net_toggles.iter_mut().enumerate() {
                    *tog = net_toggles[i * lanes + l];
                }
                for i in 0..nc {
                    activity.input_toggles[i] = input_toggles[i * lanes + l];
                    activity.store_toggles[i] = store_toggles[i * lanes + l];
                    activity.clock_pulses[i] = clock_pulses[i];
                }
                activity.control_toggles = control_toggles;
                activity.controller_pulses = controller_pulses;
                if let Some(ps) = per_step.as_mut() {
                    activity.per_step = Some(std::mem::take(&mut ps[l]));
                }
                SimResult {
                    activity,
                    inputs: Vec::new(),
                    outputs: lane_outputs,
                    trace: None,
                }
            })
            .collect()
    }
}

/// Commits a row of lane values to net `net`, counting bit flips per
/// lane. Branchless twin of the scalar kernel's `set_net`: equal values
/// contribute zero flips, so the counters stay bit-identical while the
/// loop stays vectorizable (the zips carry the lane count into every
/// access, so no bounds check survives into the loop body).
#[inline]
fn set_net_row(
    nets: &mut [u64],
    net_toggles: &mut [u64],
    net_total: &mut [u64],
    net: u32,
    lanes: usize,
    values: &[u64],
    mask: u64,
) {
    let base = net as usize * lanes;
    let row = nets[base..base + lanes]
        .iter_mut()
        .zip(&mut net_toggles[base..base + lanes]);
    for ((r, t), (&v, total)) in row.zip(values.iter().zip(net_total)) {
        let v = v & mask;
        let flips = u64::from((*r ^ v).count_ones());
        *t += flips;
        *total += flips;
        *r = v;
    }
}

/// Applies `op` lane-wise: `out[l] = op.apply(a[l], b[l], width)`.
///
/// The dispatch on `op` happens once per row, not once per lane — each
/// arm re-invokes [`Op::apply`] with the operation now a compile-time
/// constant, so the inner match folds away and every arm becomes a tight
/// loop over the lanes with the exact scalar semantics.
#[inline]
fn apply_row(op: Op, width: u8, a: &[u64], b: &[u64], out: &mut [u64]) {
    macro_rules! unswitch {
        ($($v:ident),+) => {
            match op {
                $(Op::$v => {
                    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                        *o = Op::$v.apply(x, y, width);
                    }
                })+
            }
        };
    }
    unswitch!(Add, Sub, Mul, Div, And, Or, Xor, Gt, Lt, Shl, Shr);
}

/// Fused `Copy` instruction: reads net `src`'s row and commits it to net
/// `dst` with flip counting, one loop, no scratch copy. Reads of a lane
/// happen before that lane's write, so `src == dst` behaves exactly like
/// the scalar `set_net(dst, net(src))`.
#[inline]
fn copy_row<const L: usize>(
    nets: &mut [u64],
    net_toggles: &mut [u64],
    net_total: &mut [u64],
    src: u32,
    dst: u32,
    mask: u64,
) {
    let s = src as usize * L;
    let d = dst as usize * L;
    // Stack row of the source: the loop then touches `nets` only through
    // the destination row, so LLVM needs no overlap checks to vectorize.
    let mut vals = [0u64; L];
    vals.copy_from_slice(&nets[s..s + L]);
    let row = &mut nets[d..d + L];
    let tog = &mut net_toggles[d..d + L];
    let net_total = &mut net_total[..L];
    for l in 0..L {
        let v = vals[l] & mask;
        let flips = u64::from((row[l] ^ v).count_ones());
        tog[l] += flips;
        net_total[l] += flips;
        row[l] = v;
    }
}

/// The per-computation ALU state rows a fused live-ALU step touches,
/// all `L` long.
struct AluRows<'r> {
    hist_a: &'r mut [u64],
    hist_b: &'r mut [u64],
    input_toggles: &'r mut [u64],
    input_total: &'r mut [u64],
    net_total: &'r mut [u64],
}

/// One fused lane pass for a live ALU instruction: operand-history
/// toggles, the operation itself and the destination-net commit, in a
/// single loop with no operand scratch copies. Operands are read out of
/// `nets` before the destination lane is written, so `dst == a` or
/// `dst == b` behaves exactly like the scalar kernel (read, then
/// `set_net`). As in [`apply_row`], the op dispatch is hoisted out of
/// the loop, so each arm is a tight branchless body with the exact
/// scalar semantics.
#[inline]
#[allow(clippy::too_many_arguments)]
fn alu_row<const L: usize>(
    op: Op,
    width: u8,
    mask: u64,
    fn_delta: u64,
    nets: &mut [u64],
    net_toggles: &mut [u64],
    a: u32,
    b: u32,
    dst: u32,
    rows: AluRows<'_>,
) {
    let sa = a as usize * L;
    let sb = b as usize * L;
    let sd = dst as usize * L;
    // Stack rows of both operands (reads complete before the destination
    // write, preserving scalar semantics when `dst == a` or `dst == b`):
    // the loop then touches `nets` only through the destination row, so
    // every stream is provably disjoint and the loop vectorizes without
    // runtime overlap checks.
    let mut va_row = [0u64; L];
    let mut vb_row = [0u64; L];
    va_row.copy_from_slice(&nets[sa..sa + L]);
    vb_row.copy_from_slice(&nets[sb..sb + L]);
    let dst_row = &mut nets[sd..sd + L];
    let dst_tog = &mut net_toggles[sd..sd + L];
    let hist_a = &mut rows.hist_a[..L];
    let hist_b = &mut rows.hist_b[..L];
    let input_toggles = &mut rows.input_toggles[..L];
    let input_total = &mut rows.input_total[..L];
    let net_total = &mut rows.net_total[..L];
    macro_rules! unswitch {
        ($($v:ident),+) => {
            match op {
                $(Op::$v => {
                    for l in 0..L {
                        let (va, vb) = (va_row[l], vb_row[l]);
                        let toggled = u64::from((hist_a[l] ^ va).count_ones())
                            + u64::from((hist_b[l] ^ vb).count_ones())
                            + fn_delta;
                        input_toggles[l] += toggled;
                        input_total[l] += toggled;
                        hist_a[l] = va;
                        hist_b[l] = vb;
                        let v = Op::$v.apply(va, vb, width) & mask;
                        let flips = u64::from((dst_row[l] ^ v).count_ones());
                        dst_tog[l] += flips;
                        net_total[l] += flips;
                        dst_row[l] = v;
                    }
                })+
            }
        };
    }
    unswitch!(Add, Sub, Mul, Div, And, Or, Xor, Gt, Lt, Shl, Shr);
}

/// One fused lane pass for a frozen ALU instruction: recomputes the op
/// over the frozen operand history (disjoint from `nets`, so the loop
/// vectorizes without overlap checks) and commits to the destination net
/// with flip counting — `apply_row` + `set_net_row` in a single sweep.
#[inline]
#[allow(clippy::too_many_arguments)]
fn frozen_row<const L: usize>(
    op: Op,
    width: u8,
    mask: u64,
    hist_a: &[u64],
    hist_b: &[u64],
    nets: &mut [u64],
    net_toggles: &mut [u64],
    net_total: &mut [u64],
    dst: u32,
) {
    let sd = dst as usize * L;
    let dst_row = &mut nets[sd..sd + L];
    let dst_tog = &mut net_toggles[sd..sd + L];
    let hist_a = &hist_a[..L];
    let hist_b = &hist_b[..L];
    let net_total = &mut net_total[..L];
    macro_rules! unswitch {
        ($($v:ident),+) => {
            match op {
                $(Op::$v => {
                    for l in 0..L {
                        let v = Op::$v.apply(hist_a[l], hist_b[l], width) & mask;
                        let flips = u64::from((dst_row[l] ^ v).count_ones());
                        dst_tog[l] += flips;
                        net_total[l] += flips;
                        dst_row[l] = v;
                    }
                })+
            }
        };
    }
    unswitch!(Add, Sub, Mul, Div, And, Or, Xor, Gt, Lt, Shl, Shr);
}

/// One fused lane pass for a register capture: stored-bit toggle update
/// and destination-net commit straight from the two-phase capture
/// buffer, in a single sweep instead of two. The buffer row is read-only
/// here and every mutable stream is disjoint, so the loop vectorizes
/// cleanly.
#[inline]
#[allow(clippy::too_many_arguments)]
fn capture_row<const L: usize>(
    vals: &[u64],
    stored: &mut [u64],
    store_toggles: &mut [u64],
    store_total: &mut [u64],
    nets: &mut [u64],
    net_toggles: &mut [u64],
    net_total: &mut [u64],
    out: u32,
    mask: u64,
) {
    let sd = out as usize * L;
    let dst_row = &mut nets[sd..sd + L];
    let dst_tog = &mut net_toggles[sd..sd + L];
    let vals = &vals[..L];
    let stored = &mut stored[..L];
    let store_toggles = &mut store_toggles[..L];
    let store_total = &mut store_total[..L];
    let net_total = &mut net_total[..L];
    for l in 0..L {
        let v = vals[l];
        let sflips = u64::from((stored[l] ^ v).count_ones());
        store_toggles[l] += sflips;
        store_total[l] += sflips;
        stored[l] = v;
        let vm = v & mask;
        let nflips = u64::from((dst_row[l] ^ vm).count_ones());
        dst_tog[l] += nflips;
        net_total[l] += nflips;
        dst_row[l] = vm;
    }
}

/// Convenience wrapper: compile + batch the given seeds in one call.
/// `results[k]` is bit-identical to [`simulate`](crate::simulate) with
/// seed `seeds[k]`.
#[must_use]
pub fn simulate_seeds(
    netlist: &Netlist,
    mode: PowerMode,
    computations: usize,
    seeds: &[u64],
    lanes: usize,
    collect_profile: bool,
) -> Vec<SimResult> {
    BatchedProgram::compile(netlist, mode, lanes).run_seeds(computations, seeds, collect_profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, SimConfig};
    use mc_alloc::{allocate, AllocOptions, Strategy};
    use mc_clocks::ClockScheme;
    use mc_dfg::benchmarks;

    fn hal(n: u32) -> Netlist {
        let bm = benchmarks::hal();
        let opts = AllocOptions::new(Strategy::Integrated, ClockScheme::new(n).unwrap());
        allocate(&bm.dfg, &bm.schedule, &opts).unwrap().netlist
    }

    #[test]
    fn lanes_match_scalar_runs() {
        let nl = hal(3);
        let mode = PowerMode::multiclock();
        let seeds: Vec<u64> = (0..5).map(|k| 100 + k * 13).collect();
        let batched = simulate_seeds(&nl, mode, 8, &seeds, 4, true);
        assert_eq!(batched.len(), seeds.len());
        for (k, &seed) in seeds.iter().enumerate() {
            let cfg = SimConfig::new(mode, 8, seed).with_profile();
            let scalar = simulate(&nl, &cfg);
            assert_eq!(batched[k].activity, scalar.activity, "seed {seed}");
            assert_eq!(batched[k].outputs, scalar.outputs, "seed {seed}");
        }
    }

    #[test]
    fn zero_computations_yield_empty_results() {
        let nl = hal(2);
        let res = simulate_seeds(&nl, PowerMode::multiclock(), 0, &[1, 2], 8, false);
        assert_eq!(res.len(), 2);
        for r in &res {
            assert_eq!(r.activity.steps, 0);
            assert!(r.outputs.is_empty());
        }
    }

    #[test]
    fn lane_width_is_clamped() {
        let nl = hal(1);
        let p = BatchedProgram::compile(&nl, PowerMode::non_gated(), 0);
        assert_eq!(p.lanes(), 1);
        let p = BatchedProgram::compile(&nl, PowerMode::non_gated(), 4096);
        assert_eq!(p.lanes(), MAX_LANES);
    }
}
