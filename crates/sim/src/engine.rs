//! The phase-accurate netlist simulator.
//!
//! One simulation step corresponds to one system-clock period (one control
//! step). Within a step the simulator:
//!
//! 1. drives the primary-input ports (new values appear during the final
//!    step of each computation, so the boundary clock edge captures them);
//! 2. resolves the effective control values under the design's
//!    [`ControlPolicy`] (latched lines hold, unlatched lines fall to
//!    defaults) and counts control-line toggles;
//! 3. evaluates the combinational network in topological order, counting
//!    bit flips per net and input activity per ALU (operand isolation
//!    freezes idle ALUs);
//! 4. delivers clock edges: a memory element in partition `k` sees a pulse
//!    only when `k` owns the step (and, under gated clocks, only when its
//!    load enable is asserted), capturing its data input with a
//!    simultaneous two-phase commit.
//!
//! Latches and DFFs behave identically *functionally* — allocation
//! guarantees no READ/WRITE overlap for latches — and differ only in the
//! capacitances the power model attaches to these counters.
//!
//! Two execution backends implement these semantics (see [`SimBackend`]):
//! the original interpreter in this module, kept as the readable reference
//! implementation, and the compiled kernel in
//! [`compiled`](crate::compiled), which lowers the netlist once into a
//! dense index-addressed program and is the default everywhere.

use std::collections::BTreeMap;
use std::fmt;

use mc_prng::Xoshiro256;

use mc_dfg::Op;
use mc_rtl::{CompId, ComponentKind, ControlPolicy, Netlist, PowerMode};

use crate::activity::Activity;
use crate::compiled::CompiledNetlist;

/// The execution backend running a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SimBackend {
    /// The dense index-addressed kernel ([`CompiledNetlist`]): a one-time
    /// lowering pays for levelization, periodic control precomputation and
    /// slot indexing, then every step runs allocation-free. Bit-identical
    /// to the interpreter; the default.
    #[default]
    Compiled,
    /// The original map-driven interpreter — the reference implementation
    /// the compiled kernel is differentially tested against.
    Interpreter,
}

impl fmt::Display for SimBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimBackend::Compiled => write!(f, "compiled"),
            SimBackend::Interpreter => write!(f, "interpreter"),
        }
    }
}

/// Errors binding a simulation to its stimulus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An explicit input vector lacks a value for a primary input of the
    /// netlist.
    MissingInput {
        /// The primary input with no value.
        input: String,
        /// The 0-based computation whose vector is incomplete.
        computation: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingInput { input, computation } => write!(
                f,
                "input vector for computation {computation} has no value for primary input `{input}`"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The power-management mode under which the design operates.
    pub mode: PowerMode,
    /// Number of back-to-back computations to run.
    pub computations: usize,
    /// Seed for the random input stimulus.
    pub seed: u64,
    /// Record a per-step trace of all net values (memory-hungry; for
    /// debugging, VCD export and the Fig. 4 timing reproduction).
    pub collect_trace: bool,
    /// Record per-step aggregate activity counters (cheap; enables
    /// power-over-time profiles).
    pub collect_profile: bool,
    /// Keep the applied input vectors in [`SimResult::inputs`]. Off by
    /// default — table runs never read them back, and cloning every vector
    /// into the result was pure overhead. Tracing implies keeping them
    /// (a trace without its stimulus is not reproducible).
    pub keep_inputs: bool,
    /// The execution backend.
    pub backend: SimBackend,
}

impl SimConfig {
    /// A configuration with random stimulus: `computations` runs under
    /// `mode`, seeded deterministically.
    #[must_use]
    pub fn new(mode: PowerMode, computations: usize, seed: u64) -> Self {
        SimConfig {
            mode,
            computations,
            seed,
            collect_trace: false,
            collect_profile: false,
            keep_inputs: false,
            backend: SimBackend::default(),
        }
    }

    /// Enables per-step net tracing.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    /// Enables per-step activity profiling.
    #[must_use]
    pub fn with_profile(mut self) -> Self {
        self.collect_profile = true;
        self
    }

    /// Keeps the applied input vectors in the result.
    #[must_use]
    pub fn with_inputs_kept(mut self) -> Self {
        self.keep_inputs = true;
        self
    }

    /// Selects the execution backend.
    #[must_use]
    pub fn with_backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Switching activity counters.
    pub activity: Activity,
    /// The input vector applied to each computation (name → value).
    /// Populated only when the configuration keeps inputs
    /// ([`SimConfig::with_inputs_kept`]) or traces; empty otherwise.
    pub inputs: Vec<BTreeMap<String, u64>>,
    /// The output values observed at the end of each computation
    /// (name → value).
    pub outputs: Vec<BTreeMap<String, u64>>,
    /// Per-step net values when tracing was requested: `trace[s][net]`.
    pub trace: Option<Vec<Vec<u64>>>,
}

/// Input vectors bound to dense port positions: `flat[c * n + i]` is the
/// (masked) value of the `i`-th primary input — in [`Netlist::inputs`]
/// order — for computation `c`.
pub(crate) struct BoundInputs {
    pub flat: Vec<u64>,
    pub computations: usize,
}

impl BoundInputs {
    /// Binds string-keyed vectors to port positions, masking values to the
    /// datapath width.
    pub(crate) fn bind(
        netlist: &Netlist,
        vectors: &[BTreeMap<String, u64>],
    ) -> Result<Self, SimError> {
        let mask = width_mask(netlist.width());
        let mut flat = Vec::with_capacity(vectors.len() * netlist.inputs().len());
        for (c, vec) in vectors.iter().enumerate() {
            for (name, _) in netlist.inputs() {
                let v = vec.get(name).ok_or_else(|| SimError::MissingInput {
                    input: name.clone(),
                    computation: c,
                })?;
                flat.push(v & mask);
            }
        }
        Ok(BoundInputs {
            flat,
            computations: vectors.len(),
        })
    }

    /// Draws `computations` uniform random vectors, one value per primary
    /// input, in [`Netlist::inputs`] order.
    pub(crate) fn random(netlist: &Netlist, computations: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mask = width_mask(netlist.width());
        let flat = (0..computations * netlist.inputs().len())
            .map(|_| rng.next_u64() & mask)
            .collect();
        BoundInputs { flat, computations }
    }

    /// Reconstructs the name-keyed vectors (for results that keep inputs).
    fn to_vectors(&self, netlist: &Netlist) -> Vec<BTreeMap<String, u64>> {
        let n = netlist.inputs().len();
        (0..self.computations)
            .map(|c| {
                netlist
                    .inputs()
                    .iter()
                    .enumerate()
                    .map(|(i, (name, _))| (name.clone(), self.flat[c * n + i]))
                    .collect()
            })
            .collect()
    }
}

/// The all-ones mask of the datapath width.
pub(crate) fn width_mask(width: u8) -> u64 {
    (1u64 << width) - 1
}

/// Runs bound inputs through the configured backend and fills the
/// kept-inputs field when requested.
fn run_bound(netlist: &Netlist, bound: &BoundInputs, config: &SimConfig) -> SimResult {
    let mut result = match config.backend {
        SimBackend::Interpreter => Engine::new(netlist, config.mode).run(
            bound,
            config.collect_trace,
            config.collect_profile,
        ),
        SimBackend::Compiled => CompiledNetlist::compile(netlist, config.mode).run(
            bound,
            config.collect_trace,
            config.collect_profile,
        ),
    };
    if config.keep_inputs || config.collect_trace {
        result.inputs = bound.to_vectors(netlist);
    }
    result
}

/// Simulates `netlist` with random input vectors.
#[must_use]
pub fn simulate(netlist: &Netlist, config: &SimConfig) -> SimResult {
    let bound = BoundInputs::random(netlist, config.computations, config.seed);
    run_bound(netlist, &bound, config)
}

/// Simulates `netlist` over explicit input vectors under full
/// configuration control (backend, tracing, profiling, kept inputs).
/// `config.computations` and `config.seed` are ignored — the vectors *are*
/// the stimulus.
///
/// # Errors
///
/// Returns [`SimError::MissingInput`] if a vector lacks a primary input.
pub fn simulate_with_config(
    netlist: &Netlist,
    vectors: &[BTreeMap<String, u64>],
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    let bound = BoundInputs::bind(netlist, vectors)?;
    Ok(run_bound(netlist, &bound, config))
}

/// Simulates `netlist` over explicit input vectors, one per computation.
/// Fallible twin of [`simulate_with_inputs`].
///
/// # Errors
///
/// Returns [`SimError::MissingInput`] if a vector lacks a primary input.
pub fn try_simulate_with_inputs(
    netlist: &Netlist,
    mode: PowerMode,
    vectors: &[BTreeMap<String, u64>],
    collect_trace: bool,
) -> Result<SimResult, SimError> {
    let mut config = SimConfig::new(mode, vectors.len(), 0);
    config.collect_trace = collect_trace;
    simulate_with_config(netlist, vectors, &config)
}

/// Simulates `netlist` over explicit input vectors, one per computation.
///
/// # Panics
///
/// Panics if a vector is missing a primary input of the netlist (the
/// single [`SimError::MissingInput`] failure path; use
/// [`try_simulate_with_inputs`] to handle it as a value).
#[must_use]
pub fn simulate_with_inputs(
    netlist: &Netlist,
    mode: PowerMode,
    vectors: &[BTreeMap<String, u64>],
    collect_trace: bool,
) -> SimResult {
    try_simulate_with_inputs(netlist, mode, vectors, collect_trace)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Per-ALU bookkeeping for isolation and activity counting.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct AluState {
    pub prev_a: u64,
    pub prev_b: u64,
    pub prev_fn: usize,
}

/// Effective control values of one step.
#[derive(Debug, Clone, Default)]
struct Controls {
    sel: BTreeMap<CompId, usize>,
    fnx: BTreeMap<CompId, usize>,
    load: BTreeMap<CompId, bool>,
    /// ALUs whose controller word named them explicitly this step.
    active_alus: std::collections::BTreeSet<CompId>,
}

struct Engine<'a> {
    netlist: &'a Netlist,
    mode: PowerMode,
    mask: u64,
    period: u32,
    /// Current value of every net.
    nets: Vec<u64>,
    /// Stored value of every memory element (indexed by component).
    stored: Vec<u64>,
    /// Previous effective control values: mux selects, ALU fn index, load.
    prev_sel: BTreeMap<CompId, usize>,
    prev_fn: BTreeMap<CompId, usize>,
    prev_load: BTreeMap<CompId, bool>,
    alu_state: BTreeMap<CompId, AluState>,
    activity: Activity,
}

impl<'a> Engine<'a> {
    fn new(netlist: &'a Netlist, mode: PowerMode) -> Self {
        let nc = netlist.num_components();
        let mask = width_mask(netlist.width());
        let mut nets = vec![0; netlist.num_nets()];
        // Constant drivers hold their value from power-up.
        for c in netlist.component_ids() {
            if let ComponentKind::Const { value } = netlist.component(c).kind() {
                nets[netlist.component(c).output().index()] = value & mask;
            }
        }
        Engine {
            netlist,
            mode,
            mask,
            period: netlist.controller().len(),
            nets,
            stored: vec![0; nc],
            prev_sel: BTreeMap::new(),
            prev_fn: BTreeMap::new(),
            prev_load: BTreeMap::new(),
            alu_state: BTreeMap::new(),
            activity: Activity::new(netlist.num_nets(), nc),
        }
    }

    /// Index of `op` within an ALU's function set.
    pub(crate) fn fn_index(fs: mc_dfg::FunctionSet, op: Op) -> usize {
        fs.iter()
            .position(|o| o == op)
            .expect("op validated in set")
    }

    fn set_net(&mut self, net: mc_rtl::NetId, value: u64) {
        let value = value & self.mask;
        let old = self.nets[net.index()];
        if old != value {
            self.activity.net_toggles[net.index()] += (old ^ value).count_ones() as u64;
            self.nets[net.index()] = value;
        }
    }

    fn run(mut self, bound: &BoundInputs, collect_trace: bool, collect_profile: bool) -> SimResult {
        let nl = self.netlist;
        let ni = nl.inputs().len();
        let computations = bound.computations;
        let mut outputs = Vec::with_capacity(computations);
        let mut trace = if collect_trace {
            Some(Vec::new())
        } else {
            None
        };
        if collect_profile {
            self.activity.per_step = Some(Vec::new());
        }
        let mut prev_snapshot = ProfileSnapshot::default();

        // Reset preload: computation 1's inputs sit in the input mems and
        // on the port nets as if loaded by a reset, without counting
        // toggles (steady-state behaviour is what we measure). The
        // boundary step's controls are applied silently so the mems that
        // load at the boundary capture the port values.
        if computations > 0 {
            for (i, (_, comp)) in nl.inputs().iter().enumerate() {
                self.nets[nl.component(*comp).output().index()] = bound.flat[i];
            }
            let boundary = self.period;
            self.apply_controls_silent(boundary);
            self.eval_combinational_silent();
            let word = nl.controller().word(boundary);
            let loads: Vec<CompId> = nl
                .mems()
                .filter(|m| word.mem_load.contains(m))
                .map(mc_rtl::MemId::comp)
                .collect();
            for mem in loads {
                let input = match nl.component(mem).kind() {
                    ComponentKind::Mem { input, .. } => *input,
                    _ => unreachable!("mems() yields memories"),
                };
                let v = self.nets[input.index()];
                self.stored[mem.index()] = v;
                self.nets[nl.component(mem).output().index()] = v;
            }
        }

        for c in 0..computations {
            for t in 1..=self.period {
                // 1. Drive ports: during the boundary step, present the
                // *next* computation's inputs so the boundary edge loads
                // them.
                if t == self.period && c + 1 < computations {
                    let base = (c + 1) * ni;
                    for (i, (_, comp)) in nl.inputs().iter().enumerate() {
                        self.set_net(nl.component(*comp).output(), bound.flat[base + i]);
                    }
                }
                // 2. Effective controls.
                let controls = self.effective_controls(t);
                // 3. Combinational evaluation.
                self.eval_combinational(&controls);
                let load = controls.load;
                // 4. Clock edges and capture (two-phase commit).
                let mut captures: Vec<(CompId, u64)> = Vec::new();
                for mem in nl.mems().map(mc_rtl::MemId::comp) {
                    let comp = nl.component(mem);
                    let phase = comp.mem_phase().expect("mems have phases");
                    if !nl.scheme().is_active(phase, t) {
                        continue;
                    }
                    let loading = load.get(&mem).copied().unwrap_or(false);
                    let pulsed = !self.mode.gated_mem_clocks || loading;
                    if pulsed {
                        self.activity.clock_pulses[mem.index()] += 1;
                    }
                    if loading {
                        let input = match comp.kind() {
                            ComponentKind::Mem { input, .. } => *input,
                            _ => unreachable!(),
                        };
                        captures.push((mem, self.nets[input.index()]));
                    }
                }
                for (mem, v) in captures {
                    let old = self.stored[mem.index()];
                    if old != v {
                        self.activity.store_toggles[mem.index()] += (old ^ v).count_ones() as u64;
                        self.stored[mem.index()] = v;
                    }
                    self.set_net(nl.component(mem).output(), v);
                }
                self.activity.controller_pulses += 1;
                self.activity.steps += 1;
                if let Some(tr) = trace.as_mut() {
                    tr.push(self.nets.clone());
                }
                if collect_profile {
                    let snap = ProfileSnapshot::of(&self.activity);
                    let step = snap.minus(&prev_snapshot);
                    prev_snapshot = snap;
                    self.activity
                        .per_step
                        .as_mut()
                        .expect("profiling enabled")
                        .push(step);
                }
            }
            // End of computation: read the outputs.
            let out: BTreeMap<String, u64> = nl
                .outputs()
                .iter()
                .map(|(name, net)| (name.clone(), self.nets[net.index()]))
                .collect();
            outputs.push(out);
            self.activity.computations += 1;
        }
        SimResult {
            activity: self.activity,
            inputs: Vec::new(),
            outputs,
            trace,
        }
    }

    /// Resolves control values for step `t` under the policy, counting
    /// control-line toggles against the previous step's values.
    fn effective_controls(&mut self, t: u32) -> Controls {
        let nl = self.netlist;
        let word = nl.controller().word(t);
        let policy = self.mode.control_policy;
        let mut controls = Controls::default();
        for c in nl.component_ids() {
            match nl.component(c).kind() {
                ComponentKind::Mux { inputs } => {
                    let eff = match word.sel_of(c) {
                        Some(s) => s,
                        None => match policy {
                            ControlPolicy::Hold => self.prev_sel.get(&c).copied().unwrap_or(0),
                            ControlPolicy::Zero => 0,
                        },
                    };
                    let prev = self.prev_sel.insert(c, eff).unwrap_or(0);
                    let bits = bits_for(inputs.len());
                    self.activity.control_toggles +=
                        ((prev ^ eff) as u64 & ((1u64 << bits) - 1)).count_ones() as u64;
                    controls.sel.insert(c, eff);
                }
                ComponentKind::Alu { fs, .. } => {
                    let explicit = word.fn_of(c);
                    let eff = match explicit {
                        Some(op) => Self::fn_index(*fs, op),
                        None => match policy {
                            ControlPolicy::Hold => self.prev_fn.get(&c).copied().unwrap_or(0),
                            ControlPolicy::Zero => 0,
                        },
                    };
                    let prev = self.prev_fn.insert(c, eff).unwrap_or(0);
                    let bits = bits_for(fs.len());
                    self.activity.control_toggles +=
                        ((prev ^ eff) as u64 & ((1u64 << bits) - 1)).count_ones() as u64;
                    controls.fnx.insert(c, eff);
                    if explicit.is_some() {
                        controls.active_alus.insert(c);
                    }
                }
                ComponentKind::Mem { .. } => {
                    let eff = word.loads(c);
                    let prev = self.prev_load.insert(c, eff).unwrap_or(false);
                    if prev != eff {
                        self.activity.control_toggles += 1;
                    }
                    controls.load.insert(c, eff);
                }
                ComponentKind::Const { .. } | ComponentKind::Input => {}
            }
        }
        controls
    }

    /// Evaluates muxes and ALUs in topological order with full activity
    /// accounting.
    fn eval_combinational(&mut self, controls: &Controls) {
        let nl = self.netlist;
        for &c in nl.combinational_order() {
            match nl.component(c).kind() {
                ComponentKind::Mux { inputs } => {
                    let s = controls
                        .sel
                        .get(&c)
                        .copied()
                        .unwrap_or(0)
                        .min(inputs.len() - 1);
                    let v = self.nets[inputs[s].index()];
                    self.set_net(nl.component(c).output(), v);
                }
                ComponentKind::Alu { fs, a, b } => {
                    let is_active = controls.active_alus.contains(&c);
                    let prev = self.alu_state.get(&c).copied().unwrap_or_default();
                    let (a_val, b_val, f) = if self.mode.operand_isolation && !is_active {
                        // Frozen operands and function: no input activity,
                        // stable output.
                        (prev.prev_a, prev.prev_b, prev.prev_fn)
                    } else {
                        let f = controls.fnx.get(&c).copied().unwrap_or(0);
                        (self.nets[a.index()], self.nets[b.index()], f)
                    };
                    let op = fs.iter().nth(f).unwrap_or_else(|| {
                        fs.iter().next().expect("ALUs have at least one function")
                    });
                    let toggled = (prev.prev_a ^ a_val).count_ones() as u64
                        + (prev.prev_b ^ b_val).count_ones() as u64
                        + if prev.prev_fn != f {
                            u64::from(self.netlist.width())
                        } else {
                            0
                        };
                    self.activity.input_toggles[c.index()] += toggled;
                    self.alu_state.insert(
                        c,
                        AluState {
                            prev_a: a_val,
                            prev_b: b_val,
                            prev_fn: f,
                        },
                    );
                    let out = op.apply(a_val, b_val, self.netlist.width());
                    self.set_net(nl.component(c).output(), out);
                }
                _ => unreachable!("combinational order holds only muxes and ALUs"),
            }
        }
    }

    /// Silent combinational settle used by the reset preload.
    fn eval_combinational_silent(&mut self) {
        let nl = self.netlist;
        for &c in nl.combinational_order() {
            match nl.component(c).kind() {
                ComponentKind::Mux { inputs } => {
                    let s = self
                        .prev_sel
                        .get(&c)
                        .copied()
                        .unwrap_or(0)
                        .min(inputs.len() - 1);
                    self.nets[nl.component(c).output().index()] = self.nets[inputs[s].index()];
                }
                ComponentKind::Alu { fs, a, b } => {
                    let f = self.prev_fn.get(&c).copied().unwrap_or(0);
                    let op = fs
                        .iter()
                        .nth(f)
                        .unwrap_or_else(|| fs.iter().next().expect("non-empty"));
                    self.nets[nl.component(c).output().index()] =
                        op.apply(self.nets[a.index()], self.nets[b.index()], nl.width());
                }
                _ => unreachable!(),
            }
        }
    }

    /// Applies step `t`'s explicit controls without counting toggles
    /// (reset preload only).
    fn apply_controls_silent(&mut self, t: u32) {
        let word = self.netlist.controller().word(t);
        for (&c, &s) in &word.mux_sel {
            self.prev_sel.insert(c.comp(), s);
        }
    }
}

/// Running totals used to derive per-step deltas for profiling.
#[derive(Debug, Clone, Copy, Default)]
struct ProfileSnapshot {
    net: u64,
    input: u64,
    clock: u64,
    store: u64,
    control: u64,
}

impl ProfileSnapshot {
    fn of(a: &Activity) -> Self {
        ProfileSnapshot {
            net: a.net_toggles.iter().sum(),
            input: a.input_toggles.iter().sum(),
            clock: a.clock_pulses.iter().sum(),
            store: a.store_toggles.iter().sum(),
            control: a.control_toggles,
        }
    }

    fn minus(&self, prev: &ProfileSnapshot) -> crate::activity::StepActivity {
        crate::activity::StepActivity {
            net_toggles: self.net - prev.net,
            input_toggles: self.input - prev.input,
            clock_pulses: self.clock - prev.clock,
            store_toggles: self.store - prev.store,
            control_toggles: self.control - prev.control,
        }
    }
}

/// Control bits needed to encode `k` alternatives.
pub(crate) fn bits_for(k: usize) -> u32 {
    if k <= 1 {
        0
    } else {
        (usize::BITS - (k - 1).leading_zeros()).max(1)
    }
}
